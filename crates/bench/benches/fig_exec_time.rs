//! Criterion wrapper for experiments E1/E3/E7 (Figs. 6/8 + the 16×16
//! case): one representative sweep point per figure, small enough to
//! iterate. The full tables come from `cargo run --bin figures`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medea_apps::jacobi::JacobiVariant;
use medea_bench::jacobi_sweep;
use medea_core::explore::SweepPoint;
use medea_core::CachePolicy;

fn bench_exec_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_8_exec_time");
    group.sample_size(10);
    for (name, n, cache_kb, policy) in [
        ("fig6_60x60_proxy_16x16_wb16k", 16usize, 16usize, CachePolicy::WriteBack),
        ("fig8_30x30_proxy_16x16_wb4k", 16, 4, CachePolicy::WriteBack),
        ("fig6_wt_traffic_16x16_wt4k", 16, 4, CachePolicy::WriteThrough),
        ("e7_small_16x16_wb16k", 16, 16, CachePolicy::WriteBack),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let points = [SweepPoint::new(4, cache_kb * 1024, policy)];
            b.iter(|| {
                let outcomes = jacobi_sweep(n, JacobiVariant::HybridFullMp, &points, 1);
                assert!(outcomes[0].measured().unwrap() > 0);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exec_time);
criterion_main!(benches);
