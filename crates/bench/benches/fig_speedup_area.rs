//! Criterion wrapper for experiments E2/E4 (Figs. 7/9): the speedup-vs-
//! area pipeline (sweep → Pareto → kill rule) on a reduced point set.

use criterion::{criterion_group, criterion_main, Criterion};
use medea_apps::jacobi::JacobiVariant;
use medea_bench::{jacobi_sweep, speedup_vs_area};
use medea_core::explore::SweepPoint;
use medea_core::CachePolicy;

fn bench_speedup_area(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_9_speedup_area");
    group.sample_size(10);
    let points: Vec<SweepPoint> = [2usize, 4, 8]
        .iter()
        .flat_map(|&pes| {
            [4 * 1024usize, 16 * 1024]
                .map(|cache_bytes| SweepPoint::new(pes, cache_bytes, CachePolicy::WriteBack))
        })
        .collect();
    group.bench_function("pipeline_16x16_6pts", |b| {
        b.iter(|| {
            let outcomes = jacobi_sweep(16, JacobiVariant::HybridFullMp, &points, 1);
            let sva = speedup_vs_area(&outcomes);
            assert!(!sva.optimal.is_empty());
            sva.optimal.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_speedup_area);
criterion_main!(benches);
