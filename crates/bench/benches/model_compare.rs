//! Criterion wrapper for experiments E5/E6: the three programming models
//! on one configuration each. The paper-scale comparison table comes from
//! `figures hybrid-vs-sm` / `figures sync-only`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_bench::base_builder;
use medea_core::explore::Workload as _;
use medea_core::system::System;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_e6_programming_models");
    group.sample_size(10);
    for variant in [
        JacobiVariant::HybridFullMp,
        JacobiVariant::HybridSyncOnly,
        JacobiVariant::PureSharedMemory,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(variant), &variant, |b, &variant| {
            let cfg = base_builder().compute_pes(4).cache_bytes(16 * 1024).build().expect("config");
            let workload = JacobiWorkload { jcfg: JacobiConfig::new(12, variant) };
            b.iter(|| {
                let prepared = workload.prepare(&cfg);
                System::run(&cfg, &prepared.preload, prepared.kernels).expect("run").cycles
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
