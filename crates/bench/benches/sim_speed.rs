//! Experiment E8: simulator speed. The paper reports its SystemC model is
//! 15× faster than HDL-ISS co-simulation, enabling 168 configurations per
//! day; we cannot rerun their HDL, so the reproducible quantity is our
//! absolute simulation rate (cycles per wall-clock second) on a standard
//! full-system run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_bench::base_builder;
use medea_core::explore::Workload as _;
use medea_core::system::System;

fn bench_sim_speed(c: &mut Criterion) {
    // Measure the simulated-cycles throughput of a representative run.
    let cfg = base_builder().compute_pes(4).cache_bytes(16 * 1024).build().expect("config");
    let workload = JacobiWorkload { jcfg: JacobiConfig::new(16, JacobiVariant::HybridFullMp) };
    // Discover the per-run cycle count once so Criterion can report
    // cycles/second as throughput.
    let probe = workload.prepare(&cfg);
    let cycles = System::run(&cfg, &probe.preload, probe.kernels).expect("probe run").cycles;

    let mut group = c.benchmark_group("e8_sim_speed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("jacobi_16x16_4pe_cycles_per_sec", |b| {
        b.iter(|| {
            let prepared = workload.prepare(&cfg);
            System::run(&cfg, &prepared.preload, prepared.kernels).expect("run").cycles
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim_speed);
criterion_main!(benches);
