//! Experiments A1/A2: arbiter build options and fabric ablation, on a
//! small hybrid Jacobi. The paper-scale tables come from
//! `figures ablation-arbiter` / `figures ablation-noc`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_bench::base_builder;
use medea_core::explore::Workload as _;
use medea_core::system::System;
use medea_core::{ArbiterConfig, FabricKind, PriorityAssignment};

fn run_once(cfg: &medea_core::SystemConfig) -> u64 {
    let workload = JacobiWorkload { jcfg: JacobiConfig::new(12, JacobiVariant::HybridFullMp) };
    let prepared = workload.prepare(cfg);
    System::run(cfg, &prepared.preload, prepared.kernels).expect("run").cycles
}

fn bench_arbiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_arbiter");
    group.sample_size(10);
    for (name, arbiter) in [
        ("mux", ArbiterConfig::Mux),
        ("single_fifo8", ArbiterConfig::SingleFifo { depth: 8 }),
        (
            "dual_msg_high",
            ArbiterConfig::DualPriority { depth: 8, priority: PriorityAssignment::MessageHigh },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &arbiter, |b, &arbiter| {
            let cfg = base_builder()
                .compute_pes(4)
                .cache_bytes(8 * 1024)
                .arbiter(arbiter)
                .build()
                .expect("config");
            b.iter(|| run_once(&cfg));
        });
    }
    group.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_fabric");
    group.sample_size(10);
    for (name, fabric) in [("deflection", FabricKind::Deflection), ("ideal", FabricKind::Ideal)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &fabric, |b, &fabric| {
            let cfg = base_builder()
                .compute_pes(4)
                .cache_bytes(4 * 1024)
                .fabric(fabric)
                .build()
                .expect("config");
            b.iter(|| run_once(&cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arbiter, bench_fabric);
criterion_main!(benches);
