//! Experiment A3: standalone NoC characterization — simulator throughput
//! of the deflection-routed torus under synthetic load, real vs ideal
//! fabric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medea_noc::coord::Topology;
use medea_noc::ideal::IdealNetwork;
use medea_noc::network::Network;
use medea_noc::traffic::{run_open_loop, Pattern, TrafficConfig};

fn bench_traffic(c: &mut Criterion) {
    let topo = Topology::paper_4x4();
    let mut group = c.benchmark_group("a3_noc_traffic");
    group.sample_size(20);
    for load in [0.1f64, 0.5] {
        group.bench_with_input(BenchmarkId::new("deflection_uniform", load), &load, |b, &load| {
            b.iter(|| {
                let mut net = Network::new(topo);
                let cfg = TrafficConfig {
                    pattern: Pattern::UniformRandom,
                    offered_load: load,
                    warmup: 200,
                    measure: 1000,
                    seed: 7,
                };
                run_open_loop(&mut net, topo, &cfg).accepted_throughput
            });
        });
        group.bench_with_input(BenchmarkId::new("ideal_uniform", load), &load, |b, &load| {
            b.iter(|| {
                let mut net = IdealNetwork::new(topo);
                let cfg = TrafficConfig {
                    pattern: Pattern::UniformRandom,
                    offered_load: load,
                    warmup: 200,
                    measure: 1000,
                    seed: 7,
                };
                run_open_loop(&mut net, topo, &cfg).accepted_throughput
            });
        });
    }
    group.bench_function("deflection_hotspot_mpmmu", |b| {
        b.iter(|| {
            let mut net = Network::new(topo);
            let cfg = TrafficConfig {
                pattern: Pattern::HotSpot(medea_sim::ids::NodeId::new(0)),
                offered_load: 0.3,
                warmup: 200,
                measure: 1000,
                seed: 7,
            };
            run_open_loop(&mut net, topo, &cfg).mean_latency
        });
    });
    group.finish();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
