//! Shared machinery for regenerating every table and figure of the MEDEA
//! paper (experiment index in DESIGN.md §4).
//!
//! The heavy lifting — sweeps, speedup/area pipelines, MP-vs-SM
//! comparisons — lives here so both the `figures` binary and the Criterion
//! benches drive identical code.

use medea_apps::grid::max_ranks;
use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_core::area::{apply_kill_rule, chip_area_mm2, pareto_frontier, DesignPoint};
use medea_core::explore::{run_sweep, SweepOutcome, SweepPoint, Workload};
use medea_core::{CachePolicy, MetricsReport, PeActivity, SystemConfig, SystemConfigBuilder};
use medea_sim::Cycle;

/// How hard to push a regeneration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced grids and point sets — seconds, for CI and Criterion.
    Quick,
    /// The paper's full grids and point sets.
    Full,
}

/// Host threads used by sweeps.
pub fn sweep_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Base system configuration shared by all experiments.
pub fn base_builder() -> SystemConfigBuilder {
    SystemConfig::builder().cycle_limit(400_000_000)
}

/// The execution-time sweep behind Figs. 6 and 8: one Jacobi variant on a
/// grid of `(pes, cache, policy)` points.
pub fn jacobi_sweep(
    n: usize,
    variant: JacobiVariant,
    points: &[SweepPoint],
    threads: usize,
) -> Vec<SweepOutcome> {
    let points: Vec<SweepPoint> = points
        .iter()
        .copied()
        .filter(|p| p.pes <= max_ranks(n).min(p.topology.max_compute_pes()))
        .collect();
    let workload = JacobiWorkload { jcfg: JacobiConfig::new(n, variant) };
    run_sweep(&workload, &points, &base_builder(), threads)
}

/// Fig. 6 point set: cores 2..=15 × cache sizes × both policies.
pub fn fig6_points(effort: Effort) -> Vec<SweepPoint> {
    let (sizes, pes): (Vec<usize>, Vec<usize>) = match effort {
        Effort::Full => ((1..=6).map(|k| (1 << k) * 1024).collect(), (2..=15).collect()),
        Effort::Quick => (vec![2 * 1024, 8 * 1024, 32 * 1024], vec![2, 4, 8, 12]),
    };
    let mut points = Vec::new();
    for policy in [CachePolicy::WriteBack, CachePolicy::WriteThrough] {
        for &cache_bytes in &sizes {
            for &pes in &pes {
                points.push(SweepPoint::new(pes, cache_bytes, policy));
            }
        }
    }
    points
}

/// Fig. 8 point set: write-back only, cache 2..=32 kB.
pub fn fig8_points(effort: Effort) -> Vec<SweepPoint> {
    fig6_points(effort)
        .into_iter()
        .filter(|p| p.policy == CachePolicy::WriteBack && p.cache_bytes <= 32 * 1024)
        .collect()
}

/// Grid side per figure at the given effort.
pub fn grid_side(paper_n: usize, effort: Effort) -> usize {
    match effort {
        Effort::Full => paper_n,
        // Quick mode shrinks 60 -> 24 and 30 -> 16; knees move but stay
        // visible.
        Effort::Quick => match paper_n {
            60 => 24,
            30 => 16,
            other => other,
        },
    }
}

/// A series of (cores, cycles-per-iteration) for one cache size + policy.
#[derive(Debug, Clone)]
pub struct ExecTimeSeries {
    /// Legend label, e.g. `16kB $ WB`.
    pub label: String,
    /// `(cores, cycles/iter)` points.
    pub points: Vec<(usize, Cycle)>,
}

/// Group sweep outcomes into the paper's per-cache-size curves.
pub fn exec_time_series(outcomes: &[SweepOutcome]) -> Vec<ExecTimeSeries> {
    let mut series: Vec<ExecTimeSeries> = Vec::new();
    for o in outcomes {
        let Some(measured) = o.measured() else { continue };
        let label = format!("{}kB $ {}", o.point.cache_bytes / 1024, o.point.policy);
        match series.iter_mut().find(|s| s.label == label) {
            Some(s) => s.points.push((o.point.pes, measured)),
            None => series.push(ExecTimeSeries { label, points: vec![(o.point.pes, measured)] }),
        }
    }
    for s in &mut series {
        s.points.sort_by_key(|(pes, _)| *pes);
    }
    series
}

/// The Fig. 7/9 pipeline: speedup (vs. the slowest point of the sweep) and
/// area for every point, Pareto-pruned, kill-rule applied.
pub struct SpeedupVsArea {
    /// Every evaluated point.
    pub all: Vec<DesignPoint>,
    /// The Pareto frontier.
    pub frontier: Vec<DesignPoint>,
    /// Frontier after the kill rule.
    pub optimal: Vec<DesignPoint>,
}

/// Build the speedup-vs-area artifact from a sweep.
pub fn speedup_vs_area(outcomes: &[SweepOutcome]) -> SpeedupVsArea {
    let reference =
        outcomes.iter().filter_map(SweepOutcome::measured).max().unwrap_or(1).max(1) as f64;
    let all: Vec<DesignPoint> = outcomes
        .iter()
        .filter_map(|o| {
            let measured = o.measured().filter(|&m| m > 0)?;
            let cfg = o.point.apply(base_builder());
            Some(DesignPoint {
                label: o.label.clone(),
                area_mm2: chip_area_mm2(&cfg),
                speedup: reference / measured as f64,
            })
        })
        .collect();
    let frontier = pareto_frontier(all.clone());
    let optimal = apply_kill_rule(&frontier, 1.0);
    SpeedupVsArea { all, frontier, optimal }
}

/// One row of the `utilization` section shared by the `scaling_json` and
/// `metrics_json` binaries: the label of one metered run plus the
/// [`MetricsReport`] its `RunResult` carried.
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// Torus, e.g. `4x4`.
    pub topology: String,
    /// Configuration label of the run.
    pub label: String,
    /// Compute-PE count.
    pub pes: usize,
    /// The profiler's run-level artifact.
    pub report: MetricsReport,
}

/// Render [`UtilizationRow`]s as the JSON row array body of a
/// `utilization` section (rows indented four spaces, comma-separated,
/// trailing newline) — one emitter so both bench binaries write the same
/// schema. Per row: the aggregate [`CycleBreakdown`](medea_core::CycleBreakdown)
/// fractions (summing to 1.0 by construction), the peak single-link
/// utilization with its `(node, dir)`, and the hottest-router/bank
/// tables.
pub fn utilization_rows_json(rows: &[UtilizationRow]) -> String {
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        let agg = r.aggregate();
        let breakdown: Vec<String> = PeActivity::ALL
            .iter()
            .map(|&a| format!("\"{}\": {:.6}", a.name(), agg.fraction(a)))
            .collect();
        let dominant =
            agg.dominant().map_or_else(|| "null".to_owned(), |(a, _)| format!("\"{}\"", a.name()));
        let peak = r.peak_link_utilization().map_or_else(
            || "null".to_owned(),
            |(node, dir, u)| format!("{{\"node\": {node}, \"dir\": {dir}, \"busy\": {u:.4}}}"),
        );
        let routers: Vec<String> =
            r.hottest_routers(4).iter().map(|(n, b)| format!("[{n}, {b}]")).collect();
        let banks: Vec<String> =
            r.hottest_banks(4).iter().map(|(b, p)| format!("[{b}, {p}]")).collect();
        out.push_str(&format!(
            "    {{\"topology\": \"{}\", \"label\": \"{}\", \"pes\": {}, \
             \"sim_cycles\": {}, \"sample_interval\": {}, \"windows\": {}, \
             \"windows_dropped\": {}, \"attributed_cycles\": {}, \"dominant\": {dominant}, \
             \"breakdown\": {{{}}}, \"peak_link\": {peak}, \
             \"hottest_routers\": [{}], \"hottest_banks\": [{}]}}{}\n",
            row.topology,
            row.label,
            row.pes,
            r.end,
            r.interval,
            r.windows.len(),
            r.windows_dropped,
            agg.total(),
            breakdown.join(", "),
            routers.join(", "),
            banks.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out
}

/// One row of the §III hybrid-vs-SM comparison (experiments E5/E6).
#[derive(Debug, Clone)]
pub struct ModelComparisonRow {
    /// Cores used.
    pub pes: usize,
    /// Cache size (bytes).
    pub cache_bytes: usize,
    /// Cycles/iter, hybrid full message passing.
    pub hybrid_full: Cycle,
    /// Cycles/iter, hybrid sync-only.
    pub sync_only: Cycle,
    /// Cycles/iter, pure shared memory.
    pub pure_sm: Cycle,
}

impl ModelComparisonRow {
    /// Paper metric: pure-SM time over hybrid-full time (≈2×–5×).
    pub fn hybrid_gain(&self) -> f64 {
        self.pure_sm as f64 / self.hybrid_full as f64
    }

    /// Paper metric: pure-SM time over sync-only time (2–20 % below the
    /// full-hybrid gain near the knee).
    pub fn sync_only_gain(&self) -> f64 {
        self.pure_sm as f64 / self.sync_only as f64
    }
}

/// Run the three programming models on identical configurations.
pub fn model_comparison(
    n: usize,
    cache_bytes: usize,
    pe_counts: &[usize],
) -> Vec<ModelComparisonRow> {
    let mut rows = Vec::new();
    for &pes in pe_counts {
        if pes > max_ranks(n) {
            continue;
        }
        let measure = |variant| {
            let point = SweepPoint::new(pes, cache_bytes, CachePolicy::WriteBack);
            let cfg = point.apply(base_builder());
            let workload = JacobiWorkload { jcfg: JacobiConfig::new(n, variant) };
            let prepared = workload.prepare(&cfg);
            let measured = prepared.measured.clone();
            medea_core::system::System::run(&cfg, &prepared.preload, prepared.kernels)
                .expect("comparison run");
            measured.load(std::sync::atomic::Ordering::SeqCst)
        };
        rows.push(ModelComparisonRow {
            pes,
            cache_bytes,
            hybrid_full: measure(JacobiVariant::HybridFullMp),
            sync_only: measure(JacobiVariant::HybridSyncOnly),
            pure_sm: measure(JacobiVariant::PureSharedMemory),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig6_points_fit_grids() {
        for p in fig6_points(Effort::Quick) {
            assert!(p.pes <= 14);
        }
        assert_eq!(fig6_points(Effort::Full).len(), 168);
    }

    #[test]
    fn fig8_is_wb_only() {
        assert!(fig8_points(Effort::Full)
            .iter()
            .all(|p| p.policy == CachePolicy::WriteBack && p.cache_bytes <= 32 * 1024));
    }

    #[test]
    fn series_grouping() {
        let outcomes = jacobi_sweep(
            10,
            JacobiVariant::HybridFullMp,
            &[
                SweepPoint::new(2, 4096, CachePolicy::WriteBack),
                SweepPoint::new(4, 4096, CachePolicy::WriteBack),
            ],
            2,
        );
        let series = exec_time_series(&outcomes);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].label, "4kB $ WB");
        assert_eq!(series[0].points.len(), 2);
        // More cores, fewer cycles on this compute-bound size.
        assert!(series[0].points[1].1 < series[0].points[0].1);
    }

    #[test]
    fn utilization_rows_json_schema() {
        use medea_core::{CycleBreakdown, SampleWindow};
        let mut b = CycleBreakdown::default();
        b.record(PeActivity::Compute, 60);
        b.record(PeActivity::RecvWait, 40);
        let mut link_busy = vec![0u32; 16];
        link_busy[4 * 2 + 1] = 7; // node 2, dir 1
        let report = MetricsReport {
            interval: 10,
            end: 10,
            width: 2,
            height: 2,
            pes: 1,
            banks: 1,
            breakdown: vec![b],
            windows: vec![SampleWindow {
                start: 0,
                end: 10,
                link_busy,
                pe_activity: vec![0],
                pe_arb: vec![0],
                pe_rx: vec![0],
                bank_req: vec![2],
                bank_data: vec![0],
                bank_out: vec![0],
                bank_lock_nacks: vec![0],
                bank_coh_msgs: vec![0],
            }],
            windows_dropped: 0,
        };
        let row =
            UtilizationRow { topology: "2x2".into(), label: "1P_16k$_WB".into(), pes: 1, report };
        let json = utilization_rows_json(&[row]);
        assert!(json.ends_with("}\n") && !json.contains("},\n"), "single row, no comma: {json}");
        assert!(json.contains("\"dominant\": \"compute\""), "{json}");
        assert!(json.contains("\"compute\": 0.600000"), "{json}");
        assert!(
            json.contains("\"peak_link\": {\"node\": 2, \"dir\": 1, \"busy\": 0.7000}"),
            "{json}"
        );
        assert!(json.contains("\"hottest_routers\": [[2, 7]]"), "{json}");
        assert!(json.contains("\"hottest_banks\": [[0, 2]]"), "{json}");
    }

    #[test]
    fn speedup_vs_area_pipeline() {
        let outcomes = jacobi_sweep(
            10,
            JacobiVariant::HybridFullMp,
            &[
                SweepPoint::new(2, 4096, CachePolicy::WriteBack),
                SweepPoint::new(4, 4096, CachePolicy::WriteBack),
                SweepPoint::new(8, 4096, CachePolicy::WriteBack),
            ],
            3,
        );
        let sva = speedup_vs_area(&outcomes);
        assert_eq!(sva.all.len(), 3);
        assert!(!sva.frontier.is_empty());
        assert!(!sva.optimal.is_empty());
        // Slowest point has speedup 1.0 by construction.
        let min = sva.all.iter().map(|p| p.speedup).fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-9, "min speedup {min}");
    }
}
