//! Shared machinery for regenerating every table and figure of the MEDEA
//! paper (experiment index in DESIGN.md §4).
//!
//! The heavy lifting — sweeps, speedup/area pipelines, MP-vs-SM
//! comparisons — lives here so both the `figures` binary and the Criterion
//! benches drive identical code.

use medea_apps::grid::max_ranks;
use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_core::area::{apply_kill_rule, chip_area_mm2, pareto_frontier, DesignPoint};
use medea_core::explore::{run_sweep, SweepOutcome, SweepPoint, Workload};
use medea_core::{CachePolicy, SystemConfig, SystemConfigBuilder};
use medea_sim::Cycle;

/// How hard to push a regeneration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced grids and point sets — seconds, for CI and Criterion.
    Quick,
    /// The paper's full grids and point sets.
    Full,
}

/// Host threads used by sweeps.
pub fn sweep_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Base system configuration shared by all experiments.
pub fn base_builder() -> SystemConfigBuilder {
    SystemConfig::builder().cycle_limit(400_000_000)
}

/// The execution-time sweep behind Figs. 6 and 8: one Jacobi variant on a
/// grid of `(pes, cache, policy)` points.
pub fn jacobi_sweep(
    n: usize,
    variant: JacobiVariant,
    points: &[SweepPoint],
    threads: usize,
) -> Vec<SweepOutcome> {
    let points: Vec<SweepPoint> = points
        .iter()
        .copied()
        .filter(|p| p.pes <= max_ranks(n).min(p.topology.max_compute_pes()))
        .collect();
    let workload = JacobiWorkload { jcfg: JacobiConfig::new(n, variant) };
    run_sweep(&workload, &points, &base_builder(), threads)
}

/// Fig. 6 point set: cores 2..=15 × cache sizes × both policies.
pub fn fig6_points(effort: Effort) -> Vec<SweepPoint> {
    let (sizes, pes): (Vec<usize>, Vec<usize>) = match effort {
        Effort::Full => ((1..=6).map(|k| (1 << k) * 1024).collect(), (2..=15).collect()),
        Effort::Quick => (vec![2 * 1024, 8 * 1024, 32 * 1024], vec![2, 4, 8, 12]),
    };
    let mut points = Vec::new();
    for policy in [CachePolicy::WriteBack, CachePolicy::WriteThrough] {
        for &cache_bytes in &sizes {
            for &pes in &pes {
                points.push(SweepPoint::new(pes, cache_bytes, policy));
            }
        }
    }
    points
}

/// Fig. 8 point set: write-back only, cache 2..=32 kB.
pub fn fig8_points(effort: Effort) -> Vec<SweepPoint> {
    fig6_points(effort)
        .into_iter()
        .filter(|p| p.policy == CachePolicy::WriteBack && p.cache_bytes <= 32 * 1024)
        .collect()
}

/// Grid side per figure at the given effort.
pub fn grid_side(paper_n: usize, effort: Effort) -> usize {
    match effort {
        Effort::Full => paper_n,
        // Quick mode shrinks 60 -> 24 and 30 -> 16; knees move but stay
        // visible.
        Effort::Quick => match paper_n {
            60 => 24,
            30 => 16,
            other => other,
        },
    }
}

/// A series of (cores, cycles-per-iteration) for one cache size + policy.
#[derive(Debug, Clone)]
pub struct ExecTimeSeries {
    /// Legend label, e.g. `16kB $ WB`.
    pub label: String,
    /// `(cores, cycles/iter)` points.
    pub points: Vec<(usize, Cycle)>,
}

/// Group sweep outcomes into the paper's per-cache-size curves.
pub fn exec_time_series(outcomes: &[SweepOutcome]) -> Vec<ExecTimeSeries> {
    let mut series: Vec<ExecTimeSeries> = Vec::new();
    for o in outcomes {
        let Some(measured) = o.measured() else { continue };
        let label = format!("{}kB $ {}", o.point.cache_bytes / 1024, o.point.policy);
        match series.iter_mut().find(|s| s.label == label) {
            Some(s) => s.points.push((o.point.pes, measured)),
            None => series.push(ExecTimeSeries { label, points: vec![(o.point.pes, measured)] }),
        }
    }
    for s in &mut series {
        s.points.sort_by_key(|(pes, _)| *pes);
    }
    series
}

/// The Fig. 7/9 pipeline: speedup (vs. the slowest point of the sweep) and
/// area for every point, Pareto-pruned, kill-rule applied.
pub struct SpeedupVsArea {
    /// Every evaluated point.
    pub all: Vec<DesignPoint>,
    /// The Pareto frontier.
    pub frontier: Vec<DesignPoint>,
    /// Frontier after the kill rule.
    pub optimal: Vec<DesignPoint>,
}

/// Build the speedup-vs-area artifact from a sweep.
pub fn speedup_vs_area(outcomes: &[SweepOutcome]) -> SpeedupVsArea {
    let reference =
        outcomes.iter().filter_map(SweepOutcome::measured).max().unwrap_or(1).max(1) as f64;
    let all: Vec<DesignPoint> = outcomes
        .iter()
        .filter_map(|o| {
            let measured = o.measured().filter(|&m| m > 0)?;
            let cfg = o.point.apply(base_builder());
            Some(DesignPoint {
                label: o.label.clone(),
                area_mm2: chip_area_mm2(&cfg),
                speedup: reference / measured as f64,
            })
        })
        .collect();
    let frontier = pareto_frontier(all.clone());
    let optimal = apply_kill_rule(&frontier, 1.0);
    SpeedupVsArea { all, frontier, optimal }
}

/// One row of the §III hybrid-vs-SM comparison (experiments E5/E6).
#[derive(Debug, Clone)]
pub struct ModelComparisonRow {
    /// Cores used.
    pub pes: usize,
    /// Cache size (bytes).
    pub cache_bytes: usize,
    /// Cycles/iter, hybrid full message passing.
    pub hybrid_full: Cycle,
    /// Cycles/iter, hybrid sync-only.
    pub sync_only: Cycle,
    /// Cycles/iter, pure shared memory.
    pub pure_sm: Cycle,
}

impl ModelComparisonRow {
    /// Paper metric: pure-SM time over hybrid-full time (≈2×–5×).
    pub fn hybrid_gain(&self) -> f64 {
        self.pure_sm as f64 / self.hybrid_full as f64
    }

    /// Paper metric: pure-SM time over sync-only time (2–20 % below the
    /// full-hybrid gain near the knee).
    pub fn sync_only_gain(&self) -> f64 {
        self.pure_sm as f64 / self.sync_only as f64
    }
}

/// Run the three programming models on identical configurations.
pub fn model_comparison(
    n: usize,
    cache_bytes: usize,
    pe_counts: &[usize],
) -> Vec<ModelComparisonRow> {
    let mut rows = Vec::new();
    for &pes in pe_counts {
        if pes > max_ranks(n) {
            continue;
        }
        let measure = |variant| {
            let point = SweepPoint::new(pes, cache_bytes, CachePolicy::WriteBack);
            let cfg = point.apply(base_builder());
            let workload = JacobiWorkload { jcfg: JacobiConfig::new(n, variant) };
            let prepared = workload.prepare(&cfg);
            let measured = prepared.measured.clone();
            medea_core::system::System::run(&cfg, &prepared.preload, prepared.kernels)
                .expect("comparison run");
            measured.load(std::sync::atomic::Ordering::SeqCst)
        };
        rows.push(ModelComparisonRow {
            pes,
            cache_bytes,
            hybrid_full: measure(JacobiVariant::HybridFullMp),
            sync_only: measure(JacobiVariant::HybridSyncOnly),
            pure_sm: measure(JacobiVariant::PureSharedMemory),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig6_points_fit_grids() {
        for p in fig6_points(Effort::Quick) {
            assert!(p.pes <= 14);
        }
        assert_eq!(fig6_points(Effort::Full).len(), 168);
    }

    #[test]
    fn fig8_is_wb_only() {
        assert!(fig8_points(Effort::Full)
            .iter()
            .all(|p| p.policy == CachePolicy::WriteBack && p.cache_bytes <= 32 * 1024));
    }

    #[test]
    fn series_grouping() {
        let outcomes = jacobi_sweep(
            10,
            JacobiVariant::HybridFullMp,
            &[
                SweepPoint::new(2, 4096, CachePolicy::WriteBack),
                SweepPoint::new(4, 4096, CachePolicy::WriteBack),
            ],
            2,
        );
        let series = exec_time_series(&outcomes);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].label, "4kB $ WB");
        assert_eq!(series[0].points.len(), 2);
        // More cores, fewer cycles on this compute-bound size.
        assert!(series[0].points[1].1 < series[0].points[0].1);
    }

    #[test]
    fn speedup_vs_area_pipeline() {
        let outcomes = jacobi_sweep(
            10,
            JacobiVariant::HybridFullMp,
            &[
                SweepPoint::new(2, 4096, CachePolicy::WriteBack),
                SweepPoint::new(4, 4096, CachePolicy::WriteBack),
                SweepPoint::new(8, 4096, CachePolicy::WriteBack),
            ],
            3,
        );
        let sva = speedup_vs_area(&outcomes);
        assert_eq!(sva.all.len(), 3);
        assert!(!sva.frontier.is_empty());
        assert!(!sva.optimal.is_empty());
        // Slowest point has speedup 1.0 by construction.
        let min = sva.all.iter().map(|p| p.speedup).fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-9, "min speedup {min}");
    }
}
