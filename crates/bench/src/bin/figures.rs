//! Regenerate every table and figure of the MEDEA paper.
//!
//! ```text
//! figures <experiment> [--quick] [--size N] [--threads T]
//!
//! experiments:
//!   fig6            execution time vs cores/cache/policy, 60x60 (E1)
//!   fig7            optimal speedup vs chip area, 60x60 (E2)
//!   fig8            execution time vs cores/cache, WB, 30x30 (E3)
//!   fig9            optimal speedup vs chip area, 30x30 (E4)
//!   small           the 16x16 communication-dominated case (E7)
//!   hybrid-vs-sm    hybrid full-MP vs pure shared memory (E5)
//!   sync-only       sync-only MP vs full MP vs pure SM (E6)
//!   dse             full 168-point sweep + simulation-speed report (E8)
//!   pingpong        MP vs SM synchronization latency microbenchmark
//!   ablation-arbiter  arbiter Mux / SingleFifo / DualPriority (A1)
//!   ablation-noc      deflection torus vs ideal fabric (A2)
//!   traffic           NoC latency/throughput curves (A3)
//!   all             everything above
//! ```

use medea_apps::jacobi::{JacobiConfig, JacobiVariant};
use medea_apps::pingpong::{self, PingPongTransport};
use medea_bench::{
    base_builder, exec_time_series, fig6_points, fig8_points, grid_side, jacobi_sweep,
    model_comparison, speedup_vs_area, sweep_threads, Effort,
};

use medea_core::report::{format_labeled_series, format_table};
use medea_core::{ArbiterConfig, FabricKind, PriorityAssignment, SystemConfig};
use medea_noc::coord::Topology;
use medea_noc::network::Network;
use medea_noc::traffic::{run_open_loop, Pattern, TrafficConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut effort = Effort::Full;
    let mut size_override = None;
    let mut threads = sweep_threads();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => effort = Effort::Quick,
            "--size" => {
                size_override = iter.next().and_then(|s| s.parse::<usize>().ok());
            }
            "--threads" => {
                if let Some(t) = iter.next().and_then(|s| s.parse::<usize>().ok()) {
                    threads = t.max(1);
                }
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other}");
                std::process::exit(2);
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!("usage: figures <experiment> [--quick] [--size N] [--threads T]");
        std::process::exit(2);
    });

    match experiment.as_str() {
        "fig6" => fig_exec_time(6, size_override.unwrap_or(60), effort, threads),
        "fig8" => fig_exec_time(8, size_override.unwrap_or(30), effort, threads),
        "fig7" => fig_speedup_area(7, size_override.unwrap_or(60), effort, threads),
        "fig9" => fig_speedup_area(9, size_override.unwrap_or(30), effort, threads),
        "small" => fig_exec_time(6, size_override.unwrap_or(16), effort, threads),
        "hybrid-vs-sm" => comparison(size_override, effort, false),
        "sync-only" => comparison(size_override, effort, true),
        "dse" => dse(effort, threads),
        "pingpong" => pingpong_report(),
        "ablation-arbiter" => ablation_arbiter(effort),
        "ablation-noc" => ablation_noc(effort),
        "ablation-mpmmu" => ablation_mpmmu(effort),
        "traffic" => traffic_report(),
        "all" => {
            fig_exec_time(6, 60, effort, threads);
            fig_speedup_area(7, 60, effort, threads);
            fig_exec_time(8, 30, effort, threads);
            fig_speedup_area(9, 30, effort, threads);
            fig_exec_time(6, 16, effort, threads);
            // One combined run covers both E5 (hybrid vs pure SM) and E6
            // (sync-only share) — the E6 table subsumes E5's columns.
            comparison(None, effort, true);
            pingpong_report();
            ablation_arbiter(effort);
            ablation_noc(effort);
            ablation_mpmmu(effort);
            traffic_report();
            dse(effort, threads);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
}

/// Figs. 6/8 (and the 16x16 case): execution time per iteration.
fn fig_exec_time(figure: usize, paper_n: usize, effort: Effort, threads: usize) {
    let n = grid_side(paper_n, effort);
    let points = if figure == 8 { fig8_points(effort) } else { fig6_points(effort) };
    println!("== Fig. {figure}: Jacobi {n}x{n}, execution time per iteration (cycles) ==");
    let t = Instant::now();
    let outcomes = jacobi_sweep(n, JacobiVariant::HybridFullMp, &points, threads);
    let series = exec_time_series(&outcomes);
    let cores: Vec<usize> = {
        let mut c: Vec<usize> =
            outcomes.iter().filter(|o| o.measured().is_some()).map(|o| o.point.pes).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    let mut headers: Vec<String> = vec!["cores".into()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = cores
        .iter()
        .map(|&pes| {
            let mut row = vec![pes.to_string()];
            for s in &series {
                let cell = s
                    .points
                    .iter()
                    .find(|(p, _)| *p == pes)
                    .map(|(_, cyc)| cyc.to_string())
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            row
        })
        .collect();
    println!("{}", format_table(&header_refs, &rows));
    println!("({} points in {:.1}s)\n", outcomes.len(), t.elapsed().as_secs_f64());
}

/// Figs. 7/9: optimal speedup vs chip area with kill-rule labels.
fn fig_speedup_area(figure: usize, paper_n: usize, effort: Effort, threads: usize) {
    let n = grid_side(paper_n, effort);
    println!("== Fig. {figure}: Jacobi {n}x{n}, optimal speedup vs chip area ==");
    let points = fig6_points(effort);
    let outcomes = jacobi_sweep(n, JacobiVariant::HybridFullMp, &points, threads);
    let sva = speedup_vs_area(&outcomes);
    let fmt = |points: &[medea_core::area::DesignPoint]| {
        points.iter().map(|p| (p.label.clone(), p.area_mm2, p.speedup)).collect::<Vec<_>>()
    };
    println!(
        "{}",
        format_labeled_series("Pareto frontier (area mm^2, speedup)", &fmt(&sva.frontier))
    );
    println!(
        "{}",
        format_labeled_series("After kill rule (the paper's 'optimal' curve)", &fmt(&sva.optimal))
    );
}

/// E5/E6: the three programming models side by side.
fn comparison(size_override: Option<usize>, effort: Effort, include_sync_only: bool) {
    let n = size_override.unwrap_or(grid_side(60, effort));
    let cache = 16 * 1024;
    let pes: Vec<usize> = match effort {
        Effort::Full => vec![2, 4, 6, 8, 10],
        Effort::Quick => vec![2, 4, 8],
    };
    println!(
        "== {}: Jacobi {n}x{n}, 16 kB WB ==",
        if include_sync_only {
            "E6: sync-only MP vs full MP vs pure SM"
        } else {
            "E5: hybrid vs pure shared memory"
        }
    );
    let rows = model_comparison(n, cache, &pes);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                r.pes.to_string(),
                r.hybrid_full.to_string(),
                r.pure_sm.to_string(),
                format!("{:.2}x", r.hybrid_gain()),
            ];
            if include_sync_only {
                row.insert(2, r.sync_only.to_string());
                row.push(format!("{:.2}x", r.sync_only_gain()));
                let share = r.sync_only_gain() / r.hybrid_gain() * 100.0;
                row.push(format!("{share:.0}%"));
            }
            row
        })
        .collect();
    let headers: Vec<&str> = if include_sync_only {
        vec![
            "cores",
            "full-MP",
            "sync-only",
            "pure-SM",
            "full gain",
            "sync-only gain",
            "sync share",
        ]
    } else {
        vec!["cores", "hybrid", "pure-SM", "gain"]
    };
    println!("{}", format_table(&headers, &table));
}

/// E8: the full sweep with wall-clock and simulation-rate reporting.
fn dse(effort: Effort, threads: usize) {
    let n = grid_side(60, effort);
    let points = fig6_points(effort);
    println!(
        "== E8: design-space exploration, {} points, Jacobi {n}x{n}, {threads} threads ==",
        points.len()
    );
    let t = Instant::now();
    let outcomes = jacobi_sweep(n, JacobiVariant::HybridFullMp, &points, threads);
    let wall = t.elapsed();
    let mut sim_cycles = 0u64;
    let mut ok = 0usize;
    for o in &outcomes {
        if let Ok(r) = &o.result {
            sim_cycles += r.cycles;
            ok += 1;
        }
    }
    println!("points completed: {ok}/{}", outcomes.len());
    println!("total simulated cycles: {sim_cycles}");
    println!("wall-clock: {:.1}s", wall.as_secs_f64());
    println!(
        "aggregate simulation rate: {:.2} Mcycles/s",
        sim_cycles as f64 / wall.as_secs_f64() / 1e6
    );
    println!("(paper: 168 configurations in ~1 day on five 2004-era Xeon servers)\n");
}

/// MP vs SM synchronization latency.
fn pingpong_report() {
    println!("== Ping-pong: one-word synchronization round trip ==");
    let sys = base_builder().compute_pes(2).build().expect("config");
    let mp = pingpong::run(&sys, PingPongTransport::MessagePassing, 200).expect("mp run");
    let sm = pingpong::run(&sys, PingPongTransport::SharedMemory, 200).expect("sm run");
    println!(
        "{}",
        format_table(
            &["transport", "cycles/round trip"],
            &[
                vec!["message passing".into(), format!("{:.1}", mp.cycles_per_round)],
                vec!["shared memory".into(), format!("{:.1}", sm.cycles_per_round)],
                vec![
                    "MP advantage".into(),
                    format!("{:.2}x", sm.cycles_per_round / mp.cycles_per_round)
                ],
            ],
        )
    );
}

/// A1: arbiter build options under the hybrid Jacobi.
fn ablation_arbiter(effort: Effort) {
    let n = grid_side(30, effort);
    println!("== A1: arbiter ablation, Jacobi {n}x{n}, 8 PEs, 16 kB WB ==");
    let configs: Vec<(&str, ArbiterConfig)> = vec![
        ("mux", ArbiterConfig::Mux),
        ("single fifo(8)", ArbiterConfig::SingleFifo { depth: 8 }),
        (
            "dual prio (msg high)",
            ArbiterConfig::DualPriority { depth: 8, priority: PriorityAssignment::MessageHigh },
        ),
        (
            "dual prio (bridge high)",
            ArbiterConfig::DualPriority { depth: 8, priority: PriorityAssignment::BridgeHigh },
        ),
    ];
    let mut rows = Vec::new();
    for (label, arbiter) in configs {
        let cfg = base_builder()
            .compute_pes(8.min(medea_apps::grid::max_ranks(n)))
            .cache_bytes(16 * 1024)
            .arbiter(arbiter)
            .build()
            .expect("config");
        let cycles = run_jacobi_once(&cfg, n, JacobiVariant::HybridFullMp);
        rows.push(vec![label.to_string(), cycles.to_string()]);
    }
    println!("{}", format_table(&["arbiter", "cycles/iter"], &rows));
}

/// A2: deflection torus vs contention-free ideal fabric.
fn ablation_noc(effort: Effort) {
    let n = grid_side(30, effort);
    println!("== A2: fabric ablation, Jacobi {n}x{n}, 8 PEs, 4 kB WB (traffic-heavy) ==");
    let mut rows = Vec::new();
    for (label, fabric) in
        [("deflection torus", FabricKind::Deflection), ("ideal (no contention)", FabricKind::Ideal)]
    {
        let cfg = base_builder()
            .compute_pes(8.min(medea_apps::grid::max_ranks(n)))
            .cache_bytes(4 * 1024)
            .fabric(fabric)
            .build()
            .expect("config");
        let cycles = run_jacobi_once(&cfg, n, JacobiVariant::HybridFullMp);
        rows.push(vec![label.to_string(), cycles.to_string()]);
    }
    println!("{}", format_table(&["fabric", "cycles/iter"], &rows));
}

/// A4: MPMMU local-cache size — the paper's "MPMMU optimization"
/// future-work item. A memory-bound configuration (small L1s) shows how
/// much the memory node's own cache shields DDR latency.
fn ablation_mpmmu(effort: Effort) {
    let n = grid_side(30, effort);
    println!("== A4: MPMMU cache ablation, Jacobi {n}x{n}, 8 PEs, 2 kB L1 WB ==");
    let mut rows = Vec::new();
    for kb in [2usize, 8, 16, 64] {
        let cfg = base_builder()
            .compute_pes(8.min(medea_apps::grid::max_ranks(n)))
            .cache_bytes(2 * 1024)
            .mpmmu_cache_bytes(kb * 1024)
            .build()
            .expect("config");
        let cycles = run_jacobi_once(&cfg, n, JacobiVariant::HybridFullMp);
        rows.push(vec![format!("{kb} kB"), cycles.to_string()]);
    }
    println!("{}", format_table(&["MPMMU cache", "cycles/iter"], &rows));
}

/// A3: standalone NoC characterization.
fn traffic_report() {
    println!("== A3: NoC latency vs offered load (4x4 deflection torus) ==");
    let topo = Topology::paper_4x4();
    let mut rows = Vec::new();
    for pattern in [Pattern::UniformRandom, Pattern::Transpose] {
        for load in [0.05, 0.2, 0.4, 0.6, 0.8] {
            let mut net = Network::new(topo);
            let cfg = TrafficConfig { pattern, offered_load: load, ..TrafficConfig::default() };
            let rep = run_open_loop(&mut net, topo, &cfg);
            rows.push(vec![
                pattern.to_string(),
                format!("{load:.2}"),
                format!("{:.3}", rep.accepted_throughput),
                format!("{:.1}", rep.mean_latency),
                rep.max_latency.to_string(),
                format!("{:.2}", rep.deflections_per_flit),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["pattern", "offered", "accepted", "mean lat", "max lat", "defl/flit"],
            &rows
        )
    );
}

fn run_jacobi_once(cfg: &SystemConfig, n: usize, variant: JacobiVariant) -> u64 {
    use medea_core::explore::Workload as _;
    let workload = medea_apps::jacobi::JacobiWorkload { jcfg: JacobiConfig::new(n, variant) };
    let prepared = workload.prepare(cfg);
    let measured = prepared.measured.clone();
    medea_core::system::System::run(cfg, &prepared.preload, prepared.kernels).expect("run");
    measured.load(std::sync::atomic::Ordering::SeqCst)
}
