//! Topology-scaling harness: runs the paper's Jacobi workload on 4×4,
//! 8×8 and 16×16 tori (up to 255 compute PEs) through the topology-aware
//! parallel sweep engine (`medea_core::explore::run_sweep`) and writes
//! `BENCH_scaling.json` with, per point, the simulation throughput
//! (simulated cycles per wall-clock second) and the Jacobi speedup
//! relative to the fewest-PE point of the same torus.
//!
//! All points of all tiers go through **one** sweep call, so the
//! self-scheduling worker pool keeps every host core busy across the ladder
//! rather than per tier. In full mode the most-populated 16×16 point
//! (255 PEs) is additionally re-run with numerical validation against
//! the sequential reference — the largest configuration is checked
//! bit-for-bit, not just timed.
//!
//! The harness also runs the **collectives microbench**: barrier and
//! allreduce cycles per operation at the most-populated point of every
//! tier, for each `CollectiveAlgo` (linear / binomial-tree /
//! recursive-doubling). This records the O(ranks) → O(log ranks) win of
//! the tree algorithms — on the full 255-rank 16×16 point the tree
//! barrier must complete in at least 4× fewer simulated cycles than the
//! linear one (asserted).
//!
//! And the **memory-banks microbench**: the shared-memory hotspot
//! workload (`medea_apps::hotspot`) on fully populated 8×8 and 16×16
//! tori with 1, 2 and 4 address-interleaved MPMMU banks (each bank
//! occupies a node, so the populations are 255/254/252 on 16×16). This
//! records the serialization relief of distributing the MPMMU — on the
//! full 16×16 point, 4 banks must beat the single-bank 255-PE baseline
//! by ≥ 2× (asserted; ≥ 1× at CI smoke scale).
//!
//! And the **coherence microbench**: the fine-grained-sharing workload
//! (`medea_apps::sharing`) on every tier under both coherence modes —
//! the paper's software DII and the beyond-the-paper directory MESI
//! (`SystemConfigBuilder::coherence`). Rows report simulated cycles and
//! the directory's protocol counters; the mode contracts are asserted
//! (DII protocol-silent, MESI demand-driven invalidations/fetches), and
//! every run validates its shared counters in-kernel.
//!
//! And the **utilization profile**: the most-populated Jacobi point of
//! every tier re-run with the `medea-metrics` profiler enabled
//! (`SystemConfigBuilder::metrics`) at a tier-scaled sampling window.
//! Rows report the aggregate per-PE cycle attribution (compute /
//! recv-wait / mem / … fractions, summing to 1.0 by construction), the
//! peak single-link utilization of any sample window and the
//! hottest-router/bank tables. Metered runs are kept out of the timing
//! ladder so sampling cost never pollutes the cycles/sec columns.
//!
//! And the **resilience sweep**: seeded fault injection (Message-flit
//! corruption, a mid-run dead torus link, MPMMU response drops/delays)
//! against the standard recovery configuration. Every scenario must
//! complete — Jacobi scenarios validated bit-exactly against the
//! sequential reference — with nonzero recovery counters (deflection
//! reroutes, eMPI retransmissions, bridge retries), asserted.
//!
//! And the **parallel-engine microbench**: the most-populated Jacobi
//! point of the 8×8 and 16×16 tiers (63 and 255 PEs in full mode), each
//! re-run single-run at 1/2/4/8 host threads through the tiled cycle
//! engine. Every multi-thread run must reproduce the single-thread
//! `RunResult` bit-for-bit (asserted, always), and on hosts with enough
//! cores the 255-PE point must reach ≥ 3× cycles/sec at 8 threads
//! (≥ 1.5× at 4 threads at CI smoke scale).
//!
//! ```text
//! cargo run --release -p medea-bench --bin scaling_json -- \
//!     [--smoke] [--engine-threads N] [OUT_PATH]
//! ```
//!
//! `--engine-threads N` runs every sweep point's cycle engine tiled over
//! N host threads (`SystemConfigBuilder::host_threads`); the sweep's own
//! worker count is then capped so sweep threads × engine threads never
//! oversubscribes the host.
//!
//! `--smoke` shrinks grids and PE counts to CI scale while still covering
//! all three topologies. Exception: the memory-banks sweep keeps its
//! fully populated tori even in smoke mode — the MPMMU serialization it
//! measures only exists under full population — and shrinks the per-rank
//! op count instead (the hotspot windows are tens of thousands of
//! simulated cycles, a few wall seconds total).

use medea_apps::hotspot::{self, HotspotConfig};
use medea_apps::jacobi::{self, JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_apps::sharing::{self, SharingConfig};
use medea_bench::{sweep_threads, utilization_rows_json, UtilizationRow};
use medea_core::api::PeApi;
use medea_core::explore::{run_sweep, PreparedWorkload, SweepOutcome, SweepPoint, Workload};
use medea_core::report::format_breakdown_table;
use medea_core::system::{Kernel, RunResult, System};
use medea_core::{
    CachePolicy, Coherence, CollectiveAlgo, CycleBreakdown, DeadLink, Empi, FaultConfig,
    MetricsConfig, NullSink, PeActivity, ResilienceConfig, ScheduledInjector, SystemConfig,
    SystemConfigBuilder, Topology,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One torus of the scaling ladder: its grid side and the PE counts run
/// on it (fewest first; the speedup baseline).
struct Tier {
    side: u8,
    grid_n: usize,
    pe_counts: &'static [usize],
}

/// Full ladder: fully populated tori, up to the 255-PE maximum. The grid
/// is sized so the largest PE count gets one interior row per rank.
const FULL: &[Tier] = &[
    Tier { side: 4, grid_n: 62, pe_counts: &[2, 8, 15] },
    Tier { side: 8, grid_n: 65, pe_counts: &[4, 16, 63] },
    Tier { side: 16, grid_n: 257, pe_counts: &[32, 128, 255] },
];

/// CI-scale ladder: same three topologies, small grids and populations.
const SMOKE: &[Tier] = &[
    Tier { side: 4, grid_n: 18, pe_counts: &[2, 8] },
    Tier { side: 8, grid_n: 26, pe_counts: &[4, 24] },
    Tier { side: 16, grid_n: 42, pe_counts: &[8, 40] },
];

const CACHE_BYTES: usize = 16 * 1024;

/// Jacobi with the grid side chosen per point from the point's topology,
/// so one sweep can interleave all tiers on the worker pool.
struct TieredJacobi {
    /// `(torus, grid side)` pairs, keyed by the full topology so square
    /// and rectangular tori of equal width can never be confused.
    grid_by_topology: Vec<(Topology, usize)>,
}

impl TieredJacobi {
    fn grid_n(&self, topology: Topology) -> usize {
        self.grid_by_topology
            .iter()
            .find(|(t, _)| *t == topology)
            .map(|(_, n)| *n)
            .expect("every sweep point's topology has a grid size")
    }
}

impl Workload for TieredJacobi {
    fn name(&self) -> &str {
        "jacobi-scaling"
    }

    fn prepare(&self, cfg: &SystemConfig) -> PreparedWorkload {
        JacobiWorkload { jcfg: jacobi_config(self.grid_n(cfg.topology())) }.prepare(cfg)
    }
}

fn jacobi_config(grid_n: usize) -> JacobiConfig {
    JacobiConfig::new(grid_n, JacobiVariant::HybridFullMp)
        .with_warmup_iters(1)
        .with_measured_iters(1)
}

/// Sweep-invariant configuration. The shared segment must hold the
/// published halo slots of the most populated point (~2 MB at 255 ranks
/// on a 257-grid); 4 MB covers every tier with room to spare.
fn base_builder() -> SystemConfigBuilder {
    SystemConfig::builder().cycle_limit(400_000_000).shared_bytes(4 * 1024 * 1024)
}

struct Row {
    label: String,
    pes: usize,
    /// Host threads the point's own cycle engine ran on (1 = sequential
    /// engine; the sweep's worker-pool parallelism is reported globally).
    host_threads: usize,
    sim_cycles: u64,
    cycles_per_iter: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    speedup: f64,
    /// Flit-latency percentiles (bucket-granular upper estimates) and the
    /// deflection pressure of the same run — the `noc` section's data.
    lat_p50: Option<u64>,
    lat_p99: Option<u64>,
    lat_max: Option<u64>,
    defl_per_flit: Option<f64>,
}

struct TierReport {
    topology: String,
    grid_n: usize,
    rows: Vec<Row>,
}

fn run_ladder(tiers: &[Tier], threads: usize, engine_threads: usize) -> Vec<TierReport> {
    let topo_of = |t: &Tier| Topology::new(t.side, t.side).expect("valid square torus");
    let workload =
        TieredJacobi { grid_by_topology: tiers.iter().map(|t| (topo_of(t), t.grid_n)).collect() };
    // One flat point list: the self-scheduling worker pool overlaps cheap
    // 4x4 points with the long 255-PE grind instead of idling between
    // tiers.
    let mut points = Vec::new();
    for tier in tiers {
        let topology = topo_of(tier);
        for &pes in tier.pe_counts {
            points.push(SweepPoint::on(topology, pes, CACHE_BYTES, CachePolicy::WriteBack));
        }
    }
    let outcomes =
        run_sweep(&workload, &points, &base_builder().host_threads(engine_threads), threads);

    let mut reports = Vec::new();
    let mut cursor = outcomes.iter();
    for tier in tiers {
        let tier_outcomes: Vec<&SweepOutcome> =
            cursor.by_ref().take(tier.pe_counts.len()).collect();
        let baseline = tier_outcomes
            .first()
            .and_then(|o| o.measured())
            .expect("fewest-PE point must succeed")
            .max(1) as f64;
        let rows = tier_outcomes
            .iter()
            .map(|o| {
                let result = o.result.as_ref().expect("scaling run failed");
                Row {
                    label: o.label.clone(),
                    pes: o.point.pes,
                    host_threads: engine_threads,
                    sim_cycles: result.cycles,
                    cycles_per_iter: o.measured_cycles,
                    wall_s: result.wall.as_secs_f64(),
                    cycles_per_sec: result.sim_rate(),
                    speedup: baseline / o.measured_cycles.max(1) as f64,
                    lat_p50: result.flit_latency_p50(),
                    lat_p99: result.flit_latency_p99(),
                    lat_max: result.fabric_max_latency,
                    defl_per_flit: result.deflections_per_delivered(),
                }
            })
            .collect();
        reports.push(TierReport {
            topology: format!("{}x{}", tier.side, tier.side),
            grid_n: tier.grid_n,
            rows,
        });
    }
    reports
}

// ---- parallel engine microbench ----

/// One thread count of one parallel-engine point.
struct ParallelRow {
    threads: usize,
    wall_s: f64,
    cycles_per_sec: f64,
    speedup_vs_1t: f64,
}

/// One benchmarked point: a fully populated Jacobi run re-executed at
/// every thread count of the ladder.
struct ParallelReport {
    topology: String,
    grid_n: usize,
    pes: usize,
    sim_cycles: u64,
    rows: Vec<ParallelRow>,
}

/// Everything a tiled run must reproduce of the single-thread baseline:
/// cycle count, every aggregate fabric counter, the full flit-latency
/// histogram, every per-PE counter group and every per-bank counter.
fn assert_run_identical(label: &str, tiled: &RunResult, seq: &RunResult) {
    assert_eq!(tiled.cycles, seq.cycles, "{label}: cycles");
    assert_eq!(tiled.fabric_delivered, seq.fabric_delivered, "{label}: delivered");
    assert_eq!(tiled.fabric_deflections, seq.fabric_deflections, "{label}: deflections");
    assert_eq!(tiled.fabric_mean_latency, seq.fabric_mean_latency, "{label}: mean latency");
    assert_eq!(tiled.fabric_max_latency, seq.fabric_max_latency, "{label}: max latency");
    assert_eq!(tiled.fabric_latency, seq.fabric_latency, "{label}: latency histogram");
    assert_eq!(
        tiled.mpmmu.single_reads.get(),
        seq.mpmmu.single_reads.get(),
        "{label}: mpmmu reads"
    );
    assert_eq!(
        tiled.mpmmu.single_writes.get(),
        seq.mpmmu.single_writes.get(),
        "{label}: mpmmu writes"
    );
    assert_eq!(tiled.mpmmu.busy_cycles.get(), seq.mpmmu.busy_cycles.get(), "{label}: mpmmu busy");
    for (i, (a, b)) in tiled.pe.iter().zip(&seq.pe).enumerate() {
        assert_eq!(a.engine.requests.get(), b.engine.requests.get(), "{label}: pe{i} requests");
        assert_eq!(a.engine.mem_cycles.get(), b.engine.mem_cycles.get(), "{label}: pe{i} mem");
        assert_eq!(a.cache.load_hits.get(), b.cache.load_hits.get(), "{label}: pe{i} hits");
        assert_eq!(
            a.bridge.transactions.get(),
            b.bridge.transactions.get(),
            "{label}: pe{i} bridge"
        );
        assert_eq!(a.tie.flits_received.get(), b.tie.flits_received.get(), "{label}: pe{i} tie");
    }
    for (a, b) in tiled.banks.iter().zip(&seq.banks) {
        assert_eq!(a.node, b.node, "{label}: bank node");
        assert_eq!(
            a.mpmmu.busy_cycles.get(),
            b.mpmmu.busy_cycles.get(),
            "{label}: bank {} busy",
            a.node
        );
    }
}

/// Single-run scaling of the tiled cycle engine: the most-populated
/// Jacobi point of every tier past 4×4, re-run at each thread count.
/// The 1-thread run is the baseline for both the speedup column and the
/// bit-identity assertion.
fn run_parallel_engine(tiers: &[Tier], smoke: bool) -> Vec<ParallelReport> {
    let thread_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut reports = Vec::new();
    for tier in tiers.iter().filter(|t| t.side > 4) {
        let topology = Topology::new(tier.side, tier.side).expect("valid square torus");
        let pes = *tier.pe_counts.last().expect("tier has PE counts");
        let jcfg = jacobi_config(tier.grid_n);
        let mut baseline: Option<(f64, RunResult)> = None;
        let mut rows = Vec::new();
        let mut sim_cycles = 0;
        for &threads in thread_counts {
            let sys = base_builder()
                .topology(topology)
                .compute_pes(pes)
                .cache_bytes(CACHE_BYTES)
                .host_threads(threads)
                .build()
                .expect("parallel engine configuration");
            let t0 = Instant::now();
            let outcome = jacobi::run(&sys, &jcfg).expect("parallel engine run");
            let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
            let cycles_per_sec = outcome.run.cycles as f64 / wall_s;
            sim_cycles = outcome.run.cycles;
            let speedup_vs_1t = match &baseline {
                Some((base_rate, seq)) => {
                    assert_run_identical(
                        &format!("{}x{} {pes}PE @{threads}t", tier.side, tier.side),
                        &outcome.run,
                        seq,
                    );
                    cycles_per_sec / base_rate
                }
                None => {
                    baseline = Some((cycles_per_sec, outcome.run));
                    1.0
                }
            };
            rows.push(ParallelRow { threads, wall_s, cycles_per_sec, speedup_vs_1t });
        }
        reports.push(ParallelReport {
            topology: format!("{}x{}", tier.side, tier.side),
            grid_n: tier.grid_n,
            pes,
            sim_cycles,
            rows,
        });
    }
    reports
}

// ---- collectives microbench ----

/// Operations measured per (topology, algorithm) point.
const COLLECTIVE_ITERS: u64 = 8;

/// One row of the collectives microbench.
struct CollectiveRow {
    topology: String,
    pes: usize,
    op: &'static str,
    algo: CollectiveAlgo,
    cycles_per_op: u64,
    speedup_vs_linear: f64,
}

/// Measure the steady-state cost of one collective: every rank loops
/// `COLLECTIVE_ITERS` operations between two `now()` probes at rank 0
/// (one warm-up barrier first so arrival skew does not pollute the
/// window).
fn collective_cycles(
    topology: Topology,
    pes: usize,
    algo: CollectiveAlgo,
    op: &'static str,
) -> u64 {
    let cfg = base_builder()
        .topology(topology)
        .compute_pes(pes)
        .cache_bytes(CACHE_BYTES)
        .collective_algo(algo)
        .build()
        .expect("collective bench configuration");
    let measured = Arc::new(AtomicU64::new(0));
    let kernels: Vec<Kernel> = (0..pes)
        .map(|r| {
            let cell = Arc::clone(&measured);
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                comm.barrier();
                let t0 = comm.now();
                for _ in 0..COLLECTIVE_ITERS {
                    match op {
                        "barrier" => comm.barrier(),
                        "allreduce" => {
                            let _ = comm.allreduce(r as f64 + 0.5);
                        }
                        other => unreachable!("unknown collective op {other}"),
                    }
                }
                if r == 0 {
                    cell.store((comm.now() - t0) / COLLECTIVE_ITERS, Ordering::SeqCst);
                }
            }) as Kernel
        })
        .collect();
    System::run(&cfg, &[], kernels).expect("collective bench run");
    measured.load(Ordering::SeqCst)
}

/// Barrier + allreduce at the most-populated point of every tier, for
/// every algorithm.
fn run_collectives(tiers: &[Tier]) -> Vec<CollectiveRow> {
    let mut rows = Vec::new();
    for tier in tiers {
        let topology = Topology::new(tier.side, tier.side).expect("valid square torus");
        let pes = *tier.pe_counts.last().expect("tier has PE counts");
        for op in ["barrier", "allreduce"] {
            let linear = collective_cycles(topology, pes, CollectiveAlgo::Linear, op);
            for algo in CollectiveAlgo::ALL {
                let cycles = if algo == CollectiveAlgo::Linear {
                    linear
                } else {
                    collective_cycles(topology, pes, algo, op)
                };
                rows.push(CollectiveRow {
                    topology: format!("{}x{}", tier.side, tier.side),
                    pes,
                    op,
                    algo,
                    cycles_per_op: cycles,
                    speedup_vs_linear: linear as f64 / cycles.max(1) as f64,
                });
            }
        }
    }
    rows
}

// ---- memory-banks microbench ----

/// Bank counts swept per topology.
const BANK_COUNTS: [usize; 3] = [1, 2, 4];

/// One row of the memory-banks microbench.
struct BankRow {
    topology: String,
    label: String,
    pes: usize,
    banks: usize,
    hotspot_cycles: u64,
    speedup_vs_single_bank: f64,
}

/// The shared-memory hotspot on fully populated 8×8/16×16 tori for each
/// bank count. Every node not hosting a bank hosts a PE, so the
/// single-bank row is the 255-PE (63-PE) status quo and the multi-bank
/// rows trade one PE per extra bank for N-way memory parallelism.
/// Per-rank work (`ops` store+load round trips) is fixed; the window is
/// rank 0's barrier-to-barrier time, i.e. whole-system completion.
fn run_memory_banks(tiers: &[Tier], ops: usize) -> Vec<BankRow> {
    let mut rows = Vec::new();
    for tier in tiers.iter().filter(|t| t.side >= 8) {
        let topology = Topology::new(tier.side, tier.side).expect("valid square torus");
        let mut single = 0u64;
        for banks in BANK_COUNTS {
            let pes = topology.nodes() - banks;
            let sys = base_builder()
                .topology(topology)
                .compute_pes(pes)
                .cache_bytes(CACHE_BYTES)
                .memory_banks(banks)
                .build()
                .expect("bank bench configuration");
            let outcome =
                hotspot::run(&sys, &HotspotConfig { ops_per_rank: ops }).expect("hotspot run");
            if banks == 1 {
                single = outcome.cycles;
            }
            rows.push(BankRow {
                topology: format!("{}x{}", tier.side, tier.side),
                label: sys.label(),
                pes,
                banks,
                hotspot_cycles: outcome.cycles,
                speedup_vs_single_bank: single as f64 / outcome.cycles.max(1) as f64,
            });
        }
    }
    rows
}

// ---- coherence microbench ----

/// One row of the coherence microbench.
struct CoherenceRow {
    topology: String,
    label: String,
    pes: usize,
    banks: usize,
    mode: &'static str,
    sharing_cycles: u64,
    protocol_messages: u64,
    invalidations: u64,
    fetches: u64,
    probe_writebacks: u64,
    directory_lines_peak: u64,
}

/// The fine-grained-sharing workload (`medea_apps::sharing`) under both
/// coherence modes on every tier: DII rows run the §II-E software
/// discipline (invalidate before read, flush after write), MESI rows
/// the plain-cached kernel with the MPMMU directory moving lines on
/// demand. Every run validates its final counters in-kernel, so each
/// row is a *correct* run, and the mode contracts are asserted on the
/// counters: DII must report zero protocol messages, MESI real
/// demand-driven invalidations and owner fetches. Deliberately no
/// wall-clock gates — the comparison is simulated cycles and protocol
/// traffic, both deterministic.
fn run_coherence(tiers: &[Tier], rounds: usize) -> Vec<CoherenceRow> {
    let mut rows = Vec::new();
    for tier in tiers {
        let topology = Topology::new(tier.side, tier.side).expect("valid square torus");
        // 2×side ranks: enough contention to migrate every line each
        // round, well clear of the node budget on every tier. The paper
        // 4×4 keeps its single MPMMU; the larger tori spread the
        // directory over 4 banks like the memory-banks sweep.
        let pes = 2 * tier.side as usize;
        let banks = if tier.side == 4 { 1 } else { 4 };
        for mode in [Coherence::Dii, Coherence::MesiDirectory] {
            let sys = base_builder()
                .topology(topology)
                .compute_pes(pes)
                .cache_bytes(CACHE_BYTES)
                .cache_policy(CachePolicy::WriteBack)
                .memory_banks(banks)
                .coherence(mode)
                .build()
                .expect("coherence bench configuration");
            let out = sharing::run(&sys, &SharingConfig { rounds }).expect("sharing run");
            assert_eq!(out.counters, vec![rounds as u32; pes], "sharing readback");
            let coh = out.run.coherence;
            if mode.is_hardware() {
                assert!(coh.invalidations_sent > 0, "MESI must invalidate sharers: {coh:?}");
                assert!(coh.fetches_sent > 0, "MESI must fetch from owners: {coh:?}");
            } else {
                assert_eq!(coh.protocol_messages(), 0, "DII must be protocol-silent: {coh:?}");
            }
            rows.push(CoherenceRow {
                topology: format!("{}x{}", tier.side, tier.side),
                label: sys.label(),
                pes,
                banks,
                mode: if mode.is_hardware() { "mesi" } else { "dii" },
                sharing_cycles: out.cycles,
                protocol_messages: coh.protocol_messages(),
                invalidations: coh.invalidations_sent,
                fetches: coh.fetches_sent,
                probe_writebacks: coh.probe_writebacks,
                directory_lines_peak: coh.directory_lines_peak,
            });
        }
    }
    rows
}

// ---- utilization profile ----

/// Metered re-run of the most-populated Jacobi point of every tier: the
/// cycle-attribution profiler and periodic samplers enabled at a
/// tier-scaled window, feeding the `utilization` section. The sampling
/// interval grows with the tier so the deepest 16×16 run still fits the
/// default 256-window ring without evicting its early windows.
fn run_utilization(tiers: &[Tier], smoke: bool) -> Vec<UtilizationRow> {
    let mut rows = Vec::new();
    for tier in tiers {
        let topology = Topology::new(tier.side, tier.side).expect("valid square torus");
        let pes = *tier.pe_counts.last().expect("tier has PE counts");
        let interval: u64 = match (tier.side, smoke) {
            (16, false) => 65_536,
            (8, false) => 4_096,
            (_, false) => 2_048,
            (16, true) => 2_048,
            (8, true) => 1_024,
            (_, true) => 512,
        };
        let sys = base_builder()
            .topology(topology)
            .compute_pes(pes)
            .cache_bytes(CACHE_BYTES)
            .metrics(MetricsConfig::every(interval))
            .build()
            .expect("utilization configuration");
        let outcome = jacobi::run(&sys, &jacobi_config(tier.grid_n)).expect("utilization run");
        let report = outcome.run.metrics.expect("metered run attaches a metrics report");
        rows.push(UtilizationRow {
            topology: format!("{}x{}", tier.side, tier.side),
            label: sys.label(),
            pes,
            report,
        });
    }
    rows
}

// ---- resilience microbench ----

/// The fault-injection sweep behind the `resilience` section: every
/// scenario runs with [`ResilienceConfig::standard`] (retransmission,
/// bridge retry, watchdog) against a seeded [`ScheduledInjector`] and
/// must finish — validated bit-exactly for the Jacobi scenarios — while
/// the recovery counters show the faults were really absorbed, not
/// merely absent. Smoke mode shrinks grids and op counts, never the
/// fault rates.
fn run_resilience(smoke: bool) -> Vec<medea_core::report::ResilienceRow> {
    // The 16-PE scenarios need one interior row per rank: grid >= 18.
    let grid = if smoke { 18 } else { 24 };
    let iters = if smoke { 1 } else { 2 };

    let short = |e: &medea_core::system::RunError| -> String {
        use medea_core::system::RunError;
        match e {
            RunError::CycleLimit { .. } => "cycle-limit".into(),
            RunError::Watchdog { .. } => "watchdog".into(),
            RunError::Deadlock { .. } => "deadlock".into(),
            other => format!("{other}"),
        }
    };

    // Jacobi under fire: the solve must still validate bit-exactly
    // against the sequential reference after every recovery.
    let jacobi_scenario = |name: &str, side: u8, pes: usize, schedule: FaultConfig| {
        let sys = base_builder()
            .topology(Topology::new(side, side).expect("valid square torus"))
            .compute_pes(pes)
            .cache_bytes(CACHE_BYTES)
            .resilience(ResilienceConfig::standard())
            .build()
            .expect("resilience bench configuration");
        let jcfg = JacobiConfig::new(grid, JacobiVariant::HybridFullMp)
            .with_warmup_iters(0)
            .with_measured_iters(iters)
            .with_validation();
        let mut injector = ScheduledInjector::new(schedule);
        match jacobi::run_faulted(&sys, &jcfg, &mut NullSink, &mut injector) {
            Ok(outcome) => {
                jacobi::validate_against_reference(&jcfg, &outcome)
                    .expect("faulted jacobi must still match the sequential reference");
                let r = &outcome.run;
                (
                    name.to_owned(),
                    r.fault.total(),
                    r.fabric_reroutes,
                    r.retransmits(),
                    r.nacks_sent(),
                    r.bridge_retries(),
                    "ok".to_owned(),
                )
            }
            Err(e) => (name.to_owned(), 0, 0, 0, 0, 0, short(&e)),
        }
    };

    let mut rows = Vec::new();
    rows.push(jacobi_scenario(
        "4x4 jacobi corrupt=10000ppm",
        4,
        8,
        FaultConfig { seed: 0xFA_001, flit_corrupt_ppm: 10_000, ..FaultConfig::default() },
    ));
    rows.push(jacobi_scenario(
        "8x8 jacobi dead-link@400",
        8,
        16,
        FaultConfig { seed: 0xFA_002, ..FaultConfig::default() }.kill_link(DeadLink {
            node: 0,
            dir: 1,
            at: 400,
        }),
    ));
    rows.push(jacobi_scenario(
        "8x8 jacobi dead-link+corrupt",
        8,
        16,
        FaultConfig { seed: 0xFA_003, flit_corrupt_ppm: 1_000, ..FaultConfig::default() }
            .kill_link(DeadLink { node: 0, dir: 1, at: 400 }),
    ));

    // Bank-hammer: uncached read round trips under response drops and
    // service delays — recovery is the pif2NoC bridge's read retry.
    {
        let ops = if smoke { 64 } else { 256 };
        let pes = 4usize;
        let sys = base_builder()
            .compute_pes(pes)
            .cache_bytes(CACHE_BYTES)
            .resilience(ResilienceConfig::standard())
            .build()
            .expect("bank-hammer configuration");
        let kernels: Vec<Kernel> = (0..pes)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    for i in 0..ops {
                        let addr = 0x100 + ((r * ops + i) as u32 % 64) * 4;
                        comm.uncached_store_u32(addr, i as u32);
                        let _ = comm.uncached_load_u32(addr);
                    }
                }) as Kernel
            })
            .collect();
        let schedule = FaultConfig {
            seed: 0xFA_004,
            bank_drop_ppm: 20_000,
            bank_delay_ppm: 20_000,
            bank_delay_cycles: 200,
            ..FaultConfig::default()
        };
        let mut injector = ScheduledInjector::new(schedule);
        let name = "4x4 bank-hammer drop+delay";
        rows.push(match System::run_faulted(&sys, &[], kernels, &mut NullSink, &mut injector) {
            Ok(r) => (
                name.to_owned(),
                r.fault.total(),
                r.fabric_reroutes,
                r.retransmits(),
                r.nacks_sent(),
                r.bridge_retries(),
                "ok".to_owned(),
            ),
            Err(e) => (name.to_owned(), 0, 0, 0, 0, 0, short(&e)),
        });
    }
    rows
}

/// Re-run the most-populated point of the largest tier with validation:
/// every interior cell of the final grid must match the sequential
/// reference bit-for-bit, so the 255-PE configuration is numerically
/// checked, not just timed (the seq-number attribution assumption of the
/// TIE receiver included).
fn validate_largest(tiers: &[Tier]) -> (String, usize) {
    let tier = tiers.last().expect("ladder is not empty");
    let pes = *tier.pe_counts.last().expect("tier has PE counts");
    let topology = Topology::new(tier.side, tier.side).expect("valid square torus");
    let sys = base_builder()
        .topology(topology)
        .compute_pes(pes)
        .cache_bytes(CACHE_BYTES)
        .build()
        .expect("validated configuration");
    let jcfg = JacobiConfig::new(tier.grid_n, JacobiVariant::HybridFullMp)
        .with_warmup_iters(0)
        .with_measured_iters(1)
        .with_validation();
    let outcome = jacobi::run(&sys, &jcfg).expect("validation run");
    jacobi::validate_against_reference(&jcfg, &outcome)
        .expect("largest configuration must match the sequential reference bit-for-bit");
    (sys.label(), pes)
}

fn main() {
    let mut smoke = false;
    let mut engine_threads = 1usize;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--engine-threads" => {
                engine_threads =
                    args.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--engine-threads needs a positive integer");
                            std::process::exit(2);
                        },
                    );
            }
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag {flag}; usage: scaling_json [--smoke] \
                     [--engine-threads N] [OUT_PATH]"
                );
                std::process::exit(2);
            }
            path => out_path = Some(path.to_owned()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_scaling.json".to_owned());
    let tiers = if smoke { SMOKE } else { FULL };
    let threads = sweep_threads();
    let started = Instant::now();
    let reports = run_ladder(tiers, threads, engine_threads);
    let parallel = run_parallel_engine(tiers, smoke);
    let collectives = run_collectives(tiers);
    let hotspot_ops = if smoke { 6 } else { 16 };
    let bank_rows = run_memory_banks(tiers, hotspot_ops);
    let coherence_rounds = if smoke { 4 } else { 8 };
    let coherence_rows = run_coherence(tiers, coherence_rounds);
    let utilization = run_utilization(tiers, smoke);
    let resilience_rows = run_resilience(smoke);
    // Smoke mode skips the ~half-minute 255-PE validation pass; the
    // 63-rank validated run in the apps test suite covers CI.
    let validated = (!smoke).then(|| validate_largest(tiers));
    let total_wall = started.elapsed().as_secs_f64();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"scaling\",\n");
    json.push_str("  \"metric\": \"simulated_cycles_per_wall_second\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(
        "  \"engine\": \"System::run via explore::run_sweep (scoped workers over a \
         self-scheduling queue, one flat sweep over all tiers)\",\n",
    );
    json.push_str("  \"workload\": \"jacobi hybrid-full-mp, 1 warmup + 1 measured iteration\",\n");
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str(&format!("  \"sweep_engine_threads\": {engine_threads},\n"));
    json.push_str(&format!("  \"total_wall_s\": {total_wall:.2},\n"));
    match &validated {
        Some((label, pes)) => json.push_str(&format!(
            "  \"validated_against_reference\": {{\"label\": \"{label}\", \"pes\": {pes}}},\n"
        )),
        None => json.push_str("  \"validated_against_reference\": null,\n"),
    }
    json.push_str("  \"topologies\": [\n");
    for (i, t) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"grid_n\": {}, \"rows\": [\n",
            t.topology, t.grid_n
        ));
        for (j, r) in t.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"label\": \"{}\", \"pes\": {}, \"host_threads\": {}, \
                 \"sim_cycles\": {}, \
                 \"cycles_per_iter\": {}, \"wall_s\": {:.3}, \"cycles_per_sec\": {:.0}, \
                 \"jacobi_speedup_vs_fewest_pes\": {:.2}}}{}\n",
                r.label,
                r.pes,
                r.host_threads,
                r.sim_cycles,
                r.cycles_per_iter,
                r.wall_s,
                r.cycles_per_sec,
                r.speedup,
                if j + 1 < t.rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("    ]}}{}\n", if i + 1 < reports.len() { "," } else { "" }));
    }
    json.push_str("  ],\n");
    // The NoC latency/deflection surface of the same Jacobi runs — the
    // FabricStats histogram finally reported instead of dropped. p50/p99
    // are bucket-granular upper estimates (Log2Histogram::percentile);
    // max is exact.
    json.push_str(
        "  \"noc\": {\"workload\": \"jacobi ladder rows above\", \"percentile_note\": \
         \"p50/p99 are log2-bucket upper estimates, max exact\", \"rows\": [\n",
    );
    let noc_rows: Vec<(&TierReport, &Row)> =
        reports.iter().flat_map(|t| t.rows.iter().map(move |r| (t, r))).collect();
    for (i, (t, r)) in noc_rows.iter().enumerate() {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |v| v.to_string());
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"label\": \"{}\", \"pes\": {}, \
             \"flit_latency_p50\": {}, \"flit_latency_p99\": {}, \"flit_latency_max\": {}, \
             \"deflections_per_delivered_flit\": {}}}{}\n",
            t.topology,
            r.label,
            r.pes,
            opt(r.lat_p50),
            opt(r.lat_p99),
            opt(r.lat_max),
            r.defl_per_flit.map_or_else(|| "null".to_owned(), |d| format!("{d:.4}")),
            if i + 1 < noc_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    // Single-run scaling of the tiled cycle engine. Multi-thread rows
    // are asserted bit-identical to the 1-thread baseline before they
    // are reported, so every speedup here is a determinism-preserving
    // speedup by construction.
    json.push_str(
        "  \"parallel_engine\": {\"workload\": \"jacobi hybrid-full-mp, single run, tiled \
         engine\", \"identity\": \"multi-thread RunResult asserted bit-identical to 1 \
         thread\", \"points\": [\n",
    );
    for (i, p) in parallel.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"grid_n\": {}, \"pes\": {}, \"sim_cycles\": {}, \
             \"rows\": [\n",
            p.topology, p.grid_n, p.pes, p.sim_cycles
        ));
        for (j, r) in p.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"threads\": {}, \"wall_s\": {:.3}, \"cycles_per_sec\": {:.0}, \
                 \"speedup_vs_1t\": {:.2}}}{}\n",
                r.threads,
                r.wall_s,
                r.cycles_per_sec,
                r.speedup_vs_1t,
                if j + 1 < p.rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("    ]}}{}\n", if i + 1 < parallel.len() { "," } else { "" }));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"collectives\": {{\"iters_per_op\": {COLLECTIVE_ITERS}, \"rows\": [\n"
    ));
    for (i, c) in collectives.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"pes\": {}, \"op\": \"{}\", \"algo\": \"{}\", \
             \"cycles_per_op\": {}, \"speedup_vs_linear\": {:.2}}}{}\n",
            c.topology,
            c.pes,
            c.op,
            c.algo,
            c.cycles_per_op,
            c.speedup_vs_linear,
            if i + 1 < collectives.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"memory_banks\": {{\"workload\": \"hotspot uncached store+load, line-strided \
         shared walk\", \"ops_per_rank\": {hotspot_ops}, \"rows\": [\n"
    ));
    for (i, r) in bank_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"label\": \"{}\", \"pes\": {}, \"banks\": {}, \
             \"hotspot_cycles\": {}, \"speedup_vs_single_bank\": {:.2}}}{}\n",
            r.topology,
            r.label,
            r.pes,
            r.banks,
            r.hotspot_cycles,
            r.speedup_vs_single_bank,
            if i + 1 < bank_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    // The coherence-mode comparison: the same sharing workload under
    // software DII and under the MESI directory, simulated cycles plus
    // the directory's own traffic counters. Counts only — deterministic
    // and host-independent.
    json.push_str(&format!(
        "  \"coherence\": {{\"workload\": \"fine-grained sharing: lock-guarded RMW rotation \
         over line-interleaved counters\", \"rounds\": {coherence_rounds}, \"rows\": [\n"
    ));
    for (i, r) in coherence_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"label\": \"{}\", \"pes\": {}, \"banks\": {}, \
             \"mode\": \"{}\", \"sharing_cycles\": {}, \"protocol_messages\": {}, \
             \"invalidations\": {}, \"fetches\": {}, \"probe_writebacks\": {}, \
             \"directory_lines_peak\": {}}}{}\n",
            r.topology,
            r.label,
            r.pes,
            r.banks,
            r.mode,
            r.sharing_cycles,
            r.protocol_messages,
            r.invalidations,
            r.fetches,
            r.probe_writebacks,
            r.directory_lines_peak,
            if i + 1 < coherence_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    // The profiler's view of the same tiers: cycle attribution and NoC /
    // bank pressure from metered re-runs (sampling kept out of the timed
    // ladder above).
    json.push_str(
        "  \"utilization\": {\"workload\": \"jacobi hybrid-full-mp, most-populated point per \
         tier, metered re-run\", \"note\": \"breakdown fractions sum to 1.0 per row; link \
         busy is a [0,1] per-window utilization\", \"rows\": [\n",
    );
    json.push_str(&utilization_rows_json(&utilization));
    json.push_str("  ]},\n");
    // The fault-injection sweep: seeded faults against the standard
    // resilience configuration, Jacobi scenarios validated bit-exactly
    // after recovery.
    json.push_str(
        "  \"resilience\": {\"config\": \"ResilienceConfig::standard (retransmit + bridge \
         retry + watchdog)\", \"rows\": [\n",
    );
    for (i, (label, faults, reroutes, retransmits, nacks, bridge, outcome)) in
        resilience_rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"scenario\": \"{label}\", \"faults_injected\": {faults}, \
             \"fabric_reroutes\": {reroutes}, \"empi_retransmits\": {retransmits}, \
             \"empi_nacks\": {nacks}, \"bridge_retries\": {bridge}, \
             \"outcome\": \"{outcome}\"}}{}\n",
            if i + 1 < resilience_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]}\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");

    for t in &reports {
        for r in &t.rows {
            println!(
                "{:<6} {:>22} {:>12} cycles  {:>12.0} c/s  speedup {:>6.2}x",
                t.topology, r.label, r.sim_cycles, r.cycles_per_sec, r.speedup
            );
        }
    }
    let latency_rows: Vec<medea_core::report::LatencyRow> = reports
        .iter()
        .flat_map(|t| t.rows.iter())
        .map(|r| (r.label.clone(), r.lat_p50, r.lat_p99, r.lat_max, r.defl_per_flit))
        .collect();
    for p in &parallel {
        for r in &p.rows {
            println!(
                "{:<6} {:>3} PEs  tiled engine {:>2} thread(s)  {:>12.0} c/s  vs 1t {:>6.2}x",
                p.topology, p.pes, r.threads, r.cycles_per_sec, r.speedup_vs_1t
            );
        }
    }
    println!("flit latency (cycles):");
    print!("{}", medea_core::report::format_latency_table(&latency_rows));
    for c in &collectives {
        println!(
            "{:<6} {:>4} PEs  {:<9} {:<18} {:>9} cycles/op  vs linear {:>6.2}x",
            c.topology,
            c.pes,
            c.op,
            c.algo.to_string(),
            c.cycles_per_op,
            c.speedup_vs_linear
        );
    }
    for r in &bank_rows {
        println!(
            "{:<6} {:>22} {:>2} bank(s)  {:>9} hotspot cycles  vs 1 bank {:>6.2}x",
            r.topology, r.label, r.banks, r.hotspot_cycles, r.speedup_vs_single_bank
        );
    }
    println!("cycle attribution (aggregate over all PEs of each metered point):");
    let breakdown_rows: Vec<(String, CycleBreakdown)> =
        utilization.iter().map(|r| (r.label.clone(), r.report.aggregate())).collect();
    print!("{}", format_breakdown_table(&breakdown_rows));
    for r in &utilization {
        if let Some((node, dir, u)) = r.report.peak_link_utilization() {
            println!(
                "{}: peak link utilization {:.0}% at node {node} dir {dir} \
                 ({} windows of {} cycles)",
                r.label,
                u * 100.0,
                r.report.windows.len(),
                r.report.interval
            );
        }
    }
    println!("resilience sweep (standard recovery config):");
    print!("{}", medea_core::report::format_resilience_table(&resilience_rows));
    if let Some((label, _)) = &validated {
        println!("validated {label} against the sequential reference");
    }
    // Sanity: every tier must show parallel speedup from its fewest- to
    // its most-populated point (the whole reason the torus scales out).
    for t in &reports {
        let last = t.rows.last().expect("tier has rows");
        assert!(
            last.speedup > 1.0,
            "{}: {} PEs must beat {} PEs, got {:.2}x",
            t.topology,
            last.pes,
            t.rows[0].pes,
            last.speedup
        );
    }
    // The O(ranks) → O(log ranks) acceptance gate: at the largest point,
    // the tree barrier must be ≥ 4x cheaper than linear on the full
    // 255-rank run; even the CI smoke scale must show a clear win.
    let largest = collectives
        .iter()
        .filter(|c| c.op == "barrier")
        .max_by_key(|c| c.pes)
        .expect("collectives measured");
    let tree_factor = collectives
        .iter()
        .filter(|c| {
            c.op == "barrier" && c.pes == largest.pes && c.algo == CollectiveAlgo::BinomialTree
        })
        .map(|c| c.speedup_vs_linear)
        .next()
        .expect("binomial row present");
    let required = if smoke { 1.5 } else { 4.0 };
    assert!(
        tree_factor >= required,
        "binomial barrier at {} PEs must be >= {required}x cheaper than linear, got {tree_factor:.2}x",
        largest.pes
    );
    // The distributed-memory acceptance gate: on the largest torus, the
    // 4-bank system must beat the single-bank baseline (the 255-PE
    // status quo on a full 16×16 run) under the memory-hot workload.
    let bank_best = bank_rows
        .iter()
        .filter(|r| r.banks == 4)
        .max_by(|a, b| a.pes.cmp(&b.pes))
        .expect("bank sweep measured");
    let bank_required = if smoke { 1.0 } else { 2.0 };
    assert!(
        bank_best.speedup_vs_single_bank >= bank_required,
        "{}: 4 banks must be >= {bank_required}x faster than the single-bank baseline on the \
         hotspot workload, got {:.2}x",
        bank_best.label,
        bank_best.speedup_vs_single_bank
    );
    // The parallel-engine acceptance gate: on a host with enough cores,
    // the largest point must reach ≥ 3x cycles/sec at 8 threads (full)
    // or ≥ 1.5x at 4 threads (smoke). Bit-identity was asserted during
    // the measurement itself, ungated.
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let (gate_threads, gate_factor) = if smoke { (4, 1.5) } else { (8, 3.0) };
    if cores >= gate_threads {
        let largest = parallel.last().expect("parallel engine measured");
        let gated = largest
            .rows
            .iter()
            .find(|r| r.threads == gate_threads)
            .expect("gated thread count measured");
        assert!(
            gated.speedup_vs_1t >= gate_factor,
            "{} {} PEs: tiled engine at {gate_threads} threads must be >= {gate_factor}x \
             vs 1 thread, got {:.2}x",
            largest.topology,
            largest.pes,
            gated.speedup_vs_1t
        );
    } else {
        println!(
            "parallel-engine speedup gate skipped: host has {cores} core(s), \
             gate needs {gate_threads}"
        );
    }
    // The utilization acceptance gate: every metered point must have
    // really profiled — a committed sample series and an exhaustive cycle
    // attribution (fractions sum to 1.0, every ticked cycle charged).
    for r in &utilization {
        let agg = r.report.aggregate();
        let sum: f64 = PeActivity::ALL.iter().map(|&a| agg.fraction(a)).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{}: breakdown fractions must sum to 1.0, got {sum}",
            r.label
        );
        assert!(
            r.report.windows.len() >= 2,
            "{}: the sampler must commit at least two windows",
            r.label
        );
        assert!(
            r.report.peak_link_utilization().is_some(),
            "{}: a jacobi run must light up at least one link",
            r.label
        );
    }
    // The resilience acceptance gate: every fault scenario must complete
    // ("ok" outcome, validated where applicable) and every scenario must
    // both inject real faults and exercise the matching recovery path.
    for (label, faults, reroutes, retransmits, _nacks, bridge, outcome) in &resilience_rows {
        assert_eq!(outcome, "ok", "{label}: faulted run must recover, got {outcome}");
        assert!(*faults > 0, "{label}: the schedule must actually inject faults");
        assert!(
            reroutes + retransmits + bridge > 0,
            "{label}: recovery counters must show the faults were absorbed"
        );
    }
    println!("wrote {out_path}");
}
