//! Before/after harness for the cycle-engine hot-path work: measures
//! simulated-cycles-per-second (experiment E8, `RunResult::sim_rate`) for
//! a fixed workload set on both engines —
//!
//! * **before**: [`System::run_reference`], the naive tick-everything
//!   loop behind a `Box<dyn Fabric>` (the seed engine);
//! * **after**: [`System::run`], the zero-allocation, activity-scheduled
//!   engine with per-PE wake scheduling;
//!
//! — and writes the results to `BENCH_sim_speed.json` (or the path given
//! as the first argument). Both engines produce bit-identical
//! architectural results (enforced by `tests/golden_determinism.rs` and
//! the `engine_equivalence` unit test); only wall-clock differs.

use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_bench::base_builder;
use medea_core::api::PeApi;
use medea_core::explore::Workload as _;
use medea_core::system::{Kernel, RunResult, System};
use medea_core::{Empi, SystemConfig};
use medea_sim::ids::Rank;

/// Runs per engine; the best (highest) rate is reported to damp noise.
const REPS: usize = 3;

struct Measurement {
    name: &'static str,
    cycles: u64,
    before_cps: f64,
    after_cps: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.after_cps / self.before_cps
    }
}

fn best_rate(mut run: impl FnMut() -> RunResult) -> (u64, f64) {
    let mut cycles = 0;
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let result = run();
        cycles = result.cycles;
        best = best.max(result.sim_rate());
    }
    (cycles, best)
}

fn measure(
    name: &'static str,
    cfg: &SystemConfig,
    preload: &[(u32, u32)],
    kernels: impl Fn() -> Vec<Kernel>,
) -> Measurement {
    let (cycles_b, before_cps) =
        best_rate(|| System::run_reference(cfg, preload, kernels()).expect("reference run"));
    let (cycles_a, after_cps) =
        best_rate(|| System::run(cfg, preload, kernels()).expect("optimized run"));
    assert_eq!(cycles_a, cycles_b, "{name}: engines must simulate identical cycle counts");
    Measurement { name, cycles: cycles_a, before_cps, after_cps }
}

fn pingpong_kernels(rounds: u32) -> Vec<Kernel> {
    let ping: Kernel = Box::new(move |api: PeApi| {
        for i in 1..=rounds {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(move |api: PeApi| {
        for _ in 1..=rounds {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

fn reduce_kernels(ranks: usize, iters: u32) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                for _ in 0..iters {
                    comm.compute(200 + 37 * r as u64);
                    comm.barrier();
                    let _ = comm.allreduce(r as f64 + 0.5);
                }
            }) as Kernel
        })
        .collect()
}

/// Imbalanced fork-join: the master runs a long sequential phase while
/// the workers sit blocked in `recv`, then fans a token out and the
/// workers do a short parallel phase. The whole-system fast-forward can
/// never fire during the sequential phase (the workers are recv-blocked,
/// not timed), so the naive engine ticks the stalled master — and scans
/// the idle fabric — every one of those cycles. Per-PE wake scheduling
/// is built for exactly this shape.
fn imbalanced_kernels(ranks: usize, iters: u32) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                for _ in 0..iters {
                    if api.rank().is_master() {
                        api.compute(150_000);
                        for dst in 1..api.ranks() {
                            api.send_to_rank(Rank::new(dst as u8), &[1]);
                        }
                    } else {
                        let _ = api.recv_from_rank(Rank::new(0));
                        api.compute(2_000 + 53 * r as u64);
                    }
                }
            }) as Kernel
        })
        .collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sim_speed.json".to_owned());
    let mut rows: Vec<Measurement> = Vec::new();

    // Jacobi, the paper's workload: FP-stall-heavy with bursts of NoC and
    // MPMMU traffic — the per-PE wake-scheduling showcase.
    {
        let cfg = base_builder().compute_pes(4).cache_bytes(16 * 1024).build().expect("config");
        let workload = JacobiWorkload { jcfg: JacobiConfig::new(16, JacobiVariant::HybridFullMp) };
        let prepared = workload.prepare(&cfg);
        let preload = prepared.preload.clone();
        rows.push(measure("jacobi_16x16_4pe_hybrid", &cfg, &preload, || {
            workload.prepare(&cfg).kernels
        }));
    }

    // Ping-pong: latency-bound message traffic, fabric almost always
    // near-empty — exercises the activity-scheduled network tick.
    {
        let cfg = base_builder().compute_pes(2).build().expect("config");
        rows.push(measure("pingpong_mp_2000_rounds", &cfg, &[], || pingpong_kernels(2000)));
    }

    // All-reduce with staggered compute: mixed timed stalls and barrier
    // traffic across six ranks.
    {
        let cfg = base_builder().compute_pes(6).build().expect("config");
        rows.push(measure("reduce_6pe_100_iters", &cfg, &[], || reduce_kernels(6, 100)));
    }

    // Imbalanced fork-join: the per-PE wake-scheduling showcase (see
    // `imbalanced_kernels`).
    {
        let cfg = base_builder().compute_pes(8).build().expect("config");
        rows.push(measure("imbalanced_forkjoin_8pe", &cfg, &[], || imbalanced_kernels(8, 4)));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"sim_speed\",\n");
    json.push_str("  \"metric\": \"simulated_cycles_per_wall_second\",\n");
    json.push_str("  \"before\": \"System::run_reference (naive tick-everything engine)\",\n");
    json.push_str(
        "  \"after\": \"System::run (zero-allocation, activity-scheduled, per-PE wake)\",\n",
    );
    json.push_str(&format!("  \"reps_per_engine\": {REPS},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, m) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"simulated_cycles\": {}, \"before_cps\": {:.0}, \
             \"after_cps\": {:.0}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.cycles,
            m.before_cps,
            m.after_cps,
            m.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");

    println!("{json}");
    for m in &rows {
        println!(
            "{:<28} {:>12} cycles  before {:>12.0} c/s  after {:>12.0} c/s  speedup {:>5.2}x",
            m.name,
            m.cycles,
            m.before_cps,
            m.after_cps,
            m.speedup()
        );
    }
    let best = rows.iter().map(Measurement::speedup).fold(0.0f64, f64::max);
    assert!(best >= 1.5, "expected at least one workload to improve >= 1.5x, best was {best:.2}x");
    println!("wrote {out_path}");
}
