//! Profiler harness: run the paper-4×4 pingpong and mixed workloads with
//! the `medea-metrics` subsystem enabled and write the run profiles as
//! `BENCH_metrics.json` (same `utilization` row schema as the scaling
//! harness) plus the self-contained `BENCH_heatmap.html` NoC heatmap of
//! the mixed run.
//!
//! ```text
//! cargo run --release -p medea-bench --bin metrics_json -- \
//!     [--smoke] [--interval N] [--heatmap HTML_PATH] [OUT_PATH]
//! ```
//!
//! Defaults: a 64-cycle sampling window, output to `BENCH_metrics.json`
//! and `BENCH_heatmap.html`. `--smoke` shrinks the kernels to CI scale
//! while still committing a multi-window series.
//!
//! Both artifacts are validated before they are written: the JSON
//! through `medea_trace::json` and the heatmap's SVG through
//! `medea_metrics::heatmap::check_svg_well_formed` (tag balance, one
//! cell per directed link), with a multi-window animation asserted — the
//! committed artifacts are parseable by construction.

use medea_apps::workloads::{pingpong_kernels, trace_mix_kernels};
use medea_bench::{utilization_rows_json, UtilizationRow};
use medea_core::report::{
    format_breakdown_table, format_hot_banks_table, format_hot_routers_table,
};
use medea_core::system::{Kernel, System};
use medea_core::{MetricsConfig, SystemConfig, Topology};
use medea_metrics::heatmap::{check_svg_well_formed, render_heatmap_html};
use medea_sim::Cycle;
use medea_trace::json;

struct Args {
    smoke: bool,
    interval: Cycle,
    heatmap_path: String,
    out_path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        interval: 64,
        heatmap_path: "BENCH_heatmap.html".to_owned(),
        out_path: "BENCH_metrics.json".to_owned(),
    };
    let usage = "usage: metrics_json [--smoke] [--interval N] [--heatmap HTML_PATH] [OUT_PATH]";
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--interval" => {
                args.interval =
                    it.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1).unwrap_or_else(
                        || {
                            eprintln!("--interval needs a positive cycle count; {usage}");
                            std::process::exit(2);
                        },
                    );
            }
            "--heatmap" => {
                args.heatmap_path = it.next().unwrap_or_else(|| {
                    eprintln!("--heatmap needs a path; {usage}");
                    std::process::exit(2);
                });
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}; {usage}");
                std::process::exit(2);
            }
            path => args.out_path = path.to_owned(),
        }
    }
    args
}

/// Run one metered paper-4×4 point and wrap its report as a row.
fn metered_point(name: &str, pes: usize, interval: Cycle, kernels: Vec<Kernel>) -> UtilizationRow {
    let cfg = SystemConfig::builder()
        .topology(Topology::new(4, 4).expect("valid square torus"))
        .compute_pes(pes)
        .cycle_limit(400_000_000)
        .metrics(MetricsConfig::every(interval))
        .build()
        .expect("metrics point configuration");
    let result = System::run(&cfg, &[], kernels).expect("metered run");
    let report = result.metrics.expect("metered run attaches a metrics report");
    UtilizationRow {
        topology: "4x4".to_owned(),
        label: format!("{name} {}", cfg.label()),
        pes,
        report,
    }
}

fn main() {
    let args = parse_args();
    let (rounds, lock_rounds) = if args.smoke { (10, 2) } else { (40, 4) };
    let rows = vec![
        metered_point("pingpong", 2, args.interval, pingpong_kernels(rounds)),
        metered_point("mixed", 5, args.interval, trace_mix_kernels(5, lock_rounds)),
    ];

    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"benchmark\": \"metrics\",\n");
    doc.push_str("  \"metric\": \"cycle_attribution_and_sampled_utilization\",\n");
    doc.push_str(&format!("  \"mode\": \"{}\",\n", if args.smoke { "smoke" } else { "full" }));
    doc.push_str(&format!("  \"sample_interval\": {},\n", args.interval));
    doc.push_str(
        "  \"utilization\": {\"workload\": \"paper-4x4 pingpong + mixed (locks, collectives, \
         messages, shared memory)\", \"note\": \"breakdown fractions sum to 1.0 per row; link \
         busy is a [0,1] per-window utilization\", \"rows\": [\n",
    );
    doc.push_str(&utilization_rows_json(&rows));
    doc.push_str("  ]}\n}\n");
    json::validate(&doc).expect("emitted metrics json must be valid JSON");
    std::fs::write(&args.out_path, &doc).expect("write metrics json");

    // The heatmap artifact comes from the mixed run — the only workload
    // that exercises every sampled subsystem on one timeline.
    let mixed = rows.last().expect("mixed row present");
    let html = render_heatmap_html(&mixed.report, &mixed.label);
    let cells = check_svg_well_formed(&html).expect("heatmap SVG must be well-formed");
    assert_eq!(cells, mixed.report.nodes() * 4, "one heatmap cell per directed link");
    assert!(
        mixed.report.windows.len() >= 2,
        "the committed heatmap must animate over at least two sample windows"
    );
    std::fs::write(&args.heatmap_path, &html).expect("write heatmap html");

    for row in &rows {
        println!("{}: {}", row.label, row.report.aggregate());
        let per_pe: Vec<(String, _)> = row
            .report
            .breakdown
            .iter()
            .enumerate()
            .map(|(i, b)| (format!("rank {i}"), *b))
            .collect();
        print!("{}", format_breakdown_table(&per_pe));
        let routers = row.report.hottest_routers(4);
        if !routers.is_empty() {
            print!("{}", format_hot_routers_table(&routers));
        }
        let banks = row.report.hottest_banks(4);
        if !banks.is_empty() {
            print!("{}", format_hot_banks_table(&banks));
        }
        if let Some((node, dir, u)) = row.report.peak_link_utilization() {
            println!("peak link utilization {:.0}% at node {node} dir {dir}", u * 100.0);
        }
    }
    println!("wrote {} and {}", args.out_path, args.heatmap_path);
}
