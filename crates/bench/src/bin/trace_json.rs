//! Chrome-trace emitter: run one sweep point with tracing on and write
//! the capture as a Chrome `trace_event` JSON file (plus optional CSV),
//! ready for `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run --release -p medea-bench --bin trace_json -- \
//!     [--workload pingpong|mixed|jacobi] [--side N] [--pes N] [--banks N] \
//!     [--capacity N] [--csv CSV_PATH] [OUT_PATH]
//! ```
//!
//! Defaults: the paper-4×4 pingpong point, a 1 Mi-event ring, output to
//! `BENCH_trace.json`. `--workload mixed` runs a shared-memory + lock +
//! collective + message kernel set that exercises **all four** event
//! classes (NoC, cache, MPMMU/lock, kernel spans) on one timeline;
//! `--workload jacobi` traces one iteration of the paper's workload.
//! `--side N` picks an N×N torus; `--pes`/`--banks` size the system
//! (defaults: workload-dependent PEs, 1 bank).
//!
//! The emitted JSON is syntax-validated (`medea_trace::json`) before it
//! is written, so the CI artifact is parseable by construction; the run's
//! flit-latency percentiles and a trace summary (event counts per class,
//! peak link load, lock contention) are printed alongside.

use medea_apps::jacobi::{JacobiConfig, JacobiVariant, JacobiWorkload};
use medea_apps::workloads::{pingpong_kernels, trace_mix_kernels};
use medea_core::explore::Workload as _;
use medea_core::report::{
    format_deflection_table, format_latency_table, format_lock_contention_table, format_table,
    LatencyRow,
};
use medea_core::system::{Kernel, RunResult, System};
use medea_core::{EventClass, RingSink, SystemConfig, Topology, TraceConfig};
use medea_trace::{chrome, csv, json, TimedEvent, TraceAnalysis};

/// One logical packet per round trip keeps the fabric lively without
/// flooding the ring.
const PINGPONG_ROUNDS: u32 = 40;

/// Lock-guarded counter rounds of the mixed workload.
const MIX_LOCK_ROUNDS: usize = 4;

struct Args {
    workload: String,
    side: u8,
    pes: Option<usize>,
    banks: usize,
    capacity: usize,
    csv_path: Option<String>,
    out_path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "pingpong".to_owned(),
        side: 4,
        pes: None,
        banks: 1,
        capacity: 1 << 20,
        csv_path: None,
        out_path: "BENCH_trace.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    let usage = "usage: trace_json [--workload pingpong|mixed|jacobi] [--side N] [--pes N] \
                 [--banks N] [--capacity N] [--csv CSV_PATH] [OUT_PATH]";
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value; {usage}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => args.workload = value(&mut it, "--workload"),
            "--side" => args.side = value(&mut it, "--side").parse().expect("--side N"),
            "--pes" => args.pes = Some(value(&mut it, "--pes").parse().expect("--pes N")),
            "--banks" => args.banks = value(&mut it, "--banks").parse().expect("--banks N"),
            "--capacity" => {
                args.capacity = value(&mut it, "--capacity").parse().expect("--capacity N");
            }
            "--csv" => args.csv_path = Some(value(&mut it, "--csv")),
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}; {usage}");
                std::process::exit(2);
            }
            path => args.out_path = path.to_owned(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let topology = Topology::new(args.side, args.side).expect("valid square torus");
    let free_nodes =
        topology.nodes().checked_sub(args.banks).filter(|n| *n > 0).unwrap_or_else(|| {
            eprintln!("--banks {} leaves no PE node on a {topology}", args.banks);
            std::process::exit(2);
        });
    let default_pes = match args.workload.as_str() {
        "pingpong" => 2,
        "mixed" => 5.min(free_nodes),
        "jacobi" => 4.min(free_nodes),
        other => {
            eprintln!("unknown workload {other} (pingpong|mixed|jacobi)");
            std::process::exit(2);
        }
    };
    let pes = args.pes.unwrap_or(default_pes);
    let cfg = SystemConfig::builder()
        .topology(topology)
        .compute_pes(pes)
        .memory_banks(args.banks)
        .cycle_limit(400_000_000)
        .trace(TraceConfig::all())
        .build()
        .expect("trace point configuration");

    let (preload, kernels): (Vec<(u32, u32)>, Vec<Kernel>) = match args.workload.as_str() {
        "pingpong" => (Vec::new(), pingpong_kernels(PINGPONG_ROUNDS)),
        "mixed" => (Vec::new(), trace_mix_kernels(pes, MIX_LOCK_ROUNDS)),
        "jacobi" => {
            let workload = JacobiWorkload {
                jcfg: JacobiConfig::new(16, JacobiVariant::HybridFullMp)
                    .with_warmup_iters(0)
                    .with_measured_iters(1),
            };
            let prepared = workload.prepare(&cfg);
            (prepared.preload, prepared.kernels)
        }
        _ => unreachable!("validated above"),
    };

    let mut sink = RingSink::new(args.capacity);
    let result: RunResult =
        System::run_traced(&cfg, &preload, kernels, &mut sink).expect("traced run");
    let events: Vec<TimedEvent> = sink.to_vec();
    assert!(!events.is_empty(), "a traced run must capture events");

    // Track names: ranks for PE nodes, bank indices for bank nodes.
    let plan = cfg.node_plan();
    let bank_nodes = cfg.bank_nodes();
    let doc = chrome::to_chrome_json(&events, |node| {
        let id = medea_sim::ids::NodeId::new(node);
        if let Some(bank) = bank_nodes.iter().position(|b| *b == id) {
            format!("bank {bank} @ node {node}")
        } else if let Some(rank) = plan.rank_of_node(id) {
            format!("node {node} (rank {})", rank.index())
        } else {
            format!("node {node}")
        }
    });
    json::validate(&doc).expect("emitted chrome trace must be valid JSON");
    std::fs::write(&args.out_path, &doc).expect("write trace json");
    if let Some(csv_path) = &args.csv_path {
        std::fs::write(csv_path, csv::to_csv(&events)).expect("write trace csv");
        println!("wrote {csv_path}");
    }

    // Summary: class census, trace analytics, and the run's NoC latency
    // percentiles through the shared report renderers.
    let census = |class: EventClass| {
        events.iter().filter(|t| t.event.class().intersects(class)).count().to_string()
    };
    print!(
        "{}",
        format_table(
            &["events", "dropped", "noc", "cache", "mem", "kernel"],
            &[vec![
                events.len().to_string(),
                sink.dropped().to_string(),
                census(EventClass::NOC),
                census(EventClass::CACHE),
                census(EventClass::MEM),
                census(EventClass::KERNEL),
            ]],
        )
    );
    let analysis = TraceAnalysis::from_events(&events);
    if let Some((node, links)) = analysis.peak_link_load() {
        println!("peak link load: {links}/4 at node {node}");
    }
    let top_deflectors = analysis.top_deflecting_routers(8);
    if !top_deflectors.is_empty() {
        println!("hottest deflecting routers:");
        print!("{}", format_deflection_table(&top_deflectors));
    }
    if analysis.lock_acquires > 0 {
        println!(
            "locks: {} acquired, {} contended, {} contention cycles",
            analysis.lock_acquires, analysis.contended_acquires, analysis.lock_contention_cycles
        );
    }
    if !analysis.lock_contention_by_bank.is_empty() {
        println!("lock contention by bank:");
        print!("{}", format_lock_contention_table(&analysis.lock_contention_by_bank));
    }
    for (op, count, cycles) in &analysis.spans {
        println!("span {op}: {count} completed, {cycles} cycles total");
    }
    let rows: Vec<LatencyRow> = vec![(
        cfg.label(),
        result.flit_latency_p50(),
        result.flit_latency_p99(),
        result.fabric_max_latency,
        result.deflections_per_delivered(),
    )];
    println!("flit latency (cycles):");
    print!("{}", format_latency_table(&rows));
    println!(
        "{} cycles simulated, {} flits delivered; wrote {}",
        result.cycles, result.fabric_delivered, args.out_path
    );
}
