//! L1 cache models for the MEDEA reproduction.
//!
//! §II-B/§II-E of the paper: each PE has an L1 cache with a 16-byte line
//! (so a miss triggers a block read of four 32-bit words), configurable
//! size (the exploration sweeps 2 kB–64 kB in powers of two) and a
//! **write-back** or **write-through** policy. The paper has no hardware
//! coherence: software keeps shared data coherent with explicit *flush*
//! (write dirty line to memory) and *DII invalidate* (drop the line so the
//! next access refetches) operations, which this crate models faithfully —
//! including the stale-read hazard when software forgets them. The
//! [`coherence`] module adds the shared vocabulary for the
//! beyond-the-paper directory-MESI alternative selected by the system
//! `coherence(...)` axis.
//!
//! The cache stores real data. Misses and evictions are *described* to the
//! caller as [`MemSideOp`]s rather than performed, because in MEDEA every
//! memory-side operation is a NoC transaction with its own latency; the
//! pif2NoC bridge (in `medea-pe`) turns them into flits.
//!
//! # Example
//!
//! ```
//! use medea_cache::{CacheConfig, CachePolicy, SetAssocCache};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = CacheConfig::new(2048, CachePolicy::WriteBack)?;
//! let mut cache = SetAssocCache::new(cfg);
//! assert_eq!(cache.load_word(0x100), None); // cold miss
//! cache.fill_line(0x100, [1, 2, 3, 4]);
//! assert_eq!(cache.load_word(0x104), Some(2)); // same line now hits
//! # Ok(())
//! # }
//! ```

mod cache;
pub mod coherence;
mod config;

pub use cache::{CacheStats, FlushOutcome, SetAssocCache, StoreOutcome, Victim};
pub use coherence::{CoherenceMode, CoherenceStats, MesiState};
pub use config::{CacheConfig, CachePolicy, InvalidCacheConfigError};

/// Byte address in the global (MPMMU-backed) address space.
pub type Addr = u32;

/// Cache line size in bytes (§II-B: "the current processor configuration
/// supports a cache line of 16 bytes").
pub const LINE_BYTES: usize = 16;

/// 32-bit words per cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / 4;

/// The line-aligned base address of the line containing `addr`.
pub const fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES as Addr - 1)
}

/// Word index (0..4) of `addr` within its line.
pub const fn word_in_line(addr: Addr) -> usize {
    ((addr as usize) % LINE_BYTES) / 4
}

/// A memory-side operation the cache needs the bridge to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSideOp {
    /// Fetch a full line (cache-miss fill); becomes a NoC block-read.
    BlockRead {
        /// Line-aligned address to fetch.
        line: Addr,
    },
    /// Write a full (dirty) line back; becomes a NoC block-write.
    BlockWrite {
        /// Line-aligned address to write.
        line: Addr,
        /// The four words of the line.
        data: [u32; WORDS_PER_LINE],
    },
    /// Write a single word through to memory (write-through stores).
    SingleWrite {
        /// Word-aligned address.
        addr: Addr,
        /// The word value.
        data: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0x0), 0x0);
        assert_eq!(line_of(0x13), 0x10);
        assert_eq!(line_of(0x1F), 0x10);
        assert_eq!(word_in_line(0x10), 0);
        assert_eq!(word_in_line(0x14), 1);
        assert_eq!(word_in_line(0x1C), 3);
    }
}
