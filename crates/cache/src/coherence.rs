//! Coherence-protocol types shared by the L1 (in `medea-pe`) and the
//! MPMMU directory homes (in `medea-mem`).
//!
//! The paper's coherence is **software DII** (§II-E): producers flush,
//! consumers invalidate, and hardware keeps no sharing state at all. This
//! module adds the vocabulary for the beyond-the-paper alternative — a
//! **directory-based MESI** in which each MPMMU bank tracks, per cache
//! line it is home to, the set of sharers and the (single) owner, and
//! keeps L1 copies coherent with real NoC packets
//! (`PacketKind::Coherence` in `medea-noc`). Which protocol is active is
//! a system-configuration axis; DII remains the bit-for-bit-faithful
//! default and under it none of these types ever affect timing.

use std::fmt;

/// The coherence protocol a system is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherenceMode {
    /// The paper's software-managed scheme (§II-E): no hardware sharing
    /// state; kernels call flush/invalidate explicitly. Bit-for-bit
    /// faithful default.
    #[default]
    Dii,
    /// Beyond-the-paper directory MESI: MPMMU banks are directory homes,
    /// L1 lines carry MESI state, and invalidations/fetches travel the
    /// NoC as `Coherence` packets.
    MesiDirectory,
}

impl CoherenceMode {
    /// Whether hardware coherence (the MESI directory) is active.
    pub const fn is_hardware(self) -> bool {
        matches!(self, CoherenceMode::MesiDirectory)
    }
}

impl fmt::Display for CoherenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoherenceMode::Dii => "dii",
            CoherenceMode::MesiDirectory => "mesi",
        })
    }
}

/// Per-line L1 state under [`CoherenceMode::MesiDirectory`].
///
/// The Invalid state is represented by absence (the line is simply not
/// resident / has no entry), mirroring how `SetAssocCache` models
/// residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Sole copy, dirty: memory is stale, this L1 owns the data.
    Modified,
    /// Sole copy, clean: may be written (silently upgrading to M)
    /// without asking the home.
    Exclusive,
    /// One of possibly many clean copies; a store must first obtain M
    /// via the home.
    Shared,
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MesiState::Modified => "M",
            MesiState::Exclusive => "E",
            MesiState::Shared => "S",
        })
    }
}

/// Counters for directory-MESI activity, aggregated across banks (home
/// side) and PEs (L1 responder side). All zero under DII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoherenceStats {
    /// `GetS` read-miss requests served by directory homes.
    pub gets: u64,
    /// `GetM` write-miss/upgrade requests served by directory homes.
    pub getm: u64,
    /// `PutM` dirty-eviction writebacks received by directory homes
    /// (including stale ones discarded without a memory write).
    pub putm: u64,
    /// `Inv` probes sent by directory homes.
    pub invalidations_sent: u64,
    /// `Inv` probes received and honoured by L1 responders.
    pub invalidations_received: u64,
    /// `Fetch`/`FetchInv` probes sent by directory homes.
    pub fetches_sent: u64,
    /// Downgrades performed by L1 responders (M/E→S on `Fetch`, any→I on
    /// `FetchInv`), counted only when the line was actually resident.
    pub downgrades: u64,
    /// Dirty-data writebacks supplied by L1 responders to a probe.
    pub probe_writebacks: u64,
    /// Peak number of lines simultaneously tracked by a single bank's
    /// directory (max over banks after merging).
    pub directory_lines_peak: u64,
}

impl CoherenceStats {
    /// Fold `other` into `self` (sums counters, maxes the peak).
    pub fn merge(&mut self, other: &CoherenceStats) {
        self.gets += other.gets;
        self.getm += other.getm;
        self.putm += other.putm;
        self.invalidations_sent += other.invalidations_sent;
        self.invalidations_received += other.invalidations_received;
        self.fetches_sent += other.fetches_sent;
        self.downgrades += other.downgrades;
        self.probe_writebacks += other.probe_writebacks;
        self.directory_lines_peak = self.directory_lines_peak.max(other.directory_lines_peak);
    }

    /// Total protocol messages that crossed the NoC because of coherence
    /// (requests + probes; excludes data streams).
    pub fn protocol_messages(&self) -> u64 {
        self.gets + self.getm + self.putm + self.invalidations_sent + self.fetches_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_dii() {
        assert_eq!(CoherenceMode::default(), CoherenceMode::Dii);
        assert!(!CoherenceMode::Dii.is_hardware());
        assert!(CoherenceMode::MesiDirectory.is_hardware());
        assert_eq!(CoherenceMode::MesiDirectory.to_string(), "mesi");
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = CoherenceStats {
            gets: 1,
            invalidations_sent: 2,
            directory_lines_peak: 5,
            ..Default::default()
        };
        let b = CoherenceStats { gets: 3, putm: 4, directory_lines_peak: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.gets, 4);
        assert_eq!(a.putm, 4);
        assert_eq!(a.invalidations_sent, 2);
        assert_eq!(a.directory_lines_peak, 5);
        assert_eq!(a.protocol_messages(), 4 + 4 + 2);
    }
}
