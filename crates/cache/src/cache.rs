//! Set-associative cache with LRU replacement and data storage.

use crate::config::{CacheConfig, CachePolicy};
use crate::{line_of, word_in_line, Addr, WORDS_PER_LINE};
use medea_sim::stats::Counter;

/// A dirty line evicted to make room for a fill; must be written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub line: Addr,
    /// The line's data.
    pub data: [u32; WORDS_PER_LINE],
}

/// What a store requires from the memory side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Write-back hit: absorbed by the cache, no memory traffic.
    Absorbed,
    /// Write-through (hit or miss): the word must also go to memory.
    WriteThrough,
    /// Write-back miss: the line must be allocated first (evict + block
    /// read + [`SetAssocCache::fill_line`]), then the store retried.
    NeedsAllocate,
}

/// What a flush found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Line not present (or already clean under write-through): nothing to
    /// write back.
    Clean,
    /// Dirty line: this data must be block-written to memory. The line
    /// stays resident and is now clean.
    Writeback(Victim),
}

/// Hit/miss and maintenance-operation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Word loads that hit.
    pub load_hits: Counter,
    /// Word loads that missed.
    pub load_misses: Counter,
    /// Word stores that hit.
    pub store_hits: Counter,
    /// Word stores that missed.
    pub store_misses: Counter,
    /// Lines evicted (clean or dirty).
    pub evictions: Counter,
    /// Dirty lines written back (evictions + flushes).
    pub writebacks: Counter,
    /// Explicit flush operations that found a dirty line.
    pub flushes: Counter,
    /// Explicit DII invalidations that found a resident line.
    pub invalidations: Counter,
}

impl CacheStats {
    /// Overall miss rate across loads and stores, or `None` before any
    /// access.
    pub fn miss_rate(&self) -> Option<f64> {
        let hits = self.load_hits.get() + self.store_hits.get();
        let misses = self.load_misses.get() + self.store_misses.get();
        let total = hits + misses;
        (total > 0).then(|| misses as f64 / total as f64)
    }

    /// Accumulate another cache's counters into this one (e.g. the
    /// per-bank → aggregate reduction over MPMMU-local caches).
    pub fn merge(&mut self, other: &CacheStats) {
        self.load_hits.add(other.load_hits.get());
        self.load_misses.add(other.load_misses.get());
        self.store_hits.add(other.store_hits.get());
        self.store_misses.add(other.store_misses.get());
        self.evictions.add(other.evictions.get());
        self.writebacks.add(other.writebacks.get());
        self.flushes.add(other.flushes.get());
        self.invalidations.add(other.invalidations.get());
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: Addr, // line-aligned full address (simpler than split tag/index)
    data: [u32; WORDS_PER_LINE],
    dirty: bool,
    last_use: u64,
}

/// Set-associative, LRU, data-carrying L1 cache.
///
/// All word addresses must be 4-byte aligned; the cache works at word
/// granularity like the 32-bit PIF data path of the original.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>, // sets[set] holds 0..=ways lines
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        SetAssocCache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways()); cfg.sets()],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub const fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access statistics.
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_index(&self, line: Addr) -> usize {
        (line as usize / crate::LINE_BYTES) % self.cfg.sets()
    }

    fn touch(clock: &mut u64, line: &mut Line) {
        *clock += 1;
        line.last_use = *clock;
    }

    fn find(&mut self, line_addr: Addr) -> Option<&mut Line> {
        let set = self.set_index(line_addr);
        let clock = &mut self.clock;
        match self.sets[set].iter_mut().find(|l| l.tag == line_addr) {
            Some(l) => {
                Self::touch(clock, l);
                Some(l)
            }
            None => None,
        }
    }

    /// Whether the line containing `addr` is resident (no LRU update, no
    /// statistics — a pure probe).
    pub fn probe(&self, addr: Addr) -> bool {
        let line = line_of(addr);
        let set = self.set_index(line);
        self.sets[set].iter().any(|l| l.tag == line)
    }

    /// Load the word at `addr`. `Some(word)` on hit (LRU updated), `None`
    /// on miss — allocate with [`SetAssocCache::evict_for`] +
    /// [`SetAssocCache::fill_line`], then retry.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn load_word(&mut self, addr: Addr) -> Option<u32> {
        assert_eq!(addr % 4, 0, "unaligned word load at {addr:#x}");
        let line = line_of(addr);
        let word = self.find(line).map(|l| l.data[word_in_line(addr)]);
        match word {
            Some(w) => {
                self.stats.load_hits.inc();
                Some(w)
            }
            None => {
                self.stats.load_misses.inc();
                None
            }
        }
    }

    /// Store `value` at `addr`, returning the required memory-side action.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn store_word(&mut self, addr: Addr, value: u32) -> StoreOutcome {
        assert_eq!(addr % 4, 0, "unaligned word store at {addr:#x}");
        let policy = self.cfg.policy();
        let line = line_of(addr);
        let hit = match self.find(line) {
            Some(l) => {
                l.data[word_in_line(addr)] = value;
                if matches!(policy, CachePolicy::WriteBack) {
                    l.dirty = true;
                }
                true
            }
            None => false,
        };
        if hit {
            self.stats.store_hits.inc();
            match policy {
                CachePolicy::WriteBack => StoreOutcome::Absorbed,
                CachePolicy::WriteThrough => StoreOutcome::WriteThrough,
            }
        } else {
            self.stats.store_misses.inc();
            match policy {
                CachePolicy::WriteBack => StoreOutcome::NeedsAllocate,
                // No-write-allocate: the word goes straight to memory.
                CachePolicy::WriteThrough => StoreOutcome::WriteThrough,
            }
        }
    }

    /// Make room for `line_addr`'s line: if its set is full, evict the LRU
    /// line, returning it if dirty (the caller must block-write it).
    ///
    /// Idempotent when a free way already exists or the line is resident.
    pub fn evict_for(&mut self, line_addr: Addr) -> Option<Victim> {
        let line = line_of(line_addr);
        let set = self.set_index(line);
        let ways = self.cfg.ways();
        let set_lines = &mut self.sets[set];
        if set_lines.iter().any(|l| l.tag == line) || set_lines.len() < ways {
            return None;
        }
        let lru = set_lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i)
            .expect("set is full, hence non-empty");
        let victim = set_lines.swap_remove(lru);
        self.stats.evictions.inc();
        if victim.dirty {
            self.stats.writebacks.inc();
            Some(Victim { line: victim.tag, data: victim.data })
        } else {
            None
        }
    }

    /// Install `data` as the (clean) line at `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `line_addr` is not line-aligned, if the set has no free
    /// way (call [`SetAssocCache::evict_for`] first), or if the line is
    /// already resident (a fill must follow a miss).
    pub fn fill_line(&mut self, line_addr: Addr, data: [u32; WORDS_PER_LINE]) {
        assert_eq!(line_addr, line_of(line_addr), "fill address must be line-aligned");
        let set = self.set_index(line_addr);
        assert!(
            !self.sets[set].iter().any(|l| l.tag == line_addr),
            "double fill of resident line {line_addr:#x}"
        );
        assert!(
            self.sets[set].len() < self.cfg.ways(),
            "fill into full set; evict_for() was not called"
        );
        self.clock += 1;
        let line = Line { tag: line_addr, data, dirty: false, last_use: self.clock };
        self.sets[set].push(line);
    }

    /// Flush the line containing `addr` (§II-E: the producer flushes after
    /// writing shared data; also required before `unlock`). Dirty data is
    /// returned for write-back and the line becomes clean but stays
    /// resident.
    pub fn flush_line(&mut self, addr: Addr) -> FlushOutcome {
        let line = line_of(addr);
        let set = self.set_index(line);
        match self.sets[set].iter_mut().find(|l| l.tag == line) {
            Some(l) if l.dirty => {
                l.dirty = false;
                self.stats.flushes.inc();
                self.stats.writebacks.inc();
                FlushOutcome::Writeback(Victim { line, data: l.data })
            }
            _ => FlushOutcome::Clean,
        }
    }

    /// DII invalidate (§II-E): drop the line containing `addr` so the next
    /// access refetches from memory. Returns whether a line was present.
    ///
    /// Note: like the real DII instruction this *discards* dirty data — the
    /// stale-update hazard is the software's to manage.
    pub fn invalidate_line(&mut self, addr: Addr) -> bool {
        let line = line_of(addr);
        let set = self.set_index(line);
        let before = self.sets[set].len();
        self.sets[set].retain(|l| l.tag != line);
        let removed = self.sets[set].len() != before;
        if removed {
            self.stats.invalidations.inc();
        }
        removed
    }

    /// Iterate over all resident dirty lines (used by whole-cache flushes
    /// and by invariant checks in tests).
    pub fn dirty_lines(&self) -> impl Iterator<Item = Victim> + '_ {
        self.sets.iter().flatten().filter(|l| l.dirty).map(|l| Victim { line: l.tag, data: l.data })
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wb(bytes: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(bytes, CachePolicy::WriteBack).unwrap())
    }

    fn wt(bytes: usize) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(bytes, CachePolicy::WriteThrough).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = wb(2048);
        assert_eq!(c.load_word(0x40), None);
        assert!(c.evict_for(0x40).is_none());
        c.fill_line(0x40, [10, 11, 12, 13]);
        assert_eq!(c.load_word(0x40), Some(10));
        assert_eq!(c.load_word(0x4C), Some(13));
        assert_eq!(c.stats().load_hits.get(), 2);
        assert_eq!(c.stats().load_misses.get(), 1);
    }

    #[test]
    fn wb_store_hit_absorbed_and_dirty() {
        let mut c = wb(2048);
        c.fill_line(0x80, [0; 4]);
        assert_eq!(c.store_word(0x84, 99), StoreOutcome::Absorbed);
        assert_eq!(c.load_word(0x84), Some(99));
        assert_eq!(c.dirty_lines().count(), 1);
    }

    #[test]
    fn wb_store_miss_needs_allocate() {
        let mut c = wb(2048);
        assert_eq!(c.store_word(0x80, 1), StoreOutcome::NeedsAllocate);
        assert_eq!(c.stats().store_misses.get(), 1);
    }

    #[test]
    fn wt_store_never_dirties() {
        let mut c = wt(2048);
        c.fill_line(0x80, [0; 4]);
        assert_eq!(c.store_word(0x80, 5), StoreOutcome::WriteThrough);
        // Hit updates the cached copy but the line stays clean.
        assert_eq!(c.load_word(0x80), Some(5));
        assert_eq!(c.dirty_lines().count(), 0);
        // Miss: no-write-allocate.
        assert_eq!(c.store_word(0x800, 7), StoreOutcome::WriteThrough);
        assert!(!c.probe(0x800));
    }

    #[test]
    fn lru_eviction_of_oldest() {
        // 2 ways, 1 set: 32-byte cache.
        let cfg = CacheConfig::with_ways(32, 2, CachePolicy::WriteBack).unwrap();
        let mut c = SetAssocCache::new(cfg);
        c.fill_line(0x00, [0; 4]);
        c.fill_line(0x10, [1; 4]);
        // Touch 0x00 so 0x10 becomes LRU.
        assert!(c.load_word(0x00).is_some());
        assert!(c.evict_for(0x20).is_none()); // clean victim: no writeback
        assert_eq!(c.stats().evictions.get(), 1);
        c.fill_line(0x20, [2; 4]);
        assert!(c.probe(0x00), "recently used line must survive");
        assert!(!c.probe(0x10), "LRU line must be evicted");
    }

    #[test]
    fn dirty_victim_returned() {
        let cfg = CacheConfig::with_ways(32, 2, CachePolicy::WriteBack).unwrap();
        let mut c = SetAssocCache::new(cfg);
        c.fill_line(0x00, [0; 4]);
        c.fill_line(0x10, [0; 4]);
        c.store_word(0x00, 42);
        // Make 0x00 LRU anyway by touching 0x10 afterwards.
        c.load_word(0x10);
        let victim = c.evict_for(0x20).expect("dirty victim");
        assert_eq!(victim.line, 0x00);
        assert_eq!(victim.data[0], 42);
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn flush_returns_dirty_data_and_cleans() {
        let mut c = wb(2048);
        c.fill_line(0x100, [1, 2, 3, 4]);
        c.store_word(0x104, 20);
        match c.flush_line(0x104) {
            FlushOutcome::Writeback(v) => {
                assert_eq!(v.line, 0x100);
                assert_eq!(v.data, [1, 20, 3, 4]);
            }
            FlushOutcome::Clean => panic!("expected dirty flush"),
        }
        // Second flush: clean. Line still resident.
        assert_eq!(c.flush_line(0x104), FlushOutcome::Clean);
        assert!(c.probe(0x100));
    }

    #[test]
    fn invalidate_drops_line() {
        let mut c = wb(2048);
        c.fill_line(0x100, [7; 4]);
        assert!(c.invalidate_line(0x108));
        assert!(!c.probe(0x100));
        assert!(!c.invalidate_line(0x108));
        assert_eq!(c.stats().invalidations.get(), 1);
    }

    #[test]
    fn set_indexing_separates_lines() {
        let mut c = wb(2048); // 2 ways, 64 sets
                              // Same set: addresses 1024*... line 0 and line 0 + sets*16.
        let sets = c.config().sets();
        let a = 0u32;
        let b = (sets * crate::LINE_BYTES) as u32;
        let d = 2 * b;
        c.fill_line(a, [1; 4]);
        c.fill_line(b, [2; 4]);
        assert!(c.evict_for(d).is_none()); // clean LRU victim evicted
        c.fill_line(d, [3; 4]);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = wb(2048);
        assert!(c.stats().miss_rate().is_none());
        c.load_word(0x0);
        c.fill_line(0x0, [0; 4]);
        c.load_word(0x0);
        let mr = c.stats().miss_rate().unwrap();
        assert!((mr - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_load_panics() {
        wb(2048).load_word(0x3);
    }

    #[test]
    #[should_panic(expected = "double fill")]
    fn double_fill_panics() {
        let mut c = wb(2048);
        c.fill_line(0x0, [0; 4]);
        c.fill_line(0x0, [0; 4]);
    }

    #[test]
    #[should_panic(expected = "full set")]
    fn fill_into_full_set_panics() {
        let cfg = CacheConfig::with_ways(32, 2, CachePolicy::WriteBack).unwrap();
        let mut c = SetAssocCache::new(cfg);
        c.fill_line(0x00, [0; 4]);
        c.fill_line(0x10, [0; 4]);
        c.fill_line(0x20, [0; 4]);
    }
}
