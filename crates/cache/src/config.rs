//! Cache geometry and policy configuration.

use crate::LINE_BYTES;
use std::fmt;

/// Write policy of the L1 cache (one axis of the paper's 168-point design
/// space exploration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Dirty lines written back on eviction/flush. Write-allocate.
    WriteBack,
    /// Every store also writes the word through to memory; lines are never
    /// dirty. No-write-allocate (store misses bypass the cache), the common
    /// pairing and the one that produces the paper's "excessive amount of
    /// traffic" behaviour.
    WriteThrough,
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CachePolicy::WriteBack => write!(f, "WB"),
            CachePolicy::WriteThrough => write!(f, "WT"),
        }
    }
}

/// Error constructing a [`CacheConfig`] with unusable geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCacheConfigError {
    total_bytes: usize,
    ways: usize,
    reason: &'static str,
}

impl fmt::Display for InvalidCacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cache geometry ({} bytes, {} ways): {}",
            self.total_bytes, self.ways, self.reason
        )
    }
}

impl std::error::Error for InvalidCacheConfigError {}

/// L1 cache geometry: total size, associativity and write policy.
/// Line size is fixed at 16 bytes per the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    total_bytes: usize,
    ways: usize,
    policy: CachePolicy,
}

impl CacheConfig {
    /// Default associativity used throughout the reproduction.
    pub const DEFAULT_WAYS: usize = 2;

    /// The cache sizes swept by the paper's exploration (2 kB..64 kB).
    pub const PAPER_SIZES: [usize; 6] =
        [2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024];

    /// Create a 2-way cache of `total_bytes` with the given policy.
    ///
    /// # Errors
    ///
    /// See [`CacheConfig::with_ways`].
    pub fn new(total_bytes: usize, policy: CachePolicy) -> Result<Self, InvalidCacheConfigError> {
        Self::with_ways(total_bytes, Self::DEFAULT_WAYS, policy)
    }

    /// Create a cache with explicit associativity.
    ///
    /// # Errors
    ///
    /// The total size must be a power of two, at least `ways` lines big,
    /// and `ways` must be a positive power of two (a hardware indexable
    /// geometry).
    pub fn with_ways(
        total_bytes: usize,
        ways: usize,
        policy: CachePolicy,
    ) -> Result<Self, InvalidCacheConfigError> {
        let err = |reason| InvalidCacheConfigError { total_bytes, ways, reason };
        if ways == 0 || !ways.is_power_of_two() {
            return Err(err("ways must be a positive power of two"));
        }
        if total_bytes == 0 || !total_bytes.is_power_of_two() {
            return Err(err("total size must be a positive power of two"));
        }
        if total_bytes < ways * LINE_BYTES {
            return Err(err("size smaller than one line per way"));
        }
        Ok(CacheConfig { total_bytes, ways, policy })
    }

    /// Total capacity in bytes.
    pub const fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        self.total_bytes / LINE_BYTES / self.ways
    }

    /// Write policy.
    pub const fn policy(&self) -> CachePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_paper_sizes() {
        for size in CacheConfig::PAPER_SIZES {
            let cfg = CacheConfig::new(size, CachePolicy::WriteBack).unwrap();
            assert_eq!(cfg.total_bytes(), size);
            assert_eq!(cfg.sets() * cfg.ways() * LINE_BYTES, size);
        }
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(CacheConfig::new(0, CachePolicy::WriteBack).is_err());
        assert!(CacheConfig::new(3000, CachePolicy::WriteBack).is_err());
        assert!(CacheConfig::with_ways(1024, 3, CachePolicy::WriteBack).is_err());
        assert!(CacheConfig::with_ways(16, 2, CachePolicy::WriteBack).is_err());
    }

    #[test]
    fn fully_associative_allowed() {
        let cfg = CacheConfig::with_ways(256, 16, CachePolicy::WriteThrough).unwrap();
        assert_eq!(cfg.sets(), 1);
        assert_eq!(cfg.policy().to_string(), "WT");
    }

    #[test]
    fn policy_display() {
        assert_eq!(CachePolicy::WriteBack.to_string(), "WB");
    }
}
