//! Property test: an L1 cache in front of a flat backing store must be
//! observationally equivalent to the flat store alone, for any sequence of
//! word loads and stores, under both write policies — provided the bridge
//! contract (evict → fill → retry) is honoured and dirty lines are flushed
//! before the final comparison.

use medea_cache::{
    CacheConfig, CachePolicy, FlushOutcome, MemSideOp, SetAssocCache, StoreOutcome, Victim,
    LINE_BYTES, WORDS_PER_LINE,
};
use proptest::prelude::*;

const MEM_WORDS: usize = 256; // 1 KiB of modeled memory

#[derive(Debug, Clone, Copy)]
enum Op {
    Load(u32),
    Store(u32, u32),
    Flush(u32),
    Invalidate(u32),
}

fn word_addr() -> impl Strategy<Value = u32> {
    (0..MEM_WORDS as u32).prop_map(|w| w * 4)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        word_addr().prop_map(Op::Load),
        (word_addr(), any::<u32>()).prop_map(|(a, v)| Op::Store(a, v)),
        word_addr().prop_map(Op::Flush),
        word_addr().prop_map(Op::Invalidate),
    ]
}

/// The "bridge" of this harness: services cache misses against `mem`.
struct Harness {
    cache: SetAssocCache,
    mem: Vec<u32>,
}

impl Harness {
    fn new(cfg: CacheConfig) -> Self {
        Harness { cache: SetAssocCache::new(cfg), mem: vec![0; MEM_WORDS] }
    }

    fn apply_mem_op(&mut self, op: MemSideOp) {
        match op {
            MemSideOp::BlockRead { .. } => unreachable!("reads handled inline"),
            MemSideOp::BlockWrite { line, data } => {
                for (i, w) in data.iter().enumerate() {
                    self.mem[line as usize / 4 + i] = *w;
                }
            }
            MemSideOp::SingleWrite { addr, data } => {
                self.mem[addr as usize / 4] = data;
            }
        }
    }

    fn writeback(&mut self, v: Victim) {
        self.apply_mem_op(MemSideOp::BlockWrite { line: v.line, data: v.data });
    }

    fn read_line(&self, line: u32) -> [u32; WORDS_PER_LINE] {
        let base = line as usize / 4;
        [self.mem[base], self.mem[base + 1], self.mem[base + 2], self.mem[base + 3]]
    }

    fn allocate(&mut self, addr: u32) {
        let line = addr & !(LINE_BYTES as u32 - 1);
        if let Some(victim) = self.cache.evict_for(line) {
            self.writeback(victim);
        }
        let data = self.read_line(line);
        self.cache.fill_line(line, data);
    }

    fn load(&mut self, addr: u32) -> u32 {
        if let Some(v) = self.cache.load_word(addr) {
            return v;
        }
        self.allocate(addr);
        self.cache.load_word(addr).expect("line just filled")
    }

    fn store(&mut self, addr: u32, value: u32) {
        match self.cache.store_word(addr, value) {
            StoreOutcome::Absorbed => {}
            StoreOutcome::WriteThrough => {
                self.apply_mem_op(MemSideOp::SingleWrite { addr, data: value });
            }
            StoreOutcome::NeedsAllocate => {
                self.allocate(addr);
                match self.cache.store_word(addr, value) {
                    StoreOutcome::Absorbed => {}
                    other => panic!("retry after allocate returned {other:?}"),
                }
            }
        }
    }

    fn flush(&mut self, addr: u32) {
        if let FlushOutcome::Writeback(v) = self.cache.flush_line(addr) {
            self.writeback(v);
        }
    }

    /// Flush everything so `mem` holds the architectural state.
    fn drain(&mut self) {
        let dirty: Vec<Victim> = self.cache.dirty_lines().collect();
        for v in dirty {
            self.flush(v.line);
        }
    }
}

fn run_equivalence(policy: CachePolicy, cache_bytes: usize, ops: Vec<Op>) {
    let cfg = CacheConfig::new(cache_bytes, policy).unwrap();
    let mut harness = Harness::new(cfg);
    let mut reference = vec![0u32; MEM_WORDS];
    for op in ops {
        match op {
            Op::Load(a) => {
                let got = harness.load(a);
                assert_eq!(got, reference[a as usize / 4], "load {a:#x} under {policy}");
            }
            Op::Store(a, v) => {
                harness.store(a, v);
                reference[a as usize / 4] = v;
            }
            Op::Flush(a) => harness.flush(a),
            Op::Invalidate(a) => {
                // Invalidating a dirty line discards the update — the
                // documented DII hazard — so the single-actor model first
                // flushes to stay architecturally equivalent.
                harness.flush(a);
                harness.cache.invalidate_line(a);
            }
        }
    }
    harness.drain();
    assert_eq!(harness.mem, reference, "post-drain memory image under {policy}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_back_equivalent(ops in proptest::collection::vec(op(), 1..400)) {
        run_equivalence(CachePolicy::WriteBack, 64, ops.clone());
        run_equivalence(CachePolicy::WriteBack, 256, ops);
    }

    #[test]
    fn write_through_equivalent(ops in proptest::collection::vec(op(), 1..400)) {
        run_equivalence(CachePolicy::WriteThrough, 64, ops.clone());
        run_equivalence(CachePolicy::WriteThrough, 256, ops);
    }

    #[test]
    fn capacity_never_exceeded(ops in proptest::collection::vec(op(), 1..300)) {
        let cfg = CacheConfig::new(64, CachePolicy::WriteBack).unwrap();
        let mut h = Harness::new(cfg);
        let max_lines = 64 / LINE_BYTES;
        for op in ops {
            match op {
                Op::Load(a) => { h.load(a); }
                Op::Store(a, v) => h.store(a, v),
                Op::Flush(a) => h.flush(a),
                Op::Invalidate(a) => { h.cache.invalidate_line(a); }
            }
            prop_assert!(h.cache.resident_lines() <= max_lines);
        }
    }

    #[test]
    fn write_through_has_no_dirty_lines(ops in proptest::collection::vec(op(), 1..300)) {
        let cfg = CacheConfig::new(128, CachePolicy::WriteThrough).unwrap();
        let mut h = Harness::new(cfg);
        for op in ops {
            match op {
                Op::Load(a) => { h.load(a); }
                Op::Store(a, v) => h.store(a, v),
                Op::Flush(a) => h.flush(a),
                Op::Invalidate(a) => { h.cache.invalidate_line(a); }
            }
            prop_assert_eq!(h.cache.dirty_lines().count(), 0);
        }
    }
}
