//! The request/response protocol between application kernels and the PE
//! execution engine.
//!
//! Every architectural action a kernel takes is one [`PeRequest`]; the
//! engine simulates its cycle cost and hardware side effects and answers
//! with a [`PeResponse`]. This is the boundary that replaces the Xtensa
//! instruction stream (DESIGN.md §2): compute *between* requests is free
//! (it stands for work already charged via [`PeRequest::Compute`] or the
//! FP requests), everything observable costs simulated time.

use crate::tie::Packet;
use medea_cache::Addr;
use medea_sim::{ids::NodeId, Cycle};
use medea_trace::KernelOp;

/// One architectural operation issued by a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum PeRequest {
    /// Charge `cycles` of local computation (integer ops, loop control,
    /// local-memory accesses — anything not modeled individually).
    Compute {
        /// Cycles to charge (minimum 1 is enforced).
        cycles: Cycle,
    },
    /// Double-precision add: returns `a + b` after the FP-emulation delay.
    FpAdd {
        /// Left operand.
        a: f64,
        /// Right operand.
        b: f64,
    },
    /// Double-precision subtract: returns `a - b`.
    FpSub {
        /// Left operand.
        a: f64,
        /// Right operand.
        b: f64,
    },
    /// Double-precision multiply: returns `a * b`.
    FpMul {
        /// Left operand.
        a: f64,
        /// Right operand.
        b: f64,
    },
    /// Double-precision divide: returns `a / b`.
    FpDiv {
        /// Dividend.
        a: f64,
        /// Divisor.
        b: f64,
    },
    /// Load a word through the L1 cache.
    LoadWord {
        /// Word-aligned global address.
        addr: Addr,
    },
    /// Store a word through the L1 cache.
    StoreWord {
        /// Word-aligned global address.
        addr: Addr,
        /// Value to store.
        value: u32,
    },
    /// Load a double (two words) through the L1 cache.
    LoadF64 {
        /// Word-aligned global address of the low word.
        addr: Addr,
    },
    /// Store a double (two words) through the L1 cache.
    StoreF64 {
        /// Word-aligned global address of the low word.
        addr: Addr,
        /// Value to store.
        value: f64,
    },
    /// Flush the L1 line containing `addr` (write back if dirty; the
    /// producer-side coherence action of §II-E).
    FlushLine {
        /// Any address within the line.
        addr: Addr,
    },
    /// DII-invalidate the L1 line containing `addr` (the consumer-side
    /// coherence action of §II-E).
    InvalidateLine {
        /// Any address within the line.
        addr: Addr,
    },
    /// Read a word bypassing the cache (uncacheable shared access).
    UncachedLoad {
        /// Word-aligned global address.
        addr: Addr,
    },
    /// Write a word bypassing the cache.
    UncachedStore {
        /// Word-aligned global address.
        addr: Addr,
        /// Value to store.
        value: u32,
    },
    /// Acquire the MPMMU lock on a shared-memory word (blocks, with
    /// automatic Nack-retry, until granted).
    Lock {
        /// Word address to lock.
        addr: Addr,
    },
    /// Release the MPMMU lock on a shared-memory word.
    Unlock {
        /// Word address to unlock.
        addr: Addr,
    },
    /// Send one logical message packet (≤ 16 words) to another node's TIE
    /// interface. Completes when the last flit enters the arbiter
    /// (1 flit/cycle — the TIE port's peak throughput).
    Send {
        /// Destination node.
        dest: NodeId,
        /// Payload words (1..=16).
        payload: Vec<u32>,
    },
    /// Block until a message packet arrives (from `from` if given), then
    /// return it. Charges one cycle per payload word for the
    /// register-to-local-memory copy (Fig. 2-b).
    Recv {
        /// Optional source filter (node index).
        from: Option<u8>,
    },
    /// Non-blocking receive.
    TryRecv {
        /// Optional source filter (node index).
        from: Option<u8>,
    },
    /// Read the current cycle counter (the CCOUNT register equivalent).
    Now,
    /// Kernel-level trace marker delimiting an eMPI operation span.
    ///
    /// Consumed by the engine in **zero simulated cycles** and counted in
    /// **no statistic** — a run's architectural results are bit-identical
    /// whether markers flow or not (pinned by the golden suite and the
    /// trace-equivalence property tests). The engine forwards the marker
    /// to the active trace sink; with tracing off it is discarded.
    TraceSpan {
        /// The operation being delimited.
        op: KernelOp,
        /// `true` opens the span, `false` closes it.
        begin: bool,
    },
    /// Kernel-level resilience counter update: the eMPI layer reports a
    /// recovery action (a retransmitted message or a NACK sent) so the
    /// engine can surface end-to-end recovery totals on `RunResult`.
    ///
    /// Like [`TraceSpan`](PeRequest::TraceSpan) this rides the existing
    /// request/response rendezvous but is consumed by the engine in
    /// **zero simulated cycles**; it touches only the dedicated
    /// resilience counters, never an architectural statistic, so runs
    /// without recovery events are bit-identical to the pre-fault engine.
    FaultNote {
        /// Messages retransmitted end-to-end after a NACK or timeout.
        retransmits: u32,
        /// Retransmission requests (NACKs) sent to a peer.
        nacks: u32,
    },
}

/// Engine answer to a [`PeRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum PeResponse {
    /// Operation completed with no data.
    Unit,
    /// A loaded word.
    Word(u32),
    /// An FP result or loaded double.
    F64(f64),
    /// A received message packet.
    Packet(Packet),
    /// Result of a non-blocking receive.
    MaybePacket(Option<Packet>),
    /// Current cycle count.
    Time(Cycle),
}

/// Split a double into its (low, high) 32-bit words — the order the two
/// word transactions use on the 32-bit data path.
pub fn f64_to_words(v: f64) -> (u32, u32) {
    let bits = v.to_bits();
    (bits as u32, (bits >> 32) as u32)
}

/// Reassemble a double from its (low, high) words.
pub fn words_to_f64(lo: u32, hi: u32) -> f64 {
    f64::from_bits((hi as u64) << 32 | lo as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_word_roundtrip() {
        for v in [0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            let (lo, hi) = f64_to_words(v);
            assert_eq!(words_to_f64(lo, hi).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn nan_preserved_bitwise() {
        let v = f64::NAN;
        let (lo, hi) = f64_to_words(v);
        assert!(words_to_f64(lo, hi).is_nan());
    }
}
