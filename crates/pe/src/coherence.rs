//! The L1 side of the directory-MESI option: a probe responder.
//!
//! Under [`medea_cache::CoherenceMode::MesiDirectory`] the home banks send
//! `Inv` / `Fetch` / `FetchInv` probes to L1s over the NoC (the same
//! deflection fabric every other packet rides). The PE cannot answer them
//! through the pif2NoC bridge — the bridge is busy with the PE's *own*
//! transaction, and a probe can arrive precisely while that transaction is
//! what the home is waiting on. [`ProbeResponder`] is therefore a separate
//! tiny engine next to the bridge: probes queue in arrival order, one is
//! served per cycle, and replies drain through the arbiter's bridge port at
//! one flit per cycle (after the bridge's own output, which keeps the
//! fault-free DII schedule untouched — under DII both queues are provably
//! empty forever).
//!
//! # The in-flight writeback window
//!
//! The one true race of the protocol: the PE evicts a dirty line (`PutM`
//! in flight) while the home — which still believes this PE owns the line —
//! serializes another node's `GetM` first and sends us `FetchInv`. The line
//! is already gone from the cache, but its data sits in the responder's
//! writeback buffer ([`ProbeResponder::begin_writeback`]) until the PutM
//! handshake completes; the responder answers the probe from that buffer,
//! and the home later discards the stale PutM stream. Served-from-buffer
//! probes count as [`CoherenceStats::probe_writebacks`] like any other
//! dirty-data answer.

use medea_cache::{Addr, CoherenceStats, FlushOutcome, MesiState, SetAssocCache, WORDS_PER_LINE};
use medea_noc::coord::Topology;
use medea_noc::flit::{burst_code, CohOp, Flit, PacketKind, SubKind};
use medea_sim::ids::NodeId;
use std::collections::{HashMap, VecDeque};

/// The per-PE coherence probe responder (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ProbeResponder {
    /// Probes awaiting service, in arrival order.
    inbox: VecDeque<Flit>,
    /// Replies (and fire-and-forget `Unblock`s) awaiting injection.
    outbox: VecDeque<Flit>,
    /// Dirty line whose PutM handshake is in flight: `(line, data)`.
    wb: Option<(Addr, [u32; WORDS_PER_LINE])>,
    stats: CoherenceStats,
}

impl ProbeResponder {
    /// A fresh responder with empty queues.
    pub fn new() -> Self {
        ProbeResponder::default()
    }

    /// L1-side coherence counters (invalidations received, downgrades,
    /// probe writebacks).
    pub const fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Queue a probe delivered by the NoC.
    pub fn push_probe(&mut self, flit: Flit) {
        debug_assert_eq!(flit.kind(), PacketKind::Coherence);
        debug_assert_eq!(flit.sub(), SubKind::Request);
        self.inbox.push_back(flit);
    }

    /// Queue an outbound coherence flit built elsewhere (the `Unblock`
    /// the PE fires after installing a fill).
    pub fn push_out(&mut self, flit: Flit) {
        self.outbox.push_back(flit);
    }

    /// Next reply to inject, if any.
    pub fn pop_out(&mut self) -> Option<Flit> {
        self.outbox.pop_front()
    }

    /// Whether a reply waits for injection.
    pub fn has_out(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// Whether the responder holds no pending work (fast-forward and
    /// deadlock-detection predicate; always true under DII).
    pub fn is_idle(&self) -> bool {
        self.inbox.is_empty() && self.outbox.is_empty()
    }

    /// Arm the writeback buffer for a dirty eviction whose PutM is now in
    /// flight.
    pub fn begin_writeback(&mut self, line: Addr, data: [u32; WORDS_PER_LINE]) {
        debug_assert!(self.wb.is_none(), "one eviction in flight at a time");
        self.wb = Some((line, data));
    }

    /// The PutM handshake completed; the home owns the data now.
    pub fn end_writeback(&mut self) {
        self.wb = None;
    }

    /// Serve at most one queued probe against `cache` + `mesi`, queueing
    /// the reply. Returns whether a probe was served.
    pub fn service(
        &mut self,
        topo: &Topology,
        src_id: u8,
        cache: &mut SetAssocCache,
        mesi: &mut HashMap<Addr, MesiState>,
    ) -> bool {
        let Some(probe) = self.inbox.pop_front() else {
            return false;
        };
        let op = probe.coh_op().expect("probes carry an opcode");
        let line = probe.payload();
        let home = topo.coord_of(NodeId::new(probe.src_id() as u16));
        match op {
            CohOp::Inv => {
                // Ack even when the line is absent (silently evicted):
                // the home's sharer list is conservative by design.
                self.stats.invalidations_received += 1;
                cache.invalidate_line(line);
                mesi.remove(&line);
                self.outbox.push_back(Flit::coherence(
                    home,
                    SubKind::Ack,
                    CohOp::InvAck,
                    src_id,
                    line,
                ));
            }
            CohOp::Fetch | CohOp::FetchInv => {
                self.stats.downgrades += 1;
                // Dirty data lives either in the in-flight writeback
                // buffer (eviction racing this probe) or in the cache.
                let flushed = match self.wb {
                    Some((l, data)) if l == line => Some(data),
                    _ => match cache.flush_line(line) {
                        FlushOutcome::Writeback(v) => Some(v.data),
                        FlushOutcome::Clean => None,
                    },
                };
                if op == CohOp::FetchInv {
                    cache.invalidate_line(line);
                    mesi.remove(&line);
                } else if cache.probe(line) {
                    // Fetch = downgrade: the line survives, but only
                    // shared — a silent S→M upgrade would be invisible
                    // to the directory.
                    mesi.insert(line, MesiState::Shared);
                }
                match flushed {
                    Some(data) => {
                        self.stats.probe_writebacks += 1;
                        for (i, w) in data.iter().enumerate() {
                            self.outbox.push_back(Flit::new(
                                home,
                                PacketKind::Coherence,
                                SubKind::Data,
                                i as u8,
                                burst_code(WORDS_PER_LINE),
                                src_id,
                                *w,
                            ));
                        }
                    }
                    None => self.outbox.push_back(Flit::coherence(
                        home,
                        SubKind::Ack,
                        CohOp::CleanAck,
                        src_id,
                        line,
                    )),
                }
            }
            other => panic!("unexpected coherence probe {other} at a PE"),
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cache::{CacheConfig, CachePolicy};

    fn setup() -> (ProbeResponder, SetAssocCache, HashMap<Addr, MesiState>, Topology) {
        let cache = SetAssocCache::new(CacheConfig::new(2048, CachePolicy::WriteBack).unwrap());
        (ProbeResponder::new(), cache, HashMap::new(), Topology::paper_4x4())
    }

    fn probe(op: CohOp, line: Addr) -> Flit {
        // Probe from home bank at node 0 to this PE.
        Flit::coherence(medea_noc::coord::Coord::new(1, 1), SubKind::Request, op, 0, line)
    }

    #[test]
    fn inv_drops_line_and_acks() {
        let (mut r, mut cache, mut mesi, topo) = setup();
        cache.fill_line(0x40, [1; 4]);
        mesi.insert(0x40, MesiState::Shared);
        r.push_probe(probe(CohOp::Inv, 0x40));
        assert!(r.service(&topo, 5, &mut cache, &mut mesi));
        assert!(!cache.probe(0x40));
        assert!(mesi.is_empty());
        let ack = r.pop_out().unwrap();
        assert_eq!(ack.coh_op(), Some(CohOp::InvAck));
        assert_eq!(ack.dest(), topo.coord_of(NodeId::new(0)));
        assert_eq!(r.stats().invalidations_received, 1);
    }

    #[test]
    fn inv_of_absent_line_still_acks() {
        let (mut r, mut cache, mut mesi, topo) = setup();
        r.push_probe(probe(CohOp::Inv, 0x40));
        r.service(&topo, 5, &mut cache, &mut mesi);
        assert_eq!(r.pop_out().unwrap().coh_op(), Some(CohOp::InvAck));
    }

    #[test]
    fn fetch_flushes_dirty_line_and_downgrades_to_shared() {
        let (mut r, mut cache, mut mesi, topo) = setup();
        cache.fill_line(0x40, [1, 2, 3, 4]);
        cache.store_word(0x44, 99);
        mesi.insert(0x40, MesiState::Modified);
        r.push_probe(probe(CohOp::Fetch, 0x40));
        r.service(&topo, 5, &mut cache, &mut mesi);
        let flits: Vec<Flit> = std::iter::from_fn(|| r.pop_out()).collect();
        assert_eq!(flits.len(), 4, "dirty line streams back");
        assert_eq!(flits[1].payload(), 99);
        assert!(cache.probe(0x40), "Fetch keeps the line resident");
        assert_eq!(mesi.get(&0x40), Some(&MesiState::Shared));
        assert_eq!(r.stats().probe_writebacks, 1);
        assert_eq!(r.stats().downgrades, 1);
    }

    #[test]
    fn fetchinv_of_clean_line_clean_acks_and_invalidates() {
        let (mut r, mut cache, mut mesi, topo) = setup();
        cache.fill_line(0x40, [7; 4]);
        mesi.insert(0x40, MesiState::Exclusive);
        r.push_probe(probe(CohOp::FetchInv, 0x40));
        r.service(&topo, 5, &mut cache, &mut mesi);
        assert_eq!(r.pop_out().unwrap().coh_op(), Some(CohOp::CleanAck));
        assert!(!cache.probe(0x40));
        assert!(mesi.is_empty());
    }

    #[test]
    fn fetchinv_during_eviction_answers_from_writeback_buffer() {
        let (mut r, mut cache, mut mesi, topo) = setup();
        // Line already evicted locally; PutM in flight with its data.
        r.begin_writeback(0x40, [0xA, 0xB, 0xC, 0xD]);
        r.push_probe(probe(CohOp::FetchInv, 0x40));
        r.service(&topo, 5, &mut cache, &mut mesi);
        let flits: Vec<Flit> = std::iter::from_fn(|| r.pop_out()).collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[3].payload(), 0xD);
        assert_eq!(r.stats().probe_writebacks, 1);
        r.end_writeback();
        assert!(r.is_idle());
    }

    #[test]
    fn one_probe_served_per_call() {
        let (mut r, mut cache, mut mesi, topo) = setup();
        r.push_probe(probe(CohOp::Inv, 0x40));
        r.push_probe(probe(CohOp::Inv, 0x80));
        assert!(r.service(&topo, 5, &mut cache, &mut mesi));
        assert_eq!(r.pop_out().unwrap().payload(), 0x40);
        assert!(r.pop_out().is_none(), "second probe still queued");
        assert!(r.service(&topo, 5, &mut cache, &mut mesi));
        assert_eq!(r.pop_out().unwrap().payload(), 0x80);
        assert!(!r.service(&topo, 5, &mut cache, &mut mesi));
    }
}
