//! The pif2NoC bridge (§II-B): translates PIF bus transactions into NoC
//! flit sequences and back.
//!
//! "The bridge is capable of single read/write operations as well as block
//! transfers. The translation of a specific shared-memory address into a
//! NoC address depends on a configuration memory inside the bridge [...]
//! In the simplest Medea implementation, all the memory mapped address
//! space is located at the unique MPMMU of the system, thus the
//! corresponding NoC address is hardwired." We model that configuration
//! memory as a [`BankMap`]: each transaction is routed to the NoC address
//! of the MPMMU bank owning its line. A single-bank map reproduces the
//! paper's hardwired lookup exactly; multi-bank maps distribute the
//! shared-memory traffic.
//!
//! Block-read responses "may arrive out-of-order", so the bridge contains a
//! reorder buffer "which currently has a depth of four words" — one cache
//! line. Responses are keyed by their source bank (the `src-id` a bank
//! stamps on every response is its node index): data from any bank other
//! than the one the in-flight transaction targets is a protocol violation.
//!
//! Lock transactions answered with a Nack (lock busy) are retried
//! automatically after a configurable backoff; the PE stays blocked, which
//! is precisely the serialization cost of shared-memory synchronization the
//! paper measures against message passing.

use medea_cache::{Addr, WORDS_PER_LINE};
use medea_mem::BankMap;
use medea_noc::coord::Coord;
use medea_noc::flit::{burst_code, CohOp, Flit, PacketKind, SubKind};
use medea_sim::stats::Counter;
use medea_sim::Cycle;
use std::collections::VecDeque;

/// A PIF transaction submitted to the bridge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BridgeOp {
    /// Read one word.
    SingleRead {
        /// Word address.
        addr: Addr,
    },
    /// Write one word.
    SingleWrite {
        /// Word address.
        addr: Addr,
        /// Value to write.
        value: u32,
    },
    /// Read one cache line.
    BlockRead {
        /// Line-aligned address.
        line: Addr,
    },
    /// Write one cache line.
    BlockWrite {
        /// Line-aligned address.
        line: Addr,
        /// Line data.
        data: [u32; WORDS_PER_LINE],
    },
    /// Acquire the lock on a shared-memory word (retries until granted).
    Lock {
        /// Word address.
        addr: Addr,
    },
    /// Release the lock on a shared-memory word.
    Unlock {
        /// Word address.
        addr: Addr,
    },
    /// MESI: fetch one line for reading (`GetS` to the home directory).
    CohGetS {
        /// Line-aligned address.
        line: Addr,
    },
    /// MESI: fetch one line for writing (`GetM` — the home invalidates
    /// every other copy before the fill arrives).
    CohGetM {
        /// Line-aligned address.
        line: Addr,
    },
    /// MESI: write a dirty evicted line back to its home (`PutM`; the
    /// same grant → stream → ack handshake as a block write).
    CohPutM {
        /// Line-aligned address.
        line: Addr,
        /// Line data.
        data: [u32; WORDS_PER_LINE],
    },
}

/// Completion value of a bridge transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeResult {
    /// Single-read data.
    Word(u32),
    /// Block-read data, in address order.
    Line([u32; WORDS_PER_LINE]),
    /// Write committed (final ack received).
    WriteDone,
    /// Lock acquired.
    LockGranted,
    /// Unlock acknowledged.
    UnlockDone,
    /// Unlock refused by the MPMMU (ownership violation — a software bug).
    UnlockRejected,
    /// MESI fill: line data plus the state the directory granted
    /// (`GrantS`/`GrantE`/`GrantM`).
    CohLine {
        /// Line data, in address order.
        data: [u32; WORDS_PER_LINE],
        /// The granted-state opcode.
        grant: CohOp,
    },
}

/// Bridge configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeConfig {
    /// Cycles to wait after a lock Nack before retrying.
    pub lock_retry_backoff: Cycle,
    /// Cycles to wait for a read response before re-issuing the request
    /// (0 disables the retry path — the default, matching the paper's
    /// fault-free bridge exactly).
    ///
    /// Only *read* transactions retry: a re-issued read is idempotent,
    /// while re-running a write or lock handshake could double-apply a
    /// side effect. With retry enabled the bridge also tolerates stale
    /// responses of a superseded attempt (counted, dropped) instead of
    /// treating them as protocol violations.
    pub response_timeout: Cycle,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig { lock_retry_backoff: 16, response_timeout: 0 }
    }
}

/// Bridge statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BridgeStats {
    /// Transactions completed.
    pub transactions: Counter,
    /// Lock retries caused by Nacks.
    pub lock_retries: Counter,
    /// Block-read data flits that arrived out of address order.
    pub out_of_order_flits: Counter,
    /// Read requests re-issued after a response timeout.
    pub retries: Counter,
    /// Response flits of a superseded read attempt, dropped benignly
    /// (only possible while `response_timeout` is enabled).
    pub stale_responses: Counter,
}

#[derive(Debug, Clone)]
enum State {
    Idle,
    AwaitSingleData,
    AwaitBlockData {
        reorder: [Option<u32>; WORDS_PER_LINE],
        got: usize,
        next_expected: u8,
    },
    AwaitGrant {
        kind: PacketKind,
        data: VecDeque<Flit>,
    },
    Streaming {
        data: VecDeque<Flit>,
    },
    AwaitFinalAck,
    AwaitLockAck {
        addr: Addr,
    },
    LockBackoff {
        until: Cycle,
        addr: Addr,
    },
    AwaitUnlockAck,
    /// MESI fill in flight: 4 data words plus the grant ack, in any
    /// arrival order (the deflection fabric reorders freely).
    AwaitCohFill {
        reorder: [Option<u32>; WORDS_PER_LINE],
        got: usize,
        grant: Option<CohOp>,
    },
}

/// The pif2NoC bridge of one processing element.
#[derive(Debug, Clone)]
pub struct Pif2NocBridge {
    banks: BankMap,
    /// Destination of the in-flight transaction (the owning bank's NoC
    /// coordinate); meaningless while idle.
    home: Coord,
    /// Source id the in-flight transaction's responses must carry (the
    /// owning bank's node index) — the reorder-buffer key.
    home_src: u8,
    src_id: u8,
    cfg: BridgeConfig,
    state: State,
    out_slot: Option<Flit>,
    result: Option<BridgeResult>,
    /// The in-flight *read* op, recorded only when `response_timeout` is
    /// enabled, so a timed-out request can be re-issued verbatim.
    retry_op: Option<BridgeOp>,
    /// Cycle at which the in-flight read is declared lost; armed by
    /// `tick` once the request has left the output latch, re-armed on
    /// every block-read word (progress resets the clock).
    deadline: Option<Cycle>,
    stats: BridgeStats,
}

impl Pif2NocBridge {
    /// Build a bridge for the PE with application-level id `src_id`
    /// (its node index), routing transactions through `banks`.
    pub fn new(banks: BankMap, src_id: u8, cfg: BridgeConfig) -> Self {
        Pif2NocBridge {
            banks,
            home: banks.coord_of_bank(0),
            home_src: banks.node_of_bank(0).index() as u8,
            src_id,
            cfg,
            state: State::Idle,
            out_slot: None,
            result: None,
            retry_op: None,
            deadline: None,
            stats: BridgeStats::default(),
        }
    }

    /// Statistics.
    pub const fn stats(&self) -> &BridgeStats {
        &self.stats
    }

    /// Whether a transaction is in flight.
    pub fn is_busy(&self) -> bool {
        !matches!(self.state, State::Idle) || self.out_slot.is_some()
    }

    /// If the bridge is only waiting for a lock backoff to expire, the
    /// expiry cycle (fast-forward hint).
    pub fn backoff_until(&self) -> Option<Cycle> {
        match self.state {
            State::LockBackoff { until, .. } if self.out_slot.is_none() => Some(until),
            // A read waiting out its response timeout is also a pure
            // timer once the system is otherwise quiet: if the response
            // was dropped, nothing happens before the retry fires, so
            // the engine may fast-forward to the deadline.
            State::AwaitSingleData | State::AwaitBlockData { .. } if self.out_slot.is_none() => {
                self.deadline
            }
            _ => None,
        }
    }

    /// Start a transaction.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already in flight — the PE blocks on the
    /// bridge, so overlap is an engine bug.
    pub fn start(&mut self, op: BridgeOp) {
        assert!(!self.is_busy(), "bridge transaction overlap");
        self.retry_op = match op {
            BridgeOp::SingleRead { .. } | BridgeOp::BlockRead { .. }
                if self.cfg.response_timeout > 0 =>
            {
                Some(op)
            }
            _ => None,
        };
        self.deadline = None;
        let target = match op {
            BridgeOp::SingleRead { addr }
            | BridgeOp::SingleWrite { addr, .. }
            | BridgeOp::Lock { addr }
            | BridgeOp::Unlock { addr } => addr,
            BridgeOp::BlockRead { line }
            | BridgeOp::BlockWrite { line, .. }
            | BridgeOp::CohGetS { line }
            | BridgeOp::CohGetM { line }
            | BridgeOp::CohPutM { line, .. } => line,
        };
        self.home = self.banks.home_coord(target);
        self.home_src = self.banks.home_src_id(target);
        let req = |kind: PacketKind, addr: Addr| Flit::request(self.home, kind, self.src_id, addr);
        match op {
            BridgeOp::SingleRead { addr } => {
                self.out_slot = Some(req(PacketKind::SingleRead, addr));
                self.state = State::AwaitSingleData;
            }
            BridgeOp::BlockRead { line } => {
                self.out_slot = Some(req(PacketKind::BlockRead, line));
                self.state = State::AwaitBlockData {
                    reorder: [None; WORDS_PER_LINE],
                    got: 0,
                    next_expected: 0,
                };
            }
            BridgeOp::SingleWrite { addr, value } => {
                self.out_slot = Some(req(PacketKind::SingleWrite, addr));
                let data =
                    VecDeque::from(vec![self.data_flit(PacketKind::SingleWrite, 0, 1, value)]);
                self.state = State::AwaitGrant { kind: PacketKind::SingleWrite, data };
            }
            BridgeOp::BlockWrite { line, data } => {
                self.out_slot = Some(req(PacketKind::BlockWrite, line));
                let flits = data
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        self.data_flit(PacketKind::BlockWrite, i as u8, WORDS_PER_LINE, *w)
                    })
                    .collect();
                self.state = State::AwaitGrant { kind: PacketKind::BlockWrite, data: flits };
            }
            BridgeOp::Lock { addr } => {
                self.out_slot = Some(req(PacketKind::Lock, addr));
                self.state = State::AwaitLockAck { addr };
            }
            BridgeOp::Unlock { addr } => {
                self.out_slot = Some(req(PacketKind::Unlock, addr));
                self.state = State::AwaitUnlockAck;
            }
            BridgeOp::CohGetS { line } | BridgeOp::CohGetM { line } => {
                let op =
                    if matches!(op, BridgeOp::CohGetS { .. }) { CohOp::GetS } else { CohOp::GetM };
                self.out_slot =
                    Some(Flit::coherence(self.home, SubKind::Request, op, self.src_id, line));
                self.state =
                    State::AwaitCohFill { reorder: [None; WORDS_PER_LINE], got: 0, grant: None };
            }
            BridgeOp::CohPutM { line, data } => {
                self.out_slot = Some(Flit::coherence(
                    self.home,
                    SubKind::Request,
                    CohOp::PutM,
                    self.src_id,
                    line,
                ));
                let flits = data
                    .iter()
                    .enumerate()
                    .map(|(i, w)| {
                        self.data_flit(PacketKind::Coherence, i as u8, WORDS_PER_LINE, *w)
                    })
                    .collect();
                self.state = State::AwaitGrant { kind: PacketKind::Coherence, data: flits };
            }
        }
    }

    /// NoC coordinate of the bank owning `addr` — for fire-and-forget
    /// coherence traffic (the `Unblock`) built outside a bridge
    /// transaction.
    pub fn home_coord(&self, addr: Addr) -> Coord {
        self.banks.home_coord(addr)
    }

    fn data_flit(&self, kind: PacketKind, seq: u8, total: usize, value: u32) -> Flit {
        Flit::new(self.home, kind, SubKind::Data, seq, burst_code(total), self.src_id, value)
    }

    /// Take the flit waiting at the arbiter-facing output latch, if any.
    /// Call only when the arbiter has accepted to take it.
    pub fn take_output(&mut self) -> Option<Flit> {
        let flit = self.out_slot.take();
        // If that was the last streamed data flit, the transaction is now
        // awaiting the final ack — which may race back before our next
        // tick, so transition immediately.
        if flit.is_some() {
            if let State::Streaming { data } = &self.state {
                if data.is_empty() {
                    self.state = State::AwaitFinalAck;
                }
            }
        }
        flit
    }

    /// Whether a flit waits at the output latch.
    pub fn has_output(&self) -> bool {
        self.out_slot.is_some()
    }

    /// Take the completed transaction's result, if ready.
    pub fn take_result(&mut self) -> Option<BridgeResult> {
        self.result.take()
    }

    /// Advance internal timers and streaming: call once per cycle.
    pub fn tick(&mut self, now: Cycle) {
        if self.retry_op.is_some() && self.out_slot.is_none() {
            match self.deadline {
                // The request is on the wire; start (or restart) the
                // response clock.
                None => self.deadline = Some(now + self.cfg.response_timeout),
                Some(d) if now >= d => {
                    self.stats.retries.inc();
                    self.deadline = None;
                    let op = self.retry_op.expect("checked above");
                    // Re-issue from scratch: any partially filled reorder
                    // buffer is abandoned (late words of the old attempt
                    // are dropped as stale).
                    self.state = State::Idle;
                    self.start(op);
                }
                Some(_) => {}
            }
        }
        match &mut self.state {
            State::LockBackoff { until, addr } if now >= *until && self.out_slot.is_none() => {
                let addr = *addr;
                self.out_slot = Some(Flit::request(self.home, PacketKind::Lock, self.src_id, addr));
                self.state = State::AwaitLockAck { addr };
            }
            State::Streaming { data } if self.out_slot.is_none() => match data.pop_front() {
                Some(flit) => self.out_slot = Some(flit),
                None => self.state = State::AwaitFinalAck,
            },
            _ => {}
        }
    }

    /// Deliver a shared-memory response flit ejected at this node.
    pub fn handle_response(&mut self, flit: Flit, now: Cycle) {
        debug_assert!(flit.kind().is_shared_memory(), "bridge receives SM flits only");
        // With the retry path enabled, a response of a superseded read
        // attempt can trail in at any point — from another bank, with the
        // wrong kind, into a slot already filled, or after the
        // transaction completed. Those are dropped as stale instead of
        // treated as protocol violations; without retries every one of
        // them still panics (a fault-free run must be protocol-exact).
        let resilient = self.cfg.response_timeout > 0;
        if resilient && flit.src_id() != self.home_src {
            self.stats.stale_responses.inc();
            return;
        }
        debug_assert_eq!(
            flit.src_id(),
            self.home_src,
            "response from a bank other than the transaction's home"
        );
        match std::mem::replace(&mut self.state, State::Idle) {
            State::AwaitSingleData => {
                if resilient
                    && (flit.kind() != PacketKind::SingleRead || flit.sub() != SubKind::Data)
                {
                    self.stats.stale_responses.inc();
                    self.state = State::AwaitSingleData;
                    return;
                }
                debug_assert_eq!(flit.kind(), PacketKind::SingleRead);
                debug_assert_eq!(flit.sub(), SubKind::Data);
                self.finish(BridgeResult::Word(flit.payload()));
            }
            State::AwaitBlockData { mut reorder, mut got, mut next_expected } => {
                if resilient && flit.kind() != PacketKind::BlockRead {
                    self.stats.stale_responses.inc();
                    self.state = State::AwaitBlockData { reorder, got, next_expected };
                    return;
                }
                debug_assert_eq!(flit.kind(), PacketKind::BlockRead);
                // The reorder buffer is keyed by source bank: block data
                // must come from the bank the read targeted.
                assert_eq!(
                    flit.src_id(),
                    self.home_src,
                    "block-read data from bank src {} while awaiting src {}",
                    flit.src_id(),
                    self.home_src
                );
                let seq = flit.seq() as usize;
                assert!(seq < WORDS_PER_LINE, "block-read seq {seq} beyond line");
                if reorder[seq].is_some() {
                    assert!(resilient, "duplicate block-read word {seq}");
                    // A word of the old attempt for a slot the new one
                    // already filled (or vice versa) — same address, so
                    // the value already latched is just as good.
                    self.stats.stale_responses.inc();
                    self.state = State::AwaitBlockData { reorder, got, next_expected };
                    return;
                }
                if flit.seq() != next_expected {
                    self.stats.out_of_order_flits.inc();
                }
                next_expected = next_expected.saturating_add(1);
                reorder[seq] = Some(flit.payload());
                got += 1;
                // Progress restarts the response clock.
                self.deadline = None;
                if got == WORDS_PER_LINE {
                    let mut line = [0u32; WORDS_PER_LINE];
                    for (i, w) in reorder.iter().enumerate() {
                        line[i] = w.expect("all words collected");
                    }
                    self.finish(BridgeResult::Line(line));
                } else {
                    self.state = State::AwaitBlockData { reorder, got, next_expected };
                }
            }
            State::AwaitGrant { kind, data } => {
                debug_assert_eq!(flit.kind(), kind);
                debug_assert_eq!(flit.sub(), SubKind::Ack, "grant expected");
                self.state = State::Streaming { data };
            }
            State::AwaitFinalAck => {
                debug_assert_eq!(flit.sub(), SubKind::Ack, "final ack expected");
                self.finish(BridgeResult::WriteDone);
            }
            State::AwaitLockAck { addr } => match flit.sub() {
                SubKind::Ack => self.finish(BridgeResult::LockGranted),
                SubKind::Nack => {
                    self.stats.lock_retries.inc();
                    self.state =
                        State::LockBackoff { until: now + self.cfg.lock_retry_backoff, addr };
                }
                other => panic!("lock response with subtype {other}"),
            },
            State::AwaitUnlockAck => match flit.sub() {
                SubKind::Ack => self.finish(BridgeResult::UnlockDone),
                SubKind::Nack => self.finish(BridgeResult::UnlockRejected),
                other => panic!("unlock response with subtype {other}"),
            },
            State::AwaitCohFill { mut reorder, mut got, mut grant } => {
                debug_assert_eq!(flit.kind(), PacketKind::Coherence);
                match flit.sub() {
                    SubKind::Data => {
                        let seq = flit.seq() as usize;
                        assert!(seq < WORDS_PER_LINE, "coherence fill seq {seq} beyond line");
                        assert!(reorder[seq].is_none(), "duplicate coherence fill word {seq}");
                        if got != seq {
                            self.stats.out_of_order_flits.inc();
                        }
                        reorder[seq] = Some(flit.payload());
                        got += 1;
                    }
                    SubKind::Ack => {
                        let op = flit.coh_op().expect("coherence ack carries an opcode");
                        debug_assert!(
                            matches!(op, CohOp::GrantS | CohOp::GrantE | CohOp::GrantM),
                            "fill grant expected, got {op}"
                        );
                        debug_assert!(grant.is_none(), "duplicate fill grant");
                        grant = Some(op);
                    }
                    other => panic!("coherence fill with subtype {other}"),
                }
                match grant {
                    Some(g) if got == WORDS_PER_LINE => {
                        let mut line = [0u32; WORDS_PER_LINE];
                        for (i, w) in reorder.iter().enumerate() {
                            line[i] = w.expect("all words collected");
                        }
                        self.finish(BridgeResult::CohLine { data: line, grant: g });
                    }
                    _ => self.state = State::AwaitCohFill { reorder, got, grant },
                }
            }
            state @ (State::Idle | State::Streaming { .. } | State::LockBackoff { .. }) => {
                // Only a trailing read response of a retried attempt is
                // forgivable; anything else is a protocol violation even
                // in resilient mode.
                let trailing_read =
                    matches!(flit.kind(), PacketKind::SingleRead | PacketKind::BlockRead)
                        && flit.sub() == SubKind::Data;
                if resilient && trailing_read {
                    self.stats.stale_responses.inc();
                    self.state = state;
                    return;
                }
                panic!("unexpected shared-memory response {flit} while not awaiting one")
            }
        }
    }

    fn finish(&mut self, result: BridgeResult) {
        self.stats.transactions.inc();
        self.result = Some(result);
        self.state = State::Idle;
        self.retry_op = None;
        self.deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_noc::coord::{Coord, Topology};
    use medea_sim::ids::NodeId;

    fn bridge() -> Pif2NocBridge {
        let banks = BankMap::single(Topology::paper_4x4(), NodeId::new(0));
        Pif2NocBridge::new(banks, 5, BridgeConfig::default())
    }

    fn resp(kind: PacketKind, sub: SubKind, seq: u8, data: u32) -> Flit {
        // Responses arrive *at* the PE; dest is the PE itself but the
        // bridge does not check it.
        Flit::new(Coord::new(1, 1), kind, sub, seq, 0, 0, data)
    }

    /// Drain the output latch like the PE/arbiter would.
    fn drain(b: &mut Pif2NocBridge) -> Vec<Flit> {
        let mut v = Vec::new();
        while let Some(f) = b.take_output() {
            v.push(f);
            b.tick(0);
        }
        v
    }

    #[test]
    fn single_read_flow() {
        let mut b = bridge();
        b.start(BridgeOp::SingleRead { addr: 0x40 });
        let sent = drain(&mut b);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].kind(), PacketKind::SingleRead);
        assert_eq!(sent[0].payload(), 0x40);
        assert_eq!(sent[0].src_id(), 5);
        assert!(b.is_busy());
        b.handle_response(resp(PacketKind::SingleRead, SubKind::Data, 0, 99), 10);
        assert_eq!(b.take_result(), Some(BridgeResult::Word(99)));
        assert!(!b.is_busy());
    }

    #[test]
    fn block_read_reorders() {
        let mut b = bridge();
        b.start(BridgeOp::BlockRead { line: 0x80 });
        drain(&mut b);
        for seq in [2u8, 0, 3, 1] {
            b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, seq, seq as u32 * 10), 0);
        }
        assert_eq!(b.take_result(), Some(BridgeResult::Line([0, 10, 20, 30])));
        assert!(b.stats().out_of_order_flits.get() > 0);
    }

    #[test]
    fn block_write_flow() {
        let mut b = bridge();
        b.start(BridgeOp::BlockWrite { line: 0x100, data: [1, 2, 3, 4] });
        // Request goes out first.
        let req = b.take_output().unwrap();
        assert_eq!(req.kind(), PacketKind::BlockWrite);
        assert_eq!(req.sub(), SubKind::Request);
        b.tick(1);
        assert!(!b.has_output(), "no data before grant");
        // Grant arrives.
        b.handle_response(resp(PacketKind::BlockWrite, SubKind::Ack, 0, 0), 2);
        // Four data flits stream out one per cycle.
        let mut data = Vec::new();
        for now in 3..12 {
            b.tick(now);
            if let Some(f) = b.take_output() {
                data.push(f);
            }
        }
        assert_eq!(data.len(), 4);
        for (i, f) in data.iter().enumerate() {
            assert_eq!(f.sub(), SubKind::Data);
            assert_eq!(f.seq() as usize, i);
            assert_eq!(f.payload(), (i + 1) as u32);
        }
        assert!(b.take_result().is_none(), "still awaiting final ack");
        b.handle_response(resp(PacketKind::BlockWrite, SubKind::Ack, 1, 0), 12);
        assert_eq!(b.take_result(), Some(BridgeResult::WriteDone));
    }

    #[test]
    fn lock_nack_retries_after_backoff() {
        let mut b = bridge();
        b.start(BridgeOp::Lock { addr: 0x200 });
        let first = b.take_output().unwrap();
        assert_eq!(first.kind(), PacketKind::Lock);
        b.handle_response(resp(PacketKind::Lock, SubKind::Nack, 0, 0), 10);
        assert_eq!(b.backoff_until(), Some(26)); // 10 + default 16
        for now in 11..26 {
            b.tick(now);
            assert!(!b.has_output(), "must wait out the backoff");
        }
        b.tick(26);
        let retry = b.take_output().expect("retry sent");
        assert_eq!(retry.kind(), PacketKind::Lock);
        assert_eq!(retry.payload(), 0x200);
        b.handle_response(resp(PacketKind::Lock, SubKind::Ack, 0, 0), 30);
        assert_eq!(b.take_result(), Some(BridgeResult::LockGranted));
        assert_eq!(b.stats().lock_retries.get(), 1);
    }

    #[test]
    fn unlock_flows() {
        let mut b = bridge();
        b.start(BridgeOp::Unlock { addr: 0x200 });
        drain(&mut b);
        b.handle_response(resp(PacketKind::Unlock, SubKind::Ack, 0, 0), 0);
        assert_eq!(b.take_result(), Some(BridgeResult::UnlockDone));

        b.start(BridgeOp::Unlock { addr: 0x204 });
        drain(&mut b);
        b.handle_response(resp(PacketKind::Unlock, SubKind::Nack, 0, 0), 0);
        assert_eq!(b.take_result(), Some(BridgeResult::UnlockRejected));
    }

    fn resilient_bridge(timeout: Cycle) -> Pif2NocBridge {
        let banks = BankMap::single(Topology::paper_4x4(), NodeId::new(0));
        let cfg = BridgeConfig { response_timeout: timeout, ..BridgeConfig::default() };
        Pif2NocBridge::new(banks, 5, cfg)
    }

    #[test]
    fn lost_single_read_response_is_retried() {
        let mut b = resilient_bridge(20);
        b.start(BridgeOp::SingleRead { addr: 0x40 });
        assert_eq!(b.take_output().unwrap().kind(), PacketKind::SingleRead);
        // Response dropped; the clock arms on the first post-send tick.
        b.tick(5);
        assert_eq!(b.backoff_until(), Some(25));
        for now in 6..25 {
            b.tick(now);
            assert!(!b.has_output());
        }
        b.tick(25);
        let retry = b.take_output().expect("request re-issued");
        assert_eq!(retry.kind(), PacketKind::SingleRead);
        assert_eq!(retry.payload(), 0x40);
        assert_eq!(b.stats().retries.get(), 1);
        // The retried response completes the transaction normally.
        b.handle_response(resp(PacketKind::SingleRead, SubKind::Data, 0, 7), 30);
        assert_eq!(b.take_result(), Some(BridgeResult::Word(7)));
    }

    #[test]
    fn lost_block_word_is_retried_and_stale_words_dropped() {
        let mut b = resilient_bridge(16);
        b.start(BridgeOp::BlockRead { line: 0x80 });
        drain(&mut b);
        b.tick(0);
        // Three of four words arrive; word 3 was dropped by the bank.
        for seq in 0..3u8 {
            b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, seq, seq as u32), 1);
        }
        // Progress re-armed the clock; time out and retry.
        b.tick(2);
        assert_eq!(b.backoff_until(), Some(18));
        b.tick(18);
        let retry = b.take_output().expect("block read re-issued");
        assert_eq!(retry.kind(), PacketKind::BlockRead);
        assert_eq!(b.stats().retries.get(), 1);
        // The full fresh response completes it; a straggler duplicate of
        // the old attempt in between is dropped as stale.
        b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, 0, 0), 20);
        b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, 0, 0), 21); // stale dup
        for seq in 1..4u8 {
            b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, seq, seq as u32 * 10), 22);
        }
        assert_eq!(b.take_result(), Some(BridgeResult::Line([0, 10, 20, 30])));
        assert_eq!(b.stats().stale_responses.get(), 1);
    }

    #[test]
    fn trailing_response_after_completion_is_dropped_when_resilient() {
        let mut b = resilient_bridge(100);
        b.start(BridgeOp::SingleRead { addr: 0x40 });
        drain(&mut b);
        b.handle_response(resp(PacketKind::SingleRead, SubKind::Data, 0, 1), 1);
        assert_eq!(b.take_result(), Some(BridgeResult::Word(1)));
        // A late duplicate (delayed copy of the same response) arrives
        // while idle: dropped, not a panic.
        b.handle_response(resp(PacketKind::SingleRead, SubKind::Data, 0, 1), 9);
        assert_eq!(b.stats().stale_responses.get(), 1);
        assert!(!b.is_busy());
    }

    #[test]
    fn timeout_zero_keeps_strict_protocol() {
        let mut b = bridge();
        b.start(BridgeOp::SingleRead { addr: 0x40 });
        drain(&mut b);
        for now in 0..10_000 {
            b.tick(now);
            assert!(!b.has_output(), "no retry without a timeout");
        }
        assert_eq!(b.stats().retries.get(), 0);
    }

    #[test]
    fn transactions_route_to_their_owning_bank() {
        // Two banks on the 4×4 torus: node 0 at (0,0) and node 10 at
        // (2,2). Even lines go to bank 0, odd lines to bank 1.
        let topo = Topology::paper_4x4();
        let banks = BankMap::new(topo, &[NodeId::new(0), NodeId::new(10)]).unwrap();
        let mut b = Pif2NocBridge::new(banks, 5, BridgeConfig::default());

        b.start(BridgeOp::SingleRead { addr: 0x08 }); // line 0 → bank 0
        let req = b.take_output().unwrap();
        assert_eq!(req.dest(), Coord::new(0, 0));
        b.handle_response(resp(PacketKind::SingleRead, SubKind::Data, 0, 1), 0);
        assert_eq!(b.take_result(), Some(BridgeResult::Word(1)));

        b.start(BridgeOp::BlockRead { line: 0x10 }); // line 1 → bank 1
        let req = b.take_output().unwrap();
        assert_eq!(req.dest(), Coord::new(2, 2));
        for seq in 0..4u8 {
            // Responses from bank 1 carry its node index as src id.
            let f =
                Flit::new(Coord::new(1, 1), PacketKind::BlockRead, SubKind::Data, seq, 0, 10, 7);
            b.handle_response(f, 0);
        }
        assert_eq!(b.take_result(), Some(BridgeResult::Line([7; 4])));

        // Lock/unlock follow the word's bank, including the Nack retry.
        b.start(BridgeOp::Lock { addr: 0x14 }); // line 1 → bank 1
        let req = b.take_output().unwrap();
        assert_eq!(req.dest(), Coord::new(2, 2));
        let nack = Flit::new(Coord::new(1, 1), PacketKind::Lock, SubKind::Nack, 0, 0, 10, 0);
        b.handle_response(nack, 0);
        for now in 1..=16 {
            b.tick(now);
        }
        let retry = b.take_output().expect("retry after backoff");
        assert_eq!(retry.dest(), Coord::new(2, 2), "retry must target the same bank");
    }

    #[test]
    #[should_panic(expected = "bank")]
    fn block_data_from_wrong_bank_panics() {
        let topo = Topology::paper_4x4();
        let banks = BankMap::new(topo, &[NodeId::new(0), NodeId::new(10)]).unwrap();
        let mut b = Pif2NocBridge::new(banks, 5, BridgeConfig::default());
        b.start(BridgeOp::BlockRead { line: 0x10 }); // bank 1 (src 10)
        drain(&mut b);
        let stray = Flit::new(Coord::new(1, 1), PacketKind::BlockRead, SubKind::Data, 0, 0, 0, 9);
        b.handle_response(stray, 0);
    }

    #[test]
    #[should_panic(expected = "transaction overlap")]
    fn overlapping_transactions_panic() {
        let mut b = bridge();
        b.start(BridgeOp::SingleRead { addr: 0 });
        b.start(BridgeOp::SingleRead { addr: 4 });
    }

    #[test]
    #[should_panic(expected = "duplicate block-read word")]
    fn duplicate_block_word_panics() {
        let mut b = bridge();
        b.start(BridgeOp::BlockRead { line: 0 });
        drain(&mut b);
        b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, 1, 1), 0);
        b.handle_response(resp(PacketKind::BlockRead, SubKind::Data, 1, 1), 0);
    }
}
