//! NoC-access arbiter between the TIE message interface and the pif2NoC
//! bridge.
//!
//! §II-B describes three build options, "depending on required system
//! performance and area availability":
//!
//! 1. **Mux** — no buffers: each interface has a single output latch; in
//!    case of contention one is granted and the other waits;
//! 2. **SingleFifo** — one shared queue, so both interfaces can keep
//!    posting packets even when the local switch is congested;
//! 3. **DualPriority** — a High-Priority and a Best-Effort queue; the
//!    best-effort queue is read "only if the high-priority one is empty".
//!
//! The paper does not fix which traffic class is high priority; the default
//! here makes message-passing traffic (synchronization tokens) high
//! priority, with the opposite assignment available for the A1 ablation.

use medea_noc::flit::Flit;
use medea_sim::fifo::Fifo;
use medea_sim::stats::Counter;
use std::fmt;

/// Which traffic class uses the high-priority queue in
/// [`ArbiterConfig::DualPriority`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityAssignment {
    /// Message-passing flits are high priority (default — sync tokens are
    /// latency critical).
    MessageHigh,
    /// Shared-memory (bridge) flits are high priority.
    BridgeHigh,
}

/// Arbiter build option (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterConfig {
    /// Plain multiplexer: one latch per interface, no queueing.
    Mux,
    /// One shared FIFO of the given depth.
    SingleFifo {
        /// Queue depth in flits.
        depth: usize,
    },
    /// High-priority + best-effort FIFOs of the given depth each.
    DualPriority {
        /// Depth of each queue in flits.
        depth: usize,
        /// Which class is high priority.
        priority: PriorityAssignment,
    },
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig::SingleFifo { depth: 8 }
    }
}

impl fmt::Display for ArbiterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterConfig::Mux => write!(f, "mux"),
            ArbiterConfig::SingleFifo { depth } => write!(f, "fifo{depth}"),
            ArbiterConfig::DualPriority { depth, .. } => write!(f, "2xfifo{depth}"),
        }
    }
}

/// Arbiter occupancy/traffic statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArbiterStats {
    /// Message flits accepted.
    pub message_flits: Counter,
    /// Bridge flits accepted.
    pub bridge_flits: Counter,
    /// Grants to the message interface.
    pub message_grants: Counter,
    /// Grants to the bridge interface.
    pub bridge_grants: Counter,
}

#[derive(Debug, Clone)]
enum Storage {
    Mux { message: Option<Flit>, bridge: Option<Flit> },
    Single { queue: Fifo<(Source, Flit)> },
    Dual { high: Fifo<Flit>, best: Fifo<Flit>, priority: PriorityAssignment },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Message,
    Bridge,
}

/// The arbiter between the PE's two NoC interfaces and its router.
#[derive(Debug, Clone)]
pub struct NocArbiter {
    storage: Storage,
    /// Flit returned by a failed injection; re-offered before anything
    /// else so ordering is preserved.
    restore_slot: Option<(Source, Flit)>,
    /// Round-robin state for the Mux configuration.
    last_granted_message: bool,
    stats: ArbiterStats,
}

impl NocArbiter {
    /// Build an arbiter for the given configuration.
    pub fn new(config: ArbiterConfig) -> Self {
        let storage = match config {
            ArbiterConfig::Mux => Storage::Mux { message: None, bridge: None },
            ArbiterConfig::SingleFifo { depth } => {
                Storage::Single { queue: Fifo::new("arbiter", depth.max(1)) }
            }
            ArbiterConfig::DualPriority { depth, priority } => Storage::Dual {
                high: Fifo::new("arbiter-hp", depth.max(1)),
                best: Fifo::new("arbiter-be", depth.max(1)),
                priority,
            },
        };
        NocArbiter {
            storage,
            restore_slot: None,
            last_granted_message: false,
            stats: ArbiterStats::default(),
        }
    }

    /// Statistics.
    pub const fn stats(&self) -> &ArbiterStats {
        &self.stats
    }

    fn class_is_high(&self, src: Source) -> bool {
        match &self.storage {
            Storage::Dual { priority, .. } => match priority {
                PriorityAssignment::MessageHigh => src == Source::Message,
                PriorityAssignment::BridgeHigh => src == Source::Bridge,
            },
            _ => false,
        }
    }

    /// Whether a message flit can be accepted this cycle.
    pub fn can_accept_message(&self) -> bool {
        self.can_accept(Source::Message)
    }

    /// Whether a bridge flit can be accepted this cycle.
    pub fn can_accept_bridge(&self) -> bool {
        self.can_accept(Source::Bridge)
    }

    fn can_accept(&self, src: Source) -> bool {
        match &self.storage {
            Storage::Mux { message, bridge } => match src {
                Source::Message => message.is_none(),
                Source::Bridge => bridge.is_none(),
            },
            Storage::Single { queue } => !queue.is_full(),
            Storage::Dual { high, best, .. } => {
                if self.class_is_high(src) {
                    !high.is_full()
                } else {
                    !best.is_full()
                }
            }
        }
    }

    /// Accept a message flit.
    ///
    /// # Panics
    ///
    /// Panics if [`NocArbiter::can_accept_message`] is false — interfaces
    /// must check before offering, as the hardware handshake does.
    pub fn accept_message(&mut self, flit: Flit) {
        assert!(self.can_accept_message(), "message interface offered without a free slot");
        self.stats.message_flits.inc();
        self.accept(Source::Message, flit);
    }

    /// Accept a bridge flit.
    ///
    /// # Panics
    ///
    /// Panics if [`NocArbiter::can_accept_bridge`] is false.
    pub fn accept_bridge(&mut self, flit: Flit) {
        assert!(self.can_accept_bridge(), "bridge offered without a free slot");
        self.stats.bridge_flits.inc();
        self.accept(Source::Bridge, flit);
    }

    fn accept(&mut self, src: Source, flit: Flit) {
        let high = self.class_is_high(src);
        match &mut self.storage {
            Storage::Mux { message, bridge } => match src {
                Source::Message => *message = Some(flit),
                Source::Bridge => *bridge = Some(flit),
            },
            Storage::Single { queue } => {
                queue.push((src, flit)).expect("checked can_accept");
            }
            Storage::Dual { high: hq, best, .. } => {
                let q = if high { hq } else { best };
                q.push(flit).expect("checked can_accept");
            }
        }
    }

    /// Pick the flit to inject this cycle, if any.
    pub fn select(&mut self) -> Option<Flit> {
        if let Some((src, flit)) = self.restore_slot.take() {
            self.count_grant(src);
            return Some(flit);
        }
        let (src, flit) = match &mut self.storage {
            Storage::Mux { message, bridge } => {
                // Round-robin between occupied latches.
                let pick_message = match (message.is_some(), bridge.is_some()) {
                    (false, false) => return None,
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => !self.last_granted_message,
                };
                if pick_message {
                    self.last_granted_message = true;
                    (Source::Message, message.take().expect("occupied"))
                } else {
                    self.last_granted_message = false;
                    (Source::Bridge, bridge.take().expect("occupied"))
                }
            }
            Storage::Single { queue } => queue.pop()?,
            Storage::Dual { high, best, priority } => {
                // Best-effort served only when high-priority is empty.
                let hp_src = match priority {
                    PriorityAssignment::MessageHigh => Source::Message,
                    PriorityAssignment::BridgeHigh => Source::Bridge,
                };
                if let Some(f) = high.pop() {
                    (hp_src, f)
                } else if let Some(f) = best.pop() {
                    let be_src = match hp_src {
                        Source::Message => Source::Bridge,
                        Source::Bridge => Source::Message,
                    };
                    (be_src, f)
                } else {
                    return None;
                }
            }
        };
        self.count_grant(src);
        Some(flit)
    }

    fn count_grant(&mut self, src: Source) {
        match src {
            Source::Message => self.stats.message_grants.inc(),
            Source::Bridge => self.stats.bridge_grants.inc(),
        }
    }

    /// Put back a flit whose injection the router refused; it will be
    /// offered first next cycle.
    ///
    /// # Panics
    ///
    /// Panics if a flit is already waiting in the restore slot (only one
    /// injection attempt per cycle is possible).
    pub fn restore(&mut self, flit: Flit) {
        assert!(self.restore_slot.is_none(), "double restore in one cycle");
        // Source attribution is only used for grant statistics; reconstruct
        // from the flit class and undo the premature grant count.
        let src = if flit.kind().is_shared_memory() { Source::Bridge } else { Source::Message };
        match src {
            Source::Message => {
                self.stats.message_grants = decrement(self.stats.message_grants);
            }
            Source::Bridge => {
                self.stats.bridge_grants = decrement(self.stats.bridge_grants);
            }
        }
        self.restore_slot = Some((src, flit));
    }

    /// Flits currently queued (including the restore slot).
    pub fn occupancy(&self) -> usize {
        let stored = match &self.storage {
            Storage::Mux { message, bridge } => {
                usize::from(message.is_some()) + usize::from(bridge.is_some())
            }
            Storage::Single { queue } => queue.len(),
            Storage::Dual { high, best, .. } => high.len() + best.len(),
        };
        stored + usize::from(self.restore_slot.is_some())
    }
}

fn decrement(c: Counter) -> Counter {
    let mut fresh = Counter::new();
    fresh.add(c.get().saturating_sub(1));
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_noc::coord::Coord;
    use medea_noc::flit::{Flit, PacketKind};

    fn msg(n: u32) -> Flit {
        Flit::message(Coord::new(1, 0), 1, 0, 0, n)
    }

    fn brd(n: u32) -> Flit {
        Flit::request(Coord::new(0, 0), PacketKind::SingleRead, 1, n)
    }

    #[test]
    fn mux_round_robin() {
        let mut a = NocArbiter::new(ArbiterConfig::Mux);
        a.accept_message(msg(1));
        a.accept_bridge(brd(2));
        assert!(!a.can_accept_message());
        let first = a.select().unwrap();
        let second = a.select().unwrap();
        assert_ne!(first.kind() == PacketKind::Message, second.kind() == PacketKind::Message);
        assert_eq!(a.select(), None);
        // Alternation under sustained contention.
        a.accept_message(msg(3));
        a.accept_bridge(brd(4));
        let third = a.select().unwrap();
        assert_ne!(third.kind(), second.kind());
    }

    #[test]
    fn single_fifo_preserves_order() {
        let mut a = NocArbiter::new(ArbiterConfig::SingleFifo { depth: 4 });
        a.accept_message(msg(1));
        a.accept_bridge(brd(2));
        a.accept_message(msg(3));
        assert_eq!(a.select().unwrap().payload(), 1);
        assert_eq!(a.select().unwrap().payload(), 2);
        assert_eq!(a.select().unwrap().payload(), 3);
    }

    #[test]
    fn single_fifo_backpressure() {
        let mut a = NocArbiter::new(ArbiterConfig::SingleFifo { depth: 2 });
        a.accept_message(msg(1));
        a.accept_bridge(brd(2));
        assert!(!a.can_accept_message());
        assert!(!a.can_accept_bridge());
    }

    #[test]
    fn dual_priority_hp_first() {
        let cfg =
            ArbiterConfig::DualPriority { depth: 4, priority: PriorityAssignment::MessageHigh };
        let mut a = NocArbiter::new(cfg);
        a.accept_bridge(brd(1));
        a.accept_bridge(brd(2));
        a.accept_message(msg(3));
        // Message (HP) preempts queued bridge traffic.
        assert_eq!(a.select().unwrap().payload(), 3);
        assert_eq!(a.select().unwrap().payload(), 1);
        assert_eq!(a.select().unwrap().payload(), 2);
    }

    #[test]
    fn dual_priority_bridge_high_ablation() {
        let cfg =
            ArbiterConfig::DualPriority { depth: 4, priority: PriorityAssignment::BridgeHigh };
        let mut a = NocArbiter::new(cfg);
        a.accept_message(msg(1));
        a.accept_bridge(brd(2));
        assert_eq!(a.select().unwrap().payload(), 2);
        assert_eq!(a.select().unwrap().payload(), 1);
    }

    #[test]
    fn restore_comes_out_first() {
        let mut a = NocArbiter::new(ArbiterConfig::SingleFifo { depth: 4 });
        a.accept_message(msg(1));
        a.accept_message(msg(2));
        let f = a.select().unwrap();
        a.restore(f);
        assert_eq!(a.occupancy(), 2);
        assert_eq!(a.select().unwrap().payload(), 1);
        assert_eq!(a.select().unwrap().payload(), 2);
    }

    #[test]
    fn grant_stats_track_classes() {
        let mut a = NocArbiter::new(ArbiterConfig::SingleFifo { depth: 4 });
        a.accept_message(msg(1));
        a.accept_bridge(brd(2));
        a.select();
        a.select();
        assert_eq!(a.stats().message_grants.get(), 1);
        assert_eq!(a.stats().bridge_grants.get(), 1);
        assert_eq!(a.stats().message_flits.get(), 1);
        assert_eq!(a.stats().bridge_flits.get(), 1);
    }

    #[test]
    #[should_panic(expected = "without a free slot")]
    fn overfull_accept_panics() {
        let mut a = NocArbiter::new(ArbiterConfig::Mux);
        a.accept_message(msg(1));
        a.accept_message(msg(2));
    }
}
