//! Processing-element model for the MEDEA reproduction (§II-B).
//!
//! The original PE is a Tensilica Xtensa-LX with three custom attachments,
//! all reproduced here:
//!
//! * [`fpu`] — the double-precision floating-point *emulation acceleration*
//!   cost model (adds/subs average 19 cycles; multiplies 26 cycles with the
//!   "Multiply High" option, 60 without);
//! * [`tie`] — the TIE message-passing interface: a FIFO port straight into
//!   the register file on the send side, and a sequence-number-indexed
//!   double-buffer reassembly unit on the receive side;
//! * [`bridge`] — the pif2NoC bridge translating PIF bus transactions
//!   (single/block read/write, lock/unlock) into NoC flits, with the 4-deep
//!   reorder buffer for out-of-order block-read data;
//! * [`arbiter`] — the NoC-access arbiter between the two interfaces, in
//!   the paper's three build options (plain mux, single FIFO, dual
//!   priority);
//! * [`coherence`] — the L1-side probe responder of the beyond-the-paper
//!   directory-MESI option (answers `Inv`/`Fetch`/`FetchInv` probes;
//!   completely inert under the paper-faithful DII default);
//! * [`pe`] — the PE proper: an L1 cache plus an execution engine that
//!   serves the application kernel's architectural operations
//!   ([`kernel_if::PeRequest`]) cycle by cycle.
//!
//! The instruction stream itself is not simulated; kernels are Rust code
//! whose architectural actions (memory, FP, messaging) rendezvous with the
//! engine — see `medea-sim::coroutine` and DESIGN.md §2 for why this
//! preserves the paper's measured quantities.

pub mod arbiter;
pub mod bridge;
pub mod coherence;
pub mod fpu;
pub mod kernel_if;
pub mod pe;
pub mod tie;
