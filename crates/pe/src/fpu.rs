//! Double-precision floating-point cost model.
//!
//! §II-B: "With just 4k-7k more gates, an Xtensa processor can perform
//! double precision adds and subtracts in an average of 19 cycles while
//! multiplies take an average of 60 cycles using 16 or 32 bit multipliers
//! and only 26 cycles for a processor configuration that includes the
//! 'Multiply High' option." Division is not quoted; we model it at 4× the
//! multiply cost (typical for iterative software division).

use medea_sim::Cycle;
use std::fmt;

/// Hardware multiplier option of the Xtensa configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOption {
    /// "Multiply High" present: 26-cycle double-precision multiplies.
    MulHigh,
    /// Only 16/32-bit multipliers: 60-cycle multiplies.
    Mul16or32,
}

impl fmt::Display for MulOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MulOption::MulHigh => write!(f, "mulhigh"),
            MulOption::Mul16or32 => write!(f, "mul16/32"),
        }
    }
}

/// Cycle costs of emulated double-precision operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpModel {
    add_cycles: Cycle,
    mul_cycles: Cycle,
}

impl FpModel {
    /// Build the paper's cost model for the given multiplier option.
    pub const fn new(mul: MulOption) -> Self {
        FpModel {
            add_cycles: 19,
            mul_cycles: match mul {
                MulOption::MulHigh => 26,
                MulOption::Mul16or32 => 60,
            },
        }
    }

    /// Cycles for an add or subtract.
    pub const fn add_cycles(&self) -> Cycle {
        self.add_cycles
    }

    /// Cycles for a multiply.
    pub const fn mul_cycles(&self) -> Cycle {
        self.mul_cycles
    }

    /// Cycles for a divide (4× multiply; see module docs).
    pub const fn div_cycles(&self) -> Cycle {
        4 * self.mul_cycles
    }
}

impl Default for FpModel {
    /// The configuration the scientific-kernel results assume: Multiply
    /// High present.
    fn default() -> Self {
        FpModel::new(MulOption::MulHigh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs() {
        let hi = FpModel::new(MulOption::MulHigh);
        assert_eq!(hi.add_cycles(), 19);
        assert_eq!(hi.mul_cycles(), 26);
        let lo = FpModel::new(MulOption::Mul16or32);
        assert_eq!(lo.mul_cycles(), 60);
        assert_eq!(lo.add_cycles(), 19);
    }

    #[test]
    fn div_scales_with_mul() {
        assert_eq!(FpModel::new(MulOption::MulHigh).div_cycles(), 104);
        assert_eq!(FpModel::new(MulOption::Mul16or32).div_cycles(), 240);
    }

    #[test]
    fn default_is_mulhigh() {
        assert_eq!(FpModel::default(), FpModel::new(MulOption::MulHigh));
        assert_eq!(MulOption::MulHigh.to_string(), "mulhigh");
    }
}
