//! The processing element: L1 cache + execution engine serving one
//! application kernel.
//!
//! The engine is a cycle-level state machine. Each kernel request
//! ([`crate::kernel_if::PeRequest`]) is executed in one or more cycles:
//!
//! * compute and FP requests stall for their cycle cost;
//! * cached accesses cost one cycle per word on a hit; a miss runs the full
//!   §II-B/§II-C machinery — dirty-victim block-write, block-read with
//!   reorder buffer, line fill, retry;
//! * flush/invalidate are the §II-E software-coherence operations;
//! * lock/unlock and uncached accesses go straight to the bridge;
//! * send streams one flit per cycle into the arbiter (the TIE port's peak
//!   rate); receive blocks on the TIE reassembly unit and charges one
//!   cycle per word for the register-to-memory copy.
//!
//! The PE is *blocking*: one architectural operation at a time, like the
//! simple in-order cores the paper argues many-core CMPs are moving to.

use crate::arbiter::{ArbiterConfig, NocArbiter};
use crate::bridge::{BridgeConfig, BridgeOp, BridgeResult, Pif2NocBridge};
use crate::coherence::ProbeResponder;
use crate::fpu::FpModel;
use crate::kernel_if::{f64_to_words, words_to_f64, PeRequest, PeResponse};
use crate::tie::{packetize, TieReceiver};
use medea_cache::{
    line_of, Addr, CacheConfig, CoherenceMode, CoherenceStats, MesiState, SetAssocCache,
    StoreOutcome, WORDS_PER_LINE,
};
use medea_mem::BankMap;
use medea_metrics::PeActivity;
use medea_noc::coord::Topology;
use medea_noc::flit::{CohOp, Flit, PacketKind, SubKind};
use medea_sim::coroutine::{Fetched, KernelHost, KernelPort};
use medea_sim::ids::NodeId;
use medea_sim::stats::Counter;
use medea_sim::Cycle;
use medea_trace::{CacheEventKind, KernelOp, NullSink, TraceEvent, TraceSink};
use std::collections::{HashMap, VecDeque};

/// The port type kernels receive: issue [`PeRequest`]s, get
/// [`PeResponse`]s.
pub type PePort = KernelPort<PeRequest, PeResponse>;

/// Processing-element configuration.
#[derive(Debug, Clone, Copy)]
pub struct PeConfig {
    /// The node this PE occupies.
    pub node: NodeId,
    /// L1 cache geometry and policy.
    pub cache: CacheConfig,
    /// FP-emulation cost model.
    pub fp: FpModel,
    /// NoC-access arbiter build option.
    pub arbiter: ArbiterConfig,
    /// pif2NoC bridge parameters.
    pub bridge: BridgeConfig,
    /// Coherence option: the paper's software DII (default) or the
    /// beyond-the-paper hardware directory MESI (§II-E extension).
    pub coherence: CoherenceMode,
}

/// Per-PE execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeStats {
    /// Kernel requests served.
    pub requests: Counter,
    /// Cycles spent in compute/FP stalls.
    pub compute_cycles: Counter,
    /// Cycles spent executing memory operations (cached + uncached +
    /// coherence + lock).
    pub mem_cycles: Counter,
    /// Cycles spent sending messages (including arbiter back-pressure).
    pub send_cycles: Counter,
    /// Cycles spent blocked in `Recv`.
    pub recv_wait_cycles: Counter,
    /// Message packets sent.
    pub packets_sent: Counter,
    /// Message packets received.
    pub packets_received: Counter,
    /// Messages retransmitted end-to-end by the resilient eMPI layer
    /// (reported via [`PeRequest::FaultNote`]).
    pub retransmits: Counter,
    /// Retransmission requests (NACKs) sent by the resilient eMPI layer.
    pub nacks_sent: Counter,
}

/// Fast-forward hint: what the PE is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wakeup {
    /// Kernel finished; the PE is permanently idle.
    Done,
    /// Pure time stall: nothing will happen before this cycle.
    At(Cycle),
    /// Waiting on external hardware (NoC, MPMMU, arbiter) — cannot skip.
    External,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemShape {
    LoadWord,
    LoadF64,
    Store,
}

#[derive(Debug, Clone, Copy)]
struct WordOp {
    addr: Addr,
    store: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
enum MemPhase {
    Access,
    VictimWriteback { line: Addr },
    LineFetch { line: Addr },
    WriteThrough,
}

#[derive(Debug, Clone)]
struct MemExec {
    shape: MemShape,
    words: [WordOp; 2],
    count: usize,
    idx: usize,
    acc: [u32; 2],
    phase: MemPhase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DirectShape {
    FlushWriteback,
    UncachedLoad,
    UncachedStore,
    Lock,
    Unlock,
}

#[derive(Debug, Clone)]
enum Exec {
    Fetch,
    /// `act` tags what the stalled cycles *are* for the metrics profiler
    /// (compute burst, memory latency, receive copy); it never affects
    /// execution.
    Stall {
        until: Cycle,
        resp: PeResponse,
        act: PeActivity,
    },
    Mem(MemExec),
    BridgeWait {
        shape: DirectShape,
    },
    Send {
        flits: VecDeque<Flit>,
    },
    Recv {
        from: Option<u8>,
    },
    Done,
}

/// One processing element with its kernel thread.
#[derive(Debug)]
pub struct ProcessingElement {
    cfg: PeConfig,
    topo: Topology,
    /// Checked-at-construction application-level source id (the node
    /// index; shared by the bridge and the TIE send path).
    src_id: u8,
    host: KernelHost<PeRequest, PeResponse>,
    cache: SetAssocCache,
    bridge: Pif2NocBridge,
    rx: TieReceiver,
    arbiter: NocArbiter,
    /// Directory-MESI state of resident lines (hardware coherence only;
    /// stays empty under DII). Entries for silently evicted clean lines
    /// go stale, so every read is gated on `cache.probe`.
    mesi: HashMap<Addr, MesiState>,
    /// L1-side probe responder (inert under DII).
    coh: ProbeResponder,
    exec: Exec,
    /// Nesting depth of eMPI collectives, maintained from the zero-cycle
    /// `TraceSpan` markers. Purely observational: it reclassifies blocked
    /// send/recv cycles as collective wait for the metrics profiler.
    /// Stays 0 when markers do not flow (spans and metrics both off).
    collective_depth: u32,
    stats: PeStats,
}

impl ProcessingElement {
    /// Build the PE and spawn its kernel thread. Shared-memory
    /// transactions are routed to their owning MPMMU bank via `banks`.
    pub fn new<F>(cfg: PeConfig, topo: Topology, banks: BankMap, kernel: F) -> Self
    where
        F: FnOnce(PePort) + Send + 'static,
    {
        let src_id = u8::try_from(cfg.node.index())
            .expect("node index exceeds the 8-bit src-id budget (at most 256 nodes)");
        let host = KernelHost::spawn(&format!("pe{}", cfg.node.index()), kernel);
        ProcessingElement {
            cfg,
            topo,
            src_id,
            host,
            cache: SetAssocCache::new(cfg.cache),
            bridge: Pif2NocBridge::new(banks, src_id, cfg.bridge),
            rx: TieReceiver::new(),
            arbiter: NocArbiter::new(cfg.arbiter),
            mesi: HashMap::new(),
            coh: ProbeResponder::new(),
            exec: Exec::Fetch,
            collective_depth: 0,
            stats: PeStats::default(),
        }
    }

    /// Whether the hardware directory-MESI option is enabled.
    fn coherent(&self) -> bool {
        self.cfg.coherence.is_hardware()
    }

    /// MESI state of `line`, residency-gated: a stale map entry left by a
    /// silent clean eviction must never be read.
    fn line_state(&self, line: Addr) -> Option<MesiState> {
        if self.cache.probe(line) {
            self.mesi.get(&line).copied()
        } else {
            None
        }
    }

    /// The node this PE occupies.
    pub const fn node(&self) -> NodeId {
        self.cfg.node
    }

    /// Execution statistics.
    pub const fn stats(&self) -> &PeStats {
        &self.stats
    }

    /// L1 cache statistics.
    pub fn cache_stats(&self) -> &medea_cache::CacheStats {
        self.cache.stats()
    }

    /// TIE receiver statistics.
    pub fn tie_stats(&self) -> &crate::tie::TieStats {
        self.rx.stats()
    }

    /// Bridge statistics.
    pub fn bridge_stats(&self) -> &crate::bridge::BridgeStats {
        self.bridge.stats()
    }

    /// L1-side coherence statistics (all-zero under DII).
    pub const fn coherence_stats(&self) -> &CoherenceStats {
        self.coh.stats()
    }

    /// Whether the kernel has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.exec, Exec::Done)
    }

    /// What this PE is spending the current cycle on, for the metrics
    /// profiler. Blocked send/recv inside an eMPI collective (tracked via
    /// the zero-cycle span markers) reports as
    /// [`PeActivity::CollectiveWait`]; a PE between requests (`Fetch`)
    /// reports compute, since fetch chains consume no simulated cycles.
    pub fn activity(&self) -> PeActivity {
        let in_collective = self.collective_depth > 0;
        match &self.exec {
            Exec::Done => PeActivity::Done,
            Exec::Fetch => PeActivity::Compute,
            Exec::Stall { act, .. } => {
                if *act == PeActivity::RecvWait && in_collective {
                    PeActivity::CollectiveWait
                } else {
                    *act
                }
            }
            Exec::Mem(_) => PeActivity::Mem,
            Exec::BridgeWait { shape } => {
                if *shape == DirectShape::Lock {
                    PeActivity::LockWait
                } else {
                    PeActivity::Mem
                }
            }
            Exec::Send { .. } => {
                if in_collective {
                    PeActivity::CollectiveWait
                } else {
                    PeActivity::Send
                }
            }
            Exec::Recv { .. } => {
                if in_collective {
                    PeActivity::CollectiveWait
                } else {
                    PeActivity::RecvWait
                }
            }
        }
    }

    /// Flits queued in the NoC-access arbiter (metrics sampling hook).
    pub fn arbiter_occupancy(&self) -> usize {
        self.arbiter.occupancy()
    }

    /// Packets buffered in the TIE receiver — completed plus still
    /// assembling. This backlog is the engine-visible face of the eMPI
    /// credit window: the protocol sizes its credits so this never grows
    /// beyond the receiver's buffer budget.
    pub fn rx_backlog(&self) -> usize {
        self.rx.pending_packets() + self.rx.partial_packets()
    }

    /// Whether the PE is blocked waiting for an incoming message with
    /// nothing of its own in flight and no satisfying packet queued (the
    /// deadlock-detection predicate: if every live PE is in this state and
    /// the fabric and MPMMU are drained, no message can ever arrive).
    pub fn is_recv_blocked(&self) -> bool {
        match &self.exec {
            Exec::Recv { from } => {
                !self.rx.has_packet(*from)
                    && !self.rx.has_partials()
                    && self.arbiter.occupancy() == 0
                    && !self.bridge.has_output()
                    && self.coh.is_idle()
            }
            _ => false,
        }
    }

    /// If ticking this PE is provably a no-op until a known cycle, that
    /// cycle (`Cycle::MAX` for a retired PE) — the per-PE wake-scheduling
    /// hook of the cycle engine.
    ///
    /// Eligibility is deliberately strict: the engine may skip `tick`
    /// calls only while the PE sits in a pure time stall (or is done)
    /// *and* its bridge and arbiter are completely drained, because then
    /// a tick performs no state change and no statistics update, and the
    /// PE cannot inject traffic. Message deliveries to a sleeping PE only
    /// buffer into the TIE receiver and never shorten a time stall, so a
    /// computed wake time stays valid until the next tick.
    pub fn sleep_until(&self) -> Option<Cycle> {
        let drained = self.arbiter.occupancy() == 0 && !self.bridge.is_busy() && self.coh.is_idle();
        match &self.exec {
            Exec::Stall { until, .. } if drained => Some(*until),
            Exec::Done if drained => Some(Cycle::MAX),
            _ => None,
        }
    }

    /// Fast-forward hint (see [`Wakeup`]).
    pub fn wakeup(&self) -> Wakeup {
        // Pending probe work overrides every exec-state hint: a "done" or
        // stalled PE must still answer the directory.
        if !self.coh.is_idle() {
            return Wakeup::External;
        }
        match &self.exec {
            Exec::Done => Wakeup::Done,
            Exec::Stall { until, .. } => Wakeup::At(*until),
            Exec::Mem(_) | Exec::BridgeWait { .. } => {
                if self.arbiter.occupancy() == 0 && !self.bridge.has_output() {
                    match self.bridge.backoff_until() {
                        Some(t) => Wakeup::At(t),
                        None => Wakeup::External,
                    }
                } else {
                    Wakeup::External
                }
            }
            Exec::Send { .. } | Exec::Recv { .. } | Exec::Fetch => Wakeup::External,
        }
    }

    /// Deliver a flit ejected from the NoC at this node.
    pub fn deliver(&mut self, flit: Flit, now: Cycle) {
        self.deliver_traced(flit, now, &mut NullSink);
    }

    /// [`deliver`](ProcessingElement::deliver) with reorder-buffer slips
    /// (block-read data arriving out of address order) reported to `sink`.
    pub fn deliver_traced<S: TraceSink>(&mut self, flit: Flit, now: Cycle, sink: &mut S) {
        // Coherence *requests* at a PE are directory probes for the
        // responder; coherence data/acks are fill traffic for the bridge.
        if flit.kind() == PacketKind::Coherence && flit.sub() == SubKind::Request {
            self.coh.push_probe(flit);
            return;
        }
        if flit.kind().is_shared_memory() {
            if S::ACTIVE {
                let before = self.bridge.stats().out_of_order_flits.get();
                self.bridge.handle_response(flit, now);
                if self.bridge.stats().out_of_order_flits.get() > before {
                    sink.record(now, TraceEvent::ReorderSlip { node: self.src_id as u16 });
                }
            } else {
                self.bridge.handle_response(flit, now);
            }
        } else {
            self.rx.deliver(flit);
        }
    }

    /// Pick a flit to inject into the router this cycle, if any.
    pub fn select_inject(&mut self) -> Option<Flit> {
        self.arbiter.select()
    }

    /// Put back a flit the router refused.
    pub fn restore_inject(&mut self, flit: Flit) {
        self.arbiter.restore(flit);
    }

    /// Advance the PE by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.tick_traced(now, &mut NullSink);
    }

    /// [`tick`](ProcessingElement::tick) with cache accesses, coherence
    /// operations and packet-span events reported to `sink`. With an
    /// inactive sink every emission site constant-folds away, so `tick`
    /// monomorphizes to exactly the untraced engine.
    pub fn tick_traced<S: TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        self.bridge.tick(now);
        // One queued directory probe served per cycle, even while the
        // execution engine is stalled or done (provably a no-op under DII:
        // the responder's queues stay empty forever).
        self.coh.service(&self.topo, self.src_id, &mut self.cache, &mut self.mesi);
        // Move at most one shared-memory flit into the arbiter per cycle
        // (the bridge's output latch drains at link rate); the bridge's
        // own transaction outranks probe replies.
        if self.bridge.has_output() && self.arbiter.can_accept_bridge() {
            let flit = self.bridge.take_output().expect("has_output");
            self.arbiter.accept_bridge(flit);
        } else if self.coh.has_out() && self.arbiter.can_accept_bridge() {
            let flit = self.coh.pop_out().expect("has_out");
            self.arbiter.accept_bridge(flit);
        }
        self.step(now, sink);
    }

    fn step<S: TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        // A tick may chain reply→fetch→begin so back-to-back operations
        // lose no cycles; every iteration either blocks or consumes a
        // kernel request, so the loop terminates.
        loop {
            let continue_loop = match std::mem::replace(&mut self.exec, Exec::Fetch) {
                Exec::Done => {
                    self.exec = Exec::Done;
                    false
                }
                Exec::Fetch => match self.host.fetch() {
                    Fetched::Finished => {
                        // Surface kernel panics on the engine thread:
                        // swallowing one here would turn an eMPI protocol
                        // diagnostic into a baffling downstream deadlock.
                        assert!(
                            !self.host.join(),
                            "kernel on {} panicked; see the kernel thread's message above",
                            self.cfg.node
                        );
                        self.exec = Exec::Done;
                        false
                    }
                    Fetched::Request(PeRequest::TraceSpan { op, begin }) => {
                        // Markers consume zero simulated cycles and update
                        // no statistic (not even `requests`): the run must
                        // be bit-identical whether they flow or not. The
                        // collective-depth tracker is equally invisible —
                        // it only relabels wait cycles for the profiler.
                        if op.is_collective() {
                            if begin {
                                self.collective_depth += 1;
                            } else {
                                self.collective_depth = self.collective_depth.saturating_sub(1);
                            }
                        }
                        if S::ACTIVE {
                            let node = self.src_id as u16;
                            sink.record(
                                now,
                                if begin {
                                    TraceEvent::SpanBegin { node, op }
                                } else {
                                    TraceEvent::SpanEnd { node, op }
                                },
                            );
                        }
                        self.host.reply(PeResponse::Unit);
                        true
                    }
                    Fetched::Request(PeRequest::FaultNote { retransmits, nacks }) => {
                        // Resilience notes follow the TraceSpan contract:
                        // zero simulated cycles, dedicated counters only,
                        // so fault-free runs stay bit-identical.
                        self.stats.retransmits.add(retransmits as u64);
                        self.stats.nacks_sent.add(nacks as u64);
                        self.host.reply(PeResponse::Unit);
                        true
                    }
                    Fetched::Request(req) => {
                        self.stats.requests.inc();
                        self.begin(req, now, sink);
                        false
                    }
                },
                Exec::Stall { until, resp, act } => {
                    if now >= until {
                        self.host.reply(resp);
                        self.exec = Exec::Fetch;
                        true
                    } else {
                        self.exec = Exec::Stall { until, resp, act };
                        false
                    }
                }
                Exec::Mem(m) => {
                    self.stats.mem_cycles.inc();
                    self.step_mem(m, now, sink)
                }
                Exec::BridgeWait { shape } => {
                    self.stats.mem_cycles.inc();
                    match self.bridge.take_result() {
                        Some(result) => {
                            let resp = Self::map_direct(shape, result);
                            self.host.reply(resp);
                            self.exec = Exec::Fetch;
                            true
                        }
                        None => {
                            self.exec = Exec::BridgeWait { shape };
                            false
                        }
                    }
                }
                Exec::Send { mut flits } => {
                    self.stats.send_cycles.inc();
                    if self.arbiter.can_accept_message() {
                        if let Some(flit) = flits.pop_front() {
                            self.arbiter.accept_message(flit);
                        }
                    }
                    if flits.is_empty() {
                        self.stats.packets_sent.inc();
                        if S::ACTIVE {
                            let node = self.src_id as u16;
                            sink.record(now, TraceEvent::SpanEnd { node, op: KernelOp::Send });
                        }
                        self.host.reply(PeResponse::Unit);
                        self.exec = Exec::Fetch;
                        true
                    } else {
                        self.exec = Exec::Send { flits };
                        false
                    }
                }
                Exec::Recv { from } => match self.rx.take_packet(from) {
                    Some(packet) => {
                        self.stats.packets_received.inc();
                        if S::ACTIVE {
                            let node = self.src_id as u16;
                            sink.record(now, TraceEvent::SpanEnd { node, op: KernelOp::Recv });
                        }
                        // One cycle per word for the seq-indexed copy into
                        // local memory (Fig. 2-b).
                        let cost = packet.data.len() as Cycle;
                        self.exec = Exec::Stall {
                            until: now + cost,
                            resp: PeResponse::Packet(packet),
                            act: PeActivity::RecvWait,
                        };
                        false
                    }
                    None => {
                        self.stats.recv_wait_cycles.inc();
                        self.exec = Exec::Recv { from };
                        false
                    }
                },
            };
            if !continue_loop {
                break;
            }
        }
    }

    fn begin<S: TraceSink>(&mut self, req: PeRequest, now: Cycle, sink: &mut S) {
        let fp = self.cfg.fp;
        let node = self.src_id as u16;
        let stall =
            |until: Cycle, resp: PeResponse, act: PeActivity| Exec::Stall { until, resp, act };
        self.exec = match req {
            PeRequest::Compute { cycles } => {
                let c = cycles.max(1);
                self.stats.compute_cycles.add(c);
                stall(now + c, PeResponse::Unit, PeActivity::Compute)
            }
            PeRequest::FpAdd { a, b } => {
                self.stats.compute_cycles.add(fp.add_cycles());
                stall(now + fp.add_cycles(), PeResponse::F64(a + b), PeActivity::Compute)
            }
            PeRequest::FpSub { a, b } => {
                self.stats.compute_cycles.add(fp.add_cycles());
                stall(now + fp.add_cycles(), PeResponse::F64(a - b), PeActivity::Compute)
            }
            PeRequest::FpMul { a, b } => {
                self.stats.compute_cycles.add(fp.mul_cycles());
                stall(now + fp.mul_cycles(), PeResponse::F64(a * b), PeActivity::Compute)
            }
            PeRequest::FpDiv { a, b } => {
                self.stats.compute_cycles.add(fp.div_cycles());
                stall(now + fp.div_cycles(), PeResponse::F64(a / b), PeActivity::Compute)
            }
            PeRequest::LoadWord { addr } => Exec::Mem(MemExec {
                shape: MemShape::LoadWord,
                words: [WordOp { addr, store: None }; 2],
                count: 1,
                idx: 0,
                acc: [0; 2],
                phase: MemPhase::Access,
            }),
            PeRequest::StoreWord { addr, value } => Exec::Mem(MemExec {
                shape: MemShape::Store,
                words: [WordOp { addr, store: Some(value) }; 2],
                count: 1,
                idx: 0,
                acc: [0; 2],
                phase: MemPhase::Access,
            }),
            PeRequest::LoadF64 { addr } => Exec::Mem(MemExec {
                shape: MemShape::LoadF64,
                words: [WordOp { addr, store: None }, WordOp { addr: addr + 4, store: None }],
                count: 2,
                idx: 0,
                acc: [0; 2],
                phase: MemPhase::Access,
            }),
            PeRequest::StoreF64 { addr, value } => {
                let (lo, hi) = f64_to_words(value);
                Exec::Mem(MemExec {
                    shape: MemShape::Store,
                    words: [
                        WordOp { addr, store: Some(lo) },
                        WordOp { addr: addr + 4, store: Some(hi) },
                    ],
                    count: 2,
                    idx: 0,
                    acc: [0; 2],
                    phase: MemPhase::Access,
                })
            }
            PeRequest::FlushLine { addr } => match self.cache.flush_line(addr) {
                medea_cache::FlushOutcome::Clean => {
                    if S::ACTIVE {
                        let kind = CacheEventKind::Flush;
                        sink.record(now, TraceEvent::CacheAccess { node, kind, addr });
                    }
                    stall(now + 1, PeResponse::Unit, PeActivity::Mem)
                }
                medea_cache::FlushOutcome::Writeback(v) => {
                    if S::ACTIVE {
                        let kind = CacheEventKind::FlushWriteback;
                        sink.record(now, TraceEvent::CacheAccess { node, kind, addr });
                    }
                    // Under MESI a dirty line means we own it; a plain
                    // block write refreshes memory without touching the
                    // directory, so the resident copy downgrades M→E.
                    if self.coherent() {
                        self.mesi.insert(v.line, MesiState::Exclusive);
                    }
                    self.bridge.start(BridgeOp::BlockWrite { line: v.line, data: v.data });
                    Exec::BridgeWait { shape: DirectShape::FlushWriteback }
                }
            },
            PeRequest::InvalidateLine { addr } => {
                self.cache.invalidate_line(addr);
                // A deliberate discard: the directory may keep treating us
                // as owner/sharer, which the conservative probe-ack rules
                // make harmless.
                self.mesi.remove(&line_of(addr));
                if S::ACTIVE {
                    let kind = CacheEventKind::Invalidate;
                    sink.record(now, TraceEvent::CacheAccess { node, kind, addr });
                }
                stall(now + 1, PeResponse::Unit, PeActivity::Mem)
            }
            PeRequest::UncachedLoad { addr } => {
                self.bridge.start(BridgeOp::SingleRead { addr });
                Exec::BridgeWait { shape: DirectShape::UncachedLoad }
            }
            PeRequest::UncachedStore { addr, value } => {
                self.bridge.start(BridgeOp::SingleWrite { addr, value });
                Exec::BridgeWait { shape: DirectShape::UncachedStore }
            }
            PeRequest::Lock { addr } => {
                self.bridge.start(BridgeOp::Lock { addr });
                Exec::BridgeWait { shape: DirectShape::Lock }
            }
            PeRequest::Unlock { addr } => {
                self.bridge.start(BridgeOp::Unlock { addr });
                Exec::BridgeWait { shape: DirectShape::Unlock }
            }
            PeRequest::Send { dest, payload } => {
                if S::ACTIVE {
                    sink.record(now, TraceEvent::SpanBegin { node, op: KernelOp::Send });
                }
                let flits = packetize(self.topo.coord_of(dest), self.src_id, &payload);
                Exec::Send { flits: flits.into() }
            }
            PeRequest::Recv { from } => {
                if S::ACTIVE {
                    sink.record(now, TraceEvent::SpanBegin { node, op: KernelOp::Recv });
                }
                Exec::Recv { from }
            }
            PeRequest::TryRecv { from } => {
                let packet = self.rx.take_packet(from);
                let cost = 1 + packet.as_ref().map(|p| p.data.len() as Cycle).unwrap_or(0);
                if packet.is_some() {
                    self.stats.packets_received.inc();
                }
                stall(now + cost, PeResponse::MaybePacket(packet), PeActivity::RecvWait)
            }
            PeRequest::Now => stall(now + 1, PeResponse::Time(now), PeActivity::Compute),
            PeRequest::TraceSpan { .. } | PeRequest::FaultNote { .. } => {
                unreachable!("zero-cycle notes are consumed in the fetch loop")
            }
        };
    }

    fn map_direct(shape: DirectShape, result: BridgeResult) -> PeResponse {
        match (shape, result) {
            (DirectShape::FlushWriteback, BridgeResult::WriteDone) => PeResponse::Unit,
            (DirectShape::UncachedLoad, BridgeResult::Word(w)) => PeResponse::Word(w),
            (DirectShape::UncachedStore, BridgeResult::WriteDone) => PeResponse::Unit,
            (DirectShape::Lock, BridgeResult::LockGranted) => PeResponse::Unit,
            (DirectShape::Unlock, BridgeResult::UnlockDone) => PeResponse::Unit,
            (DirectShape::Unlock, BridgeResult::UnlockRejected) => {
                panic!("unlock rejected by MPMMU: kernel released a lock it does not hold")
            }
            (shape, result) => {
                panic!("bridge returned {result:?} while PE awaited {shape:?}")
            }
        }
    }

    /// Process one cycle of a cached memory operation. Returns whether the
    /// step loop should continue (a reply was issued).
    fn step_mem<S: TraceSink>(&mut self, mut m: MemExec, now: Cycle, sink: &mut S) -> bool {
        let node = self.src_id as u16;
        let cache_event = |sink: &mut S, kind: CacheEventKind, addr: Addr| {
            if S::ACTIVE {
                sink.record(now, TraceEvent::CacheAccess { node, kind, addr });
            }
        };
        match m.phase {
            MemPhase::Access => {
                let word = m.words[m.idx];
                match word.store {
                    None => match self.cache.load_word(word.addr) {
                        Some(v) => {
                            cache_event(sink, CacheEventKind::LoadHit, word.addr);
                            m.acc[m.idx] = v;
                            m.idx += 1;
                            return self.word_done(m, now);
                        }
                        None => {
                            cache_event(sink, CacheEventKind::LoadMiss, word.addr);
                            self.start_allocate(&mut m, word.addr);
                        }
                    },
                    Some(value) => {
                        // MESI: a store may only be absorbed with write
                        // permission (M or E). A hit on a Shared line must
                        // first drop the local copy and refetch through
                        // `GetM` so the home invalidates the other sharers.
                        if self.coherent()
                            && self.line_state(line_of(word.addr)) == Some(MesiState::Shared)
                        {
                            cache_event(sink, CacheEventKind::StoreMiss, word.addr);
                            self.cache.invalidate_line(word.addr);
                            self.mesi.remove(&line_of(word.addr));
                            self.start_allocate(&mut m, word.addr);
                            self.exec = Exec::Mem(m);
                            return false;
                        }
                        match self.cache.store_word(word.addr, value) {
                            StoreOutcome::Absorbed => {
                                cache_event(sink, CacheEventKind::StoreHit, word.addr);
                                if self.coherent() {
                                    // Silent E→M upgrade (or M staying M): the
                                    // directory already records us as owner.
                                    self.mesi.insert(line_of(word.addr), MesiState::Modified);
                                }
                                m.idx += 1;
                                return self.word_done(m, now);
                            }
                            StoreOutcome::WriteThrough => {
                                cache_event(sink, CacheEventKind::StoreThrough, word.addr);
                                self.bridge.start(BridgeOp::SingleWrite { addr: word.addr, value });
                                m.phase = MemPhase::WriteThrough;
                            }
                            StoreOutcome::NeedsAllocate => {
                                cache_event(sink, CacheEventKind::StoreMiss, word.addr);
                                self.start_allocate(&mut m, word.addr);
                            }
                        }
                    }
                }
                self.exec = Exec::Mem(m);
                false
            }
            MemPhase::VictimWriteback { line } => {
                if let Some(result) = self.bridge.take_result() {
                    debug_assert_eq!(result, BridgeResult::WriteDone);
                    if self.coherent() {
                        // PutM handshake done: the home owns the victim's
                        // data now, so the race window closes.
                        self.coh.end_writeback();
                        self.start_coh_fetch(&mut m, line);
                    } else {
                        self.bridge.start(BridgeOp::BlockRead { line });
                        m.phase = MemPhase::LineFetch { line };
                    }
                }
                self.exec = Exec::Mem(m);
                false
            }
            MemPhase::LineFetch { line } => {
                if let Some(result) = self.bridge.take_result() {
                    let data = match result {
                        BridgeResult::Line(d) => d,
                        BridgeResult::CohLine { data, grant } => {
                            let state = match grant {
                                CohOp::GrantM => MesiState::Modified,
                                CohOp::GrantE => MesiState::Exclusive,
                                _ => MesiState::Shared,
                            };
                            self.mesi.insert(line, state);
                            // Release the home: it stays blocked on this
                            // line until our Unblock crosses the NoC, so no
                            // probe can race the fill-install-retry window.
                            self.coh.push_out(Flit::coherence(
                                self.bridge.home_coord(line),
                                SubKind::Request,
                                CohOp::Unblock,
                                self.src_id,
                                line,
                            ));
                            data
                        }
                        other => panic!("line fetch returned {other:?}"),
                    };
                    self.cache.fill_line(line, data);
                    m.phase = MemPhase::Access; // retry: guaranteed hit
                }
                self.exec = Exec::Mem(m);
                false
            }
            MemPhase::WriteThrough => {
                if let Some(result) = self.bridge.take_result() {
                    debug_assert_eq!(result, BridgeResult::WriteDone);
                    m.idx += 1;
                    return self.word_done(m, now);
                }
                self.exec = Exec::Mem(m);
                false
            }
        }
    }

    fn start_allocate(&mut self, m: &mut MemExec, addr: Addr) {
        let line = line_of(addr);
        match self.cache.evict_for(line) {
            Some(victim) if self.coherent() => {
                // Dirty eviction under MESI: give ownership back with PutM,
                // and keep the data answerable in the responder's buffer in
                // case a FetchInv races the handshake.
                self.mesi.remove(&victim.line);
                self.coh.begin_writeback(victim.line, victim.data);
                self.bridge.start(BridgeOp::CohPutM { line: victim.line, data: victim.data });
                m.phase = MemPhase::VictimWriteback { line };
            }
            Some(victim) => {
                self.bridge.start(BridgeOp::BlockWrite { line: victim.line, data: victim.data });
                m.phase = MemPhase::VictimWriteback { line };
            }
            None if self.coherent() => self.start_coh_fetch(m, line),
            None => {
                self.bridge.start(BridgeOp::BlockRead { line });
                m.phase = MemPhase::LineFetch { line };
            }
        }
    }

    /// Begin the coherent fetch of `line`: `GetM` when the pending word is
    /// a store (write permission), `GetS` otherwise.
    fn start_coh_fetch(&mut self, m: &mut MemExec, line: Addr) {
        let op = if m.words[m.idx].store.is_some() {
            BridgeOp::CohGetM { line }
        } else {
            BridgeOp::CohGetS { line }
        };
        self.bridge.start(op);
        m.phase = MemPhase::LineFetch { line };
    }

    /// A word finished; either continue with the next word or reply.
    fn word_done(&mut self, mut m: MemExec, _now: Cycle) -> bool {
        if m.idx < m.count {
            m.phase = MemPhase::Access;
            self.exec = Exec::Mem(m);
            return false;
        }
        let resp = match m.shape {
            MemShape::LoadWord => PeResponse::Word(m.acc[0]),
            MemShape::LoadF64 => PeResponse::F64(words_to_f64(m.acc[0], m.acc[1])),
            MemShape::Store => PeResponse::Unit,
        };
        self.host.reply(resp);
        self.exec = Exec::Fetch;
        true
    }

    const _ASSERT_LINE_IS_FOUR_WORDS: () = assert!(WORDS_PER_LINE == 4);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpu::MulOption;
    use medea_cache::CachePolicy;

    fn cfg(node: u16) -> PeConfig {
        PeConfig {
            node: NodeId::new(node),
            cache: CacheConfig::new(2048, CachePolicy::WriteBack).unwrap(),
            fp: FpModel::new(MulOption::MulHigh),
            arbiter: ArbiterConfig::default(),
            bridge: BridgeConfig::default(),
            coherence: CoherenceMode::Dii,
        }
    }

    fn topo() -> Topology {
        Topology::paper_4x4()
    }

    /// The paper's single-bank map: everything at node 0.
    fn bank0() -> BankMap {
        BankMap::single(topo(), NodeId::new(0))
    }

    /// Tick `pe` until it is done, answering bridge traffic with a trivial
    /// "magic memory" that reflects flits back instantly (zero-latency
    /// MPMMU). Returns elapsed cycles.
    fn run_with_magic_memory(pe: &mut ProcessingElement, limit: Cycle) -> Cycle {
        use medea_noc::flit::{PacketKind, SubKind};
        let mut mem = std::collections::HashMap::<u32, u32>::new();
        // (kind, base address, words expected, words received so far)
        type PendingWrite = (PacketKind, u32, usize, Vec<(u8, u32)>);
        let mut pending_write: Option<PendingWrite> = None;
        for now in 0..limit {
            pe.tick(now);
            // Collect everything the PE wants to send and answer at once —
            // an infinitely fast memory, fine for engine unit tests.
            while let Some(flit) = pe.select_inject() {
                match (flit.kind(), flit.sub()) {
                    (PacketKind::Message, _) => { /* loopback tests deliver manually */ }
                    (PacketKind::SingleRead, SubKind::Request) => {
                        let v = mem.get(&flit.payload()).copied().unwrap_or(0);
                        let resp = Flit::new(
                            flit.dest(),
                            PacketKind::SingleRead,
                            SubKind::Data,
                            0,
                            0,
                            0,
                            v,
                        );
                        pe.deliver(resp, now);
                    }
                    (PacketKind::BlockRead, SubKind::Request) => {
                        let line = flit.payload() & !0xF;
                        for i in 0..4u32 {
                            let v = mem.get(&(line + i * 4)).copied().unwrap_or(0);
                            let resp = Flit::new(
                                flit.dest(),
                                PacketKind::BlockRead,
                                SubKind::Data,
                                i as u8,
                                2,
                                0,
                                v,
                            );
                            pe.deliver(resp, now);
                        }
                    }
                    (PacketKind::SingleWrite | PacketKind::BlockWrite, SubKind::Request) => {
                        let expect = if flit.kind() == PacketKind::SingleWrite { 1 } else { 4 };
                        pending_write = Some((flit.kind(), flit.payload(), expect, Vec::new()));
                        let grant = Flit::new(flit.dest(), flit.kind(), SubKind::Ack, 0, 0, 0, 0);
                        pe.deliver(grant, now);
                    }
                    (_, SubKind::Data) => {
                        let (kind, addr, expect, ref mut words) =
                            pending_write.as_mut().expect("write in flight");
                        words.push((flit.seq(), flit.payload()));
                        if words.len() == *expect {
                            let base =
                                if *kind == PacketKind::SingleWrite { *addr } else { *addr & !0xF };
                            for (seq, w) in words.iter() {
                                mem.insert(base + *seq as u32 * 4, *w);
                            }
                            let ack = Flit::new(flit.dest(), *kind, SubKind::Ack, 1, 0, 0, 0);
                            let kind_done = *kind;
                            let _ = kind_done;
                            pending_write = None;
                            pe.deliver(ack, now);
                        }
                    }
                    (PacketKind::Lock, SubKind::Request) => {
                        let ack =
                            Flit::new(flit.dest(), PacketKind::Lock, SubKind::Ack, 0, 0, 0, 0);
                        pe.deliver(ack, now);
                    }
                    (PacketKind::Unlock, SubKind::Request) => {
                        let ack =
                            Flit::new(flit.dest(), PacketKind::Unlock, SubKind::Ack, 0, 0, 0, 0);
                        pe.deliver(ack, now);
                    }
                    other => panic!("magic memory got {other:?}"),
                }
            }
            if pe.is_done() {
                return now;
            }
        }
        panic!("kernel did not finish within {limit} cycles");
    }

    #[test]
    fn compute_costs_its_cycles() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::Compute { cycles: 50 }).unwrap();
        });
        let t = run_with_magic_memory(&mut pe, 200);
        assert!((50..=55).contains(&t), "compute(50) took {t}");
        assert_eq!(pe.stats().compute_cycles.get(), 50);
    }

    #[test]
    fn fp_costs_match_model() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            match port.call(PeRequest::FpAdd { a: 1.5, b: 2.25 }).unwrap() {
                PeResponse::F64(v) => assert_eq!(v, 3.75),
                other => panic!("{other:?}"),
            }
            match port.call(PeRequest::FpMul { a: 3.0, b: 4.0 }).unwrap() {
                PeResponse::F64(v) => assert_eq!(v, 12.0),
                other => panic!("{other:?}"),
            }
        });
        let t = run_with_magic_memory(&mut pe, 200);
        // 19 + 26 plus small fetch overheads.
        assert!((45..=50).contains(&t), "fp pair took {t}");
    }

    #[test]
    fn store_then_load_roundtrips_through_cache() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::StoreF64 { addr: 0x100, value: 6.5 }).unwrap();
            match port.call(PeRequest::LoadF64 { addr: 0x100 }).unwrap() {
                PeResponse::F64(v) => assert_eq!(v, 6.5),
                other => panic!("{other:?}"),
            }
        });
        run_with_magic_memory(&mut pe, 2000);
        assert!(pe.cache_stats().load_hits.get() >= 2);
    }

    #[test]
    fn wb_miss_goes_through_memory() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            match port.call(PeRequest::LoadWord { addr: 0x40 }).unwrap() {
                PeResponse::Word(w) => assert_eq!(w, 0),
                other => panic!("{other:?}"),
            }
            // Second load of the same line: hit, no new bridge traffic.
            port.call(PeRequest::LoadWord { addr: 0x44 }).unwrap();
        });
        run_with_magic_memory(&mut pe, 2000);
        assert_eq!(pe.cache_stats().load_misses.get(), 1);
        // Two hits: the post-fill retry of the missing word plus 0x44.
        assert_eq!(pe.cache_stats().load_hits.get(), 2);
        assert_eq!(pe.bridge_stats().transactions.get(), 1);
    }

    #[test]
    fn wt_store_writes_through_every_time() {
        let mut c = cfg(1);
        c.cache = CacheConfig::new(2048, CachePolicy::WriteThrough).unwrap();
        let mut pe = ProcessingElement::new(c, topo(), bank0(), |port: PePort| {
            for i in 0..4u32 {
                port.call(PeRequest::StoreWord { addr: 0x80, value: i }).unwrap();
            }
        });
        run_with_magic_memory(&mut pe, 4000);
        // 4 stores = 4 single-write transactions.
        assert_eq!(pe.bridge_stats().transactions.get(), 4);
    }

    #[test]
    fn flush_writes_dirty_line_back() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::StoreWord { addr: 0x200, value: 7 }).unwrap();
            port.call(PeRequest::FlushLine { addr: 0x200 }).unwrap();
            // Clean flush afterwards is free of traffic.
            port.call(PeRequest::FlushLine { addr: 0x200 }).unwrap();
        });
        run_with_magic_memory(&mut pe, 4000);
        assert_eq!(pe.cache_stats().writebacks.get(), 1);
    }

    #[test]
    fn lock_unlock_sequence() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::Lock { addr: 0x300 }).unwrap();
            port.call(PeRequest::Unlock { addr: 0x300 }).unwrap();
        });
        run_with_magic_memory(&mut pe, 2000);
        assert_eq!(pe.bridge_stats().transactions.get(), 2);
    }

    #[test]
    fn message_loopback_via_manual_delivery() {
        // Kernel sends to itself; the test delivers the flits back.
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::Send { dest: NodeId::new(1), payload: vec![5, 6, 7] }).unwrap();
            match port.call(PeRequest::Recv { from: None }).unwrap() {
                PeResponse::Packet(p) => {
                    assert_eq!(&p.data[..3], &[5, 6, 7]);
                    assert_eq!(p.src, 1);
                }
                other => panic!("{other:?}"),
            }
        });
        for now in 0..500 {
            pe.tick(now);
            while let Some(f) = pe.select_inject() {
                pe.deliver(f, now); // loop back
            }
            if pe.is_done() {
                assert_eq!(pe.stats().packets_sent.get(), 1);
                assert_eq!(pe.stats().packets_received.get(), 1);
                return;
            }
        }
        panic!("loopback did not finish");
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            match port.call(PeRequest::TryRecv { from: None }).unwrap() {
                PeResponse::MaybePacket(None) => {}
                other => panic!("{other:?}"),
            }
        });
        run_with_magic_memory(&mut pe, 100);
    }

    #[test]
    fn now_reports_cycle() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::Compute { cycles: 30 }).unwrap();
            match port.call(PeRequest::Now).unwrap() {
                PeResponse::Time(t) => assert!(t >= 30, "clock must have advanced, got {t}"),
                other => panic!("{other:?}"),
            }
        });
        run_with_magic_memory(&mut pe, 200);
    }

    #[test]
    fn wakeup_hints() {
        let mut pe = ProcessingElement::new(cfg(1), topo(), bank0(), |port: PePort| {
            port.call(PeRequest::Compute { cycles: 100 }).unwrap();
        });
        pe.tick(0);
        match pe.wakeup() {
            Wakeup::At(t) => assert_eq!(t, 100),
            other => panic!("{other:?}"),
        }
        for now in 1..=101 {
            pe.tick(now);
        }
        assert_eq!(pe.wakeup(), Wakeup::Done);
    }
}
