//! TIE message-passing receive interface.
//!
//! §II-B, Fig. 2: incoming message flits carry a sequence number that the
//! receiver uses "as an offset address for the storage into the processor
//! data memory", with a double-buffer so a new logical packet can assemble
//! while the previous one is being consumed — no sorting buffer is needed
//! despite out-of-order delivery.
//!
//! We model reassembly per source: each source has up to
//! [`TieReceiver::PARTIAL_BUFFERS`] in-flight partial packets (the double
//! buffer). A flit joins the oldest partial packet from its source that
//! still misses its sequence slot; completed packets queue for the PE.
//! Single-flit packets (burst code 1 — eMPI credits and barrier tokens)
//! are complete on arrival and bypass the reassembly buffers entirely:
//! the seq-as-offset copy of a one-word burst needs no buffered state, so
//! a credit can overtake two in-flight data packets from the same source
//! without exhausting the double buffer — the property the full-duplex
//! `Empi::sendrecv` exchange relies on.
//!
//! # Attribution assumption (inherited from the physical design)
//!
//! The wire format (Fig. 5) carries no packet id, so when two consecutive
//! packets from one source are in flight, a flit can only be attributed by
//! its free sequence slot. Attribution is exact provided the network never
//! reorders two *same-sequence-number* flits of consecutive packets — a
//! bounded-reorder assumption inherited from the eMPI credit window (at
//! most two packets in flight, injected ≥ 16 cycles apart, while observed
//! reorder is a few cycles). The same assumption covers *completion*
//! order: a single-flit packet (a token) injected after a multi-flit
//! packet's last flit completes out of order only if deflections delay
//! that tail by more than the injection gap — the same bounded-reorder
//! window, and true before the burst-1 bypass too whenever a reassembly
//! buffer was free. The physical seq-number-as-offset receiver
//! has exactly the same contract. Because deflection pressure grows with
//! torus size, the assumption is re-checked numerically rather than taken
//! on faith: the 63-rank Jacobi test validates every grid cell bit-for-bit
//! against the sequential reference on a fully populated 8×8 torus, and
//! the `scaling_json` harness does the same for the 255-PE 16×16
//! configuration on every full run.

use medea_noc::flit::{Flit, MAX_LOGICAL_PACKET};
use medea_sim::stats::Counter;
use std::collections::VecDeque;

/// A fully reassembled logical packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Application-level source id (node index of the sender).
    pub src: u8,
    /// Payload words, in sequence order.
    pub data: Vec<u32>,
    /// Whether any constituent flit arrived with a failed payload
    /// checksum (in-flight corruption). Resilient receivers (eMPI) must
    /// discard such packets and request retransmission; the flag is
    /// delivered rather than the packet dropped so non-resilient runs
    /// keep the paper's semantics (data is used as-is).
    pub corrupt: bool,
}

/// Receive-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TieStats {
    /// Message flits delivered to this receiver.
    pub flits_received: Counter,
    /// Completed logical packets.
    pub packets_completed: Counter,
    /// Flits that could not be attributed to a partial packet (more than
    /// two packets from one source interleaved — beyond the double buffer).
    pub buffer_overflows: Counter,
    /// Flits whose payload checksum failed on arrival (corrupted in
    /// flight by fault injection).
    pub corrupt_flits: Counter,
}

#[derive(Debug, Clone)]
struct Partial {
    slots: [Option<u32>; MAX_LOGICAL_PACKET],
    expect: usize,
    got: usize,
    corrupt: bool,
}

impl Partial {
    fn new(expect: usize) -> Self {
        Partial { slots: [None; MAX_LOGICAL_PACKET], expect, got: 0, corrupt: false }
    }

    fn accepts(&self, seq: usize, expect: usize) -> bool {
        self.expect == expect && seq < self.expect && self.slots[seq].is_none()
    }

    fn insert(&mut self, seq: usize, word: u32) -> bool {
        debug_assert!(self.slots[seq].is_none());
        self.slots[seq] = Some(word);
        self.got += 1;
        self.got == self.expect
    }

    fn into_words(self) -> Vec<u32> {
        self.slots.into_iter().take(self.expect).map(|w| w.expect("complete")).collect()
    }
}

/// Sequence-number reassembly unit with per-source double buffering.
#[derive(Debug, Clone)]
pub struct TieReceiver {
    /// Indexed by source node id; grown on demand up to the 256 nodes of
    /// the largest (16×16) torus, so an idle receiver on a small system
    /// stays small.
    partials: Vec<VecDeque<Partial>>,
    completed: VecDeque<Packet>,
    stats: TieStats,
}

impl TieReceiver {
    /// In-flight partial packets per source — the paper's double buffer.
    pub const PARTIAL_BUFFERS: usize = 2;

    /// New, empty receiver.
    pub fn new() -> Self {
        TieReceiver { partials: Vec::new(), completed: VecDeque::new(), stats: TieStats::default() }
    }

    /// Receive statistics.
    pub const fn stats(&self) -> &TieStats {
        &self.stats
    }

    /// Deliver one message flit.
    ///
    /// Multi-flit packets beyond the double-buffer capacity are dropped
    /// and counted in [`TieStats::buffer_overflows`] — software (eMPI)
    /// must not keep more than two *data* packets per source in flight,
    /// and the eMPI credit window guarantees it. Single-flit packets are
    /// complete on arrival and never occupy a reassembly buffer.
    pub fn deliver(&mut self, flit: Flit) {
        debug_assert!(!flit.kind().is_shared_memory(), "TIE receives message flits only");
        self.stats.flits_received.inc();
        let corrupt = !flit.checksum_ok();
        if corrupt {
            self.stats.corrupt_flits.inc();
        }
        let src = flit.src_id() as usize;
        let seq = flit.seq() as usize;
        let expect = flit.burst_flits();
        if expect == 1 {
            // Burst-1 packets (credits, tokens) need no reassembly state.
            self.stats.packets_completed.inc();
            self.completed.push_back(Packet {
                src: src as u8,
                data: vec![flit.payload()],
                corrupt,
            });
            return;
        }
        if src >= self.partials.len() {
            self.partials.resize_with(src + 1, VecDeque::new);
        }
        let queue = &mut self.partials[src];
        let idx = queue.iter().position(|p| p.accepts(seq, expect));
        let idx = match idx {
            Some(i) => i,
            None => {
                if queue.len() >= Self::PARTIAL_BUFFERS {
                    self.stats.buffer_overflows.inc();
                    return;
                }
                queue.push_back(Partial::new(expect));
                queue.len() - 1
            }
        };
        queue[idx].corrupt |= corrupt;
        if queue[idx].insert(seq, flit.payload()) {
            let done = queue.remove(idx).expect("index valid");
            self.stats.packets_completed.inc();
            let corrupt = done.corrupt;
            self.completed.push_back(Packet { src: src as u8, data: done.into_words(), corrupt });
        }
    }

    /// Pop the oldest completed packet, optionally filtered by source.
    pub fn take_packet(&mut self, from: Option<u8>) -> Option<Packet> {
        match from {
            None => self.completed.pop_front(),
            Some(src) => {
                let idx = self.completed.iter().position(|p| p.src == src)?;
                self.completed.remove(idx)
            }
        }
    }

    /// Whether a completed packet (from `from`, if given) is waiting.
    pub fn has_packet(&self, from: Option<u8>) -> bool {
        match from {
            None => !self.completed.is_empty(),
            Some(src) => self.completed.iter().any(|p| p.src == src),
        }
    }

    /// Number of completed packets waiting.
    pub fn pending_packets(&self) -> usize {
        self.completed.len()
    }

    /// Whether any partial packet is still assembling.
    pub fn has_partials(&self) -> bool {
        self.partials.iter().any(|q| !q.is_empty())
    }

    /// Number of partial packets still assembling (across all sources).
    pub fn partial_packets(&self) -> usize {
        self.partials.iter().map(VecDeque::len).sum()
    }
}

impl Default for TieReceiver {
    fn default() -> Self {
        TieReceiver::new()
    }
}

/// Split a payload into the message flits of one logical packet.
///
/// # Panics
///
/// Panics if `payload` is empty or longer than [`MAX_LOGICAL_PACKET`]
/// (the 4-bit sequence-number bound; longer transfers are split into
/// multiple packets by the eMPI layer).
pub fn packetize(dest: medea_noc::coord::Coord, src_id: u8, payload: &[u32]) -> Vec<Flit> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_LOGICAL_PACKET,
        "logical packet must contain 1..={MAX_LOGICAL_PACKET} flits, got {}",
        payload.len()
    );
    let burst = medea_noc::flit::burst_code(payload.len());
    // The burst code may cover more flits than sent ({1,2,4,16} encoding);
    // pad so the receiver's expectation is met exactly.
    let padded = medea_noc::flit::burst_len(burst);
    (0..padded)
        .map(|i| {
            let word = payload.get(i).copied().unwrap_or(0);
            Flit::message(dest, src_id, i as u8, burst, word)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_noc::coord::Coord;

    fn msg(src: u8, seq: u8, burst: u8, word: u32) -> Flit {
        Flit::message(Coord::new(0, 0), src, seq, burst, word)
    }

    #[test]
    fn in_order_reassembly() {
        let mut rx = TieReceiver::new();
        for i in 0..4u8 {
            rx.deliver(msg(3, i, 2, 100 + i as u32)); // burst code 2 = 4 flits
        }
        let p = rx.take_packet(None).expect("complete");
        assert_eq!(p.src, 3);
        assert_eq!(p.data, vec![100, 101, 102, 103]);
        assert!(!rx.has_partials());
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut rx = TieReceiver::new();
        for i in [3u8, 0, 2, 1] {
            rx.deliver(msg(1, i, 2, i as u32));
        }
        let p = rx.take_packet(Some(1)).expect("complete");
        assert_eq!(p.data, vec![0, 1, 2, 3]);
    }

    #[test]
    fn double_buffer_two_interleaved_packets() {
        let mut rx = TieReceiver::new();
        // Packet A (4 flits) and packet B (4 flits) from the same source,
        // interleaved. A flit with a seq slot already filled in the oldest
        // partial goes to the second buffer.
        rx.deliver(msg(2, 0, 2, 10)); // A0
        rx.deliver(msg(2, 0, 2, 20)); // B0 (slot 0 taken -> second buffer)
        rx.deliver(msg(2, 1, 2, 11)); // A1 (oldest missing slot 1)
        rx.deliver(msg(2, 2, 2, 12));
        rx.deliver(msg(2, 1, 2, 21));
        rx.deliver(msg(2, 3, 2, 13)); // A completes
        let a = rx.take_packet(Some(2)).unwrap();
        assert_eq!(a.data, vec![10, 11, 12, 13]);
        rx.deliver(msg(2, 2, 2, 22));
        rx.deliver(msg(2, 3, 2, 23));
        let b = rx.take_packet(Some(2)).unwrap();
        assert_eq!(b.data, vec![20, 21, 22, 23]);
        assert_eq!(rx.stats().packets_completed.get(), 2);
        assert_eq!(rx.stats().buffer_overflows.get(), 0);
    }

    #[test]
    fn triple_interleave_overflows() {
        let mut rx = TieReceiver::new();
        rx.deliver(msg(2, 0, 2, 1));
        rx.deliver(msg(2, 0, 2, 2));
        rx.deliver(msg(2, 0, 2, 3)); // third packet: beyond double buffer
        assert_eq!(rx.stats().buffer_overflows.get(), 1);
    }

    #[test]
    fn single_flit_bypasses_full_double_buffer() {
        // Two multi-flit packets from source 2 are mid-reassembly; a
        // single-flit packet (an eMPI credit) from the same source must
        // still complete — it carries no reassembly state.
        let mut rx = TieReceiver::new();
        rx.deliver(msg(2, 0, 2, 10)); // packet A assembling
        rx.deliver(msg(2, 0, 2, 20)); // packet B assembling
        rx.deliver(msg(2, 0, 0, 99)); // burst-1 credit
        assert_eq!(rx.stats().buffer_overflows.get(), 0);
        let credit = rx.take_packet(Some(2)).expect("credit completed");
        assert_eq!(credit.data, vec![99]);
        assert!(rx.has_partials(), "data packets still assembling");
    }

    #[test]
    fn corrupt_flit_taints_its_packet_only() {
        let mut rx = TieReceiver::new();
        // 4-flit packet with one corrupted flit.
        for i in 0..4u8 {
            let mut f = msg(5, i, 2, 40 + i as u32);
            if i == 2 {
                f.corrupt_payload_bit(11);
            }
            rx.deliver(f);
        }
        // A clean single-flit credit from the same source.
        rx.deliver(msg(5, 0, 0, 1));
        let tainted = rx.take_packet(Some(5)).unwrap();
        assert!(tainted.corrupt);
        assert_eq!(tainted.data.len(), 4);
        let credit = rx.take_packet(Some(5)).unwrap();
        assert!(!credit.corrupt);
        assert_eq!(rx.stats().corrupt_flits.get(), 1);
    }

    #[test]
    fn sources_are_independent() {
        let mut rx = TieReceiver::new();
        rx.deliver(msg(1, 0, 0, 5)); // single-flit packet from 1
        rx.deliver(msg(4, 0, 0, 6)); // single-flit packet from 4
        assert!(rx.has_packet(Some(4)));
        let p = rx.take_packet(Some(4)).unwrap();
        assert_eq!(p.data, vec![6]);
        assert_eq!(rx.take_packet(None).unwrap().src, 1);
        assert_eq!(rx.pending_packets(), 0);
    }

    #[test]
    fn high_node_ids_reassemble() {
        // Sources beyond the paper's 16 nodes (e.g. node 255 of a 16x16
        // torus) get buffers on demand.
        let mut rx = TieReceiver::new();
        rx.deliver(msg(255, 0, 0, 77));
        rx.deliver(msg(17, 0, 0, 78));
        assert_eq!(rx.take_packet(Some(255)).unwrap().data, vec![77]);
        assert_eq!(rx.take_packet(Some(17)).unwrap().data, vec![78]);
    }

    #[test]
    fn packetize_roundtrip() {
        let mut rx = TieReceiver::new();
        let payload = vec![7, 8, 9]; // padded to 4 by the {1,2,4,16} code
        let flits = packetize(Coord::new(0, 0), 6, &payload);
        assert_eq!(flits.len(), 4);
        for f in flits {
            rx.deliver(f);
        }
        let p = rx.take_packet(Some(6)).unwrap();
        assert_eq!(&p.data[..3], &[7, 8, 9]);
    }

    #[test]
    fn packetize_single_word() {
        let flits = packetize(Coord::new(1, 1), 2, &[42]);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].burst_flits(), 1);
    }

    #[test]
    #[should_panic(expected = "logical packet")]
    fn packetize_oversized_panics() {
        let payload = vec![0u32; MAX_LOGICAL_PACKET + 1];
        packetize(Coord::new(0, 0), 0, &payload);
    }
}
