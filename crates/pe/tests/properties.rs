//! Property-based tests for the PE substrate: TIE reassembly under
//! arbitrary flit orderings and arbiter conservation/ordering invariants.

use medea_noc::coord::Coord;
use medea_noc::flit::{burst_code, burst_len, Flit, PacketKind};
use medea_pe::arbiter::{ArbiterConfig, NocArbiter, PriorityAssignment};
use medea_pe::tie::{packetize, TieReceiver};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One logical packet reassembles to its payload under *any* flit
    /// permutation (deflection routing may deliver in any order).
    #[test]
    fn single_packet_any_order(
        payload in proptest::collection::vec(any::<u32>(), 1..=16),
        seed in any::<u64>(),
    ) {
        let mut rng = medea_sim::rng::SplitMix64::new(seed);
        let mut flits = packetize(Coord::new(0, 0), 3, &payload);
        // Fisher-Yates with the deterministic RNG.
        for i in (1..flits.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            flits.swap(i, j);
        }
        let mut rx = TieReceiver::new();
        for f in flits {
            rx.deliver(f);
        }
        let packet = rx.take_packet(Some(3)).expect("complete");
        prop_assert_eq!(&packet.data[..payload.len()], &payload[..]);
        // Padding (if any) is zero.
        for pad in &packet.data[payload.len()..] {
            prop_assert_eq!(*pad, 0);
        }
        prop_assert_eq!(rx.stats().buffer_overflows.get(), 0);
    }

    /// Two interleaved packets from the same source both reassemble
    /// correctly under any delivery order the hardware contract covers:
    /// arbitrary intra-packet reorder, arbitrary interleaving, as long as
    /// no same-sequence flit of the second packet overtakes the first's
    /// (the bounded-reorder assumption documented in `tie.rs`).
    #[test]
    fn two_packets_interleaved(
        a in proptest::collection::vec(any::<u32>(), 4usize..=4),
        b in proptest::collection::vec(any::<u32>(), 4usize..=4),
        seed in any::<u64>(),
    ) {
        let mut rng = medea_sim::rng::SplitMix64::new(seed);
        let mut fa = packetize(Coord::new(0, 0), 5, &a);
        let fb = packetize(Coord::new(0, 0), 5, &b);
        // Shuffle packet A's flits freely.
        for i in (1..fa.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            fa.swap(i, j);
        }
        // Merge: insert each B flit at a random position strictly after
        // A's flit with the same sequence number.
        let mut merged = fa;
        for bf in fb {
            let a_pos = merged
                .iter()
                .position(|f| f.seq() == bf.seq())
                .expect("A carries every sequence number");
            let insert_at =
                a_pos + 1 + rng.next_below((merged.len() - a_pos) as u64) as usize;
            merged.insert(insert_at, bf);
        }
        let mut rx = TieReceiver::new();
        for f in merged {
            rx.deliver(f);
        }
        prop_assert_eq!(rx.stats().buffer_overflows.get(), 0);
        prop_assert_eq!(rx.pending_packets(), 2);
        // Per-slot ordering guarantees packet A completes first.
        let p1 = rx.take_packet(Some(5)).expect("first");
        let p2 = rx.take_packet(Some(5)).expect("second");
        prop_assert_eq!(p1.data, a);
        prop_assert_eq!(p2.data, b);
    }

    /// Burst codes cover their lengths minimally within the {1,2,4,16}
    /// code book.
    #[test]
    fn burst_code_minimal_cover(len in 1usize..=16) {
        let code = burst_code(len);
        let covered = burst_len(code);
        prop_assert!(covered >= len);
        // No smaller code also covers.
        for smaller in 0..code {
            prop_assert!(burst_len(smaller) < len);
        }
    }

    /// Every arbiter configuration conserves flits: everything accepted is
    /// eventually selected, no duplicates, no inventions.
    #[test]
    fn arbiter_conserves_flits(
        ops in proptest::collection::vec((any::<bool>(), any::<u32>()), 1..80),
        which in 0usize..4,
    ) {
        let config = match which {
            0 => ArbiterConfig::Mux,
            1 => ArbiterConfig::SingleFifo { depth: 4 },
            2 => ArbiterConfig::DualPriority { depth: 4, priority: PriorityAssignment::MessageHigh },
            _ => ArbiterConfig::DualPriority { depth: 4, priority: PriorityAssignment::BridgeHigh },
        };
        let mut arb = NocArbiter::new(config);
        let mut accepted = std::collections::BTreeSet::new();
        let mut drained = std::collections::BTreeSet::new();
        for (is_msg, tag) in ops {
            if is_msg {
                if arb.can_accept_message() {
                    arb.accept_message(Flit::message(Coord::new(1, 0), 1, 0, 0, tag));
                    accepted.insert((true, tag));
                }
            } else if arb.can_accept_bridge() {
                arb.accept_bridge(Flit::request(Coord::new(0, 0), PacketKind::SingleRead, 1, tag));
                accepted.insert((false, tag));
            }
            // Drain one per "cycle", like the router would.
            if let Some(f) = arb.select() {
                drained.insert((f.kind() == PacketKind::Message, f.payload()));
            }
        }
        while let Some(f) = arb.select() {
            drained.insert((f.kind() == PacketKind::Message, f.payload()));
        }
        prop_assert_eq!(drained, accepted);
        prop_assert_eq!(arb.occupancy(), 0);
    }

    /// Restore-then-select returns the restored flit first for every
    /// configuration.
    #[test]
    fn arbiter_restore_is_head(which in 0usize..4, tags in proptest::collection::vec(any::<u32>(), 2..6)) {
        let config = match which {
            0 => ArbiterConfig::Mux,
            1 => ArbiterConfig::SingleFifo { depth: 8 },
            2 => ArbiterConfig::DualPriority { depth: 8, priority: PriorityAssignment::MessageHigh },
            _ => ArbiterConfig::DualPriority { depth: 8, priority: PriorityAssignment::BridgeHigh },
        };
        let mut arb = NocArbiter::new(config);
        for (i, tag) in tags.iter().enumerate() {
            if i % 2 == 0 && arb.can_accept_message() {
                arb.accept_message(Flit::message(Coord::new(1, 0), 1, 0, 0, *tag));
            } else if arb.can_accept_bridge() {
                arb.accept_bridge(Flit::request(Coord::new(0, 0), PacketKind::BlockRead, 1, *tag));
            }
        }
        if let Some(f) = arb.select() {
            arb.restore(f);
            let again = arb.select().expect("restored flit available");
            prop_assert_eq!(again, f);
        }
    }
}
