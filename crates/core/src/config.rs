//! System configuration: the design-space knobs of the paper's exploration.

use crate::calib;
use crate::empi::CollectiveAlgo;
use crate::layout::MemoryMap;
use crate::FabricKind;
use medea_cache::{CacheConfig, CachePolicy, CoherenceMode};
use medea_mem::{BankMap, DdrModel, MpmmuConfig, MAX_BANKS};
use medea_metrics::MetricsConfig;
use medea_noc::coord::{Coord, Topology};
use medea_pe::arbiter::ArbiterConfig;
use medea_pe::bridge::BridgeConfig;
use medea_pe::fpu::{FpModel, MulOption};
use medea_pe::pe::PeConfig;
use medea_sim::ids::{NodeId, Rank};
use medea_sim::Cycle;
use medea_trace::{EventClass, TraceConfig};
use std::fmt;

/// Error from [`SystemConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildConfigError(String);

impl fmt::Display for BuildConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system configuration: {}", self.0)
    }
}

impl std::error::Error for BuildConfigError {}

/// Resilient-delivery knobs — all **off** by default, because recovery
/// machinery changes timing even when no fault ever fires (resilient eMPI
/// polls with `TryRecv` instead of blocking in `Recv`). The golden
/// paper-4×4 fingerprints are pinned with resilience off; turning any
/// knob on is an explicit, observable configuration change.
///
/// The knobs are deliberately independent of fault *injection*
/// (`medea_fault::FaultConfig`, passed to `System::run_faulted`): one can
/// inject faults against a non-resilient system to measure raw damage, or
/// enable resilience without injection to measure the protocol overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// End-to-end eMPI retransmission: receivers discard corrupt packets
    /// and NACK missing chunks; senders cache the last message per
    /// destination, service NACKs, and block on a delivery ACK.
    pub empi_retransmit: bool,
    /// Base eMPI recovery timeout in cycles: a receiver missing chunks
    /// NACKs after this long without progress (exponential backoff after
    /// repeats), and a sender re-pokes an unacknowledged final chunk on
    /// the same schedule.
    pub empi_timeout: Cycle,
    /// Bound on consecutive recovery attempts for one message before the
    /// receiver panics (unrecoverable loss) or the sender optimistically
    /// proceeds without its ACK.
    pub empi_max_attempts: u32,
    /// pif2NoC bridge read-response timeout in cycles (0 = off): a
    /// single/block read with no response by the deadline is re-issued —
    /// reads are idempotent, so retry is safe (see
    /// `medea_pe::bridge::BridgeConfig::response_timeout`).
    pub bridge_timeout: Cycle,
    /// Hang watchdog (0 = off): abort the run with a structured
    /// `RunError::Watchdog` when no PE exchanges a packet, no bank serves
    /// a transaction and the fabric delivers nothing for this many
    /// consecutive cycles. Catches the livelocks that resilient polling
    /// hides from ordinary deadlock detection.
    pub watchdog_cycles: Cycle,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            empi_retransmit: false,
            empi_timeout: 50_000,
            empi_max_attempts: 10,
            bridge_timeout: 0,
            watchdog_cycles: 0,
        }
    }
}

impl ResilienceConfig {
    /// Everything off — the paper-exact configuration (the default).
    pub fn off() -> Self {
        ResilienceConfig::default()
    }

    /// Every recovery mechanism on, with the default timeouts: eMPI
    /// retransmission, bridge read retry, and a 2M-cycle watchdog.
    pub fn standard() -> Self {
        ResilienceConfig {
            empi_retransmit: true,
            bridge_timeout: 20_000,
            watchdog_cycles: 2_000_000,
            ..ResilienceConfig::default()
        }
    }

    /// Whether every knob is off (the bit-for-bit paper path).
    pub const fn is_off(&self) -> bool {
        !self.empi_retransmit && self.bridge_timeout == 0 && self.watchdog_cycles == 0
    }
}

/// A fully validated MEDEA system configuration.
///
/// The system is assembled on any supported torus (2×2 up to 16×16,
/// default: the paper's 4×4 folded torus). Shared memory is served by
/// `memory_banks` address-interleaved MPMMU banks spread across the torus
/// (default 1, at node 0 — the paper's instance); compute PEs occupy the
/// remaining nodes in ascending order, so the PE count is bounded by
/// `nodes − banks` — 15 on the paper instance (matching its "number of
/// processor cores between 3 and 16, 1 of which is the MPMMU"), up to 255
/// on a single-bank 16×16 torus.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    topology: Topology,
    compute_pes: usize,
    memory_banks: usize,
    cache: CacheConfig,
    arbiter: ArbiterConfig,
    mul: MulOption,
    fabric: FabricKind,
    layout: MemoryMap,
    mpmmu_cache: CacheConfig,
    ddr: DdrModel,
    lock_retry_backoff: Cycle,
    cycle_limit: Cycle,
    collective_algo: CollectiveAlgo,
    trace: TraceConfig,
    metrics: MetricsConfig,
    resilience: ResilienceConfig,
    coherence: CoherenceMode,
    host_threads: usize,
}

impl SystemConfig {
    /// Start building a configuration.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Number of compute PEs (excluding the MPMMU).
    pub const fn compute_pes(&self) -> usize {
        self.compute_pes
    }

    /// L1 cache geometry and policy.
    pub const fn cache(&self) -> CacheConfig {
        self.cache
    }

    /// Arbiter build option.
    pub const fn arbiter(&self) -> ArbiterConfig {
        self.arbiter
    }

    /// Multiplier option of the FP-emulation model.
    pub const fn mul_option(&self) -> MulOption {
        self.mul
    }

    /// Fabric implementation (deflection torus or ideal ablation).
    pub const fn fabric(&self) -> FabricKind {
        self.fabric
    }

    /// The memory map.
    pub const fn layout(&self) -> MemoryMap {
        self.layout
    }

    /// Maximum simulated cycles before a run is declared stuck.
    pub const fn cycle_limit(&self) -> Cycle {
        self.cycle_limit
    }

    /// The torus this system is assembled on.
    pub const fn topology(&self) -> Topology {
        self.topology
    }

    /// The algorithm eMPI collectives run on this system (default
    /// [`CollectiveAlgo::Linear`], the seed's rank-0-centred patterns).
    pub const fn collective_algo(&self) -> CollectiveAlgo {
        self.collective_algo
    }

    /// Number of address-interleaved MPMMU banks (1 = the paper's single
    /// node-0 MPMMU).
    pub const fn memory_banks(&self) -> usize {
        self.memory_banks
    }

    /// The tracing configuration (default off). Tracing never changes a
    /// run's architectural results; see
    /// [`SystemConfigBuilder::trace`] for exactly what this knob
    /// controls (kernel-side span markers — sink-side class filtering
    /// belongs to the sink).
    pub const fn trace(&self) -> TraceConfig {
        self.trace
    }

    /// Whether kernels should issue eMPI span markers (the one event
    /// source originating on kernel threads).
    pub const fn trace_kernel_spans(&self) -> bool {
        self.trace.captures(EventClass::KERNEL)
    }

    /// The metrics-sampling configuration (default off). Like tracing,
    /// metrics never change a run's architectural results; see
    /// [`SystemConfigBuilder::metrics`].
    pub const fn metrics(&self) -> MetricsConfig {
        self.metrics
    }

    /// The resilient-delivery knobs (default: everything off — see
    /// [`ResilienceConfig`]).
    pub const fn resilience(&self) -> ResilienceConfig {
        self.resilience
    }

    /// The coherence option: the paper's software DII (default) or the
    /// beyond-the-paper hardware directory MESI (see
    /// [`SystemConfigBuilder::coherence`]).
    pub const fn coherence(&self) -> CoherenceMode {
        self.coherence
    }

    /// Host worker threads the cycle engine may use inside one run
    /// (default 1 = the sequential engine). See
    /// [`SystemConfigBuilder::host_threads`]; purely a host-side
    /// execution knob, never part of the architectural configuration or
    /// its label.
    pub const fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// The nodes hosting the MPMMU banks, in bank-index order (bank 0 is
    /// always node 0; further banks are spread across the torus).
    pub fn bank_nodes(&self) -> Vec<NodeId> {
        bank_placement(self.topology, self.memory_banks)
    }

    /// The address → bank lookup table shared by every bridge.
    pub fn bank_map(&self) -> BankMap {
        BankMap::new(self.topology, &self.bank_nodes())
            .expect("validated configurations have valid bank maps")
    }

    /// The node-role plan: which nodes host banks, which host ranks.
    pub fn node_plan(&self) -> NodePlan {
        NodePlan::new(&self.bank_nodes(), self.compute_pes)
    }

    /// The node of bank 0 — the paper's single MPMMU location (always
    /// node 0).
    pub fn mpmmu_node(&self) -> NodeId {
        NodeId::new(0)
    }

    /// The node hosting `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` exceeds the configured PE count.
    pub fn node_of_rank(&self, rank: Rank) -> NodeId {
        self.node_plan().node_of_rank(rank)
    }

    /// The rank hosted on `node`, if it is a PE node.
    pub fn rank_of_node(&self, node: NodeId) -> Option<Rank> {
        self.node_plan().rank_of_node(node)
    }

    /// The per-PE hardware configuration for `rank`.
    pub fn pe_config(&self, rank: Rank) -> PeConfig {
        PeConfig {
            node: self.node_of_rank(rank),
            cache: self.cache,
            fp: FpModel::new(self.mul),
            arbiter: self.arbiter,
            bridge: BridgeConfig {
                lock_retry_backoff: self.lock_retry_backoff,
                response_timeout: self.resilience.bridge_timeout,
            },
            coherence: self.coherence,
        }
    }

    /// The MPMMU configuration.
    pub fn mpmmu_config(&self) -> MpmmuConfig {
        MpmmuConfig {
            num_procs: self.compute_pes,
            data_fifo_depth: 16,
            out_fifo_depth: 16,
            service_overhead: calib::MPMMU_SERVICE_OVERHEAD,
            cache_hit_latency: calib::MPMMU_CACHE_HIT,
            cache: self.mpmmu_cache,
            mem_bytes: self.layout.total_bytes(),
            ddr: self.ddr,
            coherence: self.coherence,
        }
    }

    /// Short label in the paper's figure style, e.g. `11P_16k$_WB`.
    /// Non-paper topologies are called out with an `@WxH` suffix
    /// (e.g. `63P_16k$_WB@8x8`), multi-bank memory with an `xNB` suffix
    /// (e.g. `252P_16k$_WB@16x16x4B`).
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}P_{}k$_{}",
            self.compute_pes,
            self.cache.total_bytes() / 1024,
            self.cache.policy()
        );
        if self.topology != Topology::paper_4x4() {
            label.push_str(&format!("@{}x{}", self.topology.width(), self.topology.height()));
        }
        if self.memory_banks > 1 {
            label.push_str(&format!("x{}B", self.memory_banks));
        }
        if self.coherence.is_hardware() {
            label.push_str("_mesi");
        }
        label
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} arbiter, {}, {:?} fabric)",
            self.label(),
            self.arbiter,
            self.mul,
            self.fabric
        )
    }
}

/// Where the MPMMU banks of a `banks`-bank system live on `topology`:
/// bank `k` sits on a regular `nx × ny` sub-grid of the torus (the wider
/// torus axis gets the larger factor), so banks are spread across both
/// dimensions and bank 0 is always node 0 — the paper's MPMMU location.
fn bank_placement(topology: Topology, banks: usize) -> Vec<NodeId> {
    debug_assert!(banks.is_power_of_two() && banks <= MAX_BANKS);
    let (nx, ny) = bank_grid(topology, banks);
    let (w, h) = (topology.width() as usize, topology.height() as usize);
    (0..banks)
        .map(|k| {
            let x = (k % nx) * w / nx;
            let y = (k / nx) * h / ny;
            topology.node_of(Coord::new(x as u8, y as u8))
        })
        .collect()
}

/// The `nx × ny` placement sub-grid for `banks` banks (see
/// [`bank_placement`]).
fn bank_grid(topology: Topology, banks: usize) -> (usize, usize) {
    let bits = banks.trailing_zeros();
    let (mut xb, mut yb) = (bits.div_ceil(2), bits / 2);
    if topology.width() < topology.height() {
        std::mem::swap(&mut xb, &mut yb);
    }
    (1usize << xb, 1usize << yb)
}

/// Which node plays which role: the bank-node set plus the rank → node
/// assignment (compute PEs occupy the non-bank nodes in ascending order).
///
/// A small `Copy` value so every kernel's [`crate::api::PeApi`] can carry
/// it; with one bank at node 0 it reproduces the original `rank + 1`
/// mapping exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePlan {
    /// Bank nodes in ascending node order (placement is ascending, and
    /// the skip arithmetic below depends on it).
    bank_nodes: [u16; MAX_BANKS],
    banks: u8,
    pes: u16,
}

impl NodePlan {
    fn new(bank_nodes: &[NodeId], pes: usize) -> Self {
        assert!(!bank_nodes.is_empty() && bank_nodes.len() <= MAX_BANKS);
        let mut nodes = [0u16; MAX_BANKS];
        for (slot, node) in nodes.iter_mut().zip(bank_nodes) {
            *slot = node.index() as u16;
        }
        nodes[..bank_nodes.len()].sort_unstable();
        NodePlan { bank_nodes: nodes, banks: bank_nodes.len() as u8, pes: pes as u16 }
    }

    /// Number of banks.
    pub const fn banks(&self) -> usize {
        self.banks as usize
    }

    /// Number of compute ranks.
    pub const fn ranks(&self) -> usize {
        self.pes as usize
    }

    /// Whether `node` hosts an MPMMU bank.
    pub fn is_bank_node(&self, node: NodeId) -> bool {
        self.bank_nodes[..self.banks()].contains(&(node.index() as u16))
    }

    /// The node hosting `rank`: the `rank`-th non-bank node in ascending
    /// node order.
    ///
    /// # Panics
    ///
    /// Panics if `rank` exceeds the PE count.
    pub fn node_of_rank(&self, rank: Rank) -> NodeId {
        assert!(rank.index() < self.ranks(), "{rank} outside {}-PE system", self.ranks());
        let mut node = rank.index();
        for bank in &self.bank_nodes[..self.banks()] {
            if *bank as usize <= node {
                node += 1;
            }
        }
        NodeId::new(node as u16)
    }

    /// The rank hosted on `node`, if it is a PE node.
    pub fn rank_of_node(&self, node: NodeId) -> Option<Rank> {
        if self.is_bank_node(node) {
            return None;
        }
        let below = self.bank_nodes[..self.banks()]
            .iter()
            .filter(|b| (**b as usize) < node.index())
            .count();
        let rank = node.index() - below;
        (rank < self.ranks()).then(|| Rank::new(rank as u8))
    }
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    topology: Topology,
    compute_pes: usize,
    memory_banks: usize,
    cache_bytes: usize,
    cache_ways: usize,
    cache_policy: CachePolicy,
    arbiter: ArbiterConfig,
    mul: MulOption,
    fabric: FabricKind,
    shared_bytes: u32,
    private_bytes: u32,
    mpmmu_cache_bytes: usize,
    ddr: DdrModel,
    lock_retry_backoff: Cycle,
    cycle_limit: Cycle,
    collective_algo: CollectiveAlgo,
    trace: TraceConfig,
    metrics: MetricsConfig,
    resilience: ResilienceConfig,
    coherence: CoherenceMode,
    host_threads: usize,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            topology: Topology::paper_4x4(),
            compute_pes: 4,
            memory_banks: 1,
            cache_bytes: 16 * 1024,
            cache_ways: CacheConfig::DEFAULT_WAYS,
            cache_policy: CachePolicy::WriteBack,
            arbiter: ArbiterConfig::default(),
            mul: MulOption::MulHigh,
            fabric: FabricKind::Deflection,
            shared_bytes: 256 * 1024,
            private_bytes: 128 * 1024,
            mpmmu_cache_bytes: 16 * 1024,
            ddr: DdrModel::new(calib::DDR_FIRST_WORD, calib::DDR_PER_WORD),
            lock_retry_backoff: calib::LOCK_RETRY_BACKOFF,
            cycle_limit: 2_000_000_000,
            collective_algo: CollectiveAlgo::Linear,
            trace: TraceConfig::off(),
            metrics: MetricsConfig::off(),
            resilience: ResilienceConfig::off(),
            coherence: CoherenceMode::Dii,
            host_threads: 1,
        }
    }
}

impl SystemConfigBuilder {
    /// The torus to assemble the system on (default: the paper's 4×4
    /// folded torus). The PE-count bound follows: `1..=nodes − 1`.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of compute PEs (`1..=nodes − memory_banks` of the configured
    /// topology; 1..=15 on the default 4×4 torus).
    pub fn compute_pes(mut self, n: usize) -> Self {
        self.compute_pes = n;
        self
    }

    /// Number of address-interleaved MPMMU banks (a power of two,
    /// default 1). The shared address space is interleaved over the banks
    /// at cache-line granularity and the bank nodes are spread across the
    /// torus; `1` is the paper's single node-0 MPMMU and reproduces its
    /// behavior bit-for-bit.
    pub fn memory_banks(mut self, n: usize) -> Self {
        self.memory_banks = n;
        self
    }

    /// L1 cache size in bytes (the paper sweeps 2 kB..64 kB).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// L1 associativity (default 2).
    pub fn cache_ways(mut self, ways: usize) -> Self {
        self.cache_ways = ways;
        self
    }

    /// L1 write policy.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Arbiter build option (§II-B).
    pub fn arbiter(mut self, arbiter: ArbiterConfig) -> Self {
        self.arbiter = arbiter;
        self
    }

    /// FP multiplier option.
    pub fn mul_option(mut self, mul: MulOption) -> Self {
        self.mul = mul;
        self
    }

    /// Fabric kind (A2 ablation).
    pub fn fabric(mut self, fabric: FabricKind) -> Self {
        self.fabric = fabric;
        self
    }

    /// Shared-segment size in bytes.
    pub fn shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Per-rank private-segment size in bytes.
    pub fn private_bytes(mut self, bytes: u32) -> Self {
        self.private_bytes = bytes;
        self
    }

    /// MPMMU local cache size in bytes.
    pub fn mpmmu_cache_bytes(mut self, bytes: usize) -> Self {
        self.mpmmu_cache_bytes = bytes;
        self
    }

    /// DDR timing model.
    pub fn ddr(mut self, ddr: DdrModel) -> Self {
        self.ddr = ddr;
        self
    }

    /// Lock retry backoff in cycles.
    pub fn lock_retry_backoff(mut self, cycles: Cycle) -> Self {
        self.lock_retry_backoff = cycles;
        self
    }

    /// Abort threshold in simulated cycles.
    pub fn cycle_limit(mut self, cycles: Cycle) -> Self {
        self.cycle_limit = cycles;
        self
    }

    /// Algorithm for eMPI collectives. The default, `Linear`, reproduces
    /// the seed's rank-0-centred message patterns (and so the paper-4×4
    /// golden fingerprints); `BinomialTree`/`RecursiveDoubling` turn the
    /// O(ranks) barrier into O(log ranks) rounds for the 63–255-rank
    /// tori.
    pub fn collective_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.collective_algo = algo;
        self
    }

    /// The system-side tracing knob (default: [`TraceConfig::off`]).
    ///
    /// Its engine-side effect is the `KERNEL` class bit: when set,
    /// kernels and the eMPI layer issue span markers (zero simulated
    /// cycles, so architectural results never change — only
    /// observability). Engine-emitted events (NoC, cache, memory) flow
    /// to whatever sink `System::run_traced` is given regardless;
    /// *which classes a capture keeps* is the sink's decision — use
    /// `RingSink::with_classes` to capture a subset.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The metrics-sampling knob (default: [`MetricsConfig::off`]).
    ///
    /// When enabled (`MetricsConfig::every(k)`), the cycle engine records
    /// per-PE cycle attribution plus a sample window every `k` cycles
    /// (per-link utilization, PE states, bank FIFO/lock/coherence
    /// pressure) and attaches the [`medea_metrics::MetricsReport`] to
    /// `RunResult::metrics`. Metrics observe and never steer: a
    /// metrics-on run is bit-identical to the same run with metrics off,
    /// and like `host_threads` the knob never enters the label. The one
    /// interaction: enabling metrics makes kernels issue their zero-cycle
    /// span markers (the profiler needs them to classify collective
    /// waits), so an *active trace sink* on a metrics-on run will also
    /// see KERNEL-class events.
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Resilient-delivery knobs (default: [`ResilienceConfig::off`]).
    ///
    /// Turning anything on changes timing even without injected faults
    /// (resilient eMPI polls instead of blocking), so this is never
    /// implied by fault injection — pair it with `System::run_faulted`
    /// deliberately.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// The coherence option (default [`CoherenceMode::Dii`], the paper's
    /// §II-E software flush/invalidate discipline — bit-for-bit faithful,
    /// no `Coherence` flit ever exists). `MesiDirectory` enables the
    /// beyond-the-paper hardware option: MPMMU banks keep a per-line
    /// directory and invalidate/fetch L1 copies over the NoC, so kernels
    /// may skip the DII operations entirely. Requires a write-back L1 and
    /// is an *architectural* knob: it changes timing, traffic and the
    /// label.
    pub fn coherence(mut self, mode: CoherenceMode) -> Self {
        self.coherence = mode;
        self
    }

    /// Host worker threads the cycle engine may use *inside* one run
    /// (default 1 = the sequential engine).
    ///
    /// With `n > 1` on a deflection fabric, `System::run` domain-
    /// decomposes the torus into up to `n` contiguous node tiles and
    /// advances them on a scoped worker pool in lockstep, one barrier per
    /// simulated cycle; results are bit-identical to the sequential
    /// engine at every thread count (see the parallel-engine notes in
    /// `system.rs`). This is a host execution knob, not an architectural
    /// parameter: it never affects [`SystemConfig::label`], and sweeps
    /// cap their own worker count so sweep threads × engine threads stay
    /// within the machine (`run_sweep`).
    pub fn host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// The configured engine thread count (used by `run_sweep` to avoid
    /// oversubscribing the host).
    pub(crate) const fn configured_host_threads(&self) -> usize {
        self.host_threads
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// Returns [`BuildConfigError`] when the bank count is not a power of
    /// two that fits the topology, when the PE count exceeds the nodes
    /// left over by the banks, when cache geometry is invalid, or when
    /// the memory layout is malformed.
    pub fn build(self) -> Result<SystemConfig, BuildConfigError> {
        if !self.memory_banks.is_power_of_two() || self.memory_banks > MAX_BANKS {
            return Err(BuildConfigError(format!(
                "memory_banks must be a power of two in 1..={MAX_BANKS}, got {}",
                self.memory_banks
            )));
        }
        let (nx, ny) = bank_grid(self.topology, self.memory_banks);
        if nx > self.topology.width() as usize || ny > self.topology.height() as usize {
            return Err(BuildConfigError(format!(
                "{} banks do not spread over the {} ({nx}x{ny} placement grid needed)",
                self.memory_banks, self.topology
            )));
        }
        let max_pes = self.topology.nodes() - self.memory_banks;
        if !(1..=max_pes).contains(&self.compute_pes) {
            return Err(BuildConfigError(format!(
                "compute_pes must be 1..={max_pes} on the {} with {} memory bank(s) (each \
                 bank occupies a node), got {}",
                self.topology, self.memory_banks, self.compute_pes
            )));
        }
        let cache = CacheConfig::with_ways(self.cache_bytes, self.cache_ways, self.cache_policy)
            .map_err(|e| BuildConfigError(e.to_string()))?;
        let mpmmu_cache = CacheConfig::new(self.mpmmu_cache_bytes, CachePolicy::WriteBack)
            .map_err(|e| BuildConfigError(format!("mpmmu cache: {e}")))?;
        let layout = MemoryMap::new(self.compute_pes, self.shared_bytes, self.private_bytes)
            .map_err(|e| BuildConfigError(e.to_string()))?;
        if self.cycle_limit == 0 {
            return Err(BuildConfigError("cycle limit must be positive".into()));
        }
        if self.host_threads == 0 {
            return Err(BuildConfigError("host_threads must be positive".into()));
        }
        if self.resilience.empi_retransmit
            && (self.resilience.empi_timeout == 0 || self.resilience.empi_max_attempts == 0)
        {
            return Err(BuildConfigError(
                "empi_retransmit needs a positive empi_timeout and empi_max_attempts".into(),
            ));
        }
        if self.coherence.is_hardware() {
            if self.cache_policy != CachePolicy::WriteBack {
                return Err(BuildConfigError(
                    "directory MESI requires a write-back L1 (ownership lives in the cache)".into(),
                ));
            }
            if self.resilience.bridge_timeout != 0 {
                return Err(BuildConfigError(
                    "directory MESI is incompatible with the bridge read-retry timeout \
                     (coherence transactions are not idempotent)"
                        .into(),
                ));
            }
        }
        Ok(SystemConfig {
            topology: self.topology,
            compute_pes: self.compute_pes,
            memory_banks: self.memory_banks,
            cache,
            arbiter: self.arbiter,
            mul: self.mul,
            fabric: self.fabric,
            layout,
            mpmmu_cache,
            ddr: self.ddr,
            lock_retry_backoff: self.lock_retry_backoff,
            cycle_limit: self.cycle_limit,
            collective_algo: self.collective_algo,
            trace: self.trace,
            metrics: self.metrics,
            resilience: self.resilience,
            coherence: self.coherence,
            host_threads: self.host_threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_threads_is_a_host_knob_not_an_architectural_one() {
        let cfg = SystemConfig::builder().host_threads(8).build().unwrap();
        assert_eq!(cfg.host_threads(), 8);
        // The label identifies the *architecture*; the engine thread
        // count must not leak into it.
        assert_eq!(cfg.label(), SystemConfig::builder().build().unwrap().label());
        assert_eq!(SystemConfig::builder().build().unwrap().host_threads(), 1);
        assert!(SystemConfig::builder().host_threads(0).build().is_err());
    }

    #[test]
    fn defaults_build() {
        let cfg = SystemConfig::builder().build().unwrap();
        assert_eq!(cfg.compute_pes(), 4);
        assert_eq!(cfg.cache().total_bytes(), 16 * 1024);
        assert_eq!(cfg.label(), "4P_16k$_WB");
        assert_eq!(cfg.topology().nodes(), 16);
        // The default algorithm is the deliberate fingerprint-preserving
        // choice; trees are opt-in.
        assert_eq!(cfg.collective_algo(), CollectiveAlgo::Linear);
    }

    #[test]
    fn trace_defaults_off_and_is_configurable() {
        let cfg = SystemConfig::builder().build().unwrap();
        assert!(cfg.trace().is_off());
        assert!(!cfg.trace_kernel_spans());
        let traced = SystemConfig::builder().trace(TraceConfig::all()).build().unwrap();
        assert!(traced.trace().captures(EventClass::NOC));
        assert!(traced.trace_kernel_spans());
        let noc_only =
            SystemConfig::builder().trace(TraceConfig::classes(EventClass::NOC)).build().unwrap();
        assert!(!noc_only.trace_kernel_spans(), "kernel markers follow the KERNEL class only");
    }

    #[test]
    fn metrics_defaults_off_and_never_labels() {
        let cfg = SystemConfig::builder().build().unwrap();
        assert!(!cfg.metrics().enabled());
        let on = SystemConfig::builder().metrics(MetricsConfig::every(5_000)).build().unwrap();
        assert!(on.metrics().enabled());
        assert_eq!(on.metrics().sample_interval(), 5_000);
        // Observability knob: the architectural label must not change.
        assert_eq!(on.label(), cfg.label());
    }

    #[test]
    fn collective_algo_is_configurable() {
        for algo in CollectiveAlgo::ALL {
            let cfg = SystemConfig::builder().collective_algo(algo).build().unwrap();
            assert_eq!(cfg.collective_algo(), algo);
        }
    }

    #[test]
    fn rank_node_mapping() {
        let cfg = SystemConfig::builder().compute_pes(3).build().unwrap();
        assert_eq!(cfg.node_of_rank(Rank::new(0)), NodeId::new(1));
        assert_eq!(cfg.node_of_rank(Rank::new(2)), NodeId::new(3));
        assert_eq!(cfg.rank_of_node(NodeId::new(1)), Some(Rank::new(0)));
        assert_eq!(cfg.rank_of_node(NodeId::new(0)), None, "MPMMU node");
        assert_eq!(cfg.rank_of_node(NodeId::new(4)), None, "beyond PE count");
    }

    #[test]
    fn coherence_axis() {
        let cfg = SystemConfig::builder().build().unwrap();
        assert_eq!(cfg.coherence(), CoherenceMode::Dii, "DII is the paper-faithful default");
        assert_eq!(cfg.pe_config(Rank::new(0)).coherence, CoherenceMode::Dii);
        assert_eq!(cfg.mpmmu_config().coherence, CoherenceMode::Dii);

        let mesi = SystemConfig::builder().coherence(CoherenceMode::MesiDirectory).build().unwrap();
        assert_eq!(mesi.coherence(), CoherenceMode::MesiDirectory);
        assert_eq!(mesi.pe_config(Rank::new(0)).coherence, CoherenceMode::MesiDirectory);
        assert_eq!(mesi.mpmmu_config().coherence, CoherenceMode::MesiDirectory);
        // An architectural knob: it must show in the label.
        assert_eq!(mesi.label(), "4P_16k$_WB_mesi");

        // MESI needs a write-back L1 …
        assert!(SystemConfig::builder()
            .coherence(CoherenceMode::MesiDirectory)
            .cache_policy(CachePolicy::WriteThrough)
            .build()
            .is_err());
        // … and excludes the bridge read-retry resilience knob.
        let retry = ResilienceConfig { bridge_timeout: 20_000, ..ResilienceConfig::off() };
        assert!(SystemConfig::builder()
            .coherence(CoherenceMode::MesiDirectory)
            .resilience(retry)
            .build()
            .is_err());
        assert!(SystemConfig::builder().resilience(retry).build().is_ok(), "fine under DII");
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(SystemConfig::builder().compute_pes(0).build().is_err());
        assert!(SystemConfig::builder().compute_pes(16).build().is_err());
        assert!(SystemConfig::builder().cache_bytes(3000).build().is_err());
        assert!(SystemConfig::builder().cycle_limit(0).build().is_err());
    }

    #[test]
    fn pe_bound_derives_from_topology() {
        // The bound is nodes − 1 of the *configured* torus, not 15.
        let t8 = Topology::new(8, 8).unwrap();
        let cfg = SystemConfig::builder().topology(t8).compute_pes(63).build().unwrap();
        assert_eq!(cfg.compute_pes(), 63);
        assert_eq!(cfg.topology().nodes(), 64);
        assert!(SystemConfig::builder().topology(t8).compute_pes(64).build().is_err());

        let t16 = Topology::new(16, 16).unwrap();
        let big = SystemConfig::builder().topology(t16).compute_pes(255).build().unwrap();
        assert_eq!(big.compute_pes(), 255);
        assert!(SystemConfig::builder().topology(t16).compute_pes(256).build().is_err());

        let t2 = Topology::new(2, 2).unwrap();
        assert!(SystemConfig::builder().topology(t2).compute_pes(3).build().is_ok());
        assert!(SystemConfig::builder().topology(t2).compute_pes(4).build().is_err());
    }

    #[test]
    fn rank_node_mapping_beyond_paper_torus() {
        let t8 = Topology::new(8, 8).unwrap();
        let cfg = SystemConfig::builder().topology(t8).compute_pes(63).build().unwrap();
        assert_eq!(cfg.node_of_rank(Rank::new(62)), NodeId::new(63));
        assert_eq!(cfg.rank_of_node(NodeId::new(63)), Some(Rank::new(62)));
        assert_eq!(cfg.rank_of_node(NodeId::new(0)), None, "MPMMU node");
        assert_eq!(cfg.layout().ranks(), 63);
        assert_eq!(cfg.mpmmu_config().num_procs, 63);
    }

    #[test]
    fn label_carries_non_paper_topology() {
        let t8 = Topology::new(8, 8).unwrap();
        let cfg = SystemConfig::builder().topology(t8).compute_pes(63).build().unwrap();
        assert_eq!(cfg.label(), "63P_16k$_WB@8x8");
    }

    #[test]
    fn mpmmu_config_derivation() {
        let cfg = SystemConfig::builder().compute_pes(7).build().unwrap();
        let m = cfg.mpmmu_config();
        assert_eq!(m.num_procs, 7);
        assert_eq!(m.mem_bytes, cfg.layout().total_bytes());
    }

    #[test]
    fn paper_label_format() {
        let cfg = SystemConfig::builder()
            .compute_pes(11)
            .cache_bytes(16 * 1024)
            .cache_policy(CachePolicy::WriteBack)
            .build()
            .unwrap();
        assert_eq!(cfg.label(), "11P_16k$_WB");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn node_of_bad_rank_panics() {
        let cfg = SystemConfig::builder().compute_pes(2).build().unwrap();
        cfg.node_of_rank(Rank::new(5));
    }

    #[test]
    fn single_bank_default_is_node_zero() {
        let cfg = SystemConfig::builder().build().unwrap();
        assert_eq!(cfg.memory_banks(), 1);
        assert_eq!(cfg.bank_nodes(), vec![NodeId::new(0)]);
        assert_eq!(cfg.bank_map().banks(), 1);
        assert_eq!(cfg.mpmmu_node(), NodeId::new(0));
    }

    #[test]
    fn bank_placement_spreads_over_the_torus() {
        let t16 = Topology::new(16, 16).unwrap();
        let cfg =
            SystemConfig::builder().topology(t16).compute_pes(252).memory_banks(4).build().unwrap();
        // 2×2 sub-grid: half-torus strides on both axes, bank 0 at node 0.
        let nodes: Vec<usize> = cfg.bank_nodes().iter().map(|n| n.index()).collect();
        assert_eq!(nodes, vec![0, 8, 16 * 8, 16 * 8 + 8]);
        let map = cfg.bank_map();
        assert_eq!(map.banks(), 4);
        assert_eq!(map.bank_of(0x00), 0);
        assert_eq!(map.bank_of(0x10), 1);
        assert_eq!(map.bank_of(0x20), 2);
        assert_eq!(map.bank_of(0x30), 3);
        assert_eq!(map.bank_of(0x40), 0);
    }

    #[test]
    fn ranks_skip_bank_nodes() {
        // Two banks on the 4×4 torus occupy nodes 0 and 2; ranks fill the
        // remaining nodes in ascending order.
        let cfg = SystemConfig::builder().compute_pes(5).memory_banks(2).build().unwrap();
        assert_eq!(cfg.bank_nodes(), vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(cfg.node_of_rank(Rank::new(0)), NodeId::new(1));
        assert_eq!(cfg.node_of_rank(Rank::new(1)), NodeId::new(3));
        assert_eq!(cfg.node_of_rank(Rank::new(2)), NodeId::new(4));
        assert_eq!(cfg.rank_of_node(NodeId::new(0)), None, "bank node");
        assert_eq!(cfg.rank_of_node(NodeId::new(2)), None, "bank node");
        assert_eq!(cfg.rank_of_node(NodeId::new(3)), Some(Rank::new(1)));
        assert_eq!(cfg.rank_of_node(NodeId::new(7)), None, "beyond PE count");
    }

    #[test]
    fn node_plan_inverts_everywhere() {
        for (w, h, banks) in [(4u8, 4u8, 1usize), (4, 4, 4), (8, 8, 2), (16, 16, 8), (8, 2, 4)] {
            let topo = Topology::new(w, h).unwrap();
            let pes = topo.nodes() - banks;
            let cfg = SystemConfig::builder()
                .topology(topo)
                .compute_pes(pes)
                .memory_banks(banks)
                .build()
                .unwrap();
            let plan = cfg.node_plan();
            let mut seen = std::collections::HashSet::new();
            for r in 0..pes {
                let node = plan.node_of_rank(Rank::new(r as u8));
                assert!(!plan.is_bank_node(node), "{w}x{h}/{banks}: rank {r} on a bank node");
                assert!(seen.insert(node), "{w}x{h}/{banks}: node {node} double-assigned");
                assert_eq!(plan.rank_of_node(node), Some(Rank::new(r as u8)));
            }
            for bank in cfg.bank_nodes() {
                assert_eq!(plan.rank_of_node(bank), None);
            }
        }
    }

    #[test]
    fn bank_count_validation() {
        assert!(SystemConfig::builder().memory_banks(0).build().is_err(), "zero");
        assert!(SystemConfig::builder().memory_banks(3).build().is_err(), "not a power of two");
        assert!(SystemConfig::builder().memory_banks(32).build().is_err(), "beyond MAX_BANKS");
        // 16 banks fill the whole 4×4 torus: no node left for a PE.
        assert!(SystemConfig::builder().memory_banks(16).compute_pes(1).build().is_err());
        // The PE bound is nodes − banks.
        assert!(SystemConfig::builder().memory_banks(2).compute_pes(14).build().is_ok());
        assert!(SystemConfig::builder().memory_banks(2).compute_pes(15).build().is_err());
        // 8 banks need a 4×2 placement grid; it fits 4×4 but not 2×2.
        let t2 = Topology::new(2, 2).unwrap();
        assert!(SystemConfig::builder().topology(t2).memory_banks(8).build().is_err());
        assert!(SystemConfig::builder().memory_banks(8).compute_pes(8).build().is_ok());
    }

    #[test]
    fn label_carries_bank_count() {
        let cfg = SystemConfig::builder().compute_pes(5).memory_banks(2).build().unwrap();
        assert_eq!(cfg.label(), "5P_16k$_WBx2B");
        let t8 = Topology::new(8, 8).unwrap();
        let cfg =
            SystemConfig::builder().topology(t8).compute_pes(60).memory_banks(4).build().unwrap();
        assert_eq!(cfg.label(), "60P_16k$_WB@8x8x4B");
    }
}
