//! The architectural-operation API kernels program against.
//!
//! [`PeApi`] wraps the raw request/response port with typed helpers. Every
//! method costs simulated time on the owning PE; pure Rust computation
//! between calls is free and stands for work charged explicitly via
//! [`PeApi::compute`] / the FP helpers (DESIGN.md §2).
//!
//! # Panics
//!
//! All methods panic if the simulation engine is torn down while the kernel
//! runs (cycle limit or deadlock) — the kernel thread unwinds and the
//! engine reports the underlying [`crate::RunError`] instead.

use crate::config::{NodePlan, ResilienceConfig};
use crate::empi::CollectiveAlgo;
use crate::layout::MemoryMap;
use medea_cache::{line_of, Addr, LINE_BYTES};
use medea_pe::kernel_if::{PeRequest, PeResponse};
use medea_pe::pe::PePort;
use medea_pe::tie::Packet;
use medea_sim::ids::{NodeId, Rank};
use medea_sim::Cycle;
use medea_trace::KernelOp;

/// Per-kernel handle to the simulated processing element.
#[derive(Debug)]
pub struct PeApi {
    port: PePort,
    rank: Rank,
    ranks: usize,
    layout: MemoryMap,
    plan: NodePlan,
    collective_algo: CollectiveAlgo,
    trace_spans: bool,
    resilience: ResilienceConfig,
}

impl PeApi {
    /// Wrap a raw PE port. Called by the system assembler; kernels receive
    /// the ready-made value. `trace_spans` enables the zero-cost eMPI span
    /// markers (`SystemConfig::trace_kernel_spans`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        port: PePort,
        rank: Rank,
        ranks: usize,
        layout: MemoryMap,
        plan: NodePlan,
        collective_algo: CollectiveAlgo,
        trace_spans: bool,
        resilience: ResilienceConfig,
    ) -> Self {
        PeApi { port, rank, ranks, layout, plan, collective_algo, trace_spans, resilience }
    }

    /// The resilient-delivery knobs configured on the system — adopted by
    /// [`crate::empi::Empi::new`].
    pub const fn resilience(&self) -> ResilienceConfig {
        self.resilience
    }

    /// The collective algorithm configured on the system — adopted by
    /// [`crate::empi::Empi::new`].
    pub const fn collective_algo(&self) -> CollectiveAlgo {
        self.collective_algo
    }

    fn call(&self, req: PeRequest) -> PeResponse {
        self.port.call(req).expect("simulation engine terminated while kernel was running")
    }

    fn unit(&self, req: PeRequest) {
        match self.call(req) {
            PeResponse::Unit => {}
            other => unreachable!("expected Unit, got {other:?}"),
        }
    }

    fn f64_resp(&self, req: PeRequest) -> f64 {
        match self.call(req) {
            PeResponse::F64(v) => v,
            other => unreachable!("expected F64, got {other:?}"),
        }
    }

    /// This kernel's eMPI rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the system.
    pub const fn ranks(&self) -> usize {
        self.ranks
    }

    /// The system memory map.
    pub const fn layout(&self) -> &MemoryMap {
        &self.layout
    }

    /// Base address of this rank's private (cacheable) segment.
    pub fn private_base(&self) -> Addr {
        self.layout.private_base(self.rank)
    }

    /// The node hosting `rank` (PEs occupy the non-bank nodes in
    /// ascending order; nodes 1..=N on a single-bank system).
    pub fn node_of_rank(&self, rank: Rank) -> NodeId {
        self.plan.node_of_rank(rank)
    }

    /// The application-level source id `rank`'s messages carry: the full
    /// linear node index (the SRC-ID field is sized per topology).
    pub fn src_id_of_rank(&self, rank: Rank) -> u8 {
        self.node_of_rank(rank).index() as u8
    }

    // ---- compute ----

    /// Charge `cycles` of local computation.
    pub fn compute(&self, cycles: Cycle) {
        self.unit(PeRequest::Compute { cycles });
    }

    /// Double-precision add (19 cycles).
    pub fn fadd(&self, a: f64, b: f64) -> f64 {
        self.f64_resp(PeRequest::FpAdd { a, b })
    }

    /// Double-precision subtract (19 cycles).
    pub fn fsub(&self, a: f64, b: f64) -> f64 {
        self.f64_resp(PeRequest::FpSub { a, b })
    }

    /// Double-precision multiply (26 or 60 cycles per the MulOption).
    pub fn fmul(&self, a: f64, b: f64) -> f64 {
        self.f64_resp(PeRequest::FpMul { a, b })
    }

    /// Double-precision divide.
    pub fn fdiv(&self, a: f64, b: f64) -> f64 {
        self.f64_resp(PeRequest::FpDiv { a, b })
    }

    /// Current cycle count (CCOUNT equivalent; costs one cycle).
    pub fn now(&self) -> Cycle {
        match self.call(PeRequest::Now) {
            PeResponse::Time(t) => t,
            other => unreachable!("expected Time, got {other:?}"),
        }
    }

    // ---- cached memory ----

    /// Load a word through the L1 cache.
    pub fn load_u32(&self, addr: Addr) -> u32 {
        match self.call(PeRequest::LoadWord { addr }) {
            PeResponse::Word(w) => w,
            other => unreachable!("expected Word, got {other:?}"),
        }
    }

    /// Store a word through the L1 cache.
    pub fn store_u32(&self, addr: Addr, value: u32) {
        self.unit(PeRequest::StoreWord { addr, value });
    }

    /// Load a double through the L1 cache.
    pub fn load_f64(&self, addr: Addr) -> f64 {
        self.f64_resp(PeRequest::LoadF64 { addr })
    }

    /// Store a double through the L1 cache.
    pub fn store_f64(&self, addr: Addr, value: f64) {
        self.unit(PeRequest::StoreF64 { addr, value });
    }

    // ---- software coherence (§II-E) ----

    /// Flush the line containing `addr` (write back if dirty).
    pub fn flush_line(&self, addr: Addr) {
        self.unit(PeRequest::FlushLine { addr });
    }

    /// DII-invalidate the line containing `addr`.
    pub fn invalidate_line(&self, addr: Addr) {
        self.unit(PeRequest::InvalidateLine { addr });
    }

    /// Flush every line of `[base, base + bytes)`.
    pub fn flush_region(&self, base: Addr, bytes: u32) {
        let mut line = line_of(base);
        let end = base.saturating_add(bytes);
        while line < end {
            self.flush_line(line);
            line += LINE_BYTES as Addr;
        }
    }

    /// Invalidate every line of `[base, base + bytes)`.
    pub fn invalidate_region(&self, base: Addr, bytes: u32) {
        let mut line = line_of(base);
        let end = base.saturating_add(bytes);
        while line < end {
            self.invalidate_line(line);
            line += LINE_BYTES as Addr;
        }
    }

    // ---- uncached shared accesses ----

    /// Read a word bypassing the cache (uncacheable shared data, §II-E).
    pub fn uncached_load_u32(&self, addr: Addr) -> u32 {
        match self.call(PeRequest::UncachedLoad { addr }) {
            PeResponse::Word(w) => w,
            other => unreachable!("expected Word, got {other:?}"),
        }
    }

    /// Write a word bypassing the cache.
    pub fn uncached_store_u32(&self, addr: Addr, value: u32) {
        self.unit(PeRequest::UncachedStore { addr, value });
    }

    /// Read a double with two uncached word transactions.
    pub fn uncached_load_f64(&self, addr: Addr) -> f64 {
        let lo = self.uncached_load_u32(addr);
        let hi = self.uncached_load_u32(addr + 4);
        medea_pe::kernel_if::words_to_f64(lo, hi)
    }

    /// Write a double with two uncached word transactions.
    pub fn uncached_store_f64(&self, addr: Addr, value: f64) {
        let (lo, hi) = medea_pe::kernel_if::f64_to_words(value);
        self.uncached_store_u32(addr, lo);
        self.uncached_store_u32(addr + 4, hi);
    }

    // ---- atomic sections ----

    /// Acquire the MPMMU lock on `addr` (blocks with Nack-retry).
    pub fn lock(&self, addr: Addr) {
        self.unit(PeRequest::Lock { addr });
    }

    /// Release the MPMMU lock on `addr`.
    pub fn unlock(&self, addr: Addr) {
        self.unit(PeRequest::Unlock { addr });
    }

    // ---- raw TIE messaging ----

    /// Send one logical packet (1..=16 words) to `rank`'s TIE interface.
    ///
    /// Payloads are padded to the burst-code granularity `{1,2,4,16}`; the
    /// receiver sees the padded length. The [`crate::empi`] layer adds
    /// framing so variable-length messages survive the padding.
    ///
    /// # Panics
    ///
    /// Panics if the payload is empty or longer than 16 words.
    pub fn send_to_rank(&self, rank: Rank, payload: &[u32]) {
        let dest = self.node_of_rank(rank);
        self.unit(PeRequest::Send { dest, payload: payload.to_vec() });
    }

    /// Block until a packet from `rank` arrives; returns its (padded)
    /// payload.
    pub fn recv_from_rank(&self, rank: Rank) -> Vec<u32> {
        let src = self.src_id_of_rank(rank);
        match self.call(PeRequest::Recv { from: Some(src) }) {
            PeResponse::Packet(p) => p.data,
            other => unreachable!("expected Packet, got {other:?}"),
        }
    }

    /// Block until a packet from anyone arrives.
    pub fn recv_any(&self) -> (Rank, Vec<u32>) {
        match self.call(PeRequest::Recv { from: None }) {
            PeResponse::Packet(Packet { src, data, .. }) => {
                let rank = self
                    .plan
                    .rank_of_node(NodeId::new(src as u16))
                    .unwrap_or_else(|| panic!("message from non-PE node {src}"));
                (rank, data)
            }
            other => unreachable!("expected Packet, got {other:?}"),
        }
    }

    // ---- tracing markers ----

    /// Open a kernel-level trace span for `op`.
    ///
    /// A no-op unless the system was built with the `KERNEL` trace class
    /// (`SystemConfigBuilder::trace`); when active, the marker crosses to
    /// the engine in zero simulated cycles and updates no statistic, so
    /// spans never perturb a run. The eMPI layer calls this around its
    /// collectives; kernels may delimit their own phases too.
    pub fn trace_span_begin(&self, op: KernelOp) {
        if self.trace_spans {
            self.unit(PeRequest::TraceSpan { op, begin: true });
        }
    }

    /// Close the innermost kernel-level trace span for `op`.
    pub fn trace_span_end(&self, op: KernelOp) {
        if self.trace_spans {
            self.unit(PeRequest::TraceSpan { op, begin: false });
        }
    }

    /// Non-blocking receive from `rank`.
    pub fn try_recv_from_rank(&self, rank: Rank) -> Option<Vec<u32>> {
        let src = self.src_id_of_rank(rank);
        match self.call(PeRequest::TryRecv { from: Some(src) }) {
            PeResponse::MaybePacket(p) => p.map(|p| p.data),
            other => unreachable!("expected MaybePacket, got {other:?}"),
        }
    }

    // ---- resilient delivery ----

    /// Blocking receive from `rank` that also reports whether the packet's
    /// payload checksum failed. Fault-free packets always return
    /// `corrupt == false`; only the resilient eMPI path inspects the flag.
    pub fn recv_from_rank_flagged(&self, rank: Rank) -> (Vec<u32>, bool) {
        let src = self.src_id_of_rank(rank);
        match self.call(PeRequest::Recv { from: Some(src) }) {
            PeResponse::Packet(p) => (p.data, p.corrupt),
            other => unreachable!("expected Packet, got {other:?}"),
        }
    }

    /// Non-blocking variant of [`PeApi::recv_from_rank_flagged`].
    pub fn try_recv_from_rank_flagged(&self, rank: Rank) -> Option<(Vec<u32>, bool)> {
        let src = self.src_id_of_rank(rank);
        match self.call(PeRequest::TryRecv { from: Some(src) }) {
            PeResponse::MaybePacket(p) => p.map(|p| (p.data, p.corrupt)),
            other => unreachable!("expected MaybePacket, got {other:?}"),
        }
    }

    /// Report resilience-protocol activity (retransmitted chunks, NACKs
    /// sent) to the engine's per-PE statistics. Zero simulated cycles.
    pub fn fault_note(&self, retransmits: u32, nacks: u32) {
        self.unit(PeRequest::FaultNote { retransmits, nacks });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // PeApi's behaviour is exercised end-to-end by the system tests; here
    // we only verify the pure helpers.

    #[test]
    fn rank_node_src_mapping() {
        // Construct the mapping logic without a live port via a tiny probe:
        // node_of_rank/src_id_of_rank depend only on rank arithmetic.
        let layout = MemoryMap::new(4, 1024, 1024).unwrap();
        let plan = crate::SystemConfig::builder().compute_pes(4).build().unwrap().node_plan();
        // PeApi requires a port; spawn a dummy host pair.
        let host: medea_sim::coroutine::KernelHost<PeRequest, PeResponse>;
        let (api, h) = {
            let (tx, rx) = std::sync::mpsc::channel();
            let h = medea_sim::coroutine::KernelHost::spawn("t", move |port| {
                let api = PeApi::new(
                    port,
                    Rank::new(2),
                    4,
                    layout,
                    plan,
                    CollectiveAlgo::Linear,
                    false,
                    ResilienceConfig::off(),
                );
                tx.send((
                    api.node_of_rank(Rank::new(0)),
                    api.node_of_rank(Rank::new(3)),
                    api.src_id_of_rank(Rank::new(2)),
                    api.private_base(),
                ))
                .unwrap();
            });
            (rx.recv().unwrap(), h)
        };
        host = h;
        let (n0, n3, src2, base) = api;
        assert_eq!(n0, NodeId::new(1));
        assert_eq!(n3, NodeId::new(4));
        assert_eq!(src2, 3);
        assert_eq!(base, 1024 + 2 * 1024);
        drop(host);
    }
}
