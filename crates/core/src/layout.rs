//! Global memory map: private and shared segments (§II-C/§II-E).
//!
//! "The global shared-memory is divided into two logic segments, shared and
//! private area. A system with N cores will thus have N private segments
//! and one shared segment. Since the private area can be accessed only by
//! one processor, no coherency is required" — so private segments are
//! freely cacheable while shared data needs the flush/invalidate protocol.
//!
//! Layout (byte addresses, all line-aligned):
//!
//! ```text
//! 0 .. shared_bytes                      shared segment
//! shared_bytes .. +private_bytes         private segment of rank 0
//! ...                                    private segment of rank r
//! ```

use medea_cache::{Addr, LINE_BYTES};
use medea_sim::ids::Rank;
use std::fmt;

/// Error constructing a [`MemoryMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLayoutError(&'static str);

impl fmt::Display for InvalidLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid memory layout: {}", self.0)
    }
}

impl std::error::Error for InvalidLayoutError {}

/// The system memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    ranks: usize,
    shared_bytes: u32,
    private_bytes: u32,
}

impl MemoryMap {
    /// Create a map for `ranks` processors with the given segment sizes.
    ///
    /// # Errors
    ///
    /// Segment sizes must be positive multiples of the cache line size and
    /// the total must fit the 32-bit address space.
    pub fn new(
        ranks: usize,
        shared_bytes: u32,
        private_bytes: u32,
    ) -> Result<Self, InvalidLayoutError> {
        if ranks == 0 {
            return Err(InvalidLayoutError("at least one rank required"));
        }
        let line = LINE_BYTES as u32;
        if shared_bytes == 0 || !shared_bytes.is_multiple_of(line) {
            return Err(InvalidLayoutError("shared segment must be a positive line multiple"));
        }
        if private_bytes == 0 || !private_bytes.is_multiple_of(line) {
            return Err(InvalidLayoutError("private segment must be a positive line multiple"));
        }
        let total = shared_bytes as u64 + ranks as u64 * private_bytes as u64;
        if total > u32::MAX as u64 {
            return Err(InvalidLayoutError("layout exceeds 32-bit address space"));
        }
        Ok(MemoryMap { ranks, shared_bytes, private_bytes })
    }

    /// Number of private segments.
    pub const fn ranks(&self) -> usize {
        self.ranks
    }

    /// Base address of the shared segment (always zero).
    pub const fn shared_base(&self) -> Addr {
        0
    }

    /// Size of the shared segment in bytes.
    pub const fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// Size of each private segment in bytes.
    pub const fn private_bytes(&self) -> u32 {
        self.private_bytes
    }

    /// Base address of `rank`'s private segment.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the map.
    pub fn private_base(&self, rank: Rank) -> Addr {
        assert!(rank.index() < self.ranks, "rank {rank} outside {}-rank map", self.ranks);
        self.shared_bytes + rank.index() as u32 * self.private_bytes
    }

    /// Total DDR bytes needed to back this map.
    pub fn total_bytes(&self) -> usize {
        self.shared_bytes as usize + self.ranks * self.private_bytes as usize
    }

    /// Whether `addr` falls in the shared segment.
    pub fn is_shared(&self, addr: Addr) -> bool {
        addr < self.shared_bytes
    }

    /// The rank whose private segment contains `addr`, if any.
    pub fn owner_of(&self, addr: Addr) -> Option<Rank> {
        if self.is_shared(addr) {
            return None;
        }
        let off = (addr - self.shared_bytes) / self.private_bytes;
        (off < self.ranks as u32).then(|| Rank::new(off as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_math() {
        let m = MemoryMap::new(3, 1024, 2048).unwrap();
        assert_eq!(m.shared_base(), 0);
        assert_eq!(m.private_base(Rank::new(0)), 1024);
        assert_eq!(m.private_base(Rank::new(2)), 1024 + 2 * 2048);
        assert_eq!(m.total_bytes(), 1024 + 3 * 2048);
    }

    #[test]
    fn ownership() {
        let m = MemoryMap::new(2, 1024, 2048).unwrap();
        assert!(m.is_shared(0));
        assert!(m.is_shared(1023));
        assert!(!m.is_shared(1024));
        assert_eq!(m.owner_of(512), None);
        assert_eq!(m.owner_of(1024), Some(Rank::new(0)));
        assert_eq!(m.owner_of(1024 + 2048), Some(Rank::new(1)));
        assert_eq!(m.owner_of(1024 + 2 * 2048), None, "beyond the map");
    }

    #[test]
    fn validation() {
        assert!(MemoryMap::new(0, 1024, 1024).is_err());
        assert!(MemoryMap::new(1, 0, 1024).is_err());
        assert!(MemoryMap::new(1, 1024, 8).is_err(), "not line-aligned");
        assert!(MemoryMap::new(16, !0xFu32, 1 << 30).is_err(), "overflow");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_rank_panics() {
        MemoryMap::new(2, 1024, 1024).unwrap().private_base(Rank::new(5));
    }
}
