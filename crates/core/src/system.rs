//! The full-system cycle engine.
//!
//! Assembles the fabric, the MPMMU bank(s) and the processing elements,
//! then runs the single-clock cycle loop:
//!
//! 1. deliver flits ejected by the fabric to their node interfaces (PEs
//!    first, then every memory bank in bank order);
//! 2. tick every *runnable* PE and bank;
//! 3. inject at most one flit per node into the fabric;
//! 4. tick the fabric;
//! 5. terminate when every kernel has returned.
//!
//! Shared memory is served by `cfg.memory_banks()` address-interleaved
//! MPMMU banks (default 1 at node 0 — the paper's single-slave instance,
//! reproduced bit-for-bit). The eject→hold→inject plumbing each bank
//! needs is one set of helpers ([`banks_deliver`], [`banks_tick`],
//! [`banks_inject`], [`banks_quiet`]) shared by both engines below.
//!
//! Three engines implement that loop:
//!
//! * [`System::run`] — the production engine. Statically dispatched
//!   fabric ([`AnyFabric`]), per-PE wake scheduling (a PE parked in a
//!   pure time stall until cycle `t` is not ticked across the
//!   intervening cycles, even while the fabric or other PEs stay busy),
//!   ejection delivery gated on the fabric's O(1) flit census, and the
//!   whole-system fast-forward across cycles in which every component is
//!   provably idle — the optimizations that make the 168-point
//!   exploration cheap, standing in for the paper's 15× SystemC-over-HDL
//!   speedup.
//! * [`System::run_reference`] — the naive tick-everything loop behind a
//!   `Box<dyn Fabric>`, kept as the behavioral reference: both engines
//!   must produce bit-identical results (`tests/golden_determinism.rs`,
//!   `engine_equivalence` below), and the pair is the before/after
//!   baseline of the `BENCH_sim_speed.json` harness.
//! * the **tiled parallel engine** ([`crate::tiled`]) — selected by
//!   [`crate::config::SystemConfigBuilder::host_threads`] when more than
//!   one thread is requested on a deflection fabric. The torus is
//!   domain-decomposed into contiguous node tiles, one worker thread per
//!   tile, with a per-cycle barrier exchanging only the boundary link
//!   latches; every cross-tile effect is merged in fixed tile-index
//!   order, so results stay **bit-identical** to this sequential engine
//!   at every thread count (`tests/parallel_equivalence.rs`). The
//!   helpers below are shared with it (`pub(crate)`) so both engines run
//!   literally the same per-component code.
//!
//! The production engine is generic over a `medea_trace::TraceSink`
//! ([`System::run_traced`]): every layer emits typed, timestamped events
//! (NoC flit movement and link load, cache and coherence activity, MPMMU
//! transactions and lock traffic, kernel-level operation spans) behind
//! `S::ACTIVE` guards, so the `NullSink` instantiation that
//! [`System::run`] delegates to monomorphizes to exactly the untraced
//! hot path — tracing off costs nothing and changes nothing.
//!
//! It is likewise generic over a `medea_fault::FaultInjector`
//! ([`System::run_faulted`]): deterministic seeded faults — Message-flit
//! payload corruption at ejection, permanently dead torus links, MPMMU
//! read-response drops and service delays, PE stall windows — enter the
//! system at exactly four engine-side hooks, each guarded by the
//! compile-time constant `I::ACTIVE`, so the [`NullInjector`]
//! instantiation behind [`System::run_traced`] monomorphizes to exactly
//! the fault-free engine (pinned by `tests/fault_equivalence.rs`). A
//! configurable watchdog ([`crate::ResilienceConfig::watchdog_cycles`])
//! converts silent no-progress hangs into a structured
//! [`RunError::Watchdog`] carrying per-PE blocked-state diagnostics and
//! the tail of recent fault events.

use crate::api::PeApi;
use crate::config::SystemConfig;
use crate::FabricKind;
use medea_cache::{Addr, CacheStats, CoherenceStats};
use medea_fault::{FaultInjector, FaultStats, NullInjector};
use medea_mem::{Mpmmu, MpmmuStats};
use medea_metrics::{Meter, MetricsReport, NullMeter, Recorder};
use medea_noc::coord::Dir;
use medea_noc::flit::{Flit, PacketKind, SubKind};
use medea_noc::ideal::IdealNetwork;
use medea_noc::network::Network;
use medea_noc::reference::ReferenceNetwork;
use medea_noc::{AnyFabric, Fabric};
use medea_pe::bridge::BridgeStats;
use medea_pe::pe::{PeStats, ProcessingElement, Wakeup};
use medea_pe::tie::TieStats;
use medea_sim::ids::{NodeId, Rank};
use medea_sim::stats::Log2Histogram;
use medea_sim::Cycle;
use medea_trace::{NullSink, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

/// A kernel to run on one PE.
pub type Kernel = Box<dyn FnOnce(PeApi) + Send + 'static>;

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle limit was reached before all kernels finished.
    CycleLimit {
        /// The configured limit.
        limit: Cycle,
        /// Per-PE blocked-state diagnostics at the moment the limit hit.
        detail: String,
    },
    /// The progress watchdog
    /// ([`crate::ResilienceConfig::watchdog_cycles`]) saw no packet
    /// delivered and no memory transaction served for its whole window —
    /// the system is livelocked (e.g. resilient retransmission spinning
    /// against a dead peer), not merely slow.
    Watchdog {
        /// Cycle at which the watchdog fired.
        at: Cycle,
        /// Per-PE blocked-state diagnostics plus the recent-fault tail.
        detail: String,
    },
    /// All remaining kernels were blocked in `Recv` with no traffic
    /// anywhere in the system.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        at: Cycle,
        /// Human-readable blocked-state description.
        detail: String,
    },
    /// The number of kernels did not match the configured PE count.
    KernelCountMismatch {
        /// Kernels supplied.
        kernels: usize,
        /// PEs configured.
        pes: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleLimit { limit, detail } => {
                write!(f, "simulation exceeded the cycle limit of {limit}: {detail}")
            }
            RunError::Watchdog { at, detail } => {
                write!(f, "watchdog fired at cycle {at}: no progress — {detail}")
            }
            RunError::Deadlock { at, detail } => {
                write!(f, "deadlock detected at cycle {at}: {detail}")
            }
            RunError::KernelCountMismatch { kernels, pes } => {
                write!(f, "{kernels} kernels supplied for {pes} configured PEs")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Per-PE statistics bundle.
#[derive(Debug, Clone, Copy)]
pub struct PeSummary {
    /// Execution-engine statistics.
    pub engine: PeStats,
    /// L1 cache statistics.
    pub cache: CacheStats,
    /// pif2NoC bridge statistics.
    pub bridge: BridgeStats,
    /// TIE receive statistics.
    pub tie: TieStats,
    /// L1-side coherence statistics (all zero under DII).
    pub coherence: CoherenceStats,
}

/// Per-bank statistics bundle.
#[derive(Debug, Clone, Copy)]
pub struct BankSummary {
    /// The node this bank occupies.
    pub node: NodeId,
    /// Transaction counters of this bank.
    pub mpmmu: MpmmuStats,
    /// This bank's local-cache statistics.
    pub cache: CacheStats,
    /// Directory-side coherence statistics (all zero under DII).
    pub coherence: CoherenceStats,
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total simulated cycles until the last kernel finished.
    pub cycles: Cycle,
    /// Per-PE statistics, indexed by rank.
    pub pe: Vec<PeSummary>,
    /// Flits delivered by the fabric.
    pub fabric_delivered: u64,
    /// Deflection events in the fabric.
    pub fabric_deflections: u64,
    /// Flits re-routed around an injected dead link.
    pub fabric_reroutes: u64,
    /// Mean flit latency (cycles), if any flits flew.
    pub fabric_mean_latency: Option<f64>,
    /// Maximum flit latency — the hot-potato tail.
    pub fabric_max_latency: Option<u64>,
    /// The full in-network latency distribution (inject→eject per flit),
    /// as recorded by the fabric — the histogram behind the percentile
    /// accessors and the `noc` section of `BENCH_scaling.json`.
    pub fabric_latency: Log2Histogram,
    /// MPMMU transaction counters, aggregated over all banks.
    pub mpmmu: MpmmuStats,
    /// MPMMU local-cache statistics, aggregated over all banks.
    pub mpmmu_cache: CacheStats,
    /// Per-bank statistics, indexed by bank.
    pub banks: Vec<BankSummary>,
    /// Faults the injector actually delivered during the run (all zero
    /// for fault-free engines).
    pub fault: FaultStats,
    /// Coherence-protocol counters aggregated over every directory home
    /// and every L1 probe responder (all zero under the DII default; see
    /// [`CoherenceStats`] for which side feeds which counter).
    pub coherence: CoherenceStats,
    /// The telemetry report recorded by the `medea-metrics` subsystem:
    /// per-PE cycle-attribution breakdowns and the periodic sample-window
    /// series. `Some` exactly when
    /// [`crate::config::SystemConfigBuilder::metrics`] enabled sampling;
    /// `None` runs take the [`NullMeter`] path where every
    /// instrumentation site compiles away.
    pub metrics: Option<MetricsReport>,
    /// Trace events the sink *lost to I/O errors* during this run
    /// (see [`TraceSink::io_drops`]) — nonzero means a file-backed
    /// capture is incomplete and should be distrusted. Always zero for
    /// in-memory sinks.
    pub trace_drops: u64,
    /// Host wall-clock time of the run.
    pub wall: Duration,
}

impl RunResult {
    /// Simulated cycles per wall-clock second (experiment E8).
    pub fn sim_rate(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cycles as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Median flit latency (bucket-granular upper estimate; see
    /// `Log2Histogram::percentile`), if any flits flew.
    pub fn flit_latency_p50(&self) -> Option<u64> {
        self.fabric_latency.percentile(0.5)
    }

    /// 99th-percentile flit latency — the "sporadic cases of single flits
    /// delivered with high latency" tail the paper reports (§II-A).
    pub fn flit_latency_p99(&self) -> Option<u64> {
        self.fabric_latency.percentile(0.99)
    }

    /// Deflections per delivered flit — the hot-potato pressure gauge.
    pub fn deflections_per_delivered(&self) -> Option<f64> {
        (self.fabric_delivered > 0)
            .then(|| self.fabric_deflections as f64 / self.fabric_delivered as f64)
    }

    /// End-to-end eMPI chunk retransmissions across all PEs — nonzero
    /// only when resilient delivery actually recovered from a loss.
    pub fn retransmits(&self) -> u64 {
        self.pe.iter().map(|p| p.engine.retransmits.get()).sum()
    }

    /// eMPI NACKs sent by receivers across all PEs.
    pub fn nacks_sent(&self) -> u64 {
        self.pe.iter().map(|p| p.engine.nacks_sent.get()).sum()
    }

    /// Bridge-level shared-memory request retries across all PEs.
    pub fn bridge_retries(&self) -> u64 {
        self.pe.iter().map(|p| p.bridge.retries.get()).sum()
    }

    /// Aggregate L1 miss rate across all PEs.
    pub fn l1_miss_rate(&self) -> Option<f64> {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for pe in &self.pe {
            hits += pe.cache.load_hits.get() + pe.cache.store_hits.get();
            misses += pe.cache.load_misses.get() + pe.cache.store_misses.get();
        }
        let total = hits + misses;
        (total > 0).then(|| misses as f64 / total as f64)
    }
}

/// The full-system simulator (a namespace: construction happens per run).
#[derive(Debug)]
pub struct System;

impl System {
    /// Run `kernels` (one per configured PE, by rank order) to completion
    /// on the activity-scheduled engine.
    ///
    /// `preload` words are written into DDR before the first cycle — the
    /// §II-E "at startup, the code to be executed is placed in an external
    /// DDR memory" step, used by workloads for initial data.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run(
        cfg: &SystemConfig,
        preload: &[(Addr, u32)],
        kernels: Vec<Kernel>,
    ) -> Result<RunResult, RunError> {
        Self::run_traced(cfg, preload, kernels, &mut NullSink)
    }

    /// [`System::run`] with cross-layer events delivered to `sink` (see
    /// the `medea-trace` crate). The engine — and every instrumented
    /// component under it — is generic over the sink, and every emission
    /// site is guarded by the compile-time constant `S::ACTIVE`, so the
    /// [`NullSink`] instantiation [`System::run`] delegates to
    /// monomorphizes to exactly the untraced engine: tracing off costs
    /// nothing, and traced runs produce bit-identical [`RunResult`]s
    /// (pinned by the golden suite and `tests/trace_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_traced<S: TraceSink>(
        cfg: &SystemConfig,
        preload: &[(Addr, u32)],
        kernels: Vec<Kernel>,
        sink: &mut S,
    ) -> Result<RunResult, RunError> {
        Self::run_faulted(cfg, preload, kernels, sink, &mut NullInjector)
    }

    /// [`System::run_traced`] with deterministic faults drawn from
    /// `injector` (see the `medea-fault` crate). Faults enter at exactly
    /// four engine hooks, each behind the compile-time constant
    /// `I::ACTIVE`:
    ///
    /// * **link kills** — drained from the injector's schedule at the top
    ///   of every cycle and applied to the fabric, which routes around
    ///   the dead link from then on ([`medea_noc::Fabric::kill_link`]);
    /// * **flit corruption** — one payload bit of a Message flit flipped
    ///   at PE ejection, *without* refreshing the codec checksum, so the
    ///   TIE flags the packet and resilient eMPI NACKs it (shared-memory
    ///   flits are exempt: the paper's MPMMU protocol has no end-to-end
    ///   retry, the bridge's timeout handles read loss instead);
    /// * **bank faults** — read-response drops and service delays inside
    ///   each MPMMU's tick ([`Mpmmu::tick_faulted`]);
    /// * **PE stalls** — a runnable PE's wake cycle pushed `stall`
    ///   cycles into the future, freezing its engine without touching
    ///   its architectural state.
    ///
    /// With [`NullInjector`] every hook constant-folds away and this *is*
    /// [`System::run_traced`] — fault-free results stay bit-identical
    /// (`tests/fault_equivalence.rs`).
    ///
    /// When [`crate::ResilienceConfig::watchdog_cycles`] is nonzero, a
    /// progress watchdog tracks a fingerprint of *served work* (packets
    /// received by PEs + transactions completed by banks — deliberately
    /// not packets *sent*, which retransmission livelock keeps
    /// incrementing) and fails the run with [`RunError::Watchdog`] if a
    /// whole window passes without it advancing.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_faulted<S: TraceSink, I: FaultInjector>(
        cfg: &SystemConfig,
        preload: &[(Addr, u32)],
        kernels: Vec<Kernel>,
        sink: &mut S,
        injector: &mut I,
    ) -> Result<RunResult, RunError> {
        check_kernel_count(cfg, &kernels)?;
        // Metrics dispatch mirrors the sink/injector pattern one level
        // up: the engine below is generic over `M: Meter`, and the
        // metrics-off configuration instantiates it with [`NullMeter`],
        // whose `M::ACTIVE = false` guards monomorphize every
        // instrumentation site away — the paper-golden fingerprints stay
        // bit-identical with the subsystem compiled in (pinned by
        // `tests/metrics_equivalence.rs`).
        let mcfg = cfg.metrics();
        let mut out = if mcfg.enabled() {
            let topo = cfg.topology();
            let mut meter = Recorder::new(
                mcfg,
                topo.width(),
                topo.height(),
                cfg.compute_pes(),
                cfg.memory_banks(),
            );
            Self::run_metered(cfg, preload, kernels, sink, injector, &mut meter).map(|mut r| {
                r.metrics = Some(meter.into_report());
                r
            })
        } else {
            Self::run_metered(cfg, preload, kernels, sink, injector, &mut NullMeter)
        };
        if let Ok(r) = &mut out {
            r.trace_drops = sink.io_drops();
        }
        out
    }

    /// The engine body behind [`System::run_faulted`], generic over the
    /// meter. Kernel count is already checked by the caller.
    fn run_metered<S: TraceSink, I: FaultInjector, M: Meter>(
        cfg: &SystemConfig,
        preload: &[(Addr, u32)],
        kernels: Vec<Kernel>,
        sink: &mut S,
        injector: &mut I,
        meter: &mut M,
    ) -> Result<RunResult, RunError> {
        // The tiled parallel engine takes over whole runs when the
        // configuration asks for it (and the injector can be forked);
        // otherwise the kernels come back and the sequential path below
        // runs unchanged.
        let kernels =
            match crate::tiled::try_run_tiled(cfg, preload, kernels, sink, injector, meter) {
                Ok(outcome) => return outcome,
                Err(kernels) => kernels,
            };
        let topo = cfg.topology();
        let mut fabric: AnyFabric = match cfg.fabric() {
            FabricKind::Deflection => Network::new(topo).into(),
            FabricKind::Ideal => IdealNetwork::new(topo).into(),
        };
        let mut banks = build_banks(cfg, preload);
        let mut pes = build_pes(cfg, kernels);

        let wall_start = Instant::now();
        // Per-PE wake schedule: the cycle at which each PE must next be
        // ticked. A PE parked in a pure time stall (drained bridge and
        // arbiter — see `ProcessingElement::sleep_until`) is skipped
        // entirely until its wake cycle; for such a PE a tick is provably
        // a no-op and it cannot inject, so skipping is bit-identical to
        // the reference engine's tick-everything loop.
        let mut wake: Vec<Cycle> = vec![0; pes.len()];
        let mut ticked: Vec<bool> = vec![false; pes.len()];
        let mut live = pes.len();
        let mut now: Cycle = 0;
        // Progress watchdog (off at 0) and the rolling tail of recent
        // engine-side fault events, attached to hang diagnostics.
        let watchdog = cfg.resilience().watchdog_cycles;
        let mut last_fingerprint = progress_fingerprint(&pes, &banks);
        let mut last_progress_at: Cycle = 0;
        let mut fault_log: VecDeque<(Cycle, TraceEvent)> = VecDeque::new();
        loop {
            // 0a. Sampling catch-up: commit every window whose boundary
            // has passed. The loop form makes the idle fast-forward jump
            // below emit one window per crossed boundary with frozen
            // state — exactly what cycle-by-cycle execution would have
            // observed.
            if M::ACTIVE {
                while meter.next_sample() <= now {
                    sample_pes_banks(meter, &pes, 0, &banks, 0);
                    meter.commit_window();
                }
            }

            // 0b. Apply scheduled permanent faults before any traffic
            // moves this cycle.
            if I::ACTIVE {
                while let Some(kill) = injector.take_link_kill(now) {
                    fabric.kill_link(NodeId::new(kill.node), Dir::ALL[kill.dir as usize & 3]);
                    let ev = TraceEvent::FaultLinkKilled { node: kill.node, dir: kill.dir & 3 };
                    if S::ACTIVE {
                        sink.record(now, ev);
                    }
                    push_fault(&mut fault_log, now, ev);
                }
            }

            // 1. Deliver ejections. With the O(1) flit census, a drained
            // fabric skips the per-node ejection polls outright.
            if fabric.in_flight() > 0 {
                for (i, pe) in pes.iter_mut().enumerate() {
                    let node = pe.node();
                    while let Some(mut flit) = fabric.eject(node) {
                        if I::ACTIVE && !flit.kind().is_shared_memory() {
                            if let Some(bit) = injector.corrupt_flit(now, node.index() as u16) {
                                flit.corrupt_payload_bit(bit);
                                let ev = TraceEvent::FaultFlitCorrupted {
                                    node: node.index() as u16,
                                    bit,
                                };
                                if S::ACTIVE {
                                    sink.record(now, ev);
                                }
                                push_fault(&mut fault_log, now, ev);
                            }
                        }
                        if S::ACTIVE {
                            sink.record(now, delivered_event(node, &flit, now));
                        }
                        // A directory probe must wake even a parked or
                        // retired PE: the home bank blocks until it is
                        // answered.
                        if flit.kind() == PacketKind::Coherence && flit.sub() == SubKind::Request {
                            wake[i] = now;
                        }
                        pe.deliver_traced(flit, now, sink);
                    }
                }
            }
            banks_deliver(&mut fabric, &mut banks, now, sink);

            // 2. Tick runnable components (a bank's tick is a no-op while
            // it is idle, so it is skipped then too).
            for (i, pe) in pes.iter_mut().enumerate() {
                if I::ACTIVE && wake[i] <= now && !pe.is_done() {
                    let stall = injector.pe_stall(now, pe.node().index() as u16);
                    if stall > 0 {
                        wake[i] = now + Cycle::from(stall);
                        let ev = TraceEvent::FaultPeStall {
                            node: pe.node().index() as u16,
                            cycles: stall,
                        };
                        if S::ACTIVE {
                            sink.record(now, ev);
                        }
                        push_fault(&mut fault_log, now, ev);
                    }
                }
                if wake[i] > now {
                    ticked[i] = false;
                    continue;
                }
                ticked[i] = true;
                let was_done = pe.is_done();
                pe.tick_traced(now, sink);
                if M::ACTIVE {
                    // Interval attribution: the recorder charges the span
                    // since this PE's previous tick to its previous
                    // activity, so skipped (parked) cycles are charged to
                    // the state the PE parked in.
                    meter.pe_state(i, now, pe.activity());
                }
                if !was_done && pe.is_done() {
                    live -= 1;
                }
                wake[i] = match pe.sleep_until() {
                    Some(t) => t.max(now + 1),
                    None => now + 1,
                };
            }
            banks_tick(&mut banks, now, true, sink, injector);

            // 3. Inject (one flit per node per cycle). A skipped PE has a
            // drained arbiter by construction, so only ticked PEs can
            // have traffic to offer.
            for (i, pe) in pes.iter_mut().enumerate() {
                if !ticked[i] {
                    continue;
                }
                if let Some(flit) = pe.select_inject() {
                    let kind = flit.kind().code();
                    match fabric.try_inject_tagged(pe.node(), flit, now, false) {
                        Ok(()) => {
                            if S::ACTIVE {
                                let node = pe.node().index() as u16;
                                sink.record(now, TraceEvent::FlitInjected { node, kind });
                            }
                        }
                        Err(back) => pe.restore_inject(back),
                    }
                }
            }
            banks_inject(&mut fabric, &mut banks, now, sink);

            // 4. Fabric (activity-scheduled internally; a drained fabric
            // ticks in constant time).
            fabric.tick_metered(now, sink, meter);

            // 5. Termination, limits, fast-forward.
            if live == 0 {
                if M::ACTIVE {
                    // Final snapshot + flush: close the open attribution
                    // spans at `now` and commit the partial last window.
                    sample_pes_banks(meter, &pes, 0, &banks, 0);
                    meter.finish(now);
                }
                break;
            }
            if now >= cfg.cycle_limit() {
                return Err(RunError::CycleLimit {
                    limit: cfg.cycle_limit(),
                    detail: stall_detail(&pes, &banks, fabric.in_flight(), &fault_log),
                });
            }
            if watchdog > 0 {
                let fp = progress_fingerprint(&pes, &banks);
                if fp != last_fingerprint {
                    last_fingerprint = fp;
                    last_progress_at = now;
                } else if pes.iter().enumerate().any(|(i, pe)| !pe.is_done() && wake[i] > now + 1) {
                    // A PE parked in a multi-cycle timed stall (a long
                    // `compute`, a bridge backoff) is healthy, not hung —
                    // it will produce work when it wakes, even though
                    // another PE polling every cycle keeps the fast-
                    // forward jump (which would reset the window) from
                    // engaging. Keep the window open while the stall is
                    // in flight; a livelock has every live PE spinning at
                    // wake = now + 1, so this never masks one.
                    last_progress_at = now;
                } else if now - last_progress_at >= watchdog {
                    return Err(RunError::Watchdog {
                        at: now,
                        detail: stall_detail(&pes, &banks, fabric.in_flight(), &fault_log),
                    });
                }
            }
            let quiet = fabric.in_flight() == 0 && banks_quiet(&banks);
            if quiet {
                match classify_quiet(&pes) {
                    QuietState::AllTimed { min_wake } => {
                        // Never skip past the cycle limit: the limit check
                        // must still observe the overrun.
                        let t = min_wake.min(cfg.cycle_limit());
                        if t > now + 1 {
                            // The jump is legitimate forward progress
                            // (every PE is provably in a timed stall), so
                            // it must not age the watchdog window.
                            last_progress_at = t;
                            now = t;
                            continue;
                        }
                    }
                    QuietState::Deadlocked => {
                        return Err(RunError::Deadlock { at: now, detail: deadlock_detail(&pes) });
                    }
                    QuietState::Mixed => {}
                }
            }
            now += 1;
        }

        Ok(finish_result(now, &pes, fabric.stats(), &banks, wall_start, injector.stats()))
    }

    /// Run `kernels` on the naive reference engine: the frozen seed
    /// fabric ([`ReferenceNetwork`]) behind dynamic dispatch, every
    /// component ticked every cycle.
    ///
    /// This is the behavioral yardstick for [`System::run`] (both must
    /// produce bit-identical [`RunResult`]s, wall-clock aside) and the
    /// "before" measurement of the simulation-speed benchmarks. It is not
    /// used by any workload path.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_reference(
        cfg: &SystemConfig,
        preload: &[(Addr, u32)],
        kernels: Vec<Kernel>,
    ) -> Result<RunResult, RunError> {
        check_kernel_count(cfg, &kernels)?;
        let topo = cfg.topology();
        let mut fabric: Box<dyn Fabric> = match cfg.fabric() {
            FabricKind::Deflection => Box::new(ReferenceNetwork::new(topo)),
            FabricKind::Ideal => Box::new(IdealNetwork::new(topo)),
        };
        let mut banks = build_banks(cfg, preload);
        let mut pes = build_pes(cfg, kernels);

        let wall_start = Instant::now();
        let mut now: Cycle = 0;
        loop {
            // 1. Deliver ejections.
            for pe in &mut pes {
                let node = pe.node();
                while let Some(flit) = fabric.eject(node) {
                    pe.deliver(flit, now);
                }
            }
            banks_deliver(&mut *fabric, &mut banks, now, &mut NullSink);

            // 2. Tick components.
            for pe in &mut pes {
                pe.tick(now);
            }
            banks_tick(&mut banks, now, false, &mut NullSink, &mut NullInjector);

            // 3. Inject (one flit per node per cycle).
            for pe in &mut pes {
                if let Some(flit) = pe.select_inject() {
                    if let Err(back) = fabric.try_inject(pe.node(), flit, now) {
                        pe.restore_inject(back);
                    }
                }
            }
            banks_inject(&mut *fabric, &mut banks, now, &mut NullSink);

            // 4. Fabric.
            fabric.tick(now);

            // 5. Termination, limits, fast-forward.
            if pes.iter().all(ProcessingElement::is_done) {
                break;
            }
            if now >= cfg.cycle_limit() {
                return Err(RunError::CycleLimit {
                    limit: cfg.cycle_limit(),
                    detail: stall_detail(&pes, &banks, fabric.in_flight(), &VecDeque::new()),
                });
            }
            let quiet = fabric.in_flight() == 0 && banks_quiet(&banks);
            if quiet {
                match classify_quiet(&pes) {
                    QuietState::AllTimed { min_wake } => {
                        let t = min_wake.min(cfg.cycle_limit());
                        if t > now + 1 {
                            now = t;
                            continue;
                        }
                    }
                    QuietState::Deadlocked => {
                        return Err(RunError::Deadlock { at: now, detail: deadlock_detail(&pes) });
                    }
                    QuietState::Mixed => {}
                }
            }
            now += 1;
        }

        Ok(finish_result(now, &pes, fabric.stats(), &banks, wall_start, FaultStats::default()))
    }
}

pub(crate) fn check_kernel_count(cfg: &SystemConfig, kernels: &[Kernel]) -> Result<(), RunError> {
    if kernels.len() != cfg.compute_pes() {
        return Err(RunError::KernelCountMismatch {
            kernels: kernels.len(),
            pes: cfg.compute_pes(),
        });
    }
    Ok(())
}

/// One MPMMU bank wired into the cycle loop: the unit itself, its node,
/// and the one-flit hold latch for FIFO back-pressure (a flit the bank
/// refused stays at the node interface and is retried next cycle).
pub(crate) struct Bank {
    pub(crate) unit: Mpmmu,
    pub(crate) node: NodeId,
    pub(crate) hold: Option<Flit>,
}

/// Build the bank vector and route every preload word to its owning bank.
pub(crate) fn build_banks(cfg: &SystemConfig, preload: &[(Addr, u32)]) -> Vec<Bank> {
    let map = cfg.bank_map();
    let mut banks: Vec<Bank> = cfg
        .bank_nodes()
        .into_iter()
        .map(|node| Bank {
            unit: Mpmmu::new(cfg.topology(), node, cfg.mpmmu_config()),
            node,
            hold: None,
        })
        .collect();
    for (addr, value) in preload {
        banks[map.bank_of(*addr)].unit.debug_store().write_word(*addr, *value);
    }
    banks
}

/// The engine-side flit-delivery event: ejection at `node`'s interface,
/// with the flit's whole fabric history attached.
pub(crate) fn delivered_event(node: NodeId, flit: &Flit, now: Cycle) -> TraceEvent {
    TraceEvent::FlitDelivered {
        node: node.index() as u16,
        uid: flit.meta.uid,
        latency: now.saturating_sub(flit.meta.injected_at),
        hops: flit.meta.hops,
        deflections: flit.meta.deflections,
    }
}

/// Deliver ejections to every bank: retry the held flit first, then drain
/// the node's ejection queue until the bank back-pressures. Shared by both
/// engines — with a drained fabric (`in_flight() == 0`) the eject loop is
/// a no-op either way, so the census gate is a pure optimization.
fn banks_deliver<F: Fabric + ?Sized, S: TraceSink>(
    fabric: &mut F,
    banks: &mut [Bank],
    now: Cycle,
    sink: &mut S,
) {
    for bank in banks {
        if let Some(flit) = bank.hold.take() {
            if let Err(back) = bank.unit.handle_incoming(flit) {
                bank.hold = Some(back);
            }
        }
        while bank.hold.is_none() && fabric.in_flight() > 0 {
            match fabric.eject(bank.node) {
                Some(flit) => {
                    if S::ACTIVE {
                        sink.record(now, delivered_event(bank.node, &flit, now));
                    }
                    if let Err(back) = bank.unit.handle_incoming(flit) {
                        bank.hold = Some(back);
                    }
                }
                None => break,
            }
        }
    }
}

/// Tick every bank. With `skip_idle` (the scheduled engine) an idle bank
/// is not ticked — its tick is provably a no-op; the reference engine
/// ticks everything every cycle.
pub(crate) fn banks_tick<S: TraceSink, I: FaultInjector>(
    banks: &mut [Bank],
    now: Cycle,
    skip_idle: bool,
    sink: &mut S,
    injector: &mut I,
) {
    for bank in banks {
        if !skip_idle || !bank.unit.is_idle() {
            bank.unit.tick_faulted(now, sink, injector);
        }
    }
}

/// Inject at most one response flit per bank (one flit per node per
/// cycle); a refused flit goes back to the front of the bank's out FIFO.
fn banks_inject<F: Fabric + ?Sized, S: TraceSink>(
    fabric: &mut F,
    banks: &mut [Bank],
    now: Cycle,
    sink: &mut S,
) {
    for bank in banks {
        if let Some(flit) = bank.unit.pop_outgoing() {
            let kind = flit.kind().code();
            match fabric.try_inject_tagged(bank.node, flit, now, true) {
                Ok(()) => {
                    if S::ACTIVE {
                        let node = bank.node.index() as u16;
                        sink.record(now, TraceEvent::FlitInjected { node, kind });
                    }
                }
                Err(back) => bank.unit.return_outgoing(back),
            }
        }
    }
}

/// Whether every bank is drained (the fast-forward / deadlock predicate).
pub(crate) fn banks_quiet(banks: &[Bank]) -> bool {
    banks.iter().all(|b| b.unit.is_idle() && b.hold.is_none())
}

pub(crate) fn build_pes(cfg: &SystemConfig, kernels: Vec<Kernel>) -> Vec<ProcessingElement> {
    let topo = cfg.topology();
    let ranks = cfg.compute_pes();
    let layout = cfg.layout();
    let plan = cfg.node_plan();
    let bank_map = cfg.bank_map();
    let algo = cfg.collective_algo();
    // Kernel-side span markers feed both the trace sink and the metrics
    // profiler's collective-wait attribution; either consumer turns them
    // on. Markers cost zero simulated cycles, so this never changes a
    // run's architectural results (pinned by the golden suite).
    let trace_spans = cfg.trace_kernel_spans() || cfg.metrics().enabled();
    let resilience = cfg.resilience();
    kernels
        .into_iter()
        .enumerate()
        .map(|(i, kernel)| {
            let rank = Rank::new(i as u8);
            ProcessingElement::new(cfg.pe_config(rank), topo, bank_map, move |port| {
                kernel(PeApi::new(port, rank, ranks, layout, plan, algo, trace_spans, resilience))
            })
        })
        .collect()
}

/// What a drained-fabric, idle-MPMMU cycle looks like from the PEs.
pub(crate) enum QuietState {
    /// Every live PE is in a pure time stall; jump to the earliest wake.
    AllTimed {
        /// Earliest wake cycle among the stalled PEs.
        min_wake: Cycle,
    },
    /// Every live PE is blocked in `Recv` with no traffic anywhere.
    Deadlocked,
    /// Anything else: advance cycle by cycle.
    Mixed,
}

/// The commutative core of [`classify_quiet`]:
/// `(all_timed AND, min_wake MIN, all_recv_blocked AND)` folded over a
/// slice of PEs. The identity element is `(true, None, true)` (an empty
/// tile constrains nothing), so the tiled engine can fold each tile's
/// partial independently and merge them in any order — the merged triple
/// is bit-identical to folding the whole rank-ordered PE list at once.
pub(crate) fn quiet_fold(pes: &[ProcessingElement]) -> (bool, Option<Cycle>, bool) {
    let mut min_wake: Option<Cycle> = None;
    let mut all_timed = true;
    let mut all_recv_blocked = true;
    for pe in pes {
        match pe.wakeup() {
            Wakeup::Done => {}
            Wakeup::At(t) => {
                all_recv_blocked = false;
                min_wake = Some(min_wake.map_or(t, |m| m.min(t)));
            }
            Wakeup::External => {
                all_timed = false;
                if !pe.is_recv_blocked() {
                    all_recv_blocked = false;
                }
            }
        }
    }
    (all_timed, min_wake, all_recv_blocked)
}

/// Turn the folded triple into the quiet-cycle verdict.
pub(crate) fn classify_fold(
    all_timed: bool,
    min_wake: Option<Cycle>,
    all_recv_blocked: bool,
) -> QuietState {
    match (all_timed, min_wake) {
        (true, Some(min_wake)) => QuietState::AllTimed { min_wake },
        _ if all_recv_blocked && !all_timed => QuietState::Deadlocked,
        _ => QuietState::Mixed,
    }
}

fn classify_quiet(pes: &[ProcessingElement]) -> QuietState {
    let (all_timed, min_wake, all_recv_blocked) = quiet_fold(pes);
    classify_fold(all_timed, min_wake, all_recv_blocked)
}

pub(crate) fn deadlock_detail(pes: &[ProcessingElement]) -> String {
    pes.iter()
        .enumerate()
        .filter(|(_, p)| !p.is_done())
        .map(|(i, _)| format!("rank {i} blocked in recv"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// How many engine-side fault events the hang diagnostics keep.
pub(crate) const FAULT_LOG_CAP: usize = 64;

fn push_fault(log: &mut VecDeque<(Cycle, TraceEvent)>, now: Cycle, ev: TraceEvent) {
    if log.len() == FAULT_LOG_CAP {
        log.pop_front();
    }
    log.push_back((now, ev));
}

/// The watchdog's progress fingerprint: work *served*, not work
/// *attempted*. Packets received by PEs plus transactions completed by
/// banks — a sum of monotone counters, so equality means literally
/// nothing was delivered. Deliberately excluded: `packets_sent` (a
/// retransmission livelock keeps sending NACKs/pokes forever),
/// `requests` (blocked kernels poll via `TryRecv`), `lock_nacks` and
/// `busy_cycles` (a lock spin or a head-of-line stall is exactly the
/// hang the watchdog must catch).
pub(crate) fn progress_fingerprint(pes: &[ProcessingElement], banks: &[Bank]) -> u64 {
    let mut fp = 0u64;
    for pe in pes {
        fp = fp.wrapping_add(pe.stats().packets_received.get());
    }
    for bank in banks {
        let m = bank.unit.stats();
        fp = fp
            .wrapping_add(m.single_reads.get())
            .wrapping_add(m.block_reads.get())
            .wrapping_add(m.single_writes.get())
            .wrapping_add(m.block_writes.get())
            .wrapping_add(m.locks_granted.get())
            .wrapping_add(m.unlocks.get());
    }
    fp
}

/// Per-PE blocked-state diagnostics for [`RunError::CycleLimit`] and
/// [`RunError::Watchdog`]: what every unfinished rank is waiting on,
/// its traffic counters, bank busyness, in-flight flits, and the tail
/// of recent engine-side fault events.
pub(crate) fn stall_detail(
    pes: &[ProcessingElement],
    banks: &[Bank],
    in_flight: usize,
    fault_log: &VecDeque<(Cycle, TraceEvent)>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (i, pe) in pes.iter().enumerate() {
        if pe.is_done() {
            continue;
        }
        let state = match pe.wakeup() {
            Wakeup::Done => "done".to_string(),
            Wakeup::At(t) => format!("timed stall until cycle {t}"),
            Wakeup::External if pe.is_recv_blocked() => "blocked in recv".to_string(),
            Wakeup::External => "waiting on traffic".to_string(),
        };
        let s = pe.stats();
        parts.push(format!(
            "rank {i}: {state} (sent {}, received {}, retransmits {})",
            s.packets_sent.get(),
            s.packets_received.get(),
            s.retransmits.get(),
        ));
    }
    if parts.is_empty() {
        parts.push("all kernels done".to_string());
    }
    let busy = banks.iter().filter(|b| !b.unit.is_idle() || b.hold.is_some()).count();
    let mut detail = format!(
        "{}; {busy}/{} banks busy; {in_flight} flits in flight",
        parts.join(", "),
        banks.len(),
    );
    if !fault_log.is_empty() {
        let tail: Vec<String> =
            fault_log.iter().map(|(cycle, ev)| format!("@{cycle} {ev:?}")).collect();
        detail.push_str(&format!("; recent faults: [{}]", tail.join(", ")));
    }
    detail
}

pub(crate) fn finish_result(
    now: Cycle,
    pes: &[ProcessingElement],
    fstats: &medea_noc::FabricStats,
    banks: &[Bank],
    wall_start: Instant,
    fault: FaultStats,
) -> RunResult {
    let per_bank: Vec<BankSummary> = banks
        .iter()
        .map(|b| BankSummary {
            node: b.node,
            mpmmu: *b.unit.stats(),
            cache: *b.unit.cache_stats(),
            coherence: *b.unit.coherence_stats(),
        })
        .collect();
    let mut mpmmu = MpmmuStats::default();
    let mut mpmmu_cache = CacheStats::default();
    let mut coherence = CoherenceStats::default();
    for b in &per_bank {
        mpmmu.merge(&b.mpmmu);
        mpmmu_cache.merge(&b.cache);
        coherence.merge(&b.coherence);
    }
    for p in pes {
        coherence.merge(p.coherence_stats());
    }
    RunResult {
        cycles: now,
        pe: pes
            .iter()
            .map(|p| PeSummary {
                engine: *p.stats(),
                cache: *p.cache_stats(),
                bridge: *p.bridge_stats(),
                tie: *p.tie_stats(),
                coherence: *p.coherence_stats(),
            })
            .collect(),
        fabric_delivered: fstats.delivered,
        fabric_deflections: fstats.deflections,
        fabric_reroutes: fstats.reroutes,
        fabric_mean_latency: fstats.latency.summary().mean(),
        fabric_max_latency: fstats.latency.summary().max(),
        fabric_latency: fstats.latency.clone(),
        mpmmu,
        mpmmu_cache,
        banks: per_bank,
        fault,
        coherence,
        // Attached by the `run_faulted` dispatcher after the engine
        // returns; the reference engine never records either.
        metrics: None,
        trace_drops: 0,
        wall: wall_start.elapsed(),
    }
}

/// Snapshot every PE and bank into `meter` at a sample-window boundary —
/// the one sampling pass shared by the sequential engine (bases 0) and
/// each tile of the tiled engine (bases = the tile's global slot
/// offsets, so full-size per-tile forks merge by element-wise sum).
pub(crate) fn sample_pes_banks<M: Meter>(
    meter: &mut M,
    pes: &[ProcessingElement],
    pe_base: usize,
    banks: &[Bank],
    bank_base: usize,
) {
    for (i, pe) in pes.iter().enumerate() {
        meter.sample_pe(pe_base + i, pe.activity(), pe.arbiter_occupancy(), pe.rx_backlog());
    }
    for (i, bank) in banks.iter().enumerate() {
        let (req, data, out) = bank.unit.fifo_occupancy();
        meter.sample_bank(
            bank_base + i,
            req,
            data,
            out,
            bank.unit.stats().lock_nacks.get(),
            bank.unit.coherence_stats().protocol_messages(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empi::Empi;
    use medea_sim::ids::Rank;

    fn cfg(pes: usize) -> SystemConfig {
        SystemConfig::builder().compute_pes(pes).cycle_limit(5_000_000).build().unwrap()
    }

    #[test]
    fn kernel_count_checked() {
        let err = System::run(&cfg(3), &[], vec![]).unwrap_err();
        assert!(matches!(err, RunError::KernelCountMismatch { kernels: 0, pes: 3 }));
    }

    #[test]
    fn single_pe_compute_only() {
        let result = System::run(
            &cfg(1),
            &[],
            vec![Box::new(|api: PeApi| {
                api.compute(1000);
            })],
        )
        .unwrap();
        // Fast-forward must not distort time: ~1000 cycles plus small
        // fetch overhead.
        assert!((1000..1100).contains(&result.cycles), "cycles = {}", result.cycles);
    }

    #[test]
    fn memory_roundtrip_through_full_stack() {
        let result = System::run(
            &cfg(1),
            &[(0x1000, 0xABCD)],
            vec![Box::new(|api: PeApi| {
                // Preloaded data is visible through the cache hierarchy.
                assert_eq!(api.load_u32(0x1000), 0xABCD);
                // Writes round-trip.
                api.store_f64(0x2000, 2.75);
                assert_eq!(api.load_f64(0x2000), 2.75);
                // Flush pushes them to the MPMMU; invalidate + reload
                // still sees them.
                api.flush_line(0x2000);
                api.invalidate_line(0x2000);
                assert_eq!(api.load_f64(0x2000), 2.75);
            })],
        )
        .unwrap();
        assert!(result.mpmmu.block_reads.get() >= 2);
        assert!(result.fabric_delivered > 0);
    }

    #[test]
    fn message_passing_two_ranks() {
        let result = System::run(
            &cfg(2),
            &[],
            vec![
                Box::new(|api: PeApi| {
                    let words = api.recv_from_rank(Rank::new(1));
                    assert_eq!(words[0], 7);
                    api.send_to_rank(Rank::new(1), &[8]);
                }),
                Box::new(|api: PeApi| {
                    api.send_to_rank(Rank::new(0), &[7]);
                    let words = api.recv_from_rank(Rank::new(0));
                    assert_eq!(words[0], 8);
                }),
            ],
        )
        .unwrap();
        assert!(result.pe[0].engine.packets_sent.get() == 1);
        assert!(result.pe[1].engine.packets_received.get() == 1);
    }

    #[test]
    fn empi_barrier_synchronizes() {
        // All ranks spin a different amount, then barrier; after the
        // barrier every rank reads a time ≥ the slowest rank's work.
        let slow = 20_000u64;
        let result = System::run(
            &cfg(4),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    comm.compute(slow);
                    comm.barrier();
                    assert!(comm.now() >= slow);
                }),
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    comm.barrier();
                    assert!(comm.now() >= slow);
                }),
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    comm.compute(100);
                    comm.barrier();
                    assert!(comm.now() >= slow);
                }),
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    comm.barrier();
                    assert!(comm.now() >= slow);
                }),
            ],
        )
        .unwrap();
        assert!(result.cycles >= slow);
    }

    #[test]
    fn empi_long_message_roundtrip() {
        let payload: Vec<u32> = (0..120).collect(); // 8 chunks
        let expect = payload.clone();
        System::run(
            &cfg(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    let got = Empi::new(api).recv(Rank::new(1));
                    assert_eq!(got, expect);
                }),
                Box::new(move |api: PeApi| {
                    Empi::new(api).send(Rank::new(0), &payload);
                }),
            ],
        )
        .unwrap();
    }

    #[test]
    fn empi_f64_roundtrip() {
        System::run(
            &cfg(2),
            &[],
            vec![
                Box::new(|api: PeApi| {
                    let got = Empi::new(api).recv_f64(Rank::new(1));
                    assert_eq!(got, vec![1.5, -2.25, 1e300]);
                }),
                Box::new(|api: PeApi| {
                    Empi::new(api).send_f64(Rank::new(0), &[1.5, -2.25, 1e300]);
                }),
            ],
        )
        .unwrap();
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Classic increment race, made safe by the MPMMU lock: each rank
        // increments a shared counter 10 times through uncached accesses.
        const COUNTER: u32 = 0x100;
        const LOCK: u32 = 0x200;
        let kernel = || {
            Box::new(move |api: PeApi| {
                for _ in 0..10 {
                    api.lock(LOCK);
                    let v = api.uncached_load_u32(COUNTER);
                    api.uncached_store_u32(COUNTER, v + 1);
                    api.unlock(LOCK);
                }
            }) as Kernel
        };
        let result = System::run(&cfg(3), &[], vec![kernel(), kernel(), kernel()]).unwrap();
        assert_eq!(result.mpmmu.locks_granted.get(), 30);
        assert_eq!(result.mpmmu.unlocks.get(), 30);
        // Verify the final count via a fourth run-phase: read it back.
        let verify = System::run(
            &cfg(1),
            &[],
            vec![Box::new(move |api: PeApi| {
                // Fresh system: counter starts at 0 again — so instead
                // assert on the previous run's lock stats only.
                let _ = api.now();
            })],
        );
        assert!(verify.is_ok());
    }

    #[test]
    fn shared_memory_producer_consumer_with_coherence() {
        // Rank 1 writes shared data + flushes, signals via message;
        // rank 0 invalidates + reads — the §II-E protocol.
        const DATA: u32 = 0x40;
        System::run(
            &cfg(2),
            &[],
            vec![
                Box::new(|api: PeApi| {
                    let _ = api.recv_from_rank(Rank::new(1)); // ready token
                    api.invalidate_line(DATA);
                    assert_eq!(api.load_f64(DATA), 9.5);
                }),
                Box::new(|api: PeApi| {
                    api.store_f64(DATA, 9.5);
                    api.flush_line(DATA);
                    api.send_to_rank(Rank::new(0), &[1]);
                }),
            ],
        )
        .unwrap();
    }

    #[test]
    fn stale_read_without_invalidate() {
        // The negative control: rank 0 caches the line *before* rank 1
        // updates it and does NOT invalidate — it must see the stale value.
        const DATA: u32 = 0x40;
        System::run(
            &cfg(2),
            &[(DATA, 111)],
            vec![
                Box::new(|api: PeApi| {
                    assert_eq!(api.load_u32(DATA), 111); // cache the line
                    api.send_to_rank(Rank::new(1), &[1]); // let producer go
                    let _ = api.recv_from_rank(Rank::new(1)); // updated token
                                                              // No invalidate: stale.
                    assert_eq!(api.load_u32(DATA), 111, "must read the stale cached copy");
                    api.invalidate_line(DATA);
                    assert_eq!(api.load_u32(DATA), 222, "fresh after DII");
                }),
                Box::new(|api: PeApi| {
                    let _ = api.recv_from_rank(Rank::new(0));
                    api.uncached_store_u32(DATA, 222);
                    api.send_to_rank(Rank::new(0), &[1]);
                }),
            ],
        )
        .unwrap();
    }

    #[test]
    fn deadlock_detected() {
        let err = System::run(
            &cfg(2),
            &[],
            vec![
                Box::new(|api: PeApi| {
                    let _ = api.recv_from_rank(Rank::new(1)); // never sent
                }),
                Box::new(|api: PeApi| {
                    let _ = api.recv_from_rank(Rank::new(0)); // never sent
                }),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn cycle_limit_enforced() {
        let tight = SystemConfig::builder().compute_pes(1).cycle_limit(100).build().unwrap();
        let err = System::run(
            &tight,
            &[],
            vec![Box::new(|api: PeApi| {
                api.compute(1_000_000);
            })],
        )
        .unwrap_err();
        assert!(matches!(err, RunError::CycleLimit { limit: 100, .. }), "{err}");
    }

    #[test]
    fn deterministic_results() {
        let run = || {
            System::run(
                &cfg(3),
                &[],
                vec![
                    Box::new(|api: PeApi| {
                        let comm = Empi::new(api);
                        for i in 0..20u32 {
                            comm.store_u32(comm.private_base() + i * 4, i);
                        }
                        comm.barrier();
                    }),
                    Box::new(|api: PeApi| {
                        let comm = Empi::new(api);
                        comm.compute(500);
                        comm.barrier();
                    }),
                    Box::new(|api: PeApi| {
                        let comm = Empi::new(api);
                        comm.store_f64(comm.private_base(), 3.25);
                        comm.barrier();
                    }),
                ],
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.fabric_delivered, b.fabric_delivered);
        assert_eq!(a.fabric_deflections, b.fabric_deflections);
    }

    /// A mixed workload (compute stalls + messages + shared memory) that
    /// exercises every engine subsystem, for the equivalence test.
    fn mixed_kernels() -> Vec<Kernel> {
        vec![
            Box::new(|api: PeApi| {
                let comm = Empi::new(api);
                comm.compute(700);
                comm.store_f64(comm.private_base(), 1.25);
                comm.flush_line(comm.private_base());
                comm.barrier();
                let v = comm.recv_f64(Rank::new(1));
                assert_eq!(v[0], 2.5);
            }),
            Box::new(|api: PeApi| {
                let comm = Empi::new(api);
                comm.barrier();
                comm.send_f64(Rank::new(0), &[2.5]);
            }),
            Box::new(|api: PeApi| {
                let comm = Empi::new(api);
                for i in 0..8u32 {
                    comm.uncached_store_u32(0x400 + i * 4, i);
                }
                comm.barrier();
            }),
        ]
    }

    #[test]
    fn engine_equivalence() {
        // The scheduled engine and the naive reference engine must agree
        // bit-for-bit on every architectural observable, on both fabrics.
        for fabric in [FabricKind::Deflection, FabricKind::Ideal] {
            let mk = || {
                SystemConfig::builder()
                    .compute_pes(3)
                    .fabric(fabric)
                    .cycle_limit(5_000_000)
                    .build()
                    .unwrap()
            };
            let fast = System::run(&mk(), &[], mixed_kernels()).unwrap();
            let slow = System::run_reference(&mk(), &[], mixed_kernels()).unwrap();
            assert_eq!(fast.cycles, slow.cycles, "{fabric:?}");
            assert_eq!(fast.fabric_delivered, slow.fabric_delivered, "{fabric:?}");
            assert_eq!(fast.fabric_deflections, slow.fabric_deflections, "{fabric:?}");
            assert_eq!(fast.fabric_max_latency, slow.fabric_max_latency, "{fabric:?}");
            assert_eq!(fast.fabric_mean_latency, slow.fabric_mean_latency, "{fabric:?}");
            assert_eq!(fast.mpmmu.single_writes.get(), slow.mpmmu.single_writes.get());
            for (a, b) in fast.pe.iter().zip(&slow.pe) {
                assert_eq!(a.engine.requests.get(), b.engine.requests.get());
                assert_eq!(a.engine.compute_cycles.get(), b.engine.compute_cycles.get());
                assert_eq!(a.engine.recv_wait_cycles.get(), b.engine.recv_wait_cycles.get());
                assert_eq!(a.engine.send_cycles.get(), b.engine.send_cycles.get());
                assert_eq!(a.cache.load_hits.get(), b.cache.load_hits.get());
                assert_eq!(a.bridge.transactions.get(), b.bridge.transactions.get());
            }
        }
    }

    #[test]
    fn engine_equivalence_on_deadlock() {
        let kernels = || -> Vec<Kernel> {
            vec![
                Box::new(|api: PeApi| {
                    api.compute(300);
                    let _ = api.recv_from_rank(Rank::new(1));
                }),
                Box::new(|api: PeApi| {
                    let _ = api.recv_from_rank(Rank::new(0));
                }),
            ]
        };
        let fast = System::run(&cfg(2), &[], kernels()).unwrap_err();
        let slow = System::run_reference(&cfg(2), &[], kernels()).unwrap_err();
        assert_eq!(fast, slow, "deadlock must be detected at the same cycle");
    }

    #[test]
    fn assembles_on_larger_and_rectangular_tori() {
        use medea_noc::coord::Topology;
        // 8x8: ranks beyond the paper's 15 exchange messages and shared
        // memory through the full stack.
        let cfg8 = SystemConfig::builder()
            .topology(Topology::new(8, 8).unwrap())
            .compute_pes(20)
            .cycle_limit(5_000_000)
            .build()
            .unwrap();
        let kernels: Vec<Kernel> = (0..20)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    comm.store_u32(comm.private_base(), r as u32);
                    comm.flush_line(comm.private_base());
                    comm.barrier();
                    if r == 19 {
                        comm.send(Rank::new(0), &[4242]);
                    } else if r == 0 {
                        let got = comm.recv(Rank::new(19));
                        assert_eq!(got, vec![4242]);
                    }
                }) as Kernel
            })
            .collect();
        let result = System::run(&cfg8, &[], kernels).unwrap();
        assert!(result.fabric_delivered > 0);
        assert_eq!(result.pe.len(), 20);

        // 8x2 rectangular torus: same workload shape on 10 ranks.
        let cfg_rect = SystemConfig::builder()
            .topology(Topology::new(8, 2).unwrap())
            .compute_pes(10)
            .cycle_limit(5_000_000)
            .build()
            .unwrap();
        let kernels: Vec<Kernel> =
            (0..10).map(|_| Box::new(|api: PeApi| Empi::new(api).barrier()) as Kernel).collect();
        System::run(&cfg_rect, &[], kernels).unwrap();
    }

    #[test]
    fn engine_equivalence_on_8x8() {
        use medea_noc::coord::Topology;
        let mk = || {
            SystemConfig::builder()
                .topology(Topology::new(8, 8).unwrap())
                .compute_pes(17)
                .cycle_limit(5_000_000)
                .build()
                .unwrap()
        };
        let kernels = || -> Vec<Kernel> {
            (0..17)
                .map(|r| {
                    Box::new(move |api: PeApi| {
                        let comm = Empi::new(api);
                        comm.compute(40 + 11 * r as u64);
                        comm.barrier();
                        if r > 0 {
                            comm.send_f64(Rank::new(0), &[r as f64]);
                        } else {
                            for src in 1..comm.ranks() {
                                let v = comm.recv_f64(Rank::new(src as u8));
                                assert_eq!(v[0], src as f64);
                            }
                        }
                    }) as Kernel
                })
                .collect()
        };
        let fast = System::run(&mk(), &[], kernels()).unwrap();
        let slow = System::run_reference(&mk(), &[], kernels()).unwrap();
        assert_eq!(fast.cycles, slow.cycles);
        assert_eq!(fast.fabric_delivered, slow.fabric_delivered);
        assert_eq!(fast.fabric_deflections, slow.fabric_deflections);
        assert_eq!(fast.fabric_mean_latency, slow.fabric_mean_latency);
    }

    #[test]
    fn banked_memory_roundtrip_and_per_bank_stats() {
        // Two banks: even lines at node 0, odd lines at node 2. A single
        // kernel walks lines of both parities; both banks must serve
        // traffic and the aggregate must equal the per-bank sum.
        let cfg = SystemConfig::builder()
            .compute_pes(3)
            .memory_banks(2)
            .cycle_limit(5_000_000)
            .build()
            .unwrap();
        let result = System::run(
            &cfg,
            &[(0x10, 71)],
            vec![
                Box::new(|api: PeApi| {
                    // Preload on an odd line (bank 1) is visible.
                    assert_eq!(api.uncached_load_u32(0x10), 71);
                    for line in 0..8u32 {
                        let addr = line * 16;
                        api.uncached_store_u32(addr, 1000 + line);
                    }
                    for line in 0..8u32 {
                        let addr = line * 16;
                        assert_eq!(api.uncached_load_u32(addr), 1000 + line);
                    }
                }),
                Box::new(|api: PeApi| {
                    // Cached traffic crosses banks too: f64 spanning one
                    // line each on both parities, flushed and reloaded.
                    api.store_f64(0x40, 2.5); // even line → bank 0
                    api.store_f64(0x50, 3.5); // odd line → bank 1
                    api.flush_line(0x40);
                    api.flush_line(0x50);
                    api.invalidate_line(0x40);
                    api.invalidate_line(0x50);
                    assert_eq!(api.load_f64(0x40), 2.5);
                    assert_eq!(api.load_f64(0x50), 3.5);
                }),
                Box::new(|api: PeApi| {
                    api.compute(100);
                }),
            ],
        )
        .unwrap();
        assert_eq!(result.banks.len(), 2);
        assert_eq!(result.banks[0].node, NodeId::new(0));
        assert_eq!(result.banks[1].node, NodeId::new(2));
        for bank in &result.banks {
            assert!(
                bank.mpmmu.single_reads.get() + bank.mpmmu.block_reads.get() > 0,
                "bank {} served no reads",
                bank.node
            );
        }
        let summed: u64 = result.banks.iter().map(|b| b.mpmmu.single_writes.get()).sum();
        assert_eq!(result.mpmmu.single_writes.get(), summed, "aggregate = per-bank sum");
    }

    #[test]
    fn banked_locks_are_per_word_atomic() {
        // Lock words on different banks guard independent counters; the
        // mutual exclusion of each must hold exactly as with one MPMMU.
        const COUNTER_A: u32 = 0x100; // even line → bank 0
        const LOCK_A: u32 = 0x200;
        const COUNTER_B: u32 = 0x110; // odd line → bank 1
        const LOCK_B: u32 = 0x210;
        let cfg = SystemConfig::builder()
            .compute_pes(4)
            .memory_banks(2)
            .cycle_limit(5_000_000)
            .build()
            .unwrap();
        let kernel = || {
            Box::new(move |api: PeApi| {
                for _ in 0..5 {
                    api.lock(LOCK_A);
                    let v = api.uncached_load_u32(COUNTER_A);
                    api.uncached_store_u32(COUNTER_A, v + 1);
                    api.unlock(LOCK_A);
                    api.lock(LOCK_B);
                    let v = api.uncached_load_u32(COUNTER_B);
                    api.uncached_store_u32(COUNTER_B, v + 1);
                    api.unlock(LOCK_B);
                }
            }) as Kernel
        };
        let result = System::run(&cfg, &[], vec![kernel(), kernel(), kernel(), kernel()]).unwrap();
        assert_eq!(result.mpmmu.locks_granted.get(), 40);
        assert_eq!(result.mpmmu.unlocks.get(), 40);
        // Each lock word is owned by exactly one bank.
        assert_eq!(result.banks[0].mpmmu.locks_granted.get(), 20);
        assert_eq!(result.banks[1].mpmmu.locks_granted.get(), 20);
    }

    #[test]
    fn engine_equivalence_on_banked_memory() {
        // The scheduled engine and the reference engine must agree
        // bit-for-bit on a multi-bank system too.
        let mk = || {
            SystemConfig::builder()
                .compute_pes(5)
                .memory_banks(4)
                .cycle_limit(5_000_000)
                .build()
                .unwrap()
        };
        let kernels = || -> Vec<Kernel> {
            (0..5)
                .map(|r| {
                    Box::new(move |api: PeApi| {
                        let comm = Empi::new(api);
                        comm.compute(30 + 17 * r as u64);
                        for i in 0..6u32 {
                            let addr = (r as u32 * 6 + i) * 16;
                            comm.uncached_store_u32(addr, r as u32 * 100 + i);
                        }
                        comm.barrier();
                        let peer = (r + 1) % 5;
                        let addr = (peer as u32 * 6) * 16;
                        assert_eq!(comm.uncached_load_u32(addr), peer as u32 * 100);
                    }) as Kernel
                })
                .collect()
        };
        let fast = System::run(&mk(), &[], kernels()).unwrap();
        let slow = System::run_reference(&mk(), &[], kernels()).unwrap();
        assert_eq!(fast.cycles, slow.cycles);
        assert_eq!(fast.fabric_delivered, slow.fabric_delivered);
        assert_eq!(fast.fabric_deflections, slow.fabric_deflections);
        assert_eq!(fast.fabric_mean_latency, slow.fabric_mean_latency);
        for (a, b) in fast.banks.iter().zip(&slow.banks) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.mpmmu.single_reads.get(), b.mpmmu.single_reads.get());
            assert_eq!(a.mpmmu.single_writes.get(), b.mpmmu.single_writes.get());
            assert_eq!(a.mpmmu.busy_cycles.get(), b.mpmmu.busy_cycles.get());
        }
    }

    #[test]
    fn single_bank_result_has_one_bank_summary() {
        let result = System::run(
            &cfg(1),
            &[],
            vec![Box::new(|api: PeApi| {
                api.uncached_store_u32(0x40, 9);
            })],
        )
        .unwrap();
        assert_eq!(result.banks.len(), 1);
        assert_eq!(result.banks[0].node, NodeId::new(0));
        assert_eq!(result.banks[0].mpmmu.single_writes.get(), result.mpmmu.single_writes.get());
    }

    #[test]
    fn ideal_fabric_not_slower() {
        let mk = |fabric| {
            SystemConfig::builder()
                .compute_pes(4)
                .fabric(fabric)
                .cycle_limit(5_000_000)
                .build()
                .unwrap()
        };
        let kernels = || -> Vec<Kernel> {
            (0..4)
                .map(|_| {
                    Box::new(|api: PeApi| {
                        let comm = Empi::new(api);
                        for i in 0..64u32 {
                            comm.store_u32(comm.private_base() + i * 4, i);
                            comm.flush_line(comm.private_base() + i * 4);
                        }
                        comm.barrier();
                    }) as Kernel
                })
                .collect()
        };
        let real = System::run(&mk(FabricKind::Deflection), &[], kernels()).unwrap();
        let ideal = System::run(&mk(FabricKind::Ideal), &[], kernels()).unwrap();
        assert!(ideal.cycles <= real.cycles, "ideal {} > real {}", ideal.cycles, real.cycles);
    }
}
