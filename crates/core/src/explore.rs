//! Design-space exploration driver.
//!
//! §III: "We have been able to run a parallel implementation of the Jacobi
//! algorithm for three different sizes of input data on 168 different
//! architectures in about 1 day using 5 servers" — the 168 points being
//! 14 core counts × 6 cache sizes × 2 write policies. This module runs the
//! same kind of sweep on host threads, and goes beyond the paper's fixed
//! 4×4 instance: every [`SweepPoint`] carries its own [`Topology`], so one
//! sweep can span 2×2 up to 16×16 tori (255 compute PEs).
//!
//! The engine is a pool of scoped worker threads over a self-scheduling
//! shared work queue: each worker atomically claims the next unstarted
//! point, so cheap 4×4 points never leave a core idle while another thread
//! grinds through a 255-PE run.

use crate::api::PeApi;
use crate::config::SystemConfig;
use crate::system::{Kernel, RunError, RunResult, System};
use medea_cache::{Addr, CacheConfig, CachePolicy};
use medea_noc::coord::Topology;
use medea_sim::Cycle;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// One coordinate of the exploration grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    /// The torus the system is assembled on.
    pub topology: Topology,
    /// Compute PEs (`1..=topology.nodes() − memory_banks`).
    pub pes: usize,
    /// L1 size in bytes.
    pub cache_bytes: usize,
    /// L1 write policy.
    pub policy: CachePolicy,
    /// Address-interleaved MPMMU banks (1 = the paper's single MPMMU).
    pub banks: usize,
}

impl SweepPoint {
    /// A point on the paper's 4×4 folded torus (single memory bank).
    pub fn new(pes: usize, cache_bytes: usize, policy: CachePolicy) -> Self {
        SweepPoint { topology: Topology::paper_4x4(), pes, cache_bytes, policy, banks: 1 }
    }

    /// A point on an explicit torus (single memory bank).
    pub fn on(topology: Topology, pes: usize, cache_bytes: usize, policy: CachePolicy) -> Self {
        SweepPoint { topology, pes, cache_bytes, policy, banks: 1 }
    }

    /// The same point with `banks` address-interleaved MPMMU banks.
    pub fn with_banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Materialize the point into a full system configuration, starting
    /// from `base` (which carries workload-independent settings such as
    /// segment sizes and the cycle limit).
    pub fn apply(&self, base: crate::config::SystemConfigBuilder) -> SystemConfig {
        base.topology(self.topology)
            .compute_pes(self.pes)
            .cache_bytes(self.cache_bytes)
            .cache_policy(self.policy)
            .memory_banks(self.banks)
            .build()
            .expect("sweep points are pre-validated")
    }
}

/// The paper's full grid: PEs 2..=15, cache 2..=64 kB, WB + WT
/// (14 × 6 × 2 = 168 points), all on the 4×4 torus.
pub fn paper_grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for policy in [CachePolicy::WriteBack, CachePolicy::WriteThrough] {
        for &cache_bytes in &CacheConfig::PAPER_SIZES {
            for pes in 2..=15 {
                points.push(SweepPoint::new(pes, cache_bytes, policy));
            }
        }
    }
    points
}

/// A reduced grid for quick runs (callers pick their own subsets too).
pub fn quick_grid() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &cache_bytes in &[4 * 1024, 16 * 1024] {
        for pes in [2usize, 4, 8] {
            points.push(SweepPoint::new(pes, cache_bytes, CachePolicy::WriteBack));
        }
    }
    points
}

/// Everything a workload hands the engine for one run.
pub struct PreparedWorkload {
    /// Words preloaded into DDR before the first cycle.
    pub preload: Vec<(Addr, u32)>,
    /// One kernel per rank.
    pub kernels: Vec<Kernel>,
    /// Rank 0 stores the measured-window length (cycles) here before
    /// returning; [`SweepOutcome::measured_cycles`] reads it.
    pub measured: Arc<AtomicU64>,
}

impl PreparedWorkload {
    /// Convenience constructor wiring the measurement cell.
    pub fn new(preload: Vec<(Addr, u32)>, kernels: Vec<Kernel>, measured: Arc<AtomicU64>) -> Self {
        PreparedWorkload { preload, kernels, measured }
    }
}

/// A benchmark that can run on any sweep configuration.
pub trait Workload: Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Build the kernels for `cfg`.
    fn prepare(&self, cfg: &SystemConfig) -> PreparedWorkload;
}

/// Result of one sweep point.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The grid coordinate.
    pub point: SweepPoint,
    /// Figure-style label.
    pub label: String,
    /// Engine-level result.
    pub result: Result<RunResult, RunError>,
    /// The workload's measured window (e.g. one Jacobi iteration after
    /// warm-up), in cycles. Zero if the run failed.
    pub measured_cycles: Cycle,
}

impl SweepOutcome {
    /// The measured window, if the run succeeded.
    pub fn measured(&self) -> Option<Cycle> {
        self.result.as_ref().ok().map(|_| self.measured_cycles)
    }
}

/// Self-scheduling shared queue of sweep points: workers atomically claim
/// the next unstarted index.
struct WorkQueue<'a> {
    points: &'a [SweepPoint],
    next: AtomicUsize,
}

impl WorkQueue<'_> {
    fn claim(&self) -> Option<(usize, SweepPoint)> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        self.points.get(idx).map(|p| (idx, *p))
    }
}

/// Cap the sweep's worker count so sweep threads × per-run engine threads
/// never oversubscribe the host.
///
/// With the tiled cycle engine
/// ([`crate::config::SystemConfigBuilder::host_threads`]) every run may
/// itself occupy `engine_threads` cores, so a sweep asked for `requested`
/// workers on a machine with `available` cores is clamped to
/// `available / engine_threads` (at least one worker always runs). Pure
/// arithmetic, separated out so it can be tested without spawning anything.
fn capped_sweep_threads(requested: usize, engine_threads: usize, available: usize) -> usize {
    let budget = (available / engine_threads.max(1)).max(1);
    requested.max(1).min(budget)
}

/// Run `workload` on every `point`, using up to `threads` host threads.
///
/// `base` carries the sweep-invariant configuration; each point overrides
/// topology, PE count, cache size and policy. Outcomes are returned in
/// `points` order regardless of scheduling.
///
/// When `base` configures a multi-threaded cycle engine
/// (`host_threads > 1`), the sweep caps its own worker count so that
/// sweep workers × engine threads stays within the machine's available
/// parallelism — otherwise a 8-worker sweep of 8-thread runs would put
/// 64 runnable threads on the barrier spin loops at once.
pub fn run_sweep<W: Workload>(
    workload: &W,
    points: &[SweepPoint],
    base: &crate::config::SystemConfigBuilder,
    threads: usize,
) -> Vec<SweepOutcome> {
    let available =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let threads = capped_sweep_threads(threads, base.configured_host_threads(), available)
        .min(points.len().max(1));
    let queue = WorkQueue { points, next: AtomicUsize::new(0) };
    let (tx, rx) = mpsc::channel::<(usize, SweepOutcome)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || {
                while let Some((idx, point)) = queue.claim() {
                    let cfg = point.apply(base.clone());
                    let prepared = workload.prepare(&cfg);
                    let measured_cell = Arc::clone(&prepared.measured);
                    let result = System::run(&cfg, &prepared.preload, prepared.kernels);
                    let outcome = SweepOutcome {
                        point,
                        label: cfg.label(),
                        measured_cycles: if result.is_ok() {
                            measured_cell.load(Ordering::SeqCst)
                        } else {
                            0
                        },
                        result,
                    };
                    if tx.send((idx, outcome)).is_err() {
                        break; // collector gone; nothing left to do
                    }
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<SweepOutcome>> = Vec::new();
        slots.resize_with(points.len(), || None);
        for (idx, outcome) in rx {
            slots[idx] = Some(outcome);
        }
        slots.into_iter().map(|o| o.expect("every index visited")).collect()
    })
}

/// Compute speedups relative to the slowest successful point of the sweep
/// (our documented reading of the paper's "optimal Speedup" normalization;
/// EXPERIMENTS.md discusses the choice).
pub fn speedups_vs_slowest(outcomes: &[SweepOutcome]) -> Vec<(String, f64)> {
    let reference =
        outcomes.iter().filter_map(SweepOutcome::measured).max().unwrap_or(1).max(1) as f64;
    outcomes
        .iter()
        .filter_map(|o| {
            o.measured().filter(|&m| m > 0).map(|m| (o.label.clone(), reference / m as f64))
        })
        .collect()
}

/// A trivial workload used by tests and the quickstart: every rank charges
/// `cycles_per_rank` compute cycles, rank 0 measures the window.
pub struct ComputeOnlyWorkload {
    /// Cycles each rank charges.
    pub cycles_per_rank: Cycle,
}

impl Workload for ComputeOnlyWorkload {
    fn name(&self) -> &str {
        "compute-only"
    }

    fn prepare(&self, cfg: &SystemConfig) -> PreparedWorkload {
        let measured = Arc::new(AtomicU64::new(0));
        let kernels: Vec<Kernel> = (0..cfg.compute_pes())
            .map(|rank| {
                let cell = Arc::clone(&measured);
                let cycles = self.cycles_per_rank;
                Box::new(move |api: PeApi| {
                    let t0 = api.now();
                    api.compute(cycles);
                    let t1 = api.now();
                    if rank == 0 {
                        cell.store(t1 - t0, Ordering::SeqCst);
                    }
                }) as Kernel
            })
            .collect();
        PreparedWorkload::new(Vec::new(), kernels, measured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_is_168_points() {
        assert_eq!(paper_grid().len(), 168);
        assert!(paper_grid().iter().all(|p| p.topology == Topology::paper_4x4()));
    }

    #[test]
    fn sweep_runs_all_points_in_order() {
        let workload = ComputeOnlyWorkload { cycles_per_rank: 100 };
        let points = quick_grid();
        let base = SystemConfig::builder().cycle_limit(1_000_000);
        let outcomes = run_sweep(&workload, &points, &base, 4);
        assert_eq!(outcomes.len(), points.len());
        for (o, p) in outcomes.iter().zip(&points) {
            assert_eq!(o.point, *p, "order preserved");
            let measured = o.measured().expect("run succeeded");
            assert!((100..=120).contains(&measured), "measured {measured}");
        }
    }

    #[test]
    fn sweep_spans_multiple_topologies() {
        let workload = ComputeOnlyWorkload { cycles_per_rank: 250 };
        let points = vec![
            SweepPoint::new(2, 4096, CachePolicy::WriteBack),
            SweepPoint::on(Topology::new(8, 8).unwrap(), 20, 4096, CachePolicy::WriteBack),
            SweepPoint::on(Topology::new(8, 2).unwrap(), 15, 4096, CachePolicy::WriteBack),
        ];
        let base = SystemConfig::builder().cycle_limit(1_000_000);
        let outcomes = run_sweep(&workload, &points, &base, 3);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            let measured = o.measured().expect("run succeeded");
            assert!((250..=270).contains(&measured), "{}: measured {measured}", o.label);
        }
        assert_eq!(outcomes[1].label, "20P_4k$_WB@8x8");
        assert_eq!(outcomes[2].label, "15P_4k$_WB@8x2");
    }

    #[test]
    fn sweep_spans_bank_counts() {
        let workload = ComputeOnlyWorkload { cycles_per_rank: 120 };
        let t8 = Topology::new(8, 8).unwrap();
        let points = vec![
            SweepPoint::on(t8, 10, 4096, CachePolicy::WriteBack),
            SweepPoint::on(t8, 10, 4096, CachePolicy::WriteBack).with_banks(4),
        ];
        let base = SystemConfig::builder().cycle_limit(1_000_000);
        let outcomes = run_sweep(&workload, &points, &base, 2);
        for o in &outcomes {
            assert!(o.measured().is_some(), "{}: run failed", o.label);
        }
        assert_eq!(outcomes[0].label, "10P_4k$_WB@8x8");
        assert_eq!(outcomes[1].label, "10P_4k$_WB@8x8x4B");
    }

    #[test]
    fn speedups_reference_is_slowest() {
        let workload = ComputeOnlyWorkload { cycles_per_rank: 500 };
        let points = vec![
            SweepPoint::new(1, 2048, CachePolicy::WriteBack),
            SweepPoint::new(2, 2048, CachePolicy::WriteBack),
        ];
        let base = SystemConfig::builder().cycle_limit(1_000_000);
        let outcomes = run_sweep(&workload, &points, &base, 2);
        let speedups = speedups_vs_slowest(&outcomes);
        assert_eq!(speedups.len(), 2);
        // Both do the same compute; speedups are all ~1.
        for (_, s) in &speedups {
            assert!((0.9..=1.1).contains(s), "speedup {s}");
        }
    }

    #[test]
    fn sweep_thread_cap_respects_engine_threads() {
        // No engine parallelism: the requested count stands.
        assert_eq!(capped_sweep_threads(8, 1, 16), 8);
        // 4-thread engine on 16 cores: at most 4 sweep workers.
        assert_eq!(capped_sweep_threads(8, 4, 16), 4);
        // Engine wider than the machine: one worker still runs.
        assert_eq!(capped_sweep_threads(8, 32, 16), 1);
        // Degenerate inputs clamp instead of panicking.
        assert_eq!(capped_sweep_threads(0, 0, 0), 1);
    }

    #[test]
    fn sweep_deterministic_across_thread_counts() {
        let workload = ComputeOnlyWorkload { cycles_per_rank: 321 };
        let points = quick_grid();
        let base = SystemConfig::builder().cycle_limit(1_000_000);
        let seq = run_sweep(&workload, &points, &base, 1);
        let par = run_sweep(&workload, &points, &base, 8);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.measured_cycles, b.measured_cycles);
            assert_eq!(a.result.as_ref().unwrap().cycles, b.result.as_ref().unwrap().cycles);
        }
    }
}
