//! Plain-text table and series formatting for the figure harness.

use medea_metrics::{CycleBreakdown, PeActivity};

/// Render a fixed-width table. `headers.len()` must match every row.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    fn push_row(widths: &[usize], cells: &[&str], out: &mut String) {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    }
    let mut out = String::new();
    push_row(&widths, headers, &mut out);
    let rules: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let rule_refs: Vec<&str> = rules.iter().map(String::as_str).collect();
    push_row(&widths, &rule_refs, &mut out);
    for row in rows {
        let cells: Vec<&str> = row.iter().map(String::as_str).collect();
        push_row(&widths, &cells, &mut out);
    }
    out
}

/// Render a named (x, y) series as gnuplot-pasteable columns. Values are
/// printed with the same `.3` precision as [`format_labeled_series`], so
/// mixed plots line up column-for-column.
pub fn format_series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:.3} {y:.3}\n"));
    }
    out
}

/// Render a labeled (x, y) series (Fig. 7/9 style, labels on points).
pub fn format_labeled_series(name: &str, points: &[(String, f64, f64)]) -> String {
    let mut out = format!("# {name}\n");
    for (label, x, y) in points {
        out.push_str(&format!("{x:.3} {y:.3}  # {label}\n"));
    }
    out
}

/// One row of a latency-percentile summary: a label plus the
/// `(p50, p99, max)` triple and the deflections-per-delivered-flit ratio
/// (`RunResult::flit_latency_p50` and friends).
pub type LatencyRow = (String, Option<u64>, Option<u64>, Option<u64>, Option<f64>);

/// Render latency-percentile summaries (one [`LatencyRow`] per
/// configuration) as an aligned table — the renderer behind the `noc`
/// reporting of the scaling harness and the `trace_json` binary.
pub fn format_latency_table(rows: &[LatencyRow]) -> String {
    fn cell<T: std::fmt::Display>(v: &Option<T>) -> String {
        v.as_ref().map_or_else(|| "-".into(), T::to_string)
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, p50, p99, max, defl)| {
            vec![
                label.clone(),
                cell(p50),
                cell(p99),
                cell(max),
                defl.map_or_else(|| "-".into(), |d| format!("{d:.3}")),
            ]
        })
        .collect();
    format_table(&["config", "p50", "p99", "max", "defl/flit"], &table_rows)
}

/// One row of a resilience-sweep summary: a config label, the faults the
/// injector delivered, the recovery counters each layer reports
/// (dead-link reroutes, eMPI retransmissions, receiver NACKs, bridge
/// retries) and the run outcome (`"ok"` or the `RunError` kind).
pub type ResilienceRow = (String, u64, u64, u64, u64, u64, String);

/// Render a resilience sweep (one [`ResilienceRow`] per fault scenario)
/// as an aligned table — the renderer behind the `resilience` section of
/// the scaling harness.
pub fn format_resilience_table(rows: &[ResilienceRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, faults, reroutes, retransmits, nacks, bridge, outcome)| {
            vec![
                label.clone(),
                faults.to_string(),
                reroutes.to_string(),
                retransmits.to_string(),
                nacks.to_string(),
                bridge.to_string(),
                outcome.clone(),
            ]
        })
        .collect();
    format_table(
        &["config", "faults", "reroutes", "retransmits", "nacks", "bridge_retries", "outcome"],
        &table_rows,
    )
}

/// Render cycle-attribution breakdowns (one labeled [`CycleBreakdown`]
/// per row — typically one per PE plus an aggregate) as an aligned
/// table: total attributed cycles, then the percentage of each activity
/// category. Percentages are computed over the row's own total, so every
/// row sums to ~100 regardless of when its PE finished.
pub fn format_breakdown_table(rows: &[(String, CycleBreakdown)]) -> String {
    let mut headers: Vec<&str> = vec!["pe", "cycles"];
    headers.extend(PeActivity::ALL.iter().map(|a| a.name()));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, b)| {
            let mut row = vec![label.clone(), b.total().to_string()];
            row.extend(PeActivity::ALL.iter().map(|a| format!("{:.1}%", b.fraction(*a) * 100.0)));
            row
        })
        .collect();
    format_table(&headers, &table_rows)
}

/// Render the profiler's hottest-router table (`(node, total busy
/// link-cycles)` rows from `MetricsReport::hottest_routers`).
pub fn format_hot_routers_table(rows: &[(u16, u64)]) -> String {
    let table_rows: Vec<Vec<String>> =
        rows.iter().map(|(node, busy)| vec![node.to_string(), busy.to_string()]).collect();
    format_table(&["router", "busy_link_cycles"], &table_rows)
}

/// Render the profiler's hottest-bank table (`(bank, pressure)` rows
/// from `MetricsReport::hottest_banks`).
pub fn format_hot_banks_table(rows: &[(usize, u64)]) -> String {
    let table_rows: Vec<Vec<String>> =
        rows.iter().map(|(bank, p)| vec![bank.to_string(), p.to_string()]).collect();
    format_table(&["bank", "pressure"], &table_rows)
}

/// Render a per-router deflection top-N (`(node, deflections)` rows from
/// `TraceAnalysis::top_deflecting_routers`) — where hot-potato pressure
/// concentrates on the torus.
pub fn format_deflection_table(rows: &[(u16, u64)]) -> String {
    let table_rows: Vec<Vec<String>> =
        rows.iter().map(|(node, d)| vec![node.to_string(), d.to_string()]).collect();
    format_table(&["router", "deflections"], &table_rows)
}

/// Render the per-bank lock-contention table (`(bank, contended
/// acquires, contention cycles)` rows from
/// `TraceAnalysis::lock_contention_by_bank`).
pub fn format_lock_contention_table(rows: &[(u16, u64, u64)]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(bank, n, cycles)| vec![bank.to_string(), n.to_string(), cycles.to_string()])
        .collect();
    format_table(&["bank", "contended_acquires", "contention_cycles"], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["cores", "cycles"],
            &[vec!["2".into(), "123456".into()], vec!["15".into(), "99".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cores"));
        assert!(lines[2].trim_start().starts_with('2'));
        // Right-aligned numbers share the last column edge.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_panic() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_format_uses_unified_precision() {
        let s = format_series("fig6", &[(2.0, 100.0), (4.0, 50.0)]);
        assert!(s.starts_with("# fig6\n"));
        // Same .3 precision as the labeled renderer, not raw {x} {y}.
        assert!(s.contains("2.000 100.000\n"), "{s}");
        assert!(s.contains("4.000 50.000\n"));
    }

    #[test]
    fn latency_table_renders_missing_as_dash() {
        let rows: Vec<LatencyRow> = vec![
            ("4x4".into(), Some(3), Some(63), Some(187), Some(1.234_5)),
            ("ideal".into(), None, None, None, None),
        ];
        let t = format_latency_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("p50") && lines[0].contains("defl/flit"));
        assert!(lines[2].contains("187") && lines[2].contains("1.234"), "{t}");
        assert!(lines[3].contains('-'), "missing values render as dashes: {t}");
    }

    #[test]
    fn resilience_table_renders_counters_and_outcome() {
        let rows: Vec<ResilienceRow> = vec![
            ("4x4 corrupt=1000ppm".into(), 12, 0, 12, 12, 0, "ok".into()),
            ("8x8 dead-link".into(), 1, 345, 0, 0, 0, "ok".into()),
        ];
        let t = format_resilience_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("retransmits") && lines[0].contains("outcome"));
        assert!(lines[2].contains("12") && lines[2].contains("ok"), "{t}");
        assert!(lines[3].contains("345"), "{t}");
    }

    #[test]
    fn labeled_series_format() {
        let s = format_labeled_series("fig7", &[("2P_8k$".into(), 1.5, 2.0)]);
        assert!(s.contains("# 2P_8k$"));
        assert!(s.contains("1.500 2.000"));
    }

    #[test]
    fn breakdown_table_percentages_per_row() {
        let mut b = CycleBreakdown::default();
        b.record(PeActivity::Compute, 62);
        b.record(PeActivity::RecvWait, 38);
        let t = format_breakdown_table(&[("rank 0".into(), b)]);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].contains("compute") && lines[0].contains("recv-wait"), "{t}");
        assert!(
            lines[2].contains("100") && lines[2].contains("62.0%") && lines[2].contains("38.0%"),
            "{t}"
        );
    }

    #[test]
    fn hot_spot_tables_render() {
        let routers = format_hot_routers_table(&[(5, 120), (1, 80)]);
        assert!(routers.lines().nth(2).unwrap().contains("120"), "{routers}");
        let banks = format_hot_banks_table(&[(0, 44)]);
        assert!(banks.contains("pressure") && banks.contains("44"), "{banks}");
    }

    #[test]
    fn deflection_and_lock_tables_render() {
        let d = format_deflection_table(&[(5, 3), (1, 1)]);
        let lines: Vec<&str> = d.lines().collect();
        assert!(lines[0].contains("deflections"));
        assert!(lines[2].trim_start().starts_with('5'), "descending order preserved: {d}");
        let l = format_lock_contention_table(&[(0, 1, 22)]);
        assert!(l.contains("contention_cycles") && l.contains("22"), "{l}");
    }
}
