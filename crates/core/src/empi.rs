//! The embedded-MPI layer (§II-E).
//!
//! "For the message-passing model, we implemented a sub-set of MPI APIs
//! called embedded-MPI (eMPI). With just three basic primitives,
//! MPI_send(), MPI_receive() and MPI_barrier() for synchronization, a
//! direct communication between cores is possible totally avoiding in some
//! cases the access to the global-memory."
//!
//! # Framing
//!
//! The hardware delivers *logical packets* of at most 16 words, padded to
//! the burst-code granularity `{1, 2, 4, 16}` (the 2-bit burst-size field
//! of Fig. 5); eMPI adds a one-word frame header so arbitrary-length
//! messages survive padding and packet-completion reordering:
//!
//! ```text
//! header = (kind << 28) | (message_len_words << 8) | chunk_index
//! packet = [header, up to 15 data words]
//! ```
//!
//! # Flow control
//!
//! The TIE receiver reassembles at most two packets per source at a time
//! (the paper's double buffer, Fig. 2-b). Messages of up to two chunks are
//! therefore sent *eagerly*. Longer messages use a credit protocol that
//! keeps at most two data packets in flight: the receiver returns one
//! credit packet per two data chunks consumed, and the sender blocks on a
//! credit before every even-indexed chunk from the third onward. This is
//! our software reading of the request/data distinction the paper gives
//! the message-passing subtype field (§II-D).
//!
//! Consequence (as in unbuffered MPI): two ranks must not run
//! credit-window `send`s *to each other* concurrently — order the exchange
//! (even/odd phases) as the Jacobi workloads do. A protocol violation
//! panics with a diagnostic rather than deadlocking.

use crate::api::PeApi;
use crate::calib::CALL_OVERHEAD_CYCLES;
use medea_pe::kernel_if::{f64_to_words, words_to_f64};
use medea_sim::ids::Rank;

/// Data words per chunk (16-word packet minus the frame header).
pub const CHUNK_DATA_WORDS: usize = 15;

/// Chunks that may be in flight without credits (the TIE double buffer).
pub const EAGER_CHUNKS: usize = 2;

/// Maximum message length representable in the 20-bit frame length field.
pub const MAX_MESSAGE_WORDS: usize = (1 << 20) - 1;

const KIND_DATA: u32 = 0;
const KIND_CREDIT: u32 = 1;

fn header(kind: u32, len: usize, chunk: usize) -> u32 {
    debug_assert!(len <= MAX_MESSAGE_WORDS);
    debug_assert!(chunk <= 0xFF);
    (kind << 28) | ((len as u32) << 8) | chunk as u32
}

fn parse_header(word: u32) -> (u32, usize, usize) {
    (word >> 28, ((word >> 8) & 0xF_FFFF) as usize, (word & 0xFF) as usize)
}

/// MPI_send: transmit `words` to `to`, blocking until the last flit enters
/// the sender's arbiter (eager) or until the receiver has granted credits
/// for every chunk (windowed).
///
/// # Panics
///
/// Panics if the message exceeds [`MAX_MESSAGE_WORDS`], needs more than
/// 256 chunks, or if a non-credit packet arrives while awaiting a credit
/// (overlapping opposite-direction sends — order the exchange).
pub fn send(api: &PeApi, to: Rank, words: &[u32]) {
    api.compute(CALL_OVERHEAD_CYCLES);
    assert!(words.len() <= MAX_MESSAGE_WORDS, "message too long");
    if words.is_empty() {
        api.send_to_rank(to, &[header(KIND_DATA, 0, 0)]);
        return;
    }
    let chunks: Vec<&[u32]> = words.chunks(CHUNK_DATA_WORDS).collect();
    assert!(chunks.len() <= 256, "message needs more than 256 chunks");
    for (idx, chunk) in chunks.iter().enumerate() {
        if idx >= EAGER_CHUNKS && idx % EAGER_CHUNKS == 0 {
            let credit = api.recv_from_rank(to);
            let (kind, _, _) = parse_header(credit[0]);
            assert_eq!(
                kind, KIND_CREDIT,
                "expected a credit from {to} but got a data packet: overlapping \
                 opposite-direction sends — order the exchange (even/odd ranks)"
            );
        }
        let mut packet = Vec::with_capacity(1 + chunk.len());
        packet.push(header(KIND_DATA, words.len(), idx));
        packet.extend_from_slice(chunk);
        api.send_to_rank(to, &packet);
    }
}

/// MPI_receive: block until the complete message from `from` has arrived.
///
/// # Panics
///
/// Panics on interleaved messages from the same source (two `send`s to the
/// same destination without an intervening `recv` pairing).
pub fn recv(api: &PeApi, from: Rank) -> Vec<u32> {
    api.compute(CALL_OVERHEAD_CYCLES);
    let first = recv_data_packet(api, from);
    let (_, len, first_idx) = parse_header(first[0]);
    let total_chunks = if len == 0 { 1 } else { len.div_ceil(CHUNK_DATA_WORDS) };
    let mut data = vec![0u32; len];
    let mut received = vec![false; total_chunks];
    place_chunk(len, first_idx, &first, &mut data);
    received[first_idx] = true;
    let mut count = 1usize;
    grant_credit_if_due(api, from, count, total_chunks);
    while count < total_chunks {
        let packet = recv_data_packet(api, from);
        let (_, plen, idx) = parse_header(packet[0]);
        assert_eq!(plen, len, "interleaved eMPI messages from {from}");
        assert!(!received[idx], "duplicate chunk {idx} from {from}");
        place_chunk(len, idx, &packet, &mut data);
        received[idx] = true;
        count += 1;
        grant_credit_if_due(api, from, count, total_chunks);
    }
    data
}

fn recv_data_packet(api: &PeApi, from: Rank) -> Vec<u32> {
    let packet = api.recv_from_rank(from);
    let (kind, _, _) = parse_header(packet[0]);
    assert_eq!(kind, KIND_DATA, "unexpected credit packet from {from} while receiving");
    packet
}

fn place_chunk(len: usize, idx: usize, packet: &[u32], data: &mut [u32]) {
    if len == 0 {
        return;
    }
    let base = idx * CHUNK_DATA_WORDS;
    let n = (len - base).min(CHUNK_DATA_WORDS);
    data[base..base + n].copy_from_slice(&packet[1..1 + n]);
}

fn grant_credit_if_due(api: &PeApi, from: Rank, received: usize, total: usize) {
    if total > EAGER_CHUNKS && received.is_multiple_of(EAGER_CHUNKS) && received < total {
        api.send_to_rank(from, &[header(KIND_CREDIT, 0, 0)]);
    }
}

/// Send a slice of doubles (two words each).
pub fn send_f64(api: &PeApi, to: Rank, values: &[f64]) {
    let mut words = Vec::with_capacity(values.len() * 2);
    for v in values {
        let (lo, hi) = f64_to_words(*v);
        words.push(lo);
        words.push(hi);
    }
    send(api, to, &words);
}

/// Receive a slice of doubles.
///
/// # Panics
///
/// Panics if the incoming message has an odd word count.
pub fn recv_f64(api: &PeApi, from: Rank) -> Vec<f64> {
    let words = recv(api, from);
    assert_eq!(words.len() % 2, 0, "f64 message with odd word count");
    words.chunks_exact(2).map(|c| words_to_f64(c[0], c[1])).collect()
}

/// MPI_barrier: synchronization-token exchange over the NoC — the hybrid
/// model's key primitive, no shared memory touched.
///
/// Implementation: every rank sends a token to rank 0; rank 0 collects all
/// of them and broadcasts a release token.
pub fn barrier(api: &PeApi) {
    api.compute(CALL_OVERHEAD_CYCLES);
    let ranks = api.ranks();
    if ranks == 1 {
        return;
    }
    if api.rank().is_master() {
        for r in 1..ranks {
            let _ = recv(api, Rank::new(r as u8));
        }
        for r in 1..ranks {
            send(api, Rank::new(r as u8), &[]);
        }
    } else {
        send(api, Rank::new(0), &[]);
        let _ = recv(api, Rank::new(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        for (kind, len, chunk) in [
            (KIND_DATA, 0usize, 0usize),
            (KIND_DATA, 1, 0),
            (KIND_CREDIT, 0, 0),
            (KIND_DATA, 3825, 255),
        ] {
            let (k, l, c) = parse_header(header(kind, len, chunk));
            assert_eq!((k, l, c), (kind, len, chunk));
        }
    }

    #[test]
    fn chunk_math() {
        assert_eq!(CHUNK_DATA_WORDS, 15);
        // A 60-double Jacobi row = 120 words = 8 chunks.
        assert_eq!(120usize.div_ceil(CHUNK_DATA_WORDS), 8);
    }

    #[test]
    fn credit_schedule_balances() {
        // For every chunk count, the credits a receiver issues must equal
        // the credits the sender awaits.
        for total in 1..=40usize {
            let sender_waits =
                (0..total).filter(|idx| *idx >= EAGER_CHUNKS && idx % EAGER_CHUNKS == 0).count();
            let receiver_grants = (1..=total)
                .filter(|received| {
                    total > EAGER_CHUNKS && received % EAGER_CHUNKS == 0 && *received < total
                })
                .count();
            assert_eq!(sender_waits, receiver_grants, "imbalance at {total} chunks");
        }
    }
}
