//! The embedded-MPI layer (§II-E), as a first-class communicator.
//!
//! "For the message-passing model, we implemented a sub-set of MPI APIs
//! called embedded-MPI (eMPI). With just three basic primitives,
//! MPI_send(), MPI_receive() and MPI_barrier() for synchronization, a
//! direct communication between cores is possible totally avoiding in some
//! cases the access to the global-memory."
//!
//! The reproduction grows the paper's three primitives into a
//! communicator object, [`Empi`]: one per kernel, wrapping its [`PeApi`],
//! exposing point-to-point transfers ([`Empi::send`], [`Empi::recv`],
//! [`Empi::sendrecv`]) and the collective surface ([`Empi::barrier`],
//! [`Empi::bcast`], [`Empi::reduce`], [`Empi::allreduce`],
//! [`Empi::gather`], [`Empi::scatter`]) on top of them.
//!
//! # Framing
//!
//! The hardware delivers *logical packets* of at most 16 words, padded to
//! the burst-code granularity `{1, 2, 4, 16}` (the 2-bit burst-size field
//! of Fig. 5); eMPI adds a one-word frame header so arbitrary-length
//! messages survive padding and packet-completion reordering:
//!
//! ```text
//! header = (kind << 28) | (message_len_words << 8) | chunk_index
//! packet = [header, up to 15 data words]
//! ```
//!
//! The chunk index is an 8-bit field, so a message spans at most
//! [`MAX_CHUNKS`] = 256 chunks of [`CHUNK_DATA_WORDS`] = 15 words:
//! [`MAX_MESSAGE_WORDS`] = 3840 words is the real limit. (The 20-bit
//! length field could describe far longer messages; the chunk index is
//! the binding constraint, and the asserts below enforce it.)
//!
//! # Flow control
//!
//! The TIE receiver reassembles at most two *data* packets per source at
//! a time (the paper's double buffer, Fig. 2-b). Messages of up to two
//! chunks are therefore sent *eagerly*. Longer messages use a credit
//! protocol that keeps at most two data packets in flight: the receiver
//! returns one credit packet per two data chunks consumed, and the sender
//! blocks on a credit before every even-indexed chunk from the third
//! onward. Credits are single-flit packets and bypass the reassembly
//! buffers, so they can overtake in-flight data. This is our software
//! reading of the request/data distinction the paper gives the
//! message-passing subtype field (§II-D).
//!
//! Two ranks must therefore never run credit-window [`Empi::send`]s *to
//! each other* concurrently — the classic unbuffered-MPI exchange
//! deadlock. [`Empi::sendrecv`] makes that footgun unrepresentable: it
//! runs both directions through one progress engine that services
//! incoming data (granting credits) while its own send waits for credits,
//! so symmetric exchanges — halo swaps, recursive-doubling rounds — need
//! no even/odd phasing. A bare `send` that meets opposite-direction data
//! while awaiting a credit still panics with a diagnostic pointing at
//! `sendrecv`.
//!
//! # Collective algorithms
//!
//! Every collective dispatches on the communicator's [`CollectiveAlgo`],
//! selected via `SystemConfigBuilder::collective_algo` (default
//! [`CollectiveAlgo::Linear`], which reproduces the seed's rank-0-centred
//! message patterns — the paper-4×4 golden fingerprints are pinned to
//! it):
//!
//! | collective  | `Linear`            | `BinomialTree`     | `RecursiveDoubling`   |
//! |-------------|---------------------|--------------------|-----------------------|
//! | `barrier`   | all→0, 0→all        | tree up + down     | pairwise log₂ rounds  |
//! | `bcast`     | root→each           | binomial tree      | binomial tree         |
//! | `reduce`    | each→root, in order | binomial tree      | doubling (all ranks)  |
//! | `allreduce` | reduce + bcast      | reduce + bcast     | pairwise log₂ rounds  |
//! | `gather`    | each→root, in order | each→root          | each→root             |
//! | `scatter`   | root→each, in order | root→each          | root→each             |
//!
//! `gather`/`scatter` move distinct per-rank payloads, so a tree cannot
//! reduce their total data volume; they stay linear under every
//! algorithm. `RecursiveDoubling` is inherently an all-ranks algorithm:
//! its `reduce` runs the doubling exchange and simply discards the result
//! everywhere but the root, and its rooted `bcast` falls back to the
//! binomial tree. The linear barrier costs O(ranks) serialized messages
//! through rank 0; both tree algorithms cost O(log ranks) rounds — the
//! difference the `scaling_json` collectives microbench records at up to
//! 255 ranks.
//!
//! # Resilient delivery (beyond the paper)
//!
//! When the system is built with `ResilienceConfig::empi_retransmit`,
//! every point-to-point path switches to an end-to-end ARQ engine that
//! survives in-flight payload corruption (`medea-fault` flit faults):
//!
//! - The header gains a 2-bit kind (adding `NACK` and `ACK`) and an
//!   alternating-bit **serial** (bit 30) that pairs every control packet
//!   with the message generation it refers to, so a stale retransmit can
//!   never corrupt the next message between the same pair of ranks.
//! - Packets whose flit checksum failed arrive with `corrupt = true`
//!   (`Packet::corrupt`); the receiver discards them and NACKs its
//!   lowest missing chunk. Receivers also NACK on a timeout with bounded
//!   exponential backoff, which doubles as the lost-credit recovery: a
//!   NACK *pulls* the sender's window forward (`next = max(next, c+1)`)
//!   even when the credit it replaces was corrupted.
//! - The sender keeps the last message per destination and blocks (by
//!   polling) for an `ACK` after the final chunk, re-poking the last
//!   chunk on timeout; receivers re-`ACK` stale-serial data so a
//!   corrupted `ACK` is always recoverable. After
//!   `empi_max_attempts` unanswered pokes the sender proceeds
//!   optimistically — the engine watchdog is the backstop for the
//!   (astronomically unlikely) case that this was wrong.
//!
//! The fault-free wire traffic of a resilient run differs from the
//! default protocol (ACK round-trips, polling instead of blocking), so
//! resilience is a deliberate system-level knob, never implied by fault
//! injection; with it off, every path below is byte-identical to the
//! pinned golden behavior.

use crate::api::PeApi;
use crate::calib::CALL_OVERHEAD_CYCLES;
use medea_pe::kernel_if::{f64_to_words, words_to_f64};
use medea_sim::ids::Rank;
use medea_trace::KernelOp;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// Data words per chunk (16-word packet minus the frame header).
pub const CHUNK_DATA_WORDS: usize = 15;

/// Chunks that may be in flight without credits (the TIE double buffer).
pub const EAGER_CHUNKS: usize = 2;

/// Maximum chunks per message (the 8-bit chunk-index field).
pub const MAX_CHUNKS: usize = 256;

/// Maximum message length in words. Bounded by the chunk-index field
/// (256 chunks × 15 words), *not* by the roomier 20-bit length field.
pub const MAX_MESSAGE_WORDS: usize = MAX_CHUNKS * CHUNK_DATA_WORDS;

const KIND_DATA: u32 = 0;
const KIND_CREDIT: u32 = 1;
/// Resilient-mode retransmission request (header-only packet; the chunk
/// field names the lowest missing chunk).
const KIND_NACK: u32 = 2;
/// Resilient-mode end-to-end delivery confirmation (header-only packet).
const KIND_ACK: u32 = 3;

fn header(kind: u32, len: usize, chunk: usize) -> u32 {
    debug_assert!(len <= MAX_MESSAGE_WORDS);
    debug_assert!(chunk < MAX_CHUNKS);
    (kind << 28) | ((len as u32) << 8) | chunk as u32
}

/// Resilient-mode header: `header` plus the alternating-bit serial in
/// bit 30. The default protocol only ever emits serial 0, so its wire
/// format is unchanged.
fn header_r(kind: u32, serial: u32, len: usize, chunk: usize) -> u32 {
    debug_assert!(serial <= 1);
    header(kind, len, chunk) | (serial << 30)
}

fn parse_header(word: u32) -> (u32, usize, usize) {
    ((word >> 28) & 0x3, ((word >> 8) & 0xF_FFFF) as usize, (word & 0xFF) as usize)
}

/// One classified incoming packet of the resilient protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Intake {
    /// Checksum failure — the header itself is untrustworthy.
    Corrupt,
    /// Clean data chunk carrying this serial.
    Data(u32),
    /// Flow-control credit for the send with this serial.
    Credit(u32),
    /// Retransmission request: (serial, missing chunk).
    Nack(u32, usize),
    /// End-to-end confirmation of the send with this serial.
    Ack(u32),
}

fn classify(packet: &[u32], corrupt: bool) -> Intake {
    if corrupt {
        return Intake::Corrupt;
    }
    let (kind, _, chunk) = parse_header(packet[0]);
    let serial = (packet[0] >> 30) & 1;
    match kind {
        KIND_DATA => Intake::Data(serial),
        KIND_CREDIT => Intake::Credit(serial),
        KIND_NACK => Intake::Nack(serial, chunk),
        KIND_ACK => Intake::Ack(serial),
        _ => unreachable!("kind is a 2-bit field"),
    }
}

fn chunks_of(words: &[u32]) -> usize {
    if words.is_empty() {
        1
    } else {
        words.len().div_ceil(CHUNK_DATA_WORDS)
    }
}

/// The retransmission cache: the last message sent to one destination.
#[derive(Debug)]
struct SentMsg {
    serial: u32,
    words: Vec<u32>,
}

/// Which algorithm the communicator's collectives run (see the module
/// docs for the per-collective table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectiveAlgo {
    /// Rank-0-centred linear patterns — the seed behavior, O(ranks)
    /// serialized messages. The default, so the paper-4×4 golden
    /// fingerprints stay a deliberate choice.
    #[default]
    Linear,
    /// Binomial trees rooted at the collective's root — O(log ranks)
    /// rounds for barrier/bcast/reduce.
    BinomialTree,
    /// Recursive doubling — O(log ranks) pairwise exchange rounds for
    /// barrier/allreduce; rooted collectives fall back to the tree.
    RecursiveDoubling,
}

impl fmt::Display for CollectiveAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveAlgo::Linear => write!(f, "linear"),
            CollectiveAlgo::BinomialTree => write!(f, "binomial-tree"),
            CollectiveAlgo::RecursiveDoubling => write!(f, "recursive-doubling"),
        }
    }
}

impl CollectiveAlgo {
    /// All selectable algorithms, for sweeps and benches.
    pub const ALL: [CollectiveAlgo; 3] =
        [CollectiveAlgo::Linear, CollectiveAlgo::BinomialTree, CollectiveAlgo::RecursiveDoubling];
}

/// The eMPI communicator: one per kernel, owning its [`PeApi`].
///
/// Derefs to [`PeApi`], so kernels keep direct access to loads/stores,
/// coherence operations and raw TIE messaging through the communicator.
/// The send path stages every outgoing packet in one reusable buffer per
/// communicator — steady-state point-to-point traffic allocates nothing
/// beyond the received message itself.
#[derive(Debug)]
pub struct Empi {
    api: PeApi,
    algo: CollectiveAlgo,
    /// Reusable staging buffer for one outgoing packet (≤ 16 words).
    packet: RefCell<Vec<u32>>,
    /// Reusable staging buffer for f64 → word conversion on the send side.
    staging: RefCell<Vec<u32>>,
    /// Resilient-delivery knobs (`ResilienceConfig` on the system). All
    /// three maps below stay empty when retransmission is off.
    resilience: crate::config::ResilienceConfig,
    /// Last message per destination, kept for NACK-driven retransmission
    /// until overwritten by the next send to the same rank.
    sent_cache: RefCell<HashMap<u8, SentMsg>>,
    /// Alternating-bit serial of the *latest* message sent per
    /// destination.
    send_serials: RefCell<HashMap<u8, u32>>,
    /// Alternating-bit serial of the *last completed* message received
    /// per source (the next expected serial is its complement).
    recv_serials: RefCell<HashMap<u8, u32>>,
}

impl std::ops::Deref for Empi {
    type Target = PeApi;

    fn deref(&self) -> &PeApi {
        &self.api
    }
}

impl Empi {
    /// Wrap a kernel's [`PeApi`], adopting the algorithm configured on the
    /// system (`SystemConfigBuilder::collective_algo`).
    pub fn new(api: PeApi) -> Self {
        let algo = api.collective_algo();
        Empi::with_algo(api, algo)
    }

    /// Wrap a kernel's [`PeApi`] with an explicit algorithm override.
    pub fn with_algo(api: PeApi, algo: CollectiveAlgo) -> Self {
        let resilience = api.resilience();
        Empi {
            api,
            algo,
            packet: RefCell::new(Vec::with_capacity(1 + CHUNK_DATA_WORDS)),
            staging: RefCell::new(Vec::with_capacity(64)),
            resilience,
            sent_cache: RefCell::new(HashMap::new()),
            send_serials: RefCell::new(HashMap::new()),
            recv_serials: RefCell::new(HashMap::new()),
        }
    }

    /// Whether the end-to-end retransmission protocol is active.
    const fn resilient(&self) -> bool {
        self.resilience.empi_retransmit
    }

    /// The algorithm this communicator's collectives run.
    pub const fn algo(&self) -> CollectiveAlgo {
        self.algo
    }

    /// The wrapped [`PeApi`].
    pub const fn api(&self) -> &PeApi {
        &self.api
    }

    /// Delimit `f` with kernel-level trace span markers for `op` — a
    /// no-op (and zero simulated cycles regardless) unless the system
    /// traces the `KERNEL` event class.
    fn span<R>(&self, op: KernelOp, f: impl FnOnce(&Self) -> R) -> R {
        self.api.trace_span_begin(op);
        let result = f(self);
        self.api.trace_span_end(op);
        result
    }

    // ---- point to point ----

    /// MPI_send: transmit `words` to `to`, blocking until the last flit
    /// enters the sender's arbiter (eager) or until the receiver has
    /// granted credits for every chunk (windowed).
    ///
    /// # Panics
    ///
    /// Panics if the message exceeds [`MAX_MESSAGE_WORDS`], or if a data
    /// packet arrives while awaiting a credit (opposite-direction sends —
    /// use [`Empi::sendrecv`] for symmetric exchanges).
    pub fn send(&self, to: Rank, words: &[u32]) {
        self.span(KernelOp::MsgSend, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.resilient() {
                s.resilient_engine(Some(to), words, None);
            } else {
                s.send_inner(to, words);
            }
        });
    }

    fn send_inner(&self, to: Rank, words: &[u32]) {
        assert!(
            words.len() <= MAX_MESSAGE_WORDS,
            "message of {} words exceeds the {MAX_MESSAGE_WORDS}-word eMPI limit \
             ({MAX_CHUNKS} chunks of {CHUNK_DATA_WORDS} words)",
            words.len()
        );
        if words.is_empty() {
            self.api.send_to_rank(to, &[header(KIND_DATA, 0, 0)]);
            return;
        }
        let total = words.len().div_ceil(CHUNK_DATA_WORDS);
        for idx in 0..total {
            if idx >= EAGER_CHUNKS && idx % EAGER_CHUNKS == 0 {
                let credit = self.api.recv_from_rank(to);
                let (kind, _, _) = parse_header(credit[0]);
                assert_eq!(
                    kind, KIND_CREDIT,
                    "expected a credit from {to} but got a data packet: overlapping \
                     opposite-direction sends — use Empi::sendrecv for the exchange"
                );
            }
            self.send_chunk(to, words, idx);
        }
    }

    /// Stage and transmit chunk `idx` of `words` via the reusable packet
    /// buffer.
    fn send_chunk(&self, to: Rank, words: &[u32], idx: usize) {
        let mut packet = self.packet.borrow_mut();
        packet.clear();
        packet.push(header(KIND_DATA, words.len(), idx));
        if !words.is_empty() {
            let base = idx * CHUNK_DATA_WORDS;
            let end = (base + CHUNK_DATA_WORDS).min(words.len());
            packet.extend_from_slice(&words[base..end]);
        }
        self.api.send_to_rank(to, &packet);
    }

    /// MPI_receive: block until the complete message from `from` has
    /// arrived.
    ///
    /// # Panics
    ///
    /// Panics on interleaved messages from the same source (two `send`s to
    /// the same destination without an intervening `recv` pairing) and on
    /// unexpected credit packets.
    pub fn recv(&self, from: Rank) -> Vec<u32> {
        self.span(KernelOp::MsgRecv, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.resilient() {
                s.resilient_engine(None, &[], Some(from)).expect("recv direction present")
            } else {
                s.recv_inner(from)
            }
        })
    }

    fn recv_inner(&self, from: Rank) -> Vec<u32> {
        let mut rx = RxState::new();
        while !rx.done() {
            let packet = self.api.recv_from_rank(from);
            let (kind, _, _) = parse_header(packet[0]);
            assert_eq!(kind, KIND_DATA, "unexpected credit packet from {from} while receiving");
            rx.accept(&self.api, from, &packet);
        }
        rx.data
    }

    /// MPI_sendrecv: send `words` to `to` while receiving one message from
    /// `from`, through a single full-duplex progress engine. `None` on
    /// either side skips that direction (MPI_PROC_NULL), so boundary ranks
    /// of a halo exchange need no special-casing. Returns the received
    /// message when `from` is present.
    ///
    /// Unlike back-to-back `send`/`recv`, the engine services incoming
    /// data — granting flow-control credits — while its own send is
    /// blocked on a credit, so two ranks may exchange windowed messages
    /// *with each other* concurrently, and chains/rings of exchanges
    /// pipeline instead of serializing.
    pub fn sendrecv(
        &self,
        to: Option<Rank>,
        words: &[u32],
        from: Option<Rank>,
    ) -> Option<Vec<u32>> {
        self.span(KernelOp::Sendrecv, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.resilient() {
                return s.resilient_engine(to, words, from);
            }
            match (to, from) {
                (None, None) => None,
                (Some(to), None) => {
                    s.send_inner(to, words);
                    None
                }
                (None, Some(from)) => Some(s.recv_inner(from)),
                (Some(to), Some(from)) => Some(s.duplex(to, words, from)),
            }
        })
    }

    /// The full-duplex engine behind [`Empi::sendrecv`]: one transmit
    /// state machine (chunk cursor + credit allowance) and one receive
    /// state machine, advanced until both complete.
    fn duplex(&self, to: Rank, words: &[u32], from: Rank) -> Vec<u32> {
        assert!(
            words.len() <= MAX_MESSAGE_WORDS,
            "message of {} words exceeds the {MAX_MESSAGE_WORDS}-word eMPI limit",
            words.len()
        );
        let total_tx = if words.is_empty() { 1 } else { words.len().div_ceil(CHUNK_DATA_WORDS) };
        let mut next = 0usize; // next chunk to transmit
        let mut allowance = EAGER_CHUNKS; // chunks the credit window permits
        let mut rx = RxState::new();
        loop {
            let tx_done = next >= total_tx;
            if tx_done && rx.done() {
                break;
            }
            if !tx_done && next < allowance {
                self.send_chunk(to, words, next);
                next += 1;
                continue;
            }
            // Transmit is blocked on a credit and/or the receive is still
            // incomplete: service whatever arrives next.
            let take_credit = |allowance: &mut usize, credit: &[u32]| {
                assert_eq!(
                    parse_header(credit[0]).0,
                    KIND_CREDIT,
                    "expected a credit from {to} but got a data packet: a third party is \
                     sending into this exchange"
                );
                *allowance += EAGER_CHUNKS;
            };
            let take_data = |rx: &mut RxState, packet: &[u32]| {
                assert_eq!(
                    parse_header(packet[0]).0,
                    KIND_DATA,
                    "unexpected credit packet from {from} while receiving"
                );
                rx.accept(&self.api, from, packet);
            };
            if to == from {
                let packet = self.api.recv_from_rank(from);
                if parse_header(packet[0]).0 == KIND_CREDIT {
                    assert!(!tx_done, "credit from {from} after the last chunk was sent");
                    allowance += EAGER_CHUNKS;
                } else {
                    rx.accept(&self.api, from, &packet);
                }
            } else if tx_done {
                // Only the receive side is pending.
                let packet = self.api.recv_from_rank(from);
                take_data(&mut rx, &packet);
            } else if rx.done() {
                // Only the credit wait is pending.
                let credit = self.api.recv_from_rank(to);
                take_credit(&mut allowance, &credit);
            } else {
                // Both directions pending against *different* peers: poll
                // each so neither side of the exchange can starve the
                // other (a chain of sendrecvs pipelines instead of
                // cascading serially). TryRecv charges at least one cycle,
                // so the simulation always advances.
                if let Some(credit) = self.api.try_recv_from_rank(to) {
                    take_credit(&mut allowance, &credit);
                } else if let Some(packet) = self.api.try_recv_from_rank(from) {
                    take_data(&mut rx, &packet);
                }
            }
        }
        rx.data
    }

    // ---- resilient delivery (ARQ engine) ----

    /// The resilient counterpart of `send_inner`/`recv_inner`/`duplex`,
    /// unified: transmit `words` to `to` (if present) while receiving one
    /// message from `from` (if present), tolerating corrupt packets via
    /// NACK-driven retransmission and confirming delivery end-to-end (see
    /// the module's *Resilient delivery* section for the protocol).
    ///
    /// Every wait polls (`TryRecv` costs at least one cycle, so the
    /// simulation always advances); timeouts back off exponentially,
    /// capped at 16× `empi_timeout`.
    fn resilient_engine(
        &self,
        to: Option<Rank>,
        words: &[u32],
        from: Option<Rank>,
    ) -> Option<Vec<u32>> {
        let cfg = self.resilience;
        let (tx_serial, total_tx) = match to {
            Some(to) => {
                assert!(
                    words.len() <= MAX_MESSAGE_WORDS,
                    "message of {} words exceeds the {MAX_MESSAGE_WORDS}-word eMPI limit",
                    words.len()
                );
                let serial = self.next_send_serial(to);
                self.sent_cache
                    .borrow_mut()
                    .insert(to.index() as u8, SentMsg { serial, words: words.to_vec() });
                (serial, chunks_of(words))
            }
            None => (0, 0),
        };
        let rx_serial = from.map_or(0, |f| self.expected_recv_serial(f));
        let mut next = 0usize; // next chunk to transmit
        let mut allowance = EAGER_CHUNKS; // chunks the credit window permits
        let mut tx_acked = to.is_none();
        let mut rx = RxState::new();
        let mut retransmits = 0u32;
        let mut nacks = 0u32;
        let mut attempt = 0u32;
        let mut deadline = self.api.now() + cfg.empi_timeout;
        loop {
            let rx_done = from.is_none() || rx.done();
            if tx_acked && rx_done {
                break;
            }
            if next < total_tx && next < allowance {
                let to = to.expect("transmitting implies a destination");
                self.send_chunk_r(to, tx_serial, words, next);
                next += 1;
                continue;
            }
            // Poll the peers this exchange involves (one poll per
            // iteration keeps the two directions fair).
            let intake = match (to, from) {
                (Some(t), Some(f)) if t != f => self
                    .api
                    .try_recv_from_rank_flagged(t)
                    .map(|(w, c)| (t, w, c))
                    .or_else(|| self.api.try_recv_from_rank_flagged(f).map(|(w, c)| (f, w, c))),
                (Some(p), _) | (None, Some(p)) => {
                    self.api.try_recv_from_rank_flagged(p).map(|(w, c)| (p, w, c))
                }
                (None, None) => unreachable!(),
            };
            if let Some((peer, pkt, corrupt)) = intake {
                match classify(&pkt, corrupt) {
                    Intake::Corrupt => {
                        // The header is untrustworthy; if our receive is
                        // incomplete this may have been a data chunk —
                        // request the lowest missing one immediately.
                        if from == Some(peer) && !rx.done() {
                            self.send_nack(peer, rx_serial, rx.lowest_missing());
                            nacks += 1;
                        }
                        // A corrupted credit/ACK recovers via our timeout
                        // poke or the peer's timeout NACK.
                    }
                    Intake::Data(s) if from == Some(peer) && s == rx_serial => {
                        rx.accept_r(&self.api, peer, &pkt, rx_serial);
                        if rx.done() {
                            self.send_ack(peer, rx_serial);
                            self.commit_recv_serial(peer);
                        }
                    }
                    Intake::Data(s) => {
                        if s == self.expected_recv_serial(peer) {
                            // Fresh data from the tx peer, pipelined ahead
                            // of our matching receive: the peer completed
                            // its side of this exchange and moved on to
                            // its next send to us. Drop it — the message
                            // stays in the peer's retransmission cache,
                            // and our matching receive will NACK-pull the
                            // chunks when it starts.
                        } else {
                            // Stale retransmit (poke) of a message we
                            // already completed: the peer missed our ACK —
                            // re-confirm.
                            self.send_ack(peer, s);
                        }
                    }
                    Intake::Credit(s) => {
                        if to == Some(peer) && s == tx_serial {
                            allowance += EAGER_CHUNKS;
                        }
                        // Stale credits (pre-corruption echoes) are inert.
                    }
                    Intake::Nack(s, c) => {
                        if to == Some(peer) && s == tx_serial {
                            // The peer is missing chunk `c` of the live
                            // transmit. A NACK also *pulls* the window:
                            // it substitutes for any credit lost to
                            // corruption, so the transfer degrades to
                            // NACK-paced lockstep instead of stalling.
                            if c < total_tx {
                                self.send_chunk_r(peer, tx_serial, words, c);
                                if c < next {
                                    retransmits += 1;
                                }
                            }
                            next = next.max(c + 1);
                            allowance = allowance.max(next);
                        } else {
                            // About an earlier, completed send to `peer`:
                            // serve it from the retransmission cache.
                            retransmits += self.service_cached_nack(peer, s, c);
                        }
                    }
                    Intake::Ack(s) => {
                        if to == Some(peer) && s == tx_serial {
                            tx_acked = true;
                        }
                        // Stale ACKs (re-confirmations we no longer need)
                        // are inert.
                    }
                }
                attempt = 0;
                deadline = self.api.now() + cfg.empi_timeout;
            } else if self.api.now() >= deadline {
                attempt += 1;
                if !rx_done {
                    let from = from.expect("rx pending implies a source");
                    self.send_nack(from, rx_serial, rx.lowest_missing());
                    nacks += 1;
                }
                if next >= total_tx && !tx_acked {
                    if attempt > cfg.empi_max_attempts {
                        // Optimistic proceed: every poke went unanswered.
                        // Losing this race requires `empi_max_attempts`
                        // consecutive corrupted control packets; the run
                        // watchdog backstops the residual risk.
                        tx_acked = true;
                    } else {
                        // Poke: resend the final chunk. A receiver that
                        // completed re-ACKs it; one still missing data
                        // NACKs what it needs.
                        let to = to.expect("tx pending implies a destination");
                        self.send_chunk_r(to, tx_serial, words, total_tx - 1);
                        retransmits += 1;
                    }
                }
                deadline = self.api.now() + (cfg.empi_timeout << attempt.min(4));
            }
        }
        if retransmits > 0 || nacks > 0 {
            self.api.fault_note(retransmits, nacks);
        }
        from.map(|_| rx.data)
    }

    /// `send_chunk` with the resilient header (serial bit).
    fn send_chunk_r(&self, to: Rank, serial: u32, words: &[u32], idx: usize) {
        let mut packet = self.packet.borrow_mut();
        packet.clear();
        packet.push(header_r(KIND_DATA, serial, words.len(), idx));
        if !words.is_empty() {
            let base = idx * CHUNK_DATA_WORDS;
            let end = (base + CHUNK_DATA_WORDS).min(words.len());
            packet.extend_from_slice(&words[base..end]);
        }
        self.api.send_to_rank(to, &packet);
    }

    fn send_nack(&self, peer: Rank, serial: u32, chunk: usize) {
        self.api.send_to_rank(peer, &[header_r(KIND_NACK, serial, 0, chunk)]);
    }

    fn send_ack(&self, peer: Rank, serial: u32) {
        self.api.send_to_rank(peer, &[header_r(KIND_ACK, serial, 0, 0)]);
    }

    /// Flip and return the serial for a new message to `to`.
    fn next_send_serial(&self, to: Rank) -> u32 {
        let mut serials = self.send_serials.borrow_mut();
        let s = serials.entry(to.index() as u8).or_insert(0);
        *s ^= 1;
        *s
    }

    /// The serial the next message from `from` will carry.
    fn expected_recv_serial(&self, from: Rank) -> u32 {
        self.recv_serials.borrow().get(&(from.index() as u8)).copied().unwrap_or(0) ^ 1
    }

    /// Record that the expected message from `from` completed.
    fn commit_recv_serial(&self, from: Rank) {
        let mut serials = self.recv_serials.borrow_mut();
        let s = serials.entry(from.index() as u8).or_insert(0);
        *s ^= 1;
    }

    /// Serve a NACK that refers to an already-completed send to `peer`
    /// from the retransmission cache. Returns the number of chunks
    /// retransmitted (0 when the cache has moved past that serial — the
    /// watchdog backstops that pathological interleaving).
    fn service_cached_nack(&self, peer: Rank, serial: u32, chunk: usize) -> u32 {
        let cache = self.sent_cache.borrow();
        if let Some(msg) = cache.get(&(peer.index() as u8)) {
            if msg.serial == serial && chunk < chunks_of(&msg.words) {
                self.send_chunk_r(peer, serial, &msg.words, chunk);
                return 1;
            }
        }
        0
    }

    // ---- f64 convenience ----

    /// Send a slice of doubles (two words each).
    pub fn send_f64(&self, to: Rank, values: &[f64]) {
        let stage = self.stage_f64(values);
        self.span(KernelOp::MsgSend, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.resilient() {
                s.resilient_engine(Some(to), &stage, None);
            } else {
                s.send_inner(to, &stage);
            }
        });
    }

    /// Receive a slice of doubles.
    ///
    /// # Panics
    ///
    /// Panics if the incoming message has an odd word count.
    pub fn recv_f64(&self, from: Rank) -> Vec<f64> {
        let words = self.recv(from);
        words_to_f64_vec(&words)
    }

    /// [`Empi::sendrecv`] over doubles.
    pub fn sendrecv_f64(
        &self,
        to: Option<Rank>,
        values: &[f64],
        from: Option<Rank>,
    ) -> Option<Vec<f64>> {
        let stage = self.stage_f64(values);
        self.sendrecv(to, &stage, from).map(|words| words_to_f64_vec(&words))
    }

    /// Copy `values` into the reusable word-staging buffer and hand back a
    /// shared borrow of it — the send paths only need `&[u32]`, and the
    /// packet buffer is a separate cell, so nothing re-enters this one
    /// while the borrow is live.
    fn stage_f64(&self, values: &[f64]) -> std::cell::Ref<'_, Vec<u32>> {
        let mut stage = self.staging.borrow_mut();
        stage.clear();
        for v in values {
            let (lo, hi) = f64_to_words(*v);
            stage.push(lo);
            stage.push(hi);
        }
        drop(stage);
        self.staging.borrow()
    }

    // ---- collectives ----

    /// MPI_barrier: synchronization-token exchange over the NoC — the
    /// hybrid model's key primitive, no shared memory touched.
    pub fn barrier(&self) {
        self.span(KernelOp::Barrier, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            let ranks = s.api.ranks();
            if ranks == 1 {
                return;
            }
            match s.algo {
                CollectiveAlgo::Linear => s.linear_barrier(),
                CollectiveAlgo::BinomialTree => {
                    s.binomial_reduce_tokens();
                    let _ = s.binomial_bcast(Rank::new(0), &[]);
                }
                CollectiveAlgo::RecursiveDoubling => s.doubling_barrier(),
            }
        });
    }

    /// Broadcast `words` from `root` to every rank; every rank returns the
    /// message. Non-root callers' `words` are ignored (pass `&[]`).
    pub fn bcast(&self, root: Rank, words: &[u32]) -> Vec<u32> {
        self.span(KernelOp::Bcast, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.api.ranks() == 1 {
                return words.to_vec();
            }
            match s.algo {
                CollectiveAlgo::Linear => s.linear_bcast(root, words),
                CollectiveAlgo::BinomialTree | CollectiveAlgo::RecursiveDoubling => {
                    s.binomial_bcast(root, words)
                }
            }
        })
    }

    /// Broadcast doubles from `root`.
    pub fn bcast_f64(&self, root: Rank, values: &[f64]) -> Vec<f64> {
        let stage = self.stage_f64(values);
        let words = self.bcast(root, &stage);
        drop(stage);
        words_to_f64_vec(&words)
    }

    /// Sum-reduce one double per rank to `root` (FP adds are charged on
    /// the combining PEs). Returns `Some(sum)` at the root, `None`
    /// elsewhere. The accumulation order is fixed per algorithm, so the
    /// result is bit-deterministic run over run.
    pub fn reduce(&self, root: Rank, value: f64) -> Option<f64> {
        self.span(KernelOp::Reduce, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.api.ranks() == 1 {
                return (s.api.rank() == root).then_some(value);
            }
            match s.algo {
                CollectiveAlgo::Linear => s.linear_reduce(root, value),
                CollectiveAlgo::BinomialTree => s.binomial_reduce(root, value),
                CollectiveAlgo::RecursiveDoubling => {
                    let sum = s.doubling_allreduce(value);
                    (s.api.rank() == root).then_some(sum)
                }
            }
        })
    }

    /// Sum-reduce one double per rank; every rank returns the sum.
    pub fn allreduce(&self, value: f64) -> f64 {
        self.span(KernelOp::Allreduce, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            if s.api.ranks() == 1 {
                return value;
            }
            let root = Rank::new(0);
            match s.algo {
                CollectiveAlgo::Linear => {
                    let sum = s.linear_reduce(root, value);
                    s.linear_bcast_f64_scalar(root, sum)
                }
                CollectiveAlgo::BinomialTree => {
                    let sum = s.binomial_reduce(root, value);
                    match sum {
                        Some(total) => {
                            s.binomial_bcast(root, &s.stage_f64(&[total]));
                            total
                        }
                        None => {
                            let words = s.binomial_bcast(root, &[]);
                            words_to_f64_vec(&words)[0]
                        }
                    }
                }
                CollectiveAlgo::RecursiveDoubling => s.doubling_allreduce(value),
            }
        })
    }

    /// Gather each rank's `words` to `root` (rank-indexed). Returns
    /// `Some(messages)` at the root, `None` elsewhere. Linear under every
    /// algorithm — each rank contributes distinct data, so a tree cannot
    /// reduce the volume through the root's ejection port.
    pub fn gather(&self, root: Rank, words: &[u32]) -> Option<Vec<Vec<u32>>> {
        self.span(KernelOp::Gather, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            let ranks = s.api.ranks();
            if s.api.rank() == root {
                let mut out: Vec<Vec<u32>> = vec![Vec::new(); ranks];
                out[root.index()] = words.to_vec();
                for src in (0..ranks).map(|r| Rank::new(r as u8)).filter(|r| *r != root) {
                    out[src.index()] = s.recv(src);
                }
                Some(out)
            } else {
                s.send(root, words);
                None
            }
        })
    }

    /// Scatter `chunks[rank]` from `root` to each rank; every rank returns
    /// its chunk. Non-root callers' `chunks` are ignored (pass `&[]`).
    /// Linear under every algorithm (see [`Empi::gather`]).
    ///
    /// # Panics
    ///
    /// Panics at the root if `chunks.len()` differs from the rank count.
    pub fn scatter(&self, root: Rank, chunks: &[Vec<u32>]) -> Vec<u32> {
        self.span(KernelOp::Scatter, |s| {
            s.api.compute(CALL_OVERHEAD_CYCLES);
            let ranks = s.api.ranks();
            if s.api.rank() == root {
                assert_eq!(chunks.len(), ranks, "scatter needs one chunk per rank");
                for dst in (0..ranks).map(|r| Rank::new(r as u8)).filter(|r| *r != root) {
                    s.send(dst, &chunks[dst.index()]);
                }
                chunks[root.index()].clone()
            } else {
                s.recv(root)
            }
        })
    }

    // ---- linear algorithms (the seed's message patterns) ----

    fn linear_barrier(&self) {
        let ranks = self.api.ranks();
        if self.api.rank().is_master() {
            for r in 1..ranks {
                let _ = self.recv(Rank::new(r as u8));
            }
            for r in 1..ranks {
                self.send(Rank::new(r as u8), &[]);
            }
        } else {
            self.send(Rank::new(0), &[]);
            let _ = self.recv(Rank::new(0));
        }
    }

    fn linear_bcast(&self, root: Rank, words: &[u32]) -> Vec<u32> {
        if self.api.rank() == root {
            for dst in (0..self.api.ranks()).map(|r| Rank::new(r as u8)).filter(|r| *r != root) {
                self.send(dst, words);
            }
            words.to_vec()
        } else {
            self.recv(root)
        }
    }

    fn linear_reduce(&self, root: Rank, value: f64) -> Option<f64> {
        if self.api.rank() == root {
            let mut acc = value;
            for src in (0..self.api.ranks()).map(|r| Rank::new(r as u8)).filter(|r| *r != root) {
                let v = self.recv_f64(src);
                acc = self.api.fadd(acc, v[0]);
            }
            Some(acc)
        } else {
            self.send_f64(root, &[value]);
            None
        }
    }

    /// The broadcast half of the linear allreduce, kept message-for-
    /// message identical to the seed's hand-rolled gather + broadcast.
    fn linear_bcast_f64_scalar(&self, root: Rank, sum: Option<f64>) -> f64 {
        if self.api.rank() == root {
            let s = sum.expect("root holds the reduction");
            for dst in (0..self.api.ranks()).map(|r| Rank::new(r as u8)).filter(|r| *r != root) {
                self.send_f64(dst, &[s]);
            }
            s
        } else {
            self.recv_f64(root)[0]
        }
    }

    // ---- binomial-tree algorithms ----

    /// This rank's position relative to `root` (the tree is rooted at the
    /// collective's root by rank rotation).
    fn relative_rank(&self, root: Rank) -> usize {
        let ranks = self.api.ranks();
        (self.api.rank().index() + ranks - root.index()) % ranks
    }

    fn absolute_rank(&self, root: Rank, relative: usize) -> Rank {
        Rank::new(((relative + root.index()) % self.api.ranks()) as u8)
    }

    /// Binomial reduce of one double to `root`: leaves send first, every
    /// subtree parent combines its children in ascending-mask order.
    fn binomial_reduce(&self, root: Rank, value: f64) -> Option<f64> {
        let ranks = self.api.ranks();
        let rel = self.relative_rank(root);
        let mut acc = value;
        let mut mask = 1usize;
        while mask < ranks {
            if rel & mask != 0 {
                self.send_f64(self.absolute_rank(root, rel - mask), &[acc]);
                return None;
            }
            if rel + mask < ranks {
                let v = self.recv_f64(self.absolute_rank(root, rel + mask));
                acc = self.api.fadd(acc, v[0]);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Binomial broadcast from `root`: each rank receives from its parent,
    /// then forwards down its subtree in descending-mask order.
    fn binomial_bcast(&self, root: Rank, words: &[u32]) -> Vec<u32> {
        let ranks = self.api.ranks();
        let rel = self.relative_rank(root);
        let mut mask = 1usize;
        let mut data: Option<Vec<u32>> = (rel == 0).then(|| words.to_vec());
        while mask < ranks {
            if rel & mask != 0 {
                data = Some(self.recv(self.absolute_rank(root, rel - mask)));
                break;
            }
            mask <<= 1;
        }
        let data = data.expect("every rank receives or is the root");
        // Forward down the subtree: every mask below this rank's receive
        // mask (all of them, for the root) addresses one child.
        mask >>= 1;
        while mask > 0 {
            if rel + mask < ranks {
                self.send(self.absolute_rank(root, rel + mask), &data);
            }
            mask >>= 1;
        }
        data
    }

    /// The token-only binomial reduce the tree barrier uses (empty
    /// messages, no FP combine — the FP variant would charge fake adds).
    /// The broadcast half of the barrier is just `binomial_bcast` of an
    /// empty message.
    fn binomial_reduce_tokens(&self) {
        let ranks = self.api.ranks();
        let rel = self.api.rank().index();
        let mut mask = 1usize;
        while mask < ranks {
            if rel & mask != 0 {
                self.send(Rank::new((rel - mask) as u8), &[]);
                return;
            }
            if rel + mask < ranks {
                let _ = self.recv(Rank::new((rel + mask) as u8));
            }
            mask <<= 1;
        }
    }

    // ---- recursive doubling ----

    /// Largest power of two ≤ `ranks` and the surplus beyond it.
    fn doubling_split(&self) -> (usize, usize) {
        let ranks = self.api.ranks();
        let pof2 = 1usize << (usize::BITS - 1 - ranks.leading_zeros());
        (pof2, ranks - pof2)
    }

    /// Recursive-doubling allreduce (MPICH-style non-power-of-two
    /// handling): surplus even ranks fold into their odd neighbour before
    /// the log₂ pairwise-exchange rounds and receive the result after.
    /// Both partners of a round compute `fadd(acc, theirs)`; IEEE addition
    /// is commutative bitwise (NaN aside), so every rank converges to the
    /// same bits.
    fn doubling_allreduce(&self, value: f64) -> f64 {
        let (pof2, rem) = self.doubling_split();
        let r = self.api.rank().index();
        let mut acc = value;
        // Fold-in phase for the surplus ranks.
        let newrank = if r < 2 * rem {
            if r.is_multiple_of(2) {
                self.send_f64(Rank::new((r + 1) as u8), &[acc]);
                None
            } else {
                let v = self.recv_f64(Rank::new((r - 1) as u8));
                acc = self.api.fadd(acc, v[0]);
                Some(r / 2)
            }
        } else {
            Some(r - rem)
        };
        if let Some(newrank) = newrank {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner_new = newrank ^ mask;
                let partner =
                    if partner_new < rem { partner_new * 2 + 1 } else { partner_new + rem };
                let partner = Rank::new(partner as u8);
                let v = self
                    .sendrecv_f64(Some(partner), &[acc], Some(partner))
                    .expect("duplex exchange returns the partner's value");
                acc = self.api.fadd(acc, v[0]);
                mask <<= 1;
            }
        }
        // Unfold phase: hand the result back to the folded-in even ranks.
        if r < 2 * rem {
            if r.is_multiple_of(2) {
                acc = self.recv_f64(Rank::new((r + 1) as u8))[0];
            } else {
                self.send_f64(Rank::new((r - 1) as u8), &[acc]);
            }
        }
        acc
    }

    /// Recursive-doubling barrier: the allreduce exchange pattern with
    /// empty tokens.
    fn doubling_barrier(&self) {
        let (pof2, rem) = self.doubling_split();
        let r = self.api.rank().index();
        let newrank = if r < 2 * rem {
            if r.is_multiple_of(2) {
                self.send(Rank::new((r + 1) as u8), &[]);
                None
            } else {
                let _ = self.recv(Rank::new((r - 1) as u8));
                Some(r / 2)
            }
        } else {
            Some(r - rem)
        };
        if let Some(newrank) = newrank {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner_new = newrank ^ mask;
                let partner =
                    if partner_new < rem { partner_new * 2 + 1 } else { partner_new + rem };
                let _ = self.sendrecv(
                    Some(Rank::new(partner as u8)),
                    &[],
                    Some(Rank::new(partner as u8)),
                );
                mask <<= 1;
            }
        }
        if r < 2 * rem {
            if r.is_multiple_of(2) {
                let _ = self.recv(Rank::new((r + 1) as u8));
            } else {
                self.send(Rank::new((r - 1) as u8), &[]);
            }
        }
    }
}

/// Receive-side reassembly: chunk placement, duplicate detection and
/// credit granting, shared by `recv` and the `sendrecv` engine. The seen-
/// chunk set is a fixed bitmap ([`MAX_CHUNKS`] bits) — no allocation
/// beyond the returned message.
#[derive(Debug)]
struct RxState {
    data: Vec<u32>,
    len: usize,
    total_chunks: usize,
    count: usize,
    seen: [u64; MAX_CHUNKS / 64],
    started: bool,
}

impl RxState {
    fn new() -> Self {
        RxState {
            data: Vec::new(),
            len: 0,
            total_chunks: 0,
            count: 0,
            seen: [0; MAX_CHUNKS / 64],
            started: false,
        }
    }

    fn done(&self) -> bool {
        self.started && self.count == self.total_chunks
    }

    /// Integrate one data packet, granting a flow-control credit when the
    /// window schedule calls for one.
    fn accept(&mut self, api: &PeApi, from: Rank, packet: &[u32]) {
        let (_, len, idx) = parse_header(packet[0]);
        if !self.started {
            self.started = true;
            self.len = len;
            self.total_chunks = if len == 0 { 1 } else { len.div_ceil(CHUNK_DATA_WORDS) };
            self.data = vec![0u32; len];
        } else {
            assert_eq!(len, self.len, "interleaved eMPI messages from {from}");
        }
        let (word, bit) = (idx / 64, idx % 64);
        assert!(self.seen[word] & (1 << bit) == 0, "duplicate chunk {idx} from {from}");
        self.seen[word] |= 1 << bit;
        if self.len > 0 {
            let base = idx * CHUNK_DATA_WORDS;
            let n = (self.len - base).min(CHUNK_DATA_WORDS);
            self.data[base..base + n].copy_from_slice(&packet[1..1 + n]);
        }
        self.count += 1;
        if self.total_chunks > EAGER_CHUNKS
            && self.count.is_multiple_of(EAGER_CHUNKS)
            && self.count < self.total_chunks
        {
            api.send_to_rank(from, &[header(KIND_CREDIT, 0, 0)]);
        }
    }

    /// The resilient variant of [`RxState::accept`]: duplicate chunks
    /// (retransmissions racing a NACK, ACK-phase pokes) are benign and
    /// dropped; credits carry the message serial. Returns whether the
    /// chunk was new.
    fn accept_r(&mut self, api: &PeApi, from: Rank, packet: &[u32], serial: u32) -> bool {
        let (_, len, idx) = parse_header(packet[0]);
        if !self.started {
            self.started = true;
            self.len = len;
            self.total_chunks = if len == 0 { 1 } else { len.div_ceil(CHUNK_DATA_WORDS) };
            self.data = vec![0u32; len];
        } else {
            assert_eq!(len, self.len, "interleaved eMPI messages from {from}");
        }
        let (word, bit) = (idx / 64, idx % 64);
        if self.seen[word] & (1 << bit) != 0 {
            return false;
        }
        self.seen[word] |= 1 << bit;
        if self.len > 0 {
            let base = idx * CHUNK_DATA_WORDS;
            let n = (self.len - base).min(CHUNK_DATA_WORDS);
            self.data[base..base + n].copy_from_slice(&packet[1..1 + n]);
        }
        self.count += 1;
        if self.total_chunks > EAGER_CHUNKS
            && self.count.is_multiple_of(EAGER_CHUNKS)
            && self.count < self.total_chunks
        {
            api.send_to_rank(from, &[header_r(KIND_CREDIT, serial, 0, 0)]);
        }
        true
    }

    /// Lowest chunk index not yet received (0 before the first chunk) —
    /// what a timeout or corruption NACK asks for.
    fn lowest_missing(&self) -> usize {
        if !self.started {
            return 0;
        }
        (0..self.total_chunks).find(|i| self.seen[i / 64] & (1 << (i % 64)) == 0).unwrap_or(0)
    }
}

fn words_to_f64_vec(words: &[u32]) -> Vec<f64> {
    assert_eq!(words.len() % 2, 0, "f64 message with odd word count");
    words.chunks_exact(2).map(|c| words_to_f64(c[0], c[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        for (kind, len, chunk) in [
            (KIND_DATA, 0usize, 0usize),
            (KIND_DATA, 1, 0),
            (KIND_CREDIT, 0, 0),
            (KIND_DATA, MAX_MESSAGE_WORDS, MAX_CHUNKS - 1),
        ] {
            let (k, l, c) = parse_header(header(kind, len, chunk));
            assert_eq!((k, l, c), (kind, len, chunk));
        }
    }

    #[test]
    fn resilient_header_roundtrip() {
        for kind in [KIND_DATA, KIND_CREDIT, KIND_NACK, KIND_ACK] {
            for serial in [0u32, 1] {
                let w = header_r(kind, serial, 300, 17);
                let (k, l, c) = parse_header(w);
                assert_eq!((k, l, c), (kind, 300, 17));
                assert_eq!((w >> 30) & 1, serial);
            }
        }
        // The default protocol's header is bit-identical to a serial-0
        // resilient header, so mixed parsing is impossible by design.
        assert_eq!(header(KIND_DATA, 45, 2), header_r(KIND_DATA, 0, 45, 2));
    }

    #[test]
    fn classify_discriminates() {
        assert_eq!(classify(&[header_r(KIND_DATA, 1, 30, 1), 7], false), Intake::Data(1));
        assert_eq!(classify(&[header_r(KIND_CREDIT, 0, 0, 0)], false), Intake::Credit(0));
        assert_eq!(classify(&[header_r(KIND_NACK, 1, 0, 9)], false), Intake::Nack(1, 9));
        assert_eq!(classify(&[header_r(KIND_ACK, 0, 0, 0)], false), Intake::Ack(0));
        // A corrupt packet's header is never inspected.
        assert_eq!(classify(&[header_r(KIND_ACK, 0, 0, 0)], true), Intake::Corrupt);
    }

    #[test]
    fn lowest_missing_tracks_holes() {
        let mut rx = RxState::new();
        assert_eq!(rx.lowest_missing(), 0, "unstarted receives ask for chunk 0");
        // 40-word message = 3 chunks; mark chunks 0 and 2 seen.
        rx.started = true;
        rx.len = 40;
        rx.total_chunks = 3;
        rx.seen[0] = 0b101;
        assert_eq!(rx.lowest_missing(), 1);
        rx.seen[0] = 0b111;
        assert_eq!(rx.lowest_missing(), 0, "no hole left: fall back to 0");
    }

    #[test]
    fn chunks_of_counts_empty_as_one() {
        assert_eq!(chunks_of(&[]), 1);
        assert_eq!(chunks_of(&[0; 15]), 1);
        assert_eq!(chunks_of(&[0; 16]), 2);
        assert_eq!(chunks_of(&[0; 3840]), MAX_CHUNKS);
    }

    #[test]
    fn message_limit_is_chunk_bound() {
        // The 8-bit chunk index, not the 20-bit length field, bounds the
        // message: 256 chunks of 15 words.
        assert_eq!(MAX_MESSAGE_WORDS, 3840);
        const { assert!(MAX_MESSAGE_WORDS < (1 << 20) - 1, "length field has headroom") }
        assert_eq!(MAX_MESSAGE_WORDS.div_ceil(CHUNK_DATA_WORDS), MAX_CHUNKS);
    }

    #[test]
    fn chunk_math() {
        assert_eq!(CHUNK_DATA_WORDS, 15);
        // A 60-double Jacobi row = 120 words = 8 chunks.
        assert_eq!(120usize.div_ceil(CHUNK_DATA_WORDS), 8);
    }

    #[test]
    fn credit_schedule_balances() {
        // For every chunk count, the credits a receiver issues must equal
        // the credits the sender awaits.
        for total in 1..=40usize {
            let sender_waits =
                (0..total).filter(|idx| *idx >= EAGER_CHUNKS && idx % EAGER_CHUNKS == 0).count();
            let receiver_grants = (1..=total)
                .filter(|received| {
                    total > EAGER_CHUNKS && received % EAGER_CHUNKS == 0 && *received < total
                })
                .count();
            assert_eq!(sender_waits, receiver_grants, "imbalance at {total} chunks");
        }
    }

    #[test]
    fn doubling_partner_maps_are_involutions() {
        // The recursive-doubling partner mapping must pair ranks up
        // symmetrically in every round, for every rank count.
        for ranks in 2..=24usize {
            let pof2 = 1usize << (usize::BITS - 1 - ranks.leading_zeros());
            let rem = ranks - pof2;
            let newrank = |r: usize| -> Option<usize> {
                if r < 2 * rem {
                    (r % 2 == 1).then_some(r / 2)
                } else {
                    Some(r - rem)
                }
            };
            let absolute = |n: usize| -> usize {
                if n < rem {
                    n * 2 + 1
                } else {
                    n + rem
                }
            };
            let mut mask = 1usize;
            while mask < pof2 {
                for r in 0..ranks {
                    if let Some(n) = newrank(r) {
                        let p = absolute(n ^ mask);
                        let pn = newrank(p).expect("partners participate");
                        assert_eq!(absolute(pn ^ mask), r, "ranks {ranks} mask {mask} rank {r}");
                    }
                }
                mask <<= 1;
            }
        }
    }
}
