//! System assembly and programming model of the MEDEA reproduction.
//!
//! This crate is the paper's primary contribution: the configurable hybrid
//! shared-memory/message-passing framework. It wires the substrates —
//! deflection-routed NoC (`medea-noc`), L1 caches (`medea-cache`), MPMMU +
//! DDR (`medea-mem`) and processing elements (`medea-pe`) — into a
//! cycle-accurate full-system simulator, and provides:
//!
//! * [`SystemConfig`] — the design-space knobs the paper sweeps (number of
//!   cores, cache size/policy, arbiter option, FP option) plus the
//!   beyond-the-paper `memory_banks` knob: N address-interleaved MPMMU
//!   banks spread across the torus (default 1 at node 0 — the paper's
//!   single-slave instance, reproduced bit-for-bit);
//! * [`System`](system::System) — the cycle engine with idle fast-forward;
//! * [`PeApi`](api::PeApi) — the architectural-operation interface kernels
//!   program against (loads/stores through the cache, §II-E coherence
//!   operations, lock/unlock, raw TIE messages);
//! * [`empi`] — the embedded-MPI layer (§II-E) as a communicator object:
//!   [`Empi`](empi::Empi) wraps a kernel's `PeApi` with point-to-point
//!   transfers (`send`/`recv`/`sendrecv`) and algorithm-selectable
//!   collectives (`barrier`, `bcast`, `reduce`, `allreduce`, `gather`,
//!   `scatter` — linear, binomial-tree or recursive-doubling per
//!   [`CollectiveAlgo`]);
//! * [`area`] — the TSMC-65nm area model with kill-rule Pareto pruning
//!   used for Figs. 7 and 9;
//! * [`explore`] — the multi-configuration design-space exploration driver
//!   (the paper's 168-point sweep).
//!
//! # Example
//!
//! ```
//! use medea_core::{SystemConfig, CachePolicy};
//! use medea_core::system::System;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SystemConfig::builder()
//!     .compute_pes(2)
//!     .cache_bytes(4 * 1024)
//!     .cache_policy(CachePolicy::WriteBack)
//!     .build()?;
//! // Two kernels exchanging one framed eMPI message through their
//! // communicators.
//! let result = System::run(&cfg, &[], vec![
//!     Box::new(|api: medea_core::api::PeApi| {
//!         let comm = medea_core::Empi::new(api);
//!         let message = comm.recv(medea_sim::ids::Rank::new(1));
//!         assert_eq!(message, vec![42]);
//!     }),
//!     Box::new(|api: medea_core::api::PeApi| {
//!         let comm = medea_core::Empi::new(api);
//!         comm.send(medea_sim::ids::Rank::new(0), &[42]);
//!     }),
//! ])?;
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod api;
pub mod area;
pub mod calib;
pub mod config;
pub mod empi;
pub mod explore;
pub mod layout;
pub mod report;
pub mod system;
pub(crate) mod tiled;

pub use config::{BuildConfigError, NodePlan, ResilienceConfig, SystemConfig, SystemConfigBuilder};
pub use empi::{CollectiveAlgo, Empi};
pub use medea_cache::CachePolicy;
pub use medea_cache::CoherenceMode as Coherence;
pub use medea_cache::CoherenceStats;
pub use medea_fault::{
    DeadLink, FaultConfig, FaultInjector, FaultStats, NullInjector, ScheduledInjector,
};
pub use medea_mem::BankMap;
pub use medea_metrics::{CycleBreakdown, MetricsConfig, MetricsReport, PeActivity, SampleWindow};
pub use medea_noc::coord::Topology;
pub use medea_pe::arbiter::{ArbiterConfig, PriorityAssignment};
pub use medea_pe::fpu::MulOption;
pub use medea_trace::{EventClass, KernelOp, NullSink, RingSink, TraceConfig, TraceSink};
pub use system::{RunError, RunResult};

/// Which fabric carries the traffic (A2 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FabricKind {
    /// The paper's deflection-routed folded torus.
    #[default]
    Deflection,
    /// Contention-free ideal network (ablation baseline).
    Ideal,
}
