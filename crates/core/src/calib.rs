//! Calibration constants (single source of truth; DESIGN.md §6).
//!
//! Constants quoted by the paper are cited inline; the rest are documented
//! design choices whose absolute values shift curves without changing the
//! comparisons the reproduction must preserve.

use medea_sim::Cycle;

/// Default cycles a kernel charges per inner-loop iteration of a stencil
/// kernel (address arithmetic, loop control, local-memory traffic) — the
/// stand-in for the Xtensa integer instructions we do not simulate
/// individually.
pub const LOOP_OVERHEAD_CYCLES: Cycle = 6;

/// Cycles charged for a function-call-ish control transfer (barrier entry,
/// send/recv bookkeeping in the eMPI library).
pub const CALL_OVERHEAD_CYCLES: Cycle = 4;

/// Default DDR first-word latency (cycles). See `medea_mem::DdrModel`.
pub const DDR_FIRST_WORD: Cycle = 24;

/// Default DDR per-streamed-word cost (cycles).
pub const DDR_PER_WORD: Cycle = 2;

/// MPMMU fixed service overhead per transaction (cycles).
pub const MPMMU_SERVICE_OVERHEAD: Cycle = 4;

/// MPMMU local-cache hit latency (cycles).
pub const MPMMU_CACHE_HIT: Cycle = 2;

/// Lock-retry backoff after a Nack (cycles). The paper leaves busy-lock
/// behaviour unspecified; Nack+retry with this backoff is our documented
/// choice.
pub const LOCK_RETRY_BACKOFF: Cycle = 16;

/// Area of one Xtensa-class core in mm² (TSMC 65 nm), calibrated so the
/// Fig. 7 upper knee lands near 10 mm² as in the paper.
pub const CORE_AREA_MM2: f64 = 0.35;

/// Cache area per kilobyte in mm² (TSMC 65 nm), same calibration.
pub const CACHE_AREA_MM2_PER_KB: f64 = 0.0125;

/// NoC overhead factor: switches, bridges and routing add "about 100% of
/// the total core area (excluding caches)" (§III, citing ref.\[20\]).
pub const NOC_AREA_OVERHEAD: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_values_unchanged() {
        // These three are the load-bearing paper-quoted relationships; a
        // change here invalidates EXPERIMENTS.md.
        assert_eq!(NOC_AREA_OVERHEAD, 1.0);
        const { assert!(CORE_AREA_MM2 > 0.0 && CACHE_AREA_MM2_PER_KB > 0.0) }
        const { assert!(DDR_FIRST_WORD > MPMMU_CACHE_HIT, "DDR must dominate a cache hit") }
    }
}
