//! Chip-area model, Pareto pruning and the "kill rule" (Figs. 7 and 9).
//!
//! §III: area "was estimated from core/cache data given by the processor
//! vendor for a TSMC 65nm CMOS technology and including an overhead for NoC
//! switches, bridges and routing area of about 100% of the total core area
//! (excluding caches)". The kill rule (ref.\[19\]): grow a resource only if every
//! 1% of core area buys at least 1% of performance; we prune
//! Pareto-dominated points and then walk the frontier applying the rule.

use crate::calib::{CACHE_AREA_MM2_PER_KB, CORE_AREA_MM2, NOC_AREA_OVERHEAD};
use crate::config::SystemConfig;

/// Chip area of a configuration in mm².
///
/// Every node (compute PEs + the MPMMU) contributes one core plus its
/// cache; the NoC overhead doubles the core logic, not the SRAM.
pub fn chip_area_mm2(cfg: &SystemConfig) -> f64 {
    let core = CORE_AREA_MM2 * (1.0 + NOC_AREA_OVERHEAD);
    let l1_kb = cfg.cache().total_bytes() as f64 / 1024.0;
    let pe_area = core + l1_kb * CACHE_AREA_MM2_PER_KB;
    // The MPMMU is modeled as one more core with its own (16 kB) cache.
    let mpmmu_area = core + 16.0 * CACHE_AREA_MM2_PER_KB;
    cfg.compute_pes() as f64 * pe_area + mpmmu_area
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Figure-style label, e.g. `11P_16k$_WB`.
    pub label: String,
    /// Chip area in mm².
    pub area_mm2: f64,
    /// Speedup relative to the sweep's reference configuration.
    pub speedup: f64,
}

/// Keep only Pareto-optimal points (no other point has both smaller-or-
/// equal area and strictly greater speedup), sorted by area.
pub fn pareto_frontier(mut points: Vec<DesignPoint>) -> Vec<DesignPoint> {
    points.sort_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2).then(b.speedup.total_cmp(&a.speedup)));
    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for p in points {
        if p.speedup > best {
            best = p.speedup;
            frontier.push(p);
        }
    }
    frontier
}

/// Walk a Pareto frontier (sorted by area) and apply the kill rule: keep a
/// step only if the relative speedup gain from the last *kept* point is at
/// least `threshold` times the relative area increase (the paper's rule
/// has `threshold = 1.0`).
///
/// The first frontier point is always kept as the baseline. Points whose
/// step does not pay are skipped, but the walk continues — a later, larger
/// step may still satisfy the rule; the curve naturally ends at "the limit
/// beyond which increasing area any further does not produce a
/// proportional performance increase" (the paper's upper knee).
pub fn apply_kill_rule(frontier: &[DesignPoint], threshold: f64) -> Vec<DesignPoint> {
    let mut kept: Vec<DesignPoint> = Vec::new();
    for p in frontier {
        match kept.last() {
            None => kept.push(p.clone()),
            Some(prev) => {
                let d_area = (p.area_mm2 - prev.area_mm2) / prev.area_mm2;
                let d_perf = (p.speedup - prev.speedup) / prev.speedup;
                if d_area <= 0.0 || d_perf >= threshold * d_area {
                    kept.push(p.clone());
                }
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CachePolicy;

    fn cfg(pes: usize, cache_kb: usize) -> SystemConfig {
        SystemConfig::builder()
            .compute_pes(pes)
            .cache_bytes(cache_kb * 1024)
            .cache_policy(CachePolicy::WriteBack)
            .build()
            .unwrap()
    }

    #[test]
    fn area_scales_with_cores_and_cache() {
        let small = chip_area_mm2(&cfg(2, 2));
        let more_cores = chip_area_mm2(&cfg(4, 2));
        let more_cache = chip_area_mm2(&cfg(2, 64));
        assert!(more_cores > small);
        assert!(more_cache > small);
    }

    #[test]
    fn area_calibration_matches_fig7_knee() {
        // 11 PEs with 16 kB each should land near the paper's ~10 mm² knee.
        let knee = chip_area_mm2(&cfg(11, 16));
        assert!((8.0..14.0).contains(&knee), "knee area {knee:.1} mm²");
    }

    fn dp(label: &str, area: f64, speedup: f64) -> DesignPoint {
        DesignPoint { label: label.into(), area_mm2: area, speedup }
    }

    #[test]
    fn pareto_removes_dominated() {
        let points = vec![
            dp("a", 1.0, 1.0),
            dp("dominated", 2.0, 0.9),
            dp("b", 2.0, 2.0),
            dp("c", 3.0, 1.5), // dominated by b
            dp("d", 4.0, 3.0),
        ];
        let f = pareto_frontier(points);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b", "d"]);
        assert!(f.windows(2).all(|w| w[0].area_mm2 <= w[1].area_mm2));
        assert!(f.windows(2).all(|w| w[0].speedup < w[1].speedup));
    }

    #[test]
    fn kill_rule_cuts_sublinear_tail() {
        // +100% area for +200% speedup: keep. Then +50% area for +1%: kill.
        let frontier = vec![dp("base", 1.0, 1.0), dp("good", 2.0, 3.0), dp("waste", 3.0, 3.03)];
        let kept = apply_kill_rule(&frontier, 1.0);
        let labels: Vec<&str> = kept.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["base", "good"]);
    }

    #[test]
    fn kill_rule_skips_but_keeps_walking() {
        // The middle point does not pay from "base", but the last one does:
        // it must survive (the walk is not truncated at the first miss).
        let frontier = vec![dp("base", 1.0, 1.0), dp("meh", 1.5, 1.2), dp("payoff", 2.0, 2.5)];
        let kept = apply_kill_rule(&frontier, 1.0);
        let labels: Vec<&str> = kept.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["base", "payoff"]);
    }

    #[test]
    fn kill_rule_keeps_linear_chain() {
        let frontier = vec![dp("a", 1.0, 1.0), dp("b", 2.0, 2.5), dp("c", 4.0, 6.0)];
        assert_eq!(apply_kill_rule(&frontier, 1.0).len(), 3);
    }

    #[test]
    fn kill_rule_empty_frontier() {
        assert!(apply_kill_rule(&[], 1.0).is_empty());
    }
}
