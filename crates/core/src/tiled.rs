//! The tiled parallel cycle engine: deterministic intra-run parallelism.
//!
//! [`try_run_tiled`] domain-decomposes the torus into `T` contiguous node
//! ranges (tiles) and runs one worker thread per tile, each ticking only
//! its own routers ([`NetworkShard`]), PEs and MPMMU banks. One spin
//! barrier ([`Phaser`]) per simulated cycle separates the cycles; **the
//! barrier is the clock edge**: everything a tile does between two
//! barriers is the work the sequential engine does for the same
//! components within one `now`, and the only cross-tile traffic is the
//! boundary link latches, exchanged through per-directed-pair mailboxes.
//!
//! # Why the result is bit-identical to the sequential engine
//!
//! * **Flit arbitration does not need cross-tile coordination.** Routers
//!   break same-age ties by flit uid, and
//!   [`medea_noc::network::compose_uid`] derives the uid from
//!   `(cycle, is_bank, node)` — locally computable, globally consistent,
//!   and ordered exactly like the engine's sequential injection sweep.
//! * **Each input latch has exactly one writer.** A router's `(dir)`
//!   input is fed only by its unique neighbor on that link, so exporting
//!   a boundary flit during tile A's tick and importing it into tile B
//!   before B's next route phase reproduces the sequential two-phase
//!   (route-all-then-deliver-all) tick exactly. Mailboxes are
//!   double-buffered by round parity so a fast tile's cycle-`t` exports
//!   can never be confused with its neighbor's still-pending cycle-`t−1`
//!   imports.
//! * **All folds are merged in fixed tile-index order.** Statistics
//!   (bucket-wise histogram sums), the watchdog fingerprint (wrapping
//!   sums), the quiet-cycle classification (AND/MIN folds with an
//!   identity for empty tiles) and the fault-event tail (sorted by
//!   `(cycle, phase, tile)`) are all order-insensitive or merged in tile
//!   order, never in thread-completion order.
//! * **One leader makes every global decision.** Tile 0 (on the calling
//!   thread) replicates the sequential engine's end-of-cycle logic —
//!   termination, cycle limit, watchdog, quiet-cycle fast-forward /
//!   deadlock — from per-tile reports, and is the only agent that drains
//!   the fault injector's link-kill schedule, so the scheduled-fault
//!   stream is consumed in exactly the sequential order.
//!
//! `tests/parallel_equivalence.rs` pins all of this: identical
//! [`RunResult`]s, error details and trace captures at every thread
//! count, including the golden paper-4×4 fingerprints.

use crate::config::SystemConfig;
use crate::system::{
    banks_quiet, banks_tick, build_banks, build_pes, classify_fold, deadlock_detail,
    delivered_event, finish_result, progress_fingerprint, quiet_fold, sample_pes_banks,
    stall_detail, Bank, Kernel, QuietState, RunError, RunResult, FAULT_LOG_CAP,
};
use crate::FabricKind;
use medea_cache::Addr;
use medea_fault::FaultInjector;
use medea_metrics::Meter;
use medea_noc::coord::Dir;
use medea_noc::flit::{Flit, PacketKind, SubKind};
use medea_noc::network::NetworkShard;
use medea_noc::FabricStats;
use medea_pe::pe::ProcessingElement;
use medea_sim::ids::NodeId;
use medea_sim::par::Phaser;
use medea_sim::Cycle;
use medea_trace::{NullSink, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// Run `kernels` on the tiled engine if the configuration selects it,
/// or hand the kernels back (`Err`) for the sequential path.
///
/// The tiled engine engages only when all of these hold:
///
/// * `cfg.host_threads() > 1` and at least two tiles fit the torus;
/// * the fabric is the deflection torus (the ideal fabric is a
///   contention-free ablation model with no shard decomposition);
/// * the fault injector can be forked per tile
///   ([`FaultInjector::fork_for_tile`]).
pub(crate) fn try_run_tiled<S: TraceSink, I: FaultInjector, M: Meter>(
    cfg: &SystemConfig,
    preload: &[(Addr, u32)],
    kernels: Vec<Kernel>,
    sink: &mut S,
    injector: &mut I,
    meter: &mut M,
) -> Result<Result<RunResult, RunError>, Vec<Kernel>> {
    let tiles = cfg.host_threads().min(cfg.topology().nodes());
    if tiles < 2 || cfg.fabric() != FabricKind::Deflection {
        return Err(kernels);
    }
    let mut forks = Vec::with_capacity(tiles);
    for _ in 0..tiles {
        match injector.fork_for_tile() {
            Some(fork) => forks.push(fork),
            None => return Err(kernels),
        }
    }
    // Workers buffer trace events locally (the caller's sink cannot be
    // shared across threads); the buffers are replayed into `sink` after
    // the join, merged in (cycle, tile) order. The dispatch keeps the
    // untraced instantiation free of buffering entirely.
    let (result, trace) = if S::ACTIVE {
        run_tiled::<BufSink, I, M>(cfg, preload, kernels, injector, forks, meter)
    } else {
        run_tiled::<NullSink, I, M>(cfg, preload, kernels, injector, forks, meter)
    };
    for (at, event) in trace {
        sink.record(at, event);
    }
    Ok(result)
}

/// A tile-local trace sink that can surrender its buffered events.
trait WorkerSink: TraceSink {
    /// A fresh, empty sink.
    fn fresh() -> Self;
    /// The `(cycle, event)` stream recorded so far, cycles nondecreasing.
    fn into_events(self) -> Vec<(Cycle, TraceEvent)>;
}

impl WorkerSink for NullSink {
    fn fresh() -> Self {
        NullSink
    }
    fn into_events(self) -> Vec<(Cycle, TraceEvent)> {
        Vec::new()
    }
}

/// Unbounded in-order event buffer for traced tiled runs.
struct BufSink(Vec<(Cycle, TraceEvent)>);

impl TraceSink for BufSink {
    const ACTIVE: bool = true;
    fn record(&mut self, at: Cycle, event: TraceEvent) {
        self.0.push((at, event));
    }
}

impl WorkerSink for BufSink {
    fn fresh() -> Self {
        BufSink(Vec::new())
    }
    fn into_events(self) -> Vec<(Cycle, TraceEvent)> {
        self.0
    }
}

/// Everything one worker owns: a contiguous shard of the fabric and the
/// PEs/banks whose nodes fall inside it (rank→node and bank→node maps are
/// monotone, so each tile's lists are contiguous runs of the global
/// rank/bank order).
struct Tile<I, M> {
    index: usize,
    shard: NetworkShard,
    pes: Vec<ProcessingElement>,
    banks: Vec<Bank>,
    injector: I,
    /// This tile's full-size meter fork: it writes only the slots of the
    /// components the tile owns, so absorbing the forks in tile-index
    /// order element-wise-sums to the sequential recording.
    meter: M,
    /// Global slot offsets of this tile's first PE / bank — the tiles
    /// partition the monotone rank and bank orders, so tile-local index
    /// `i` is global slot `base + i`.
    pe_base: usize,
    bank_base: usize,
    wake: Vec<Cycle>,
    ticked: Vec<bool>,
    live: usize,
    /// `(cycle, phase, event)` with phase 0 = link kills, 1 = flit
    /// corruptions, 2 = PE stalls — the sequential engine's within-cycle
    /// hook order, so the merged log sorted by `(cycle, phase, tile)` is
    /// the sequential push order. Capped at [`FAULT_LOG_CAP`] per tile,
    /// which is provably a superset of the global last-`FAULT_LOG_CAP`.
    fault_log: VecDeque<(Cycle, u8, TraceEvent)>,
    trace: Vec<(Cycle, TraceEvent)>,
}

fn push_tile_fault(
    log: &mut VecDeque<(Cycle, u8, TraceEvent)>,
    now: Cycle,
    phase: u8,
    event: TraceEvent,
) {
    if log.len() == FAULT_LOG_CAP {
        log.pop_front();
    }
    log.push_back((now, phase, event));
}

/// One boundary flit in transit: `(destination router, input direction,
/// flit)`, exactly the triple `NetworkShard::import` consumes.
type BoundaryFlit = (u16, u8, Flit);

/// What a tile publishes at the barrier, for the leader's serial section.
#[derive(Clone, Default)]
struct TileReport {
    live: usize,
    in_flight: usize,
    exported: usize,
    banks_quiet: bool,
    fp_partial: u64,
    wake_guard: bool,
    /// The tile's [`quiet_fold`] partial — `Some` exactly when the tile
    /// is locally drained, which all tiles are whenever the system is
    /// globally quiet (the only time the leader reads it).
    quiet: Option<(bool, Option<Cycle>, bool)>,
}

/// The leader's verdict for the next round.
#[derive(Clone)]
enum Decision {
    /// Simulate cycle `now`; apply `kills` (original `(node, dir)` pairs
    /// drained from the injector schedule) before any traffic moves.
    Go { now: Cycle, kills: Vec<(u16, u8)> },
    /// The run is over as of cycle `at`; workers flush their meters
    /// (final snapshot + [`Meter::finish`]) and exit without running
    /// another cycle.
    Stop { at: Cycle },
}

/// Why the leader stopped the run (details are assembled post-join, when
/// the main thread has every tile's PEs/banks/fault log back in hand).
enum StopCause {
    Done { at: Cycle },
    CycleLimit { in_flight: usize },
    Watchdog { at: Cycle, in_flight: usize },
    Deadlock { at: Cycle },
}

/// Cross-thread coordination state, shared by reference into the scope.
struct Shared {
    phaser: Phaser,
    decision: Mutex<Decision>,
    reports: Vec<Mutex<TileReport>>,
    /// Boundary-flit mailboxes, one per directed tile pair
    /// (`[parity][from * tiles + to]`), double-buffered by round parity:
    /// round `r` drains buffer `(r+1) & 1` and fills buffer `r & 1`, so
    /// a tile racing ahead within the same barrier window can never push
    /// into a mailbox its neighbor is still draining.
    mailboxes: [Vec<Mutex<Vec<BoundaryFlit>>>; 2],
    /// Tile boundaries: tile `i` owns nodes `starts[i]..starts[i+1]`.
    starts: Vec<u16>,
    /// First panic payload from any worker; rethrown after the join.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Shared {
    fn tiles(&self) -> usize {
        self.reports.len()
    }

    fn tile_of(&self, node: usize) -> usize {
        self.starts.partition_point(|&s| (s as usize) <= node) - 1
    }

    fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.phaser.poison();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker that panicked mid-push poisons the mutex; the payload is
    // rethrown after the join, so the inner data is never trusted.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_tiled<LS: WorkerSink, I: FaultInjector, M: Meter>(
    cfg: &SystemConfig,
    preload: &[(Addr, u32)],
    kernels: Vec<Kernel>,
    injector: &mut I,
    forks: Vec<I>,
    meter: &mut M,
) -> (Result<RunResult, RunError>, Vec<(Cycle, TraceEvent)>) {
    let topo = cfg.topology();
    let tiles = forks.len();
    let starts = tile_starts(cfg, tiles);

    let banks_all = build_banks(cfg, preload);
    let pes_all = build_pes(cfg, kernels);
    let wall_start = Instant::now();

    let mut tile_vec: Vec<Tile<I, M>> = forks
        .into_iter()
        .enumerate()
        .map(|(i, fork)| Tile {
            index: i,
            shard: NetworkShard::new(topo, starts[i] as usize, starts[i + 1] as usize),
            pes: Vec::new(),
            banks: Vec::new(),
            injector: fork,
            meter: meter.fork(),
            pe_base: 0,
            bank_base: 0,
            wake: Vec::new(),
            ticked: Vec::new(),
            live: 0,
            fault_log: VecDeque::new(),
            trace: Vec::new(),
        })
        .collect();
    let tile_of = |node: usize| starts.partition_point(|&s| (s as usize) <= node) - 1;
    for pe in pes_all {
        let t = tile_of(pe.node().index());
        tile_vec[t].pes.push(pe);
    }
    for bank in banks_all {
        let t = tile_of(bank.node.index());
        tile_vec[t].banks.push(bank);
    }
    let (mut pe_base, mut bank_base) = (0usize, 0usize);
    for tile in &mut tile_vec {
        tile.pe_base = pe_base;
        pe_base += tile.pes.len();
        tile.bank_base = bank_base;
        bank_base += tile.banks.len();
        tile.wake = vec![0; tile.pes.len()];
        tile.ticked = vec![false; tile.pes.len()];
        tile.live = tile.pes.len();
    }

    // Cycle 0's scheduled kills, drained exactly like the sequential
    // engine's top-of-loop drain.
    let mut kills = Vec::new();
    if I::ACTIVE {
        while let Some(kill) = injector.take_link_kill(0) {
            kills.push((kill.node, kill.dir & 3));
        }
    }
    let boxes = || (0..tiles * tiles).map(|_| Mutex::new(Vec::new())).collect::<Vec<_>>();
    let shared = Shared {
        phaser: Phaser::new(tiles),
        decision: Mutex::new(Decision::Go { now: 0, kills }),
        reports: (0..tiles).map(|_| Mutex::new(TileReport::default())).collect(),
        mailboxes: [boxes(), boxes()],
        starts,
        panic: Mutex::new(None),
    };

    let mut tile_iter = tile_vec.into_iter();
    let mut leader_tile = tile_iter.next().expect("tiles >= 2");
    let followers: Vec<Tile<I, M>> = tile_iter.collect();

    let mut cause: Option<StopCause> = None;
    let mut joined: Vec<Tile<I, M>> = Vec::with_capacity(tiles - 1);
    std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = followers
            .into_iter()
            .map(|mut tile| {
                scope.spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        follower_loop::<LS, I, M>(&mut tile, shared, cfg);
                    }));
                    if let Err(payload) = outcome {
                        shared.store_panic(payload);
                    }
                    tile
                })
            })
            .collect();

        let leader_outcome = catch_unwind(AssertUnwindSafe(|| {
            leader_loop::<LS, I, M>(&mut leader_tile, shared, cfg, injector)
        }));
        match leader_outcome {
            Ok(stop) => cause = stop,
            Err(payload) => shared.store_panic(payload),
        }

        for handle in handles {
            match handle.join() {
                Ok(tile) => joined.push(tile),
                Err(payload) => shared.store_panic(payload),
            }
        }
    });
    if let Some(payload) = lock(&shared.panic).take() {
        resume_unwind(payload);
    }

    // Reassemble global state in tile-index order — which *is* rank order
    // for PEs and bank order for banks, because both maps are monotone in
    // the node index the tiles partition.
    let mut all_tiles = Vec::with_capacity(tiles);
    all_tiles.push(leader_tile);
    all_tiles.extend(joined);

    let mut pes: Vec<ProcessingElement> = Vec::new();
    let mut banks: Vec<Bank> = Vec::new();
    let mut fstats = FabricStats::default();
    let mut fault = injector.stats();
    let mut log_entries: Vec<(Cycle, u8, usize, usize, TraceEvent)> = Vec::new();
    let mut traces: Vec<Vec<(Cycle, TraceEvent)>> = Vec::new();
    let mut meter_parts: Vec<M> = Vec::with_capacity(tiles);
    for (ti, tile) in all_tiles.into_iter().enumerate() {
        fstats.merge(tile.shard.stats());
        fault.merge(&tile.injector.stats());
        for (seq, &(cycle, phase, event)) in tile.fault_log.iter().enumerate() {
            log_entries.push((cycle, phase, ti, seq, event));
        }
        pes.extend(tile.pes);
        banks.extend(tile.banks);
        traces.push(tile.trace);
        meter_parts.push(tile.meter);
    }
    // Merge the per-tile meter forks back in tile-index order: every
    // series slot has exactly one writer, so the element-wise sum is
    // bit-identical to sequential recording. The forks already flushed
    // (sampled + finished) at the stop decision; the caller must NOT
    // finish again.
    meter.absorb(meter_parts);
    log_entries.sort_by_key(|&(cycle, phase, ti, seq, _)| (cycle, phase, ti, seq));
    let fault_log: VecDeque<(Cycle, TraceEvent)> = log_entries
        .iter()
        .skip(log_entries.len().saturating_sub(FAULT_LOG_CAP))
        .map(|&(cycle, _, _, _, event)| (cycle, event))
        .collect();
    let trace = merge_traces(traces);

    let limit = cfg.cycle_limit();
    let result = match cause.expect("tiled engine stopped without a cause or a panic") {
        StopCause::Done { at } => Ok(finish_result(at, &pes, &fstats, &banks, wall_start, fault)),
        StopCause::CycleLimit { in_flight } => Err(RunError::CycleLimit {
            limit,
            detail: stall_detail(&pes, &banks, in_flight, &fault_log),
        }),
        StopCause::Watchdog { at, in_flight } => Err(RunError::Watchdog {
            at,
            detail: stall_detail(&pes, &banks, in_flight, &fault_log),
        }),
        StopCause::Deadlock { at } => Err(RunError::Deadlock { at, detail: deadlock_detail(&pes) }),
    };
    (result, trace)
}

/// Per-cycle cost weight of a node hosting a PE or an MPMMU bank,
/// relative to [`ROUTER_WEIGHT`] for a node that is only a router. Ticking
/// an active component dominates an idle router (drained shards tick in
/// constant time), so busy nodes weigh heavily and the router term mostly
/// breaks ties across fully idle stretches.
const ACTIVE_NODE_WEIGHT: u64 = 16;
/// Baseline weight of every node (its deflection router).
const ROUTER_WEIGHT: u64 = 1;

/// Load-aware tile boundaries: tile `i` owns nodes
/// `starts[i]..starts[i+1]`.
///
/// Boundaries land on the quantiles of the cumulative per-node simulation
/// weight rather than the node count, so a sparsely populated torus (say
/// 10 PEs in the corner of an 8×8) spreads its *busy* nodes over the
/// workers instead of handing them all to tile 0. Clamps keep every tile
/// at least one node wide. The split is a host-side scheduling choice
/// only: results are bit-identical for every boundary placement (pinned
/// by `tests/parallel_equivalence.rs`).
fn tile_starts(cfg: &SystemConfig, tiles: usize) -> Vec<u16> {
    let nodes = cfg.topology().nodes();
    debug_assert!(2 <= tiles && tiles <= nodes);
    let plan = cfg.node_plan();
    let weight = |node: usize| -> u64 {
        let id = NodeId::new(node as u16);
        if plan.is_bank_node(id) || plan.rank_of_node(id).is_some() {
            ROUTER_WEIGHT + ACTIVE_NODE_WEIGHT
        } else {
            ROUTER_WEIGHT
        }
    };
    let mut prefix: Vec<u64> = Vec::with_capacity(nodes + 1);
    prefix.push(0);
    for n in 0..nodes {
        prefix.push(prefix[n] + weight(n));
    }
    let total = prefix[nodes];
    let mut starts: Vec<u16> = Vec::with_capacity(tiles + 1);
    starts.push(0);
    for i in 1..tiles {
        let target = total * i as u64 / tiles as u64;
        let boundary = prefix.partition_point(|&p| p < target);
        // At least one node per tile, and enough nodes left for the rest.
        let lo = starts[i - 1] as usize + 1;
        let hi = nodes - (tiles - i);
        starts.push(boundary.clamp(lo, hi) as u16);
    }
    starts.push(nodes as u16);
    starts
}

/// Merge per-tile trace buffers into one deterministic stream: cycles
/// ascending, ties broken by tile index, each tile's within-cycle order
/// preserved. (Within a cycle the sequential engine interleaves
/// components phase-major, so cross-engine comparisons are per-cycle
/// multiset equality — see `tests/parallel_equivalence.rs`.)
fn merge_traces(per_tile: Vec<Vec<(Cycle, TraceEvent)>>) -> Vec<(Cycle, TraceEvent)> {
    let mut out = Vec::with_capacity(per_tile.iter().map(Vec::len).sum());
    let mut heads = vec![0usize; per_tile.len()];
    loop {
        let mut min_cycle: Option<Cycle> = None;
        for (t, buf) in per_tile.iter().enumerate() {
            if let Some(&(c, _)) = buf.get(heads[t]) {
                min_cycle = Some(min_cycle.map_or(c, |m| m.min(c)));
            }
        }
        let Some(cycle) = min_cycle else { break };
        for (t, buf) in per_tile.iter().enumerate() {
            while let Some(&(c, event)) = buf.get(heads[t]) {
                if c != cycle {
                    break;
                }
                out.push((c, event));
                heads[t] += 1;
            }
        }
    }
    out
}

fn follower_loop<LS: WorkerSink, I: FaultInjector, M: Meter>(
    tile: &mut Tile<I, M>,
    shared: &Shared,
    cfg: &SystemConfig,
) {
    let mut sink = LS::fresh();
    let mut gen = shared.phaser.generation();
    loop {
        let decision = lock(&shared.decision).clone();
        let (now, kills) = match decision {
            Decision::Go { now, kills } => (now, kills),
            Decision::Stop { at } => {
                finish_tile_meter(tile, at);
                break;
            }
        };
        execute_cycle(tile, shared, cfg, now, &kills, gen, &mut sink);
        if !shared.phaser.arrive_and_wait(gen) {
            break;
        }
        gen += 1;
    }
    tile.trace = sink.into_events();
}

/// Flush one tile's meter at the stop decision: final snapshot of the
/// tile's own components, then close the attribution spans and the
/// partial last window at `at` — the same end cycle every tile uses, so
/// the forks stay in window lockstep for the absorb.
fn finish_tile_meter<I, M: Meter>(tile: &mut Tile<I, M>, at: Cycle) {
    if M::ACTIVE {
        sample_pes_banks(&mut tile.meter, &tile.pes, tile.pe_base, &tile.banks, tile.bank_base);
        tile.meter.finish(at);
    }
}

fn leader_loop<LS: WorkerSink, I: FaultInjector, M: Meter>(
    tile: &mut Tile<I, M>,
    shared: &Shared,
    cfg: &SystemConfig,
    injector: &mut I,
) -> Option<StopCause> {
    let watchdog = cfg.resilience().watchdog_cycles;
    let limit = cfg.cycle_limit();
    let mut sink = LS::fresh();
    let mut gen = shared.phaser.generation();
    // The leader owns the sequential engine's cross-cycle decision state.
    let mut last_fingerprint: u64 = 0;
    let mut last_progress_at: Cycle = 0;
    let mut cause: Option<StopCause> = None;
    loop {
        let decision = lock(&shared.decision).clone();
        let (now, kills) = match decision {
            Decision::Go { now, kills } => (now, kills),
            Decision::Stop { at } => {
                finish_tile_meter(tile, at);
                break;
            }
        };
        execute_cycle(tile, shared, cfg, now, &kills, gen, &mut sink);
        if !shared.phaser.wait_followers() {
            break;
        }

        // Serial section: replicate the sequential engine's end-of-cycle
        // decisions, in its exact order, from the folded tile reports.
        let mut live = 0usize;
        let mut in_flight = 0usize;
        let mut all_banks_quiet = true;
        let mut fp = 0u64;
        let mut wake_guard = false;
        let mut fold = (true, None::<Cycle>, true);
        for report in &shared.reports {
            let r = lock(report).clone();
            live += r.live;
            in_flight += r.in_flight + r.exported;
            all_banks_quiet &= r.banks_quiet;
            fp = fp.wrapping_add(r.fp_partial);
            wake_guard |= r.wake_guard;
            if let Some((timed, min_wake, recv_blocked)) = r.quiet {
                fold.0 &= timed;
                fold.1 = match (fold.1, min_wake) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                fold.2 &= recv_blocked;
            }
        }

        let next = if live == 0 {
            cause = Some(StopCause::Done { at: now });
            Decision::Stop { at: now }
        } else if now >= limit {
            cause = Some(StopCause::CycleLimit { in_flight });
            Decision::Stop { at: now }
        } else {
            let mut stalled = false;
            if watchdog > 0 {
                if fp != last_fingerprint {
                    last_fingerprint = fp;
                    last_progress_at = now;
                } else if wake_guard {
                    // Same healthy-timed-stall carve-out as the
                    // sequential engine's watchdog.
                    last_progress_at = now;
                } else if now - last_progress_at >= watchdog {
                    cause = Some(StopCause::Watchdog { at: now, in_flight });
                    stalled = true;
                }
            }
            if stalled {
                Decision::Stop { at: now }
            } else {
                let mut next_now = now + 1;
                let mut deadlocked = false;
                if in_flight == 0 && all_banks_quiet {
                    match classify_fold(fold.0, fold.1, fold.2) {
                        QuietState::AllTimed { min_wake } => {
                            let t = min_wake.min(limit);
                            if t > now + 1 {
                                last_progress_at = t;
                                next_now = t;
                            }
                        }
                        QuietState::Deadlocked => {
                            cause = Some(StopCause::Deadlock { at: now });
                            deadlocked = true;
                        }
                        QuietState::Mixed => {}
                    }
                }
                if deadlocked {
                    Decision::Stop { at: now }
                } else {
                    let mut kills = Vec::new();
                    if I::ACTIVE {
                        while let Some(kill) = injector.take_link_kill(next_now) {
                            kills.push((kill.node, kill.dir & 3));
                        }
                    }
                    Decision::Go { now: next_now, kills }
                }
            }
        };
        *lock(&shared.decision) = next;
        shared.phaser.release();
        gen += 1;
    }
    tile.trace = sink.into_events();
    cause
}

/// One tile's share of one simulated cycle — the same phases, in the same
/// order, as one iteration of the sequential engine's loop, restricted to
/// the tile's components.
fn execute_cycle<LS: WorkerSink, I: FaultInjector, M: Meter>(
    tile: &mut Tile<I, M>,
    shared: &Shared,
    cfg: &SystemConfig,
    now: Cycle,
    kills: &[(u16, u8)],
    round: u64,
    sink: &mut LS,
) {
    let tiles = shared.tiles();
    let topo = cfg.topology();
    let cur = (round & 1) as usize;
    let prev = cur ^ 1;

    // Sampling catch-up, as at the top of the sequential loop. Every tile
    // sees the same `now` sequence, so the forks commit windows in
    // lockstep; sampling before the boundary import is equivalent to
    // after it (imports only touch router input latches, which no sampled
    // quantity reads).
    if M::ACTIVE {
        while tile.meter.next_sample() <= now {
            sample_pes_banks(&mut tile.meter, &tile.pes, tile.pe_base, &tile.banks, tile.bank_base);
            tile.meter.commit_window();
        }
    }

    // 0a. Import boundary flits the neighbors' phase 2 latched last
    // cycle. Input latches are untouched until the route phase at the end
    // of this cycle, so importing here is exactly the sequential phase-2
    // delivery. Fixed from-tile order keeps the walk deterministic; the
    // final latch state is order-independent anyway (one writer per
    // (router, dir) input).
    for from in 0..tiles {
        let mut inbox = lock(&shared.mailboxes[prev][from * tiles + tile.index]);
        for (to, from_dir, flit) in inbox.drain(..) {
            tile.shard.import(to, from_dir, flit);
        }
    }

    // 0b. Scheduled permanent faults. Every tile sees the same kill list;
    // each applies the endpoints it owns (a dead link has a router on
    // each side, possibly in different tiles), and the leader alone logs
    // the event, once, like the sequential engine.
    for &(node, dir) in kills {
        if tile.index == 0 {
            let event = TraceEvent::FaultLinkKilled { node, dir };
            if LS::ACTIVE {
                sink.record(now, event);
            }
            push_tile_fault(&mut tile.fault_log, now, 0, event);
        }
        let nid = NodeId::new(node);
        let d = Dir::ALL[dir as usize & 3];
        if tile.shard.owns(node as usize) {
            tile.shard.kill_link_local(nid, d);
        }
        let neighbor = topo.node_of(topo.neighbor(topo.coord_of(nid), d));
        if tile.shard.owns(neighbor.index()) {
            tile.shard.kill_link_local(neighbor, d.opposite());
        }
    }

    // 1. Deliver ejections (PEs first, then banks, as in the sequential
    // engine; the census gate is tile-local, which is a pure optimization
    // — a drained shard has nothing to eject).
    if tile.shard.in_flight() > 0 {
        for (i, pe) in tile.pes.iter_mut().enumerate() {
            let node = pe.node();
            while let Some(mut flit) = tile.shard.eject(node) {
                if I::ACTIVE && !flit.kind().is_shared_memory() {
                    if let Some(bit) = tile.injector.corrupt_flit(now, node.index() as u16) {
                        flit.corrupt_payload_bit(bit);
                        let event =
                            TraceEvent::FaultFlitCorrupted { node: node.index() as u16, bit };
                        if LS::ACTIVE {
                            sink.record(now, event);
                        }
                        push_tile_fault(&mut tile.fault_log, now, 1, event);
                    }
                }
                if LS::ACTIVE {
                    sink.record(now, delivered_event(node, &flit, now));
                }
                // A directory probe must wake even a parked or retired PE:
                // the home bank blocks until it is answered.
                if flit.kind() == PacketKind::Coherence && flit.sub() == SubKind::Request {
                    tile.wake[i] = now;
                }
                pe.deliver_traced(flit, now, sink);
            }
        }
    }
    tile_banks_deliver(&mut tile.shard, &mut tile.banks, now, sink);

    // 2. Tick runnable components.
    for (i, pe) in tile.pes.iter_mut().enumerate() {
        if I::ACTIVE && tile.wake[i] <= now && !pe.is_done() {
            let stall = tile.injector.pe_stall(now, pe.node().index() as u16);
            if stall > 0 {
                tile.wake[i] = now + Cycle::from(stall);
                let event =
                    TraceEvent::FaultPeStall { node: pe.node().index() as u16, cycles: stall };
                if LS::ACTIVE {
                    sink.record(now, event);
                }
                push_tile_fault(&mut tile.fault_log, now, 2, event);
            }
        }
        if tile.wake[i] > now {
            tile.ticked[i] = false;
            continue;
        }
        tile.ticked[i] = true;
        let was_done = pe.is_done();
        pe.tick_traced(now, sink);
        if M::ACTIVE {
            tile.meter.pe_state(tile.pe_base + i, now, pe.activity());
        }
        if !was_done && pe.is_done() {
            tile.live -= 1;
        }
        tile.wake[i] = match pe.sleep_until() {
            Some(t) => t.max(now + 1),
            None => now + 1,
        };
    }
    banks_tick(&mut tile.banks, now, true, sink, &mut tile.injector);

    // 3. Inject (one flit per node per cycle). The composite uid stamped
    // by the shard keeps arbitration identical to the sequential sweep
    // without any cross-tile ordering.
    for (i, pe) in tile.pes.iter_mut().enumerate() {
        if !tile.ticked[i] {
            continue;
        }
        if let Some(flit) = pe.select_inject() {
            let kind = flit.kind().code();
            match tile.shard.try_inject(pe.node(), flit, now, false) {
                Ok(()) => {
                    if LS::ACTIVE {
                        let node = pe.node().index() as u16;
                        sink.record(now, TraceEvent::FlitInjected { node, kind });
                    }
                }
                Err(back) => pe.restore_inject(back),
            }
        }
    }
    tile_banks_inject(&mut tile.shard, &mut tile.banks, now, sink);

    // 4. Fabric: route + deliver local latches; boundary latches become
    // exports.
    tile.shard.tick_metered(now, sink, &mut tile.meter);

    // 5. Publish boundary flits into this round's mailboxes and report.
    let exports = tile.shard.take_exports();
    let exported = exports.len();
    for (to, from_dir, flit) in exports {
        let dest = shared.tile_of(to as usize);
        lock(&shared.mailboxes[cur][tile.index * tiles + dest]).push((to, from_dir, flit));
    }

    let quiet_local = tile.shard.in_flight() == 0 && exported == 0 && banks_quiet(&tile.banks);
    let watchdog_on = cfg.resilience().watchdog_cycles > 0;
    let (fp_partial, wake_guard) = if watchdog_on {
        (
            progress_fingerprint(&tile.pes, &tile.banks),
            tile.pes.iter().enumerate().any(|(i, pe)| !pe.is_done() && tile.wake[i] > now + 1),
        )
    } else {
        (0, false)
    };
    *lock(&shared.reports[tile.index]) = TileReport {
        live: tile.live,
        in_flight: tile.shard.in_flight(),
        exported,
        banks_quiet: banks_quiet(&tile.banks),
        fp_partial,
        wake_guard,
        quiet: quiet_local.then(|| quiet_fold(&tile.pes)),
    };
}

/// [`crate::system`]'s `banks_deliver`, restricted to a shard.
fn tile_banks_deliver<LS: WorkerSink>(
    shard: &mut NetworkShard,
    banks: &mut [Bank],
    now: Cycle,
    sink: &mut LS,
) {
    for bank in banks {
        if let Some(flit) = bank.hold.take() {
            if let Err(back) = bank.unit.handle_incoming(flit) {
                bank.hold = Some(back);
            }
        }
        while bank.hold.is_none() && shard.in_flight() > 0 {
            match shard.eject(bank.node) {
                Some(flit) => {
                    if LS::ACTIVE {
                        sink.record(now, delivered_event(bank.node, &flit, now));
                    }
                    if let Err(back) = bank.unit.handle_incoming(flit) {
                        bank.hold = Some(back);
                    }
                }
                None => break,
            }
        }
    }
}

/// [`crate::system`]'s `banks_inject`, restricted to a shard (bank
/// responses carry the `from_bank` uid tag, sorting them after every
/// same-cycle PE injection exactly like the sequential sweep order).
fn tile_banks_inject<LS: WorkerSink>(
    shard: &mut NetworkShard,
    banks: &mut [Bank],
    now: Cycle,
    sink: &mut LS,
) {
    for bank in banks {
        if let Some(flit) = bank.unit.pop_outgoing() {
            let kind = flit.kind().code();
            match shard.try_inject(bank.node, flit, now, true) {
                Ok(()) => {
                    if LS::ACTIVE {
                        let node = bank.node.index() as u16;
                        sink.record(now, TraceEvent::FlitInjected { node, kind });
                    }
                }
                Err(back) => bank.unit.return_outgoing(back),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_noc::coord::Topology;

    fn active_nodes(cfg: &SystemConfig, lo: u16, hi: u16) -> usize {
        let plan = cfg.node_plan();
        (lo..hi)
            .filter(|&n| {
                let id = NodeId::new(n);
                plan.is_bank_node(id) || plan.rank_of_node(id).is_some()
            })
            .count()
    }

    #[test]
    fn tile_starts_balance_load_not_node_count() {
        // 11 busy nodes (bank 0 + 10 ranks) in the low corner of an 8×8:
        // the old equal-node split (32|32) hands every busy node to tile
        // 0; the weighted split moves the boundary into the busy region.
        let topo = Topology::new(8, 8).unwrap();
        let cfg = SystemConfig::builder().topology(topo).compute_pes(10).build().unwrap();
        let starts = tile_starts(&cfg, 2);
        assert_eq!(starts, [0, starts[1], 64]);
        let t0 = active_nodes(&cfg, starts[0], starts[1]);
        let t1 = active_nodes(&cfg, starts[1], starts[2]);
        assert!(t0 < 11, "tile 0 must not own every busy node (got all {t0})");
        assert!(t1 >= 3, "tile 1 got only {t1} busy nodes");
    }

    #[test]
    fn tile_starts_reduce_to_even_split_when_fully_populated() {
        // All nodes busy → uniform weights → the node-count split.
        let topo = Topology::new(4, 4).unwrap();
        let cfg = SystemConfig::builder().topology(topo).compute_pes(15).build().unwrap();
        assert_eq!(tile_starts(&cfg, 4), [0, 4, 8, 12, 16]);
    }

    #[test]
    fn tile_starts_are_valid_partitions() {
        for (w, h, pes, banks, tiles) in [
            (4u8, 4u8, 15usize, 1usize, 2usize),
            (4, 4, 1, 1, 4),
            (8, 8, 10, 4, 7),
            (4, 4, 2, 2, 16),
        ] {
            let topo = Topology::new(w, h).unwrap();
            let cfg = SystemConfig::builder()
                .topology(topo)
                .compute_pes(pes)
                .memory_banks(banks)
                .build()
                .unwrap();
            let starts = tile_starts(&cfg, tiles);
            assert_eq!(starts.len(), tiles + 1);
            assert_eq!(starts[0], 0);
            assert_eq!(*starts.last().unwrap() as usize, topo.nodes());
            assert!(
                starts.windows(2).all(|p| p[0] < p[1]),
                "{w}x{h}/{tiles} tiles: empty tile in {starts:?}"
            );
        }
    }
}
