//! Property test for the banked shared memory: on a 2-bank 4×4 system,
//! an arbitrary batch of word writes reads back exactly, and the
//! scheduled engine reproduces the sequential reference engine
//! bit-for-bit (cycles, traffic, per-bank counters).

use medea_core::api::PeApi;
use medea_core::system::{Kernel, RunResult, System};
use medea_core::SystemConfig;
use proptest::prelude::*;

fn cfg() -> SystemConfig {
    SystemConfig::builder().compute_pes(3).memory_banks(2).cycle_limit(20_000_000).build().unwrap()
}

/// Three ranks: rank 0 writes the batch (uncached), signals; rank 1 reads
/// every word back and checks it; rank 2 re-reads a cached copy through
/// the L1 so the block path crosses banks too.
fn kernels(writes: Vec<(u32, u32)>) -> Vec<Kernel> {
    use medea_sim::ids::Rank;
    let w0 = writes.clone();
    let w1 = writes.clone();
    let w2 = writes;
    vec![
        Box::new(move |api: PeApi| {
            for (addr, value) in &w0 {
                api.uncached_store_u32(*addr, *value);
            }
            api.send_to_rank(Rank::new(1), &[1]);
            api.send_to_rank(Rank::new(2), &[1]);
        }),
        Box::new(move |api: PeApi| {
            let _ = api.recv_from_rank(Rank::new(0));
            for (addr, value) in &w1 {
                assert_eq!(api.uncached_load_u32(*addr), *value, "read-back at {addr:#x}");
            }
        }),
        Box::new(move |api: PeApi| {
            let _ = api.recv_from_rank(Rank::new(0));
            for (addr, value) in &w2 {
                api.invalidate_line(*addr);
                assert_eq!(api.load_u32(*addr), *value, "cached read-back at {addr:#x}");
            }
        }),
    ]
}

fn fingerprint(r: &RunResult) -> (u64, u64, u64, Vec<(u64, u64, u64)>) {
    (
        r.cycles,
        r.fabric_delivered,
        r.fabric_deflections,
        r.banks
            .iter()
            .map(|b| {
                (b.mpmmu.single_reads.get(), b.mpmmu.single_writes.get(), b.mpmmu.block_reads.get())
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn banked_write_read_matches_reference(
        raw in proptest::collection::vec((0u32..128, any::<u32>()), 1..24)
    ) {
        // Distinct word addresses (last write wins would complicate the
        // read-back check; distinctness keeps the property sharp).
        let mut writes: Vec<(u32, u32)> = Vec::new();
        for (word, value) in raw {
            let addr = word * 4;
            if !writes.iter().any(|(a, _)| *a == addr) {
                writes.push((addr, value));
            }
        }
        let fast = System::run(&cfg(), &[], kernels(writes.clone())).expect("scheduled engine");
        let slow =
            System::run_reference(&cfg(), &[], kernels(writes)).expect("reference engine");
        prop_assert_eq!(fingerprint(&fast), fingerprint(&slow));
        prop_assert_eq!(fast.banks.len(), 2);
    }
}
