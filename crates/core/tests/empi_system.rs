//! End-to-end eMPI properties through the full simulated stack: framed
//! messages of arbitrary length survive the NoC's padding, reordering and
//! the credit window; the full-duplex `sendrecv` engine exchanges
//! windowed messages in both directions at once; collectives agree with
//! their host-side references under every algorithm.

use medea_core::api::PeApi;
use medea_core::system::{Kernel, System};
use medea_core::{empi, CollectiveAlgo, Empi, SystemConfig, Topology};
use medea_sim::ids::Rank;
use medea_sim::rng::SplitMix64;
use proptest::prelude::*;

fn sys(pes: usize) -> SystemConfig {
    SystemConfig::builder().compute_pes(pes).cycle_limit(100_000_000).build().unwrap()
}

fn sys_on(topology: Topology, pes: usize) -> SystemConfig {
    SystemConfig::builder()
        .topology(topology)
        .compute_pes(pes)
        .cycle_limit(200_000_000)
        .build()
        .unwrap()
}

proptest! {
    // Full-system runs are expensive; a handful of cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any payload length (including the chunking boundaries 15/16/30/31)
    /// round-trips exactly.
    #[test]
    fn framed_messages_roundtrip(len in 0usize..70, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let payload: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
        let expect = payload.clone();
        System::run(
            &sys(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    let got = Empi::new(api).recv(Rank::new(1));
                    assert_eq!(got, expect);
                }) as Kernel,
                Box::new(move |api: PeApi| {
                    Empi::new(api).send(Rank::new(0), &payload);
                }) as Kernel,
            ],
        )
        .expect("run");
    }

    /// Back-to-back messages between the same pair arrive in order with
    /// no cross-talk.
    #[test]
    fn sequential_messages_stay_ordered(count in 1usize..6, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let messages: Vec<Vec<u32>> = (0..count)
            .map(|_| {
                let len = 1 + rng.next_below(40) as usize;
                (0..len).map(|_| rng.next_u64() as u32).collect()
            })
            .collect();
        let expect = messages.clone();
        System::run(
            &sys(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    for want in &expect {
                        let got = comm.recv(Rank::new(1));
                        assert_eq!(&got, want);
                    }
                }) as Kernel,
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    for m in &messages {
                        comm.send(Rank::new(0), m);
                    }
                }) as Kernel,
            ],
        )
        .expect("run");
    }

    /// The framing/credit protocol round-trips for random message lengths
    /// `0..=MAX_MESSAGE_WORDS` between a random rank pair, with both
    /// exchange directions running *concurrently* through `sendrecv` —
    /// the opposite-direction windowed exchange that plain `send`/`recv`
    /// cannot express — on a rectangular (8×2) torus.
    #[test]
    fn sendrecv_exchange_roundtrips_any_length(
        len_ab in 0usize..=empi::MAX_MESSAGE_WORDS,
        len_ba in 0usize..=empi::MAX_MESSAGE_WORDS,
        pair_seed in any::<u64>(),
    ) {
        let pes = 6usize;
        let mut rng = SplitMix64::new(pair_seed);
        let a = rng.next_below(pes as u64) as usize;
        let b = {
            let mut b = rng.next_below(pes as u64) as usize;
            if b == a {
                b = (b + 1) % pes;
            }
            b
        };
        let msg_ab: Vec<u32> = (0..len_ab).map(|_| rng.next_u64() as u32).collect();
        let msg_ba: Vec<u32> = (0..len_ba).map(|_| rng.next_u64() as u32).collect();
        let kernels: Vec<Kernel> = (0..pes)
            .map(|r| {
                let msg_ab = msg_ab.clone();
                let msg_ba = msg_ba.clone();
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    if r == a {
                        let peer = Some(Rank::new(b as u8));
                        let got = comm.sendrecv(peer, &msg_ab, peer).expect("duplex");
                        assert_eq!(got, msg_ba, "a<-b payload");
                    } else if r == b {
                        let peer = Some(Rank::new(a as u8));
                        let got = comm.sendrecv(peer, &msg_ba, peer).expect("duplex");
                        assert_eq!(got, msg_ab, "b<-a payload");
                    }
                }) as Kernel
            })
            .collect();
        System::run(&sys_on(Topology::new(8, 2).unwrap(), pes), &[], kernels)
            .expect("duplex exchange run");
    }

    /// Collectives match their host-side references for random inputs and
    /// roots, under every algorithm.
    #[test]
    fn collectives_match_reference(
        pes in 2usize..9,
        root_seed in any::<u64>(),
        algo_idx in 0usize..3,
    ) {
        let algo = CollectiveAlgo::ALL[algo_idx];
        let mut rng = SplitMix64::new(root_seed);
        let root = Rank::new(rng.next_below(pes as u64) as u8);
        let bcast_msg: Vec<u32> = (0..17).map(|_| rng.next_u64() as u32).collect();
        let values: Vec<f64> = (0..pes).map(|r| r as f64 + 0.25).collect();
        let expect_sum: f64 = values.iter().sum();
        let cfg = SystemConfig::builder()
            .compute_pes(pes)
            .collective_algo(algo)
            .cycle_limit(100_000_000)
            .build()
            .unwrap();
        let kernels: Vec<Kernel> = (0..pes)
            .map(|r| {
                let bcast_msg = bcast_msg.clone();
                let values = values.clone();
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    let got = comm.bcast(root, if comm.rank() == root { &bcast_msg } else { &[] });
                    assert_eq!(got, bcast_msg, "bcast at rank {r}");
                    let sum = comm.reduce(root, values[r]);
                    if comm.rank() == root {
                        assert_eq!(sum.expect("root").to_bits(), expect_sum.to_bits(), "reduce");
                    }
                    let all = comm.allreduce(values[r]);
                    assert_eq!(all.to_bits(), expect_sum.to_bits(), "allreduce at rank {r}");
                    comm.barrier();
                    let mine = vec![r as u32; r + 1];
                    if let Some(rows) = comm.gather(root, &mine) {
                        for (src, row) in rows.iter().enumerate() {
                            assert_eq!(row, &vec![src as u32; src + 1], "gather from {src}");
                        }
                    }
                    let chunks: Vec<Vec<u32>> =
                        (0..comm.ranks()).map(|k| vec![(k * 3) as u32; k + 2]).collect();
                    let chunk = comm.scatter(
                        root,
                        if comm.rank() == root { &chunks } else { &[] },
                    );
                    assert_eq!(chunk, vec![(r * 3) as u32; r + 2], "scatter to {r}");
                }) as Kernel
            })
            .collect();
        System::run(&cfg, &[], kernels).expect("collective run");
    }
}

#[test]
fn chunk_boundary_lengths_exact() {
    // Deterministic sweep of the boundary lengths around the 15-word
    // chunk size and the eager/rendezvous switch (2 chunks = 30 words).
    for len in [0usize, 1, 14, 15, 16, 29, 30, 31, 45, 46, 60, 61] {
        let payload: Vec<u32> = (0..len as u32).map(|i| i * 7 + 1).collect();
        let expect = payload.clone();
        System::run(
            &sys(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    assert_eq!(Empi::new(api).recv(Rank::new(1)), expect, "len {len}");
                }) as Kernel,
                Box::new(move |api: PeApi| {
                    Empi::new(api).send(Rank::new(0), &payload);
                }) as Kernel,
            ],
        )
        .unwrap_or_else(|e| panic!("len {len}: {e}"));
    }
}

#[test]
fn maximum_length_message_roundtrips() {
    // The documented limit is real: a MAX_MESSAGE_WORDS message (256
    // chunks, the full 8-bit chunk-index space) survives the credit
    // window end to end.
    let payload: Vec<u32> =
        (0..empi::MAX_MESSAGE_WORDS as u32).map(|i| i.wrapping_mul(31)).collect();
    let expect = payload.clone();
    System::run(
        &sys(2),
        &[],
        vec![
            Box::new(move |api: PeApi| {
                assert_eq!(Empi::new(api).recv(Rank::new(1)), expect);
            }) as Kernel,
            Box::new(move |api: PeApi| {
                Empi::new(api).send(Rank::new(0), &payload);
            }) as Kernel,
        ],
    )
    .expect("max-length run");
}

#[test]
#[should_panic(expected = "kernel on n2 panicked")]
fn oversized_message_panics() {
    // The sender's kernel thread panics with the "exceeds the ... limit"
    // diagnostic; the engine surfaces it as a kernel-panic abort instead
    // of limping into a deadlock.
    let payload = vec![0u32; empi::MAX_MESSAGE_WORDS + 1];
    let _ = System::run(
        &sys(2),
        &[],
        vec![
            Box::new(move |api: PeApi| {
                let _ = Empi::new(api).recv(Rank::new(1));
            }) as Kernel,
            Box::new(move |api: PeApi| {
                Empi::new(api).send(Rank::new(0), &payload);
            }) as Kernel,
        ],
    );
}

#[test]
fn all_to_one_gather_under_contention() {
    // Every rank simultaneously streams a windowed message to rank 0 —
    // maximum pressure on the ejection channel and the TIE double buffer.
    let pes = 6;
    let kernels: Vec<Kernel> = (0..pes)
        .map(|r| {
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                if r == 0 {
                    for src in 1..comm.ranks() {
                        let got = comm.recv(Rank::new(src as u8));
                        let want: Vec<u32> = (0..50).map(|i| (src * 1000 + i) as u32).collect();
                        assert_eq!(got, want, "message from rank {src}");
                    }
                } else {
                    let payload: Vec<u32> = (0..50).map(|i| (r * 1000 + i) as u32).collect();
                    comm.send(Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect();
    System::run(&sys(pes), &[], kernels).expect("gather");
}

#[test]
fn chain_of_duplex_exchanges_pipelines() {
    // Every rank simultaneously sendrecvs a windowed (5-chunk) message to
    // its successor while receiving from its predecessor — the Jacobi
    // halo-exchange shape. With the old phased send/recv this serialized;
    // the duplex engine must simply complete it.
    let pes = 8;
    let row: Vec<u32> = (0..70u32).collect();
    let kernels: Vec<Kernel> = (0..pes)
        .map(|r| {
            let row = row.clone();
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                let next = (r + 1 < pes).then(|| Rank::new((r + 1) as u8));
                let prev = (r > 0).then(|| Rank::new((r - 1) as u8));
                let got = comm.sendrecv(next, if next.is_some() { &row } else { &[] }, prev);
                match (prev, got) {
                    (Some(_), Some(got)) => assert_eq!(got, row, "rank {r}"),
                    (None, None) => {}
                    (p, g) => panic!("rank {r}: prev {p:?} but got {}", g.is_some()),
                }
            }) as Kernel
        })
        .collect();
    System::run(&sys(pes), &[], kernels).expect("chain exchange");
}

#[test]
fn tree_barrier_beats_linear_at_63_ranks() {
    // The whole point of the pluggable algorithms: on a fully populated
    // 8×8 torus the O(ranks) linear barrier must cost several times the
    // O(log ranks) tree barriers.
    let cycles_for = |algo: CollectiveAlgo| {
        let cfg = SystemConfig::builder()
            .topology(Topology::new(8, 8).unwrap())
            .compute_pes(63)
            .collective_algo(algo)
            .cycle_limit(400_000_000)
            .build()
            .unwrap();
        let kernels: Vec<Kernel> = (0..63)
            .map(|_| {
                Box::new(move |api: PeApi| {
                    let comm = Empi::new(api);
                    for _ in 0..4 {
                        comm.barrier();
                    }
                }) as Kernel
            })
            .collect();
        System::run(&cfg, &[], kernels).expect("barrier run").cycles
    };
    let linear = cycles_for(CollectiveAlgo::Linear);
    let tree = cycles_for(CollectiveAlgo::BinomialTree);
    let doubling = cycles_for(CollectiveAlgo::RecursiveDoubling);
    assert!(tree * 3 < linear, "binomial {tree} not ≥3x faster than linear {linear}");
    assert!(doubling * 3 < linear, "doubling {doubling} not ≥3x faster than linear {linear}");
}
