//! End-to-end eMPI properties through the full simulated stack: framed
//! messages of arbitrary length survive the NoC's padding, reordering and
//! the credit window.

use medea_core::api::PeApi;
use medea_core::system::{Kernel, System};
use medea_core::{empi, SystemConfig};
use medea_sim::ids::Rank;
use medea_sim::rng::SplitMix64;
use proptest::prelude::*;

fn sys(pes: usize) -> SystemConfig {
    SystemConfig::builder().compute_pes(pes).cycle_limit(100_000_000).build().unwrap()
}

proptest! {
    // Full-system runs are expensive; a handful of cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any payload length (including the chunking boundaries 15/16/30/31)
    /// round-trips exactly.
    #[test]
    fn framed_messages_roundtrip(len in 0usize..70, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let payload: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
        let expect = payload.clone();
        System::run(
            &sys(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    let got = empi::recv(&api, Rank::new(1));
                    assert_eq!(got, expect);
                }) as Kernel,
                Box::new(move |api: PeApi| {
                    empi::send(&api, Rank::new(0), &payload);
                }) as Kernel,
            ],
        )
        .expect("run");
    }

    /// Back-to-back messages between the same pair arrive in order with
    /// no cross-talk.
    #[test]
    fn sequential_messages_stay_ordered(count in 1usize..6, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let messages: Vec<Vec<u32>> = (0..count)
            .map(|_| {
                let len = 1 + rng.next_below(40) as usize;
                (0..len).map(|_| rng.next_u64() as u32).collect()
            })
            .collect();
        let expect = messages.clone();
        System::run(
            &sys(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    for want in &expect {
                        let got = empi::recv(&api, Rank::new(1));
                        assert_eq!(&got, want);
                    }
                }) as Kernel,
                Box::new(move |api: PeApi| {
                    for m in &messages {
                        empi::send(&api, Rank::new(0), m);
                    }
                }) as Kernel,
            ],
        )
        .expect("run");
    }
}

#[test]
fn chunk_boundary_lengths_exact() {
    // Deterministic sweep of the boundary lengths around the 15-word
    // chunk size and the eager/rendezvous switch (2 chunks = 30 words).
    for len in [0usize, 1, 14, 15, 16, 29, 30, 31, 45, 46, 60, 61] {
        let payload: Vec<u32> = (0..len as u32).map(|i| i * 7 + 1).collect();
        let expect = payload.clone();
        System::run(
            &sys(2),
            &[],
            vec![
                Box::new(move |api: PeApi| {
                    assert_eq!(empi::recv(&api, Rank::new(1)), expect, "len {len}");
                }) as Kernel,
                Box::new(move |api: PeApi| {
                    empi::send(&api, Rank::new(0), &payload);
                }) as Kernel,
            ],
        )
        .unwrap_or_else(|e| panic!("len {len}: {e}"));
    }
}

#[test]
fn all_to_one_gather_under_contention() {
    // Every rank simultaneously streams a windowed message to rank 0 —
    // maximum pressure on the ejection channel and the TIE double buffer.
    let pes = 6;
    let kernels: Vec<Kernel> = (0..pes)
        .map(|r| {
            Box::new(move |api: PeApi| {
                if r == 0 {
                    for src in 1..api.ranks() {
                        let got = empi::recv(&api, Rank::new(src as u8));
                        let want: Vec<u32> = (0..50).map(|i| (src * 1000 + i) as u32).collect();
                        assert_eq!(got, want, "message from rank {src}");
                    }
                } else {
                    let payload: Vec<u32> = (0..50).map(|i| (r * 1000 + i) as u32).collect();
                    empi::send(&api, Rank::new(0), &payload);
                }
            }) as Kernel
        })
        .collect();
    System::run(&sys(pes), &[], kernels).expect("gather");
}
