//! # medea-fault — deterministic cross-layer fault injection
//!
//! The MEDEA paper (§II) evaluates a healthy machine; this crate is the
//! reproduction's *unhealthy-machine* harness. It injects seeded,
//! replayable faults into every architectural layer so the resilience
//! machinery — payload checksums with end-to-end retransmission in eMPI,
//! bank-request retry in the pif2NoC bridge, deflection re-routing around
//! dead links, and the cycle-budget watchdog in `System::run` — can be
//! exercised and measured instead of merely trusted.
//!
//! # The zero-cost injector template
//!
//! The cycle engine is generic over a [`FaultInjector`] exactly the way
//! it is generic over `medea_trace::TraceSink`:
//!
//! * [`NullInjector`] carries the associated constant
//!   [`FaultInjector::ACTIVE`]` = false`; every decision site in the
//!   engine is guarded by `if I::ACTIVE`, so monomorphization deletes
//!   fault injection from the default build entirely. A run with the
//!   null injector is bit-for-bit identical to a run of the pre-fault
//!   engine — pinned by the golden suite.
//! * [`ScheduledInjector`] makes per-event decisions by *stateless
//!   hashing*: each (fault domain, component, cycle) triple seeds a fresh
//!   `SplitMix64` stream via `SplitMix64::for_component`, so a decision
//!   never depends on how many other decisions were made before it. The
//!   same [`FaultConfig`] therefore produces the same fault schedule
//!   regardless of event interleaving — fault runs replay exactly.
//!
//! # Fault classes (one per layer)
//!
//! | fault | layer | decision hook | recovery path |
//! |-------|-------|---------------|---------------|
//! | transient flit payload corruption | NoC link | [`FaultInjector::corrupt_flit`] | checksum + eMPI NACK/retransmit |
//! | stuck-dead link | NoC switch | [`FaultInjector::take_link_kill`] | deflection re-route (counted) |
//! | dropped read response | MPMMU bank | [`FaultInjector::bank_drop`] | bridge response timeout + retry |
//! | delayed bank response | MPMMU bank | [`FaultInjector::bank_delay`] | absorbed (latency only) |
//! | PE stall window | PE | [`FaultInjector::pe_stall`] | absorbed (latency only) |
//!
//! Corruption targets only `Message`-kind flits: shared-memory traffic is
//! protected by the bridge's retry path instead, and corrupting lock or
//! write handshakes would model a *protocol* failure, not a transient
//! data upset. Likewise banks only drop read responses — a dropped grant
//! or unlock ack is unrecoverable by design (the real machine's
//! handshake wires are not on the payload path).
//!
//! Rates are expressed in parts-per-million per opportunity (a delivered
//! flit, a dispatched bank transaction, a PE tick), keeping
//! [`FaultConfig`] `Copy`, `Eq` and exactly reproducible across
//! platforms — no floating point in the schedule.

use medea_sim::{rng::SplitMix64, Cycle};

/// Upper bound on scheduled link kills per run (a `Copy` config cannot
/// hold a `Vec`; four dead links already disconnects a 4×4 torus node).
pub const MAX_DEAD_LINKS: usize = 4;

/// One part-per-million: rate denominator for all fault probabilities.
pub const PPM: u64 = 1_000_000;

/// Domain separators for the stateless per-event hash streams. Distinct
/// constants guarantee e.g. a flit-corruption roll at `(node 3, cycle 9)`
/// is independent of a PE-stall roll at the same coordinates.
const DOMAIN_FLIT: u64 = 0x666C_6974; // "flit"
const DOMAIN_DROP: u64 = 0x6472_6F70; // "drop"
const DOMAIN_DELAY: u64 = 0x6465_6C61; // "dela"
const DOMAIN_STALL: u64 = 0x7374_616C; // "stal"

/// A scheduled stuck-dead link fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLink {
    /// Linear node index of the switch owning the link.
    pub node: u16,
    /// Port index (`medea_noc::coord::Dir` order: N=0 E=1 S=2 W=3).
    pub dir: u8,
    /// Cycle at which the link dies.
    pub at: Cycle,
}

/// Seeded fault schedule: rates per layer plus scheduled link kills.
///
/// `Copy` so it can ride inside the system configuration; the default is
/// the all-zero schedule (no faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Root seed for every decision stream.
    pub seed: u64,
    /// Per delivered `Message`-flit probability (ppm) of a single-bit
    /// payload corruption.
    pub flit_corrupt_ppm: u32,
    /// Per dispatched read transaction probability (ppm) that the bank
    /// drops its response.
    pub bank_drop_ppm: u32,
    /// Per dispatched transaction probability (ppm) of an extended bank
    /// busy time.
    pub bank_delay_ppm: u32,
    /// Extra busy cycles added when a bank delay fires.
    pub bank_delay_cycles: u32,
    /// Per PE-tick probability (ppm) of a stall window opening.
    pub pe_stall_ppm: u32,
    /// Stall window length when a PE stall fires.
    pub pe_stall_cycles: u32,
    /// Scheduled stuck-dead links (`None` slots are ignored).
    pub dead_links: [Option<DeadLink>; MAX_DEAD_LINKS],
}

impl FaultConfig {
    /// Whether this schedule can ever produce a fault.
    pub fn is_inert(&self) -> bool {
        self.flit_corrupt_ppm == 0
            && self.bank_drop_ppm == 0
            && self.bank_delay_ppm == 0
            && self.pe_stall_ppm == 0
            && self.dead_links.iter().all(Option::is_none)
    }

    /// Schedule `link` to die, filling the first free slot.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_DEAD_LINKS`] slots are taken.
    pub fn kill_link(mut self, link: DeadLink) -> Self {
        let slot = self
            .dead_links
            .iter_mut()
            .find(|s| s.is_none())
            .unwrap_or_else(|| panic!("more than {MAX_DEAD_LINKS} dead links scheduled"));
        *slot = Some(link);
        self
    }
}

/// Counters of faults actually injected during a run. Carried on
/// `RunResult` so experiments can report injected-fault totals next to
/// the recovery counters (retransmissions, reroutes, retries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Message flits whose payload was corrupted.
    pub flits_corrupted: u64,
    /// Links killed (each counts once, at its scheduled cycle).
    pub links_killed: u64,
    /// Bank read responses dropped.
    pub bank_drops: u64,
    /// Bank transactions delayed.
    pub bank_delays: u64,
    /// Total extra bank busy cycles injected.
    pub bank_delay_cycles: u64,
    /// PE stall windows opened.
    pub pe_stalls: u64,
    /// Total PE cycles stalled.
    pub pe_stall_cycles: u64,
}

impl FaultStats {
    /// Total faults injected, across every class.
    pub fn total(&self) -> u64 {
        self.flits_corrupted
            + self.links_killed
            + self.bank_drops
            + self.bank_delays
            + self.pe_stalls
    }

    /// Fold another injector's counters into this one. Every field is a
    /// plain sum, so merging the per-tile forks of the tiled cycle engine
    /// (see [`FaultInjector::fork_for_tile`]) in any order reproduces the
    /// totals a single sequential injector would have counted.
    pub fn merge(&mut self, other: &FaultStats) {
        self.flits_corrupted += other.flits_corrupted;
        self.links_killed += other.links_killed;
        self.bank_drops += other.bank_drops;
        self.bank_delays += other.bank_delays;
        self.bank_delay_cycles += other.bank_delay_cycles;
        self.pe_stalls += other.pe_stalls;
        self.pe_stall_cycles += other.pe_stall_cycles;
    }
}

/// Fault-decision source the cycle engine is generic over.
///
/// Mirrors `medea_trace::TraceSink`: when [`ACTIVE`](Self::ACTIVE) is
/// `false` every call site is guarded out at compile time, so the
/// default engine carries zero overhead — not even a branch.
///
/// `Send` is a supertrait because the tiled parallel cycle engine moves
/// per-tile injector forks (see [`FaultInjector::fork_for_tile`]) onto
/// worker threads; both shipped injectors are plain data and satisfy it
/// trivially.
pub trait FaultInjector: Send {
    /// Whether this injector can ever inject. `false` lets the engine
    /// monomorphize all fault hooks away.
    const ACTIVE: bool;

    /// Should the `Message` flit about to be delivered at `node` on cycle
    /// `now` be corrupted? Returns the payload bit to flip.
    fn corrupt_flit(&mut self, now: Cycle, node: u16) -> Option<u8>;

    /// Next scheduled link kill due at or before `now`, if any. The
    /// engine drains this every cycle until it returns `None`.
    fn take_link_kill(&mut self, now: Cycle) -> Option<DeadLink>;

    /// Should the read transaction `bank` dispatched at `now` lose its
    /// response?
    fn bank_drop(&mut self, now: Cycle, bank: u16) -> bool;

    /// Extra busy cycles for the transaction `bank` dispatched at `now`
    /// (0 = no fault).
    fn bank_delay(&mut self, now: Cycle, bank: u16) -> u32;

    /// Stall window opening for PE `node` at `now`, in cycles (0 = no
    /// fault). Only consulted when the PE is not already stalled.
    fn pe_stall(&mut self, now: Cycle, node: u16) -> u32;

    /// Faults injected so far.
    fn stats(&self) -> FaultStats;

    /// An independent injector for one tile of the parallel cycle engine,
    /// or `None` if this injector cannot be split (the engine then falls
    /// back to the sequential path).
    ///
    /// A fork must answer every *stateless* decision hook —
    /// [`corrupt_flit`](Self::corrupt_flit),
    /// [`bank_drop`](Self::bank_drop), [`bank_delay`](Self::bank_delay),
    /// [`pe_stall`](Self::pe_stall) — exactly as the parent would, so
    /// that partitioning components across forks cannot change the fault
    /// schedule. Forks start with zeroed [`FaultStats`] (the engine merges
    /// them back with [`FaultStats::merge`]) and are never polled for
    /// [`take_link_kill`](Self::take_link_kill): link kills are global
    /// events the engine's leader drains from the *original* injector
    /// once per cycle.
    fn fork_for_tile(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// The inert injector: never injects, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullInjector;

impl FaultInjector for NullInjector {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn corrupt_flit(&mut self, _now: Cycle, _node: u16) -> Option<u8> {
        None
    }

    #[inline(always)]
    fn take_link_kill(&mut self, _now: Cycle) -> Option<DeadLink> {
        None
    }

    #[inline(always)]
    fn bank_drop(&mut self, _now: Cycle, _bank: u16) -> bool {
        false
    }

    #[inline(always)]
    fn bank_delay(&mut self, _now: Cycle, _bank: u16) -> u32 {
        0
    }

    #[inline(always)]
    fn pe_stall(&mut self, _now: Cycle, _node: u16) -> u32 {
        0
    }

    #[inline(always)]
    fn stats(&self) -> FaultStats {
        FaultStats::default()
    }

    #[inline(always)]
    fn fork_for_tile(&self) -> Option<Self> {
        Some(NullInjector)
    }
}

/// Seeded injector executing a [`FaultConfig`] schedule.
///
/// Every decision hashes `(domain, component, cycle)` into a fresh
/// `SplitMix64` stream — no decision consumes state another decision
/// observes, so the schedule is independent of call order and replays
/// exactly under any engine refactoring that preserves *when* faults are
/// asked about. Only the fired-link bookkeeping and the stats counters
/// are stateful.
#[derive(Debug, Clone)]
pub struct ScheduledInjector {
    cfg: FaultConfig,
    /// Bitmask over `cfg.dead_links` slots that already fired.
    fired_links: u8,
    stats: FaultStats,
}

impl ScheduledInjector {
    /// Injector executing `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        ScheduledInjector { cfg, fired_links: 0, stats: FaultStats::default() }
    }

    /// The schedule this injector executes.
    pub const fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Stateless per-event roll: uniform in `0..PPM`.
    fn roll(&self, domain: u64, component: u64, now: Cycle) -> u64 {
        let mut rng =
            SplitMix64::for_component(self.cfg.seed ^ domain, component ^ now.rotate_left(17));
        rng.next_below(PPM)
    }
}

impl FaultInjector for ScheduledInjector {
    const ACTIVE: bool = true;

    fn corrupt_flit(&mut self, now: Cycle, node: u16) -> Option<u8> {
        if self.cfg.flit_corrupt_ppm == 0
            || self.roll(DOMAIN_FLIT, node as u64, now) >= self.cfg.flit_corrupt_ppm as u64
        {
            return None;
        }
        self.stats.flits_corrupted += 1;
        // Derive the bit from a second stateless stream so it replays too.
        let mut rng =
            SplitMix64::for_component(self.cfg.seed ^ !DOMAIN_FLIT, node as u64 ^ now << 1);
        Some(rng.next_below(32) as u8)
    }

    fn take_link_kill(&mut self, now: Cycle) -> Option<DeadLink> {
        for (i, slot) in self.cfg.dead_links.iter().enumerate() {
            let Some(link) = slot else { continue };
            if self.fired_links & (1 << i) == 0 && now >= link.at {
                self.fired_links |= 1 << i;
                self.stats.links_killed += 1;
                return Some(*link);
            }
        }
        None
    }

    fn bank_drop(&mut self, now: Cycle, bank: u16) -> bool {
        if self.cfg.bank_drop_ppm == 0
            || self.roll(DOMAIN_DROP, bank as u64, now) >= self.cfg.bank_drop_ppm as u64
        {
            return false;
        }
        self.stats.bank_drops += 1;
        true
    }

    fn bank_delay(&mut self, now: Cycle, bank: u16) -> u32 {
        if self.cfg.bank_delay_ppm == 0
            || self.roll(DOMAIN_DELAY, bank as u64, now) >= self.cfg.bank_delay_ppm as u64
        {
            return 0;
        }
        self.stats.bank_delays += 1;
        self.stats.bank_delay_cycles += self.cfg.bank_delay_cycles as u64;
        self.cfg.bank_delay_cycles
    }

    fn pe_stall(&mut self, now: Cycle, node: u16) -> u32 {
        if self.cfg.pe_stall_ppm == 0
            || self.roll(DOMAIN_STALL, node as u64, now) >= self.cfg.pe_stall_ppm as u64
        {
            return 0;
        }
        self.stats.pe_stalls += 1;
        self.stats.pe_stall_cycles += self.cfg.pe_stall_cycles as u64;
        self.cfg.pe_stall_cycles
    }

    fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Every decision is a stateless hash of `(seed, domain, component,
    /// cycle)`, so a fresh injector over the same schedule answers every
    /// per-component hook identically (pinned by
    /// `decisions_are_stateless_and_order_independent`); only the
    /// fired-link bookkeeping is stateful, and forks are never asked for
    /// link kills.
    fn fork_for_tile(&self) -> Option<Self> {
        Some(ScheduledInjector::new(self.cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            flit_corrupt_ppm: 100_000, // 10%
            bank_drop_ppm: 50_000,
            bank_delay_ppm: 50_000,
            bank_delay_cycles: 7,
            pe_stall_ppm: 20_000,
            pe_stall_cycles: 11,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_schedule_is_inert() {
        assert!(FaultConfig::default().is_inert());
        assert!(!cfg(1).is_inert());
        let with_link = FaultConfig::default().kill_link(DeadLink { node: 3, dir: 1, at: 100 });
        assert!(!with_link.is_inert());
    }

    #[test]
    fn rate_zero_never_injects() {
        let mut inj = ScheduledInjector::new(FaultConfig { seed: 42, ..FaultConfig::default() });
        for now in 0..10_000 {
            assert_eq!(inj.corrupt_flit(now, (now % 16) as u16), None);
            assert!(!inj.bank_drop(now, 0));
            assert_eq!(inj.bank_delay(now, 0), 0);
            assert_eq!(inj.pe_stall(now, 5), 0);
            assert_eq!(inj.take_link_kill(now), None);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_are_stateless_and_order_independent() {
        // Query the same (component, cycle) points in two different
        // orders, interleaved with unrelated queries: identical answers.
        let mut a = ScheduledInjector::new(cfg(7));
        let mut b = ScheduledInjector::new(cfg(7));
        let mut answers_a = Vec::new();
        for now in 0..500 {
            answers_a.push((now, a.corrupt_flit(now, 3)));
        }
        let mut answers_b = Vec::new();
        for now in (0..500).rev() {
            // Unrelated rolls must not perturb the flit stream.
            b.bank_drop(now, 2);
            b.pe_stall(now, 9);
            answers_b.push((now, b.corrupt_flit(now, 3)));
        }
        answers_b.reverse();
        assert_eq!(answers_a, answers_b);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut inj = ScheduledInjector::new(cfg(123));
        let mut hits = 0u64;
        let trials = 100_000u64;
        for now in 0..trials {
            if inj.corrupt_flit(now, 0).is_some() {
                hits += 1;
            }
        }
        // 10% +- 1 absolute percentage point over 100k trials.
        let rate = hits as f64 / trials as f64;
        assert!((0.09..0.11).contains(&rate), "observed corruption rate {rate}");
        assert_eq!(inj.stats().flits_corrupted, hits);
    }

    #[test]
    fn corrupted_bit_is_a_payload_bit_and_replays() {
        let mut x = ScheduledInjector::new(cfg(9));
        let mut y = ScheduledInjector::new(cfg(9));
        let mut seen = 0u32;
        for now in 0..50_000 {
            let bx = x.corrupt_flit(now, 1);
            assert_eq!(bx, y.corrupt_flit(now, 1));
            if let Some(bit) = bx {
                assert!(bit < 32);
                seen |= 1 << bit;
            }
        }
        assert!(seen.count_ones() > 16, "bit choice should spread across the word");
    }

    #[test]
    fn link_kills_fire_once_at_their_cycle() {
        let schedule = FaultConfig { seed: 5, ..FaultConfig::default() }
            .kill_link(DeadLink { node: 1, dir: 0, at: 10 })
            .kill_link(DeadLink { node: 2, dir: 3, at: 10 })
            .kill_link(DeadLink { node: 3, dir: 1, at: 25 });
        let mut inj = ScheduledInjector::new(schedule);
        assert_eq!(inj.take_link_kill(9), None);
        // Both cycle-10 kills drain, in slot order, then stop.
        assert_eq!(inj.take_link_kill(10), Some(DeadLink { node: 1, dir: 0, at: 10 }));
        assert_eq!(inj.take_link_kill(10), Some(DeadLink { node: 2, dir: 3, at: 10 }));
        assert_eq!(inj.take_link_kill(10), None);
        // A late poll still fires the overdue kill exactly once.
        assert_eq!(inj.take_link_kill(40), Some(DeadLink { node: 3, dir: 1, at: 25 }));
        assert_eq!(inj.take_link_kill(41), None);
        assert_eq!(inj.stats().links_killed, 3);
    }

    #[test]
    fn forks_replay_the_parent_schedule_and_stats_merge() {
        // A tile fork must answer every stateless hook exactly like the
        // parent, and splitting the component space across forks must
        // leave merged stats equal to a single injector's.
        let parent = ScheduledInjector::new(cfg(31));
        let mut whole = ScheduledInjector::new(cfg(31));
        let mut fork_a = parent.fork_for_tile().expect("scheduled injector forks");
        let mut fork_b = parent.fork_for_tile().expect("scheduled injector forks");
        for now in 0..20_000u64 {
            // Components 0..4 on fork A, 4..8 on fork B.
            for node in 0..8u16 {
                let fork = if node < 4 { &mut fork_a } else { &mut fork_b };
                assert_eq!(whole.corrupt_flit(now, node), fork.corrupt_flit(now, node));
                assert_eq!(whole.bank_drop(now, node), fork.bank_drop(now, node));
                assert_eq!(whole.bank_delay(now, node), fork.bank_delay(now, node));
                assert_eq!(whole.pe_stall(now, node), fork.pe_stall(now, node));
            }
        }
        let mut merged = fork_a.stats();
        merged.merge(&fork_b.stats());
        assert_eq!(merged, whole.stats());
        assert!(merged.total() > 0, "schedule should have fired");
        // The null injector forks too (to a null fork).
        assert_eq!(NullInjector.fork_for_tile(), Some(NullInjector));
    }

    #[test]
    fn distinct_domains_are_independent() {
        // With equal rates, drop and delay decisions at the same (bank,
        // cycle) must not be mirror images of each other.
        let mut inj = ScheduledInjector::new(FaultConfig {
            seed: 77,
            bank_drop_ppm: 500_000,
            bank_delay_ppm: 500_000,
            bank_delay_cycles: 1,
            ..FaultConfig::default()
        });
        let mut agree = 0u32;
        let trials = 2_000;
        for now in 0..trials {
            let d = inj.bank_drop(now, 0);
            let l = inj.bank_delay(now, 0) > 0;
            if d == l {
                agree += 1;
            }
        }
        let frac = agree as f64 / trials as f64;
        assert!((0.4..0.6).contains(&frac), "domains correlate: agreement {frac}");
    }
}
