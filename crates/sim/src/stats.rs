//! Counters and streaming statistics used by every architectural block.
//!
//! The paper's simulator "can present to the user" execution times, traffic
//! and cache behaviour (§III); these types are the plumbing behind that.

use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming summary of a sequence of integer samples (e.g. flit latencies):
/// count, min, max, sum, and an exact mean. Constant memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Summary {
    /// New empty summary.
    pub const fn new() -> Self {
        Summary { count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => {
                write!(f, "n={} mean={:.2} min={} max={}", self.count, mean, self.min, self.max)
            }
            None => write!(f, "n=0"),
        }
    }
}

/// Fixed-bucket histogram with power-of-two bucket boundaries; used for
/// latency distributions where the paper reports "sporadic cases of single
/// flits delivered with high latency" (§II-A) — the tail is what matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl Log2Histogram {
    /// Histogram with buckets `[0,1), [1,2), [2,4), [4,8) ...` up to
    /// `2^(levels-1)`; larger samples land in the last bucket.
    pub fn new(levels: usize) -> Self {
        Log2Histogram { buckets: vec![0; levels.max(2)], summary: Summary::new() }
    }

    /// Record a sample.
    pub fn record(&mut self, sample: u64) {
        self.summary.record(sample);
        let idx = if sample == 0 {
            0
        } else {
            ((64 - sample.leading_zeros()) as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Bucket counts (bucket `i` covers `[2^(i-1), 2^i)` except bucket 0
    /// which covers exactly `{0}` and the final bucket which is open-ended).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Streaming summary over all recorded samples.
    pub const fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate `p`-quantile (`p` in `[0, 1]`) from bucket granularity:
    /// the inclusive upper bound of the bucket holding the `⌈p·n⌉`-th
    /// smallest sample, clamped to the exact observed maximum (so
    /// `percentile(1.0)` *is* the max). `None` if no samples were
    /// recorded.
    ///
    /// The power-of-two buckets make this an upper estimate within 2× of
    /// the true quantile — the right fidelity for the latency-tail
    /// reporting the paper does ("sporadic cases of single flits delivered
    /// with high latency", §II-A).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let n = self.summary.count();
        if n == 0 {
            return None;
        }
        let max = self.summary.max().expect("non-empty");
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                // The final bucket is open-ended: its only known upper
                // bound is the observed maximum itself.
                if i + 1 == self.buckets.len() {
                    return Some(max);
                }
                // Bucket 0 holds exactly {0}; bucket i>0 covers
                // [2^(i-1), 2^i).
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return Some(upper.min(max));
            }
        }
        Some(max)
    }

    /// The p99.9 latency — the paper's "sporadic cases of single flits
    /// delivered with high latency" as a single number. Shorthand for
    /// [`Log2Histogram::percentile`]`(0.999)`; `None` if empty.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Merge another histogram into this one, bucket by bucket.
    ///
    /// Used by the tiled cycle engine to fold per-tile latency histograms
    /// into the single histogram the sequential engine would have produced:
    /// bucket counts and the streaming summary are both plain sums/min/max,
    /// so the merge is commutative and the merged result is bit-identical
    /// to recording every sample into one histogram, whatever the tile
    /// order. If bucket counts differ, the merged histogram keeps the finer
    /// (longer) resolution.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.summary.merge(&other.summary);
    }

    /// Fraction of samples at or above `threshold` approximated from bucket
    /// granularity (exact if `threshold` is a power of two).
    pub fn tail_fraction(&self, threshold: u64) -> f64 {
        if self.summary.count() == 0 {
            return 0.0;
        }
        let first = if threshold == 0 { 0 } else { (64 - threshold.leading_zeros()) as usize };
        let tail: u64 = self.buckets.iter().skip(first.min(self.buckets.len())).sum();
        tail as f64 / self.summary.count() as f64
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_records() {
        let mut s = Summary::new();
        for v in [3u64, 1, 8] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(8));
        assert!((s.mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(2);
        let mut b = Summary::new();
        b.record(10);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(10));
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Log2Histogram::new(6);
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        h.record(1000); // clamped to last bucket
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.summary().count(), 4);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Log2Histogram::new(10);
        for _ in 0..98 {
            h.record(3); // bucket 2: [2, 4)
        }
        h.record(40); // bucket 6: [32, 64)
        h.record(100); // bucket 7: [64, 128)
        assert_eq!(h.percentile(0.5), Some(3), "p50 is bucket [2,4)'s upper bound");
        assert_eq!(h.percentile(0.98), Some(3));
        assert_eq!(h.percentile(0.99), Some(63));
        assert_eq!(h.percentile(1.0), Some(100), "p100 is the exact max");
        assert_eq!(Log2Histogram::default().percentile(0.5), None);
        // Single sample: every percentile is that sample.
        let mut one = Log2Histogram::new(6);
        one.record(7);
        assert_eq!(one.percentile(0.0), Some(7));
        assert_eq!(one.percentile(0.5), Some(7));
        // Samples overflowing into the open-ended final bucket report
        // the observed max, not the truncated 2^(levels-1)-1 bound.
        let mut clamped = Log2Histogram::new(4);
        clamped.record(100);
        assert_eq!(clamped.percentile(0.5), Some(100));
        assert_eq!(clamped.percentile(1.0), Some(100));
    }

    #[test]
    fn histogram_p999() {
        // Empty: no samples, no quantile.
        assert_eq!(Log2Histogram::new(6).p999(), None);
        // Single bucket occupied: p999 is that bucket's clamped bound —
        // here the exact (and only) sample.
        let mut one = Log2Histogram::new(6);
        one.record(5);
        assert_eq!(one.p999(), Some(5));
        // 999 small + 1 huge: the 999th of 1000 samples still lands in the
        // small bucket, so p999 reports the small bound; p100 sees the
        // outlier.
        let mut h = Log2Histogram::new(10);
        for _ in 0..999 {
            h.record(2);
        }
        h.record(5000);
        assert_eq!(h.p999(), Some(3), "bucket [2,4) upper bound");
        assert_eq!(h.percentile(1.0), Some(5000));
        // Saturating bucket: everything beyond 2^(levels-1) collapses into
        // the open-ended final bucket, whose only bound is the observed max.
        let mut sat = Log2Histogram::new(4);
        for v in [100u64, 200, 5000] {
            sat.record(v);
        }
        assert_eq!(sat.p999(), Some(5000));
    }

    #[test]
    fn histogram_merge_matches_single_recorder() {
        // Recording a sample stream into one histogram must equal recording
        // disjoint halves into two histograms and merging — the property the
        // tiled engine's stats reduction relies on.
        let samples = [0u64, 1, 3, 7, 40, 100, 1000, 2, 2, 65];
        let mut whole = Log2Histogram::new(10);
        for &s in &samples {
            whole.record(s);
        }
        let mut left = Log2Histogram::new(10);
        let mut right = Log2Histogram::new(10);
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(s)
            } else {
                right.record(s)
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        // Merging an empty histogram is a no-op.
        left.merge(&Log2Histogram::new(10));
        assert_eq!(left, whole);
        // A longer histogram on the right widens the left.
        let mut short = Log2Histogram::new(4);
        short.record(1);
        let mut long = Log2Histogram::new(8);
        long.record(200);
        short.merge(&long);
        assert_eq!(short.buckets().len(), 8);
        assert_eq!(short.summary().count(), 2);
    }

    #[test]
    fn histogram_tail() {
        let mut h = Log2Histogram::new(10);
        for _ in 0..9 {
            h.record(1);
        }
        h.record(256);
        let tail = h.tail_fraction(256);
        assert!((tail - 0.1).abs() < 1e-12, "tail={tail}");
        assert_eq!(Log2Histogram::default().tail_fraction(4), 0.0);
    }
}
