//! Kernel-thread rendezvous: the SC_THREAD replacement.
//!
//! In the original SystemC model, application code runs inside simulation
//! threads that block on hardware events. We reproduce that execution model
//! with real OS threads: each processing element's kernel runs on its own
//! thread and *rendezvous* with the cycle engine at every architectural
//! operation (load, store, FP op, message op). The engine is the only
//! scheduler — kernel threads never observe each other except through the
//! simulated hardware — so simulations are fully deterministic.
//!
//! The protocol is strict half-duplex:
//!
//! 1. the kernel sends a request (`Req`) and blocks;
//! 2. the engine picks the request up with [`KernelHost::fetch`], simulates
//!    however many cycles the operation takes, then answers with
//!    [`KernelHost::reply`];
//! 3. the kernel resumes, computes (in zero simulated time), and issues the
//!    next request.
//!
//! A kernel that returns closes its channel; `fetch` then reports
//! [`Fetched::Finished`] and the engine retires the PE.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// Error observed by a kernel when the simulation is torn down while the
/// kernel is still running (e.g. the system hit its cycle limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimAbortedError;

impl std::fmt::Display for SimAbortedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation engine terminated while kernel was running")
    }
}

impl std::error::Error for SimAbortedError {}

/// The kernel-side endpoint: issue a request, block until the engine
/// answers.
#[derive(Debug)]
pub struct KernelPort<Req, Resp> {
    req_tx: SyncSender<Req>,
    resp_rx: Receiver<Resp>,
}

impl<Req, Resp> KernelPort<Req, Resp> {
    /// Send `req` to the engine and block until it replies.
    ///
    /// # Errors
    ///
    /// Returns [`SimAbortedError`] if the engine was dropped, which happens
    /// only when the simulation is being torn down early.
    pub fn call(&self, req: Req) -> Result<Resp, SimAbortedError> {
        self.req_tx.send(req).map_err(|_| SimAbortedError)?;
        self.resp_rx.recv().map_err(|_| SimAbortedError)
    }
}

/// Result of [`KernelHost::fetch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched<Req> {
    /// The kernel issued a request and is now blocked awaiting a reply.
    Request(Req),
    /// The kernel function returned; no more requests will arrive.
    Finished,
}

/// The engine-side endpoint owning the kernel thread.
#[derive(Debug)]
pub struct KernelHost<Req, Resp> {
    req_rx: Receiver<Req>,
    resp_tx: SyncSender<Resp>,
    join: Option<JoinHandle<()>>,
    finished: bool,
}

impl<Req: Send + 'static, Resp: Send + 'static> KernelHost<Req, Resp> {
    /// Spawn `kernel` on a dedicated thread and return the engine-side host.
    ///
    /// The kernel receives a [`KernelPort`] for issuing requests. Any panic
    /// inside the kernel is confined to its thread and surfaces as
    /// [`Fetched::Finished`] plus a `true` return from
    /// [`KernelHost::join`].
    pub fn spawn<F>(name: &str, kernel: F) -> Self
    where
        F: FnOnce(KernelPort<Req, Resp>) + Send + 'static,
    {
        // Capacity 1 each way: the protocol is strictly half-duplex, so a
        // single slot is enough and keeps misuse loud (a second unanswered
        // request would deadlock the offending kernel, not corrupt state).
        let (req_tx, req_rx) = sync_channel(1);
        let (resp_tx, resp_rx) = sync_channel(1);
        let port = KernelPort { req_tx, resp_rx };
        let join = std::thread::Builder::new()
            .name(format!("medea-kernel-{name}"))
            .spawn(move || kernel(port))
            .expect("spawning kernel thread");
        KernelHost { req_rx, resp_tx, join: Some(join), finished: false }
    }

    /// Block until the kernel's next request (or its termination).
    ///
    /// Blocking here is sound: the kernel is either about to send (pure
    /// host-time computation) or has returned, so the wait is bounded by
    /// real compute time, never by simulated time.
    pub fn fetch(&mut self) -> Fetched<Req> {
        if self.finished {
            return Fetched::Finished;
        }
        match self.req_rx.recv() {
            Ok(req) => Fetched::Request(req),
            Err(_) => {
                self.finished = true;
                Fetched::Finished
            }
        }
    }

    /// Answer the kernel's outstanding request, unblocking it.
    ///
    /// A reply sent after the kernel exited (possible during teardown) is
    /// silently dropped.
    pub fn reply(&mut self, resp: Resp) {
        let _ = self.resp_tx.send(resp);
    }

    /// Whether the kernel function has returned (observed via `fetch`).
    pub const fn is_finished(&self) -> bool {
        self.finished
    }

    /// Join the kernel thread, returning `true` if it panicked.
    ///
    /// Must only be called once the kernel is unblocked (finished, or the
    /// channels have been dropped).
    pub fn join(&mut self) -> bool {
        match self.join.take() {
            Some(handle) => handle.join().is_err(),
            None => false,
        }
    }
}

impl<Req, Resp> Drop for KernelHost<Req, Resp> {
    fn drop(&mut self) {
        // Wake any kernel blocked in `call` by dropping our channel ends
        // first, then reap the thread so tests never leak.
        let (dead_tx, _) = sync_channel::<Resp>(1);
        self.resp_tx = dead_tx;
        let (_, dead_rx) = sync_channel::<Req>(1);
        self.req_rx = dead_rx;
        if let Some(handle) = self.join.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let mut host: KernelHost<u32, u32> = KernelHost::spawn("t", |port| {
            let doubled = port.call(21).unwrap();
            assert_eq!(doubled, 42);
        });
        match host.fetch() {
            Fetched::Request(v) => {
                assert_eq!(v, 21);
                host.reply(v * 2);
            }
            Fetched::Finished => panic!("expected a request"),
        }
        assert_eq!(host.fetch(), Fetched::Finished);
        assert!(!host.join());
    }

    #[test]
    fn finished_kernel_reports_finished() {
        let mut host: KernelHost<u32, u32> = KernelHost::spawn("t", |_port| {});
        assert_eq!(host.fetch(), Fetched::Finished);
        assert!(host.is_finished());
    }

    #[test]
    fn many_roundtrips_stay_ordered() {
        let mut host: KernelHost<u64, u64> = KernelHost::spawn("t", |port| {
            for i in 0..100u64 {
                assert_eq!(port.call(i).unwrap(), i + 1);
            }
        });
        while let Fetched::Request(v) = host.fetch() {
            host.reply(v + 1);
        }
        assert!(!host.join());
    }

    #[test]
    fn drop_unblocks_running_kernel() {
        let host: KernelHost<u32, u32> = KernelHost::spawn("t", |port| {
            // The engine never replies; the kernel must observe the abort
            // rather than hang.
            assert_eq!(port.call(1), Err(SimAbortedError));
        });
        drop(host); // must not deadlock
    }

    #[test]
    fn kernel_panic_is_contained() {
        let mut host: KernelHost<u32, u32> = KernelHost::spawn("t", |_port| {
            panic!("kernel bug");
        });
        assert_eq!(host.fetch(), Fetched::Finished);
        assert!(host.join(), "join must report the panic");
    }
}
