//! Bounded hardware FIFO model.
//!
//! Every queue in the MEDEA architecture is small and bounded: the TIE
//! output queue, the MPMMU's Pif-Request/Control and Pif-Data queues, the
//! arbiter's single or dual (high-priority / best-effort) queues, and router
//! ejection queues. Overflow must be visible to the model (it becomes
//! back-pressure or deflection), so `push` is fallible.

use crate::stats::{Counter, Summary};
use std::collections::VecDeque;

/// Error returned when pushing into a full [`Fifo`]; carries the rejected
/// item back to the caller so hardware models can hold it in a latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError<T>(pub T);

impl<T> std::fmt::Display for FifoFullError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for FifoFullError<T> {}

/// A bounded first-in first-out queue with occupancy statistics.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    name: &'static str,
    capacity: usize,
    items: VecDeque<T>,
    pushes: Counter,
    rejects: Counter,
    occupancy: Summary,
}

impl<T> Fifo<T> {
    /// Create a FIFO with the given debug `name` and `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`; a zero-capacity queue is a wire, not a
    /// FIFO, and modeling it as one hides handshake bugs.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Fifo {
            name,
            capacity,
            items: VecDeque::with_capacity(capacity),
            pushes: Counter::new(),
            rejects: Counter::new(),
            occupancy: Summary::new(),
        }
    }

    /// Debug name given at construction.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Maximum number of entries.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Append an item.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] carrying the item back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), FifoFullError<T>> {
        if self.is_full() {
            self.rejects.inc();
            return Err(FifoFullError(item));
        }
        self.pushes.inc();
        self.items.push_back(item);
        self.occupancy.record(self.items.len() as u64);
        Ok(())
    }

    /// Remove and return the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Borrow the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterate the queued items oldest-first without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Total successful pushes since construction.
    pub fn pushes(&self) -> u64 {
        self.pushes.get()
    }

    /// Total rejected pushes (back-pressure events) since construction.
    pub fn rejects(&self) -> u64 {
        self.rejects.get()
    }

    /// Post-push occupancy summary (a proxy for average queue depth).
    pub const fn occupancy(&self) -> &Summary {
        &self.occupancy
    }

    /// Discard all queued items (used at reset).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_fifo() {
        let mut q = Fifo::new("t", 3);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_push_returns_item() {
        let mut q = Fifo::new("t", 1);
        q.push("a").unwrap();
        let err = q.push("b").unwrap_err();
        assert_eq!(err.0, "b");
        assert_eq!(q.rejects(), 1);
        assert_eq!(q.pushes(), 1);
    }

    #[test]
    fn peek_and_len() {
        let mut q = Fifo::new("t", 4);
        assert!(q.is_empty());
        q.push(9).unwrap();
        assert_eq!(q.peek(), Some(&9));
        assert_eq!(q.len(), 1);
        assert_eq!(q.free(), 3);
        assert!(!q.is_full());
    }

    #[test]
    fn occupancy_tracked() {
        let mut q = Fifo::new("t", 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.occupancy().max(), Some(2));
        assert_eq!(q.occupancy().count(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = Fifo::new("t", 2);
        q.push(1).unwrap();
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new("t", 0);
    }

    #[test]
    fn iter_oldest_first() {
        let mut q = Fifo::new("t", 3);
        q.push(10).unwrap();
        q.push(20).unwrap();
        let v: Vec<_> = q.iter().copied().collect();
        assert_eq!(v, vec![10, 20]);
    }
}
