//! Strongly-typed identifiers used across the MEDEA model.
//!
//! The paper addresses nodes by X-Y coordinates at the transport level and by
//! a 4-bit `source-id` at the application level (§II-D). We keep both: a
//! linear [`NodeId`] for fabric indexing and a [`Rank`] for the eMPI layer.

use std::fmt;

/// Linear index of a node (router + attached component) in the fabric.
///
/// Node 0 is conventionally the MPMMU in the simplest MEDEA configuration
/// ("all the memory mapped address space is located at the unique MPMMU",
/// §II-B). In a banked configuration further MPMMU banks occupy nodes
/// spread across the torus; every remaining node hosts a processing
/// element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Create a node id from a raw index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Raw linear index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// eMPI rank of a processing element (0-based, excludes the MPMMU).
///
/// The application-level `source-id` field of the packet format (Fig. 5)
/// is sized per topology to carry a full linear node index, so the rank
/// space is bounded by the largest supported torus: 16×16 = 256 nodes,
/// one of which is the MPMMU, leaving 255 compute ranks (held in a `u8`).
/// On the paper's 4×4 instance the field is 4 bits and the bound is 15 —
/// the same bound the paper's 3..16-core exploration respects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub u8);

impl Rank {
    /// Maximum number of ranks on the largest supported torus (16×16
    /// nodes minus the MPMMU).
    pub const MAX_RANKS: usize = 255;

    /// Create a rank from a raw index.
    pub const fn new(index: u8) -> Self {
        Rank(index)
    }

    /// Raw 0-based rank index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the conventional master rank used by collective
    /// operations such as the eMPI barrier.
    pub const fn is_master(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u8> for Rank {
    fn from(v: u8) -> Self {
        Rank(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "n7");
        assert_eq!(NodeId::from(7u16), n);
    }

    #[test]
    fn rank_master() {
        assert!(Rank::new(0).is_master());
        assert!(!Rank::new(3).is_master());
        assert_eq!(Rank::from(3u8).index(), 3);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Rank::new(1) < Rank::new(2));
    }

    #[test]
    fn rank_bound_matches_largest_torus() {
        // 16x16 nodes, one reserved for the MPMMU; rank indices 0..=254
        // all fit the u8 representation.
        assert_eq!(Rank::MAX_RANKS, 16 * 16 - 1);
        assert!(Rank::MAX_RANKS - 1 <= u8::MAX as usize);
    }
}
