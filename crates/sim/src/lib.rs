//! Cycle-stepped simulation kernel for the MEDEA reproduction.
//!
//! The original MEDEA framework ([Tota et al., DATE 2010]) was written as a
//! cycle-accurate SystemC model. This crate provides the equivalent
//! foundations in Rust:
//!
//! * [`Cycle`] — the global time base (one clock domain, as in the paper).
//! * [`ids`] — strongly-typed identifiers for nodes and processing elements.
//! * [`fifo`] — bounded hardware FIFOs with occupancy statistics, used for
//!   every queue the paper describes (TIE output queue, MPMMU request/data
//!   queues, arbiter queues, ejection queues).
//! * [`stats`] — counters and streaming histograms for latency and traffic
//!   measurements.
//! * [`rng`] — a small deterministic PRNG (SplitMix64) so simulations are
//!   bit-reproducible across runs and platforms.
//! * [`coroutine`] — the SC_THREAD replacement: application kernels run on
//!   real OS threads and rendezvous with the cycle engine at every
//!   architectural operation.
//! * [`par`] — the spin phaser that keeps the tiled parallel cycle engine's
//!   worker pool in lockstep, one barrier per simulated clock edge.
//!
//! # Example
//!
//! ```
//! use medea_sim::fifo::Fifo;
//!
//! let mut q: Fifo<u32> = Fifo::new("example", 2);
//! assert!(q.push(1).is_ok());
//! assert!(q.push(2).is_ok());
//! assert!(q.push(3).is_err()); // bounded, like real hardware
//! assert_eq!(q.pop(), Some(1));
//! ```

pub mod coroutine;
pub mod fifo;
pub mod ids;
pub mod par;
pub mod rng;
pub mod stats;

/// Simulation time, measured in clock cycles of the single on-chip clock
/// domain (the paper's SystemC model is likewise single-clock).
pub type Cycle = u64;

/// A hardware block advanced once per clock edge.
///
/// The full-system simulator calls [`Clocked::tick`] on every block in a
/// fixed order each cycle; blocks must therefore communicate only through
/// explicitly modeled queues and latches to stay delta-cycle-safe.
pub trait Clocked {
    /// Advance internal state by one clock cycle ending at time `now`.
    fn tick(&mut self, now: Cycle);
}
