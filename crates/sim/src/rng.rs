//! Deterministic pseudo-random number generation.
//!
//! Simulation results in the paper are deterministic given a configuration;
//! we keep the same property by using a tiny, seedable, platform-independent
//! generator (SplitMix64) for anything stochastic (synthetic traffic,
//! deflection tie-breaking). The `rand` crate is used only in tests and
//! benchmark workload generators, never inside the architectural model.

/// SplitMix64 generator (Steele, Lea, Flood; public domain reference
/// algorithm). Passes BigCrush when used as a 64-bit stream and is more than
/// adequate for traffic generation and tie-breaking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Two generators created with the same
    /// seed produce identical streams on every platform.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent per-component stream from a single root seed
    /// and a stable component id (a node index, bank index, fault-domain
    /// tag...).
    ///
    /// The component id is scrambled through one SplitMix64 output round
    /// before being folded into the root, so adjacent ids (node 0, 1, 2…)
    /// land on uncorrelated streams. Every component derives its schedule
    /// from `(root, id)` alone — never by cloning or splitting a shared
    /// stream — so the schedule of one component is independent of how
    /// many other components exist or in which order they draw.
    pub const fn for_component(root: u64, component: u64) -> Self {
        let mut z = component.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SplitMix64 { state: root ^ (z ^ (z >> 31)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift trick (Lemire); bias is negligible for the bounds
        // used here (tens of nodes) and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x4D45_4445_4131_3042) // "MEDEA10B"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the SplitMix64 reference
        // implementation.
        let mut g = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = g.next_below(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut g = SplitMix64::new(11);
        assert!(!g.chance(0.0));
        assert!(g.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn component_streams_are_stable_and_distinct() {
        // Same (root, id) -> same stream, independent of any other stream.
        let mut a = SplitMix64::for_component(99, 3);
        let mut b = SplitMix64::for_component(99, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Adjacent ids must not collide or trivially correlate.
        let first: Vec<u64> =
            (0..16u64).map(|id| SplitMix64::for_component(99, id).next_u64()).collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len(), "component streams collided");
    }
}
