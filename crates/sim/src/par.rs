//! Worker-pool synchronization for the tiled cycle engine.
//!
//! The parallel engine in `medea-core` domain-decomposes the torus into
//! per-thread tiles and advances all tiles in lockstep, one simulated clock
//! cycle per step. The synchronization shape is a classic *phaser*: every
//! cycle, each worker finishes its tile's phases, publishes a small report,
//! and waits; one distinguished **leader** (tile 0, which runs on the
//! calling thread) waits for all followers, makes the serial end-of-cycle
//! decision (termination, watchdog, timed-wait jump, fault-schedule link
//! kills), publishes it, and releases everyone into the next cycle.
//!
//! The barrier *is* the clock edge: no tile can observe another tile's
//! cycle-`T` state until every tile has finished cycle `T`, so cross-tile
//! effects (boundary link latches, in-flight counts, stats) are exchanged
//! at exactly the same simulated time as the sequential engine's intra-cycle
//! phase ordering — which is what keeps the tiled engine bit-identical to
//! `System::run` on one thread.
//!
//! [`Phaser`] is intentionally tiny and spin-based. Cycle times are in the
//! hundreds of nanoseconds to a few microseconds, so parking (`Condvar`,
//! `std::sync::Barrier`) would dominate the cycle itself; instead followers
//! spin with [`std::hint::spin_loop`] and yield to the OS periodically so
//! oversubscribed hosts still make progress. A `poison` flag gives panics a
//! way out: any participant that unwinds poisons the phaser, every spin loop
//! bails, and the caller re-raises the payload after joining the pool.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Spin every this many iterations before yielding the OS thread, so a
/// follower that arrives while the host is oversubscribed (more workers
/// than cores, e.g. a sweep running multi-threaded engines) cannot starve
/// the worker it is waiting for.
const SPINS_PER_YIELD: u32 = 256;

/// A reusable two-sided spin barrier for one leader plus `n - 1` followers.
///
/// Protocol per cycle (generation):
///
/// 1. followers call [`Phaser::arrive_and_wait`] — publish their report
///    *before* arriving (the `AcqRel` arrival makes it visible), then spin
///    until the leader bumps the generation;
/// 2. the leader calls [`Phaser::wait_followers`], reads all reports, writes
///    the shared decision, then calls [`Phaser::release`].
///
/// All cross-thread data (tile reports, the decision, boundary mailboxes)
/// rides on the acquire/release pairs of `arrived` and `generation`, so the
/// shared structures themselves can be plain uncontended `Mutex`es.
#[derive(Debug)]
pub struct Phaser {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    poison: AtomicBool,
}

impl Phaser {
    /// Phaser for `participants` workers total (leader included).
    pub fn new(participants: usize) -> Self {
        Phaser {
            participants,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            poison: AtomicBool::new(false),
        }
    }

    /// Current generation; a follower snapshots this *before* arriving and
    /// passes it to [`Phaser::arrive_and_wait`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Follower side: arrive at the barrier for generation `seen` (from
    /// [`Phaser::generation`]) and spin until the leader releases it.
    /// Returns `false` if the phaser was poisoned, in which case the worker
    /// must abandon the run.
    pub fn arrive_and_wait(&self, seen: u64) -> bool {
        self.arrived.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            if self.poison.load(Ordering::Acquire) {
                return false;
            }
            if self.generation.load(Ordering::Acquire) != seen {
                return true;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(SPINS_PER_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Leader side: spin until every follower has arrived. Returns `false`
    /// if the phaser was poisoned by a panicking follower.
    pub fn wait_followers(&self) -> bool {
        let mut spins = 0u32;
        loop {
            if self.poison.load(Ordering::Acquire) {
                return false;
            }
            if self.arrived.load(Ordering::Acquire) == self.participants - 1 {
                return true;
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(SPINS_PER_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Leader side: open the next generation, releasing every follower
    /// spinning in [`Phaser::arrive_and_wait`]. Must only be called after
    /// [`Phaser::wait_followers`] returned `true` and the decision for the
    /// next cycle has been written.
    pub fn release(&self) {
        self.arrived.store(0, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Mark the phaser poisoned: every current and future wait returns
    /// `false` immediately. Called from panic handlers on either side.
    pub fn poison(&self) {
        self.poison.store(true, Ordering::Release);
    }

    /// Whether the phaser has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poison.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lockstep_counting() {
        // 4 workers increment a shared tally once per generation; the
        // barrier must keep them in lockstep for every generation.
        const WORKERS: usize = 4;
        const GENERATIONS: u64 = 200;
        let phaser = Phaser::new(WORKERS);
        let tally = Mutex::new(vec![0u64; WORKERS]);
        std::thread::scope(|scope| {
            for follower in 1..WORKERS {
                let phaser = &phaser;
                let tally = &tally;
                scope.spawn(move || {
                    for _ in 0..GENERATIONS {
                        let seen = phaser.generation();
                        tally.lock().unwrap()[follower] += 1;
                        assert!(phaser.arrive_and_wait(seen));
                    }
                });
            }
            for generation in 0..GENERATIONS {
                tally.lock().unwrap()[0] += 1;
                assert!(phaser.wait_followers());
                {
                    let counts = tally.lock().unwrap();
                    assert!(
                        counts.iter().all(|&c| c == generation + 1),
                        "tile drifted out of lockstep at generation {generation}: {counts:?}"
                    );
                }
                phaser.release();
            }
        });
    }

    #[test]
    fn poison_releases_both_sides() {
        let phaser = Phaser::new(2);
        std::thread::scope(|scope| {
            let handle = {
                let phaser = &phaser;
                scope.spawn(move || {
                    let seen = phaser.generation();
                    phaser.arrive_and_wait(seen)
                })
            };
            assert!(phaser.wait_followers());
            phaser.poison();
            // Never released, yet the follower must come back (with false).
            assert!(!handle.join().unwrap());
            assert!(!phaser.wait_followers());
            assert!(phaser.is_poisoned());
        });
    }
}
