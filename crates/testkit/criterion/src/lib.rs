//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, `Throughput`, the
//! `criterion_group!` / `criterion_main!` macros and `black_box`.
//!
//! Measurement model: each benchmark is timed over `sample_size`
//! iterations of `Bencher::iter` after one untimed warm-up iteration; the
//! mean wall-clock time per iteration (and derived throughput, when
//! configured) is printed to stdout. There is no statistical analysis and
//! no report directory — this is a smoke-and-magnitude harness, not a
//! statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// `n` abstract elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark driver handed to group functions.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line args are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, throughput: None }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark("", &id.into(), sample_size, None, f);
        self
    }

    /// No-op; kept for `criterion_main!` compatibility.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Iterations measured per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Configure derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into(), self.sample_size, self.throughput, f);
        self
    }

    /// Measure `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.into(), self.sample_size, self.throughput, |b| {
            f(b, input);
        });
        self
    }

    /// Close the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iterations` calls of `routine` (after one warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iterations: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let full_id = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mean = bencher.elapsed.as_secs_f64() / sample_size as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  thrpt: {:.3e} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  thrpt: {:.3e} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("{full_id:<50} time: {:>12.6} ms/iter{rate}", mean * 1e3);
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Emit `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}
