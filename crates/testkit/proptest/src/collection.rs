//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds for generated collections (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
