//! Generation-only strategies: the value-producing half of the real
//! crate's `Strategy`, without shrink trees.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can produce values of one type from a [`TestRng`].
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy from a generation closure (backs `prop_compose!`).
pub struct FromFn<F>(F);

/// Build a strategy from a generation closure.
pub fn from_fn<V, F: Fn(&mut TestRng) -> V>(f: F) -> FromFn<F> {
    FromFn(f)
}

impl<V, F: Fn(&mut TestRng) -> V> Strategy for FromFn<F> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the listed options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.next_below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
