//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generator.
pub trait Arbitrary {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}
