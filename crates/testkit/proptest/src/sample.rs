//! Uniform selection out of a fixed option list.

use crate::strategy::Strategy;
use crate::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

/// Pick uniformly from `options`.
///
/// # Panics
///
/// Panics when `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty option list");
    Select(options)
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.0.len() as u64) as usize;
        self.0[idx].clone()
    }
}
