//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the real API used by this workspace's
//! property tests: the `proptest!`, `prop_compose!`, `prop_oneof!` and
//! `prop_assert*!` macros, `any::<T>()`, integer-range and tuple
//! strategies, `sample::select` and `collection::vec`.
//!
//! Design differences from the real crate, chosen for zero dependencies:
//!
//! * **No shrinking.** A failing case panics with its case index; cases
//!   are deterministic (seeded from the test path and index), so rerunning
//!   the test replays the same inputs.
//! * **`Strategy` is generation-only**: one method, `new_value`, driven by
//!   a SplitMix64 [`TestRng`].

use std::fmt;

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The RNG for one test case: seeded from the test's path and the
    /// case index, so every case is independent and replayable.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is irrelevant for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Failure raised by `prop_assert!` / `prop_assert_eq!` inside a case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestRng,
    };
}

/// Define property tests: a list of `fn name(arg in strategy, ...) { .. }`
/// items, optionally preceded by `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Define a named strategy from parameters + sub-strategies + a body.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($param:ident : $pty:ty),* $(,)?)
                            ($($arg:ident in $strat:expr),* $(,)?)
                            -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Uniform choice between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l,
            __r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: both sides equal `{:?}`", __l);
    }};
}
