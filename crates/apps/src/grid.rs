//! 2D grid helpers and the golden sequential Jacobi solver.
//!
//! The parallel kernels are validated bit-for-bit against
//! [`jacobi_reference`]: every variant performs the stencil with the same
//! operation order (`(N + S) + (W + E)` then `× 0.25`), so IEEE semantics
//! make the comparison exact.

/// Dirichlet boundary value at grid coordinate `(row, col)`.
///
/// A smooth, non-symmetric function so indexing bugs cannot cancel out.
pub fn boundary_value(row: usize, col: usize) -> f64 {
    row as f64 * 0.5 + col as f64 * 0.25 + 1.0
}

/// The initial `n × n` grid: boundary values on the border, zero interior.
pub fn initial_grid(n: usize) -> Vec<f64> {
    assert!(n >= 3, "grid must have an interior");
    let mut g = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
                g[i * n + j] = boundary_value(i, j);
            }
        }
    }
    g
}

/// One Jacobi sweep: `new = stencil(old)`, boundary copied unchanged.
/// Operation order matches the simulated kernels exactly.
pub fn jacobi_sweep(n: usize, old: &[f64], new: &mut [f64]) {
    new.copy_from_slice(old);
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let nn = old[(i - 1) * n + j];
            let ss = old[(i + 1) * n + j];
            let ww = old[i * n + j - 1];
            let ee = old[i * n + j + 1];
            let sum = (nn + ss) + (ww + ee);
            new[i * n + j] = sum * 0.25;
        }
    }
}

/// Run `iters` Jacobi sweeps on the standard initial grid.
pub fn jacobi_reference(n: usize, iters: usize) -> Vec<f64> {
    let mut a = initial_grid(n);
    let mut b = a.clone();
    for _ in 0..iters {
        jacobi_sweep(n, &a, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Contiguous row partition: the owned global interior rows
/// `[start, end)` of `rank` among `ranks` workers over an `n × n` grid.
///
/// # Panics
///
/// Panics if `ranks` exceeds the `n - 2` interior rows (a rank would own
/// nothing) or `rank >= ranks`.
pub fn partition_rows(n: usize, ranks: usize, rank: usize) -> (usize, usize) {
    let interior = n - 2;
    assert!(ranks >= 1 && ranks <= interior, "{ranks} ranks for {interior} interior rows");
    assert!(rank < ranks);
    let base = interior / ranks;
    let rem = interior % ranks;
    let start = 1 + rank * base + rank.min(rem);
    let rows = base + usize::from(rank < rem);
    (start, start + rows)
}

/// Largest PE count a grid of side `n` supports (one interior row each),
/// capped at the 255 ranks of the largest (16×16) torus. Callers must
/// additionally respect their own topology's `nodes − 1` bound.
pub fn max_ranks(n: usize) -> usize {
    (n - 2).min(255)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_grid_shape() {
        let g = initial_grid(4);
        assert_eq!(g.len(), 16);
        assert_eq!(g[0], boundary_value(0, 0));
        assert_eq!(g[5], 0.0, "interior starts at zero");
        assert_eq!(g[15], boundary_value(3, 3));
    }

    #[test]
    fn sweep_keeps_boundary() {
        let n = 5;
        let a = initial_grid(n);
        let mut b = vec![0.0; n * n];
        jacobi_sweep(n, &a, &mut b);
        for i in 0..n {
            assert_eq!(b[i], a[i], "top row");
            assert_eq!(b[(n - 1) * n + i], a[(n - 1) * n + i], "bottom row");
            assert_eq!(b[i * n], a[i * n], "left column");
            assert_eq!(b[i * n + n - 1], a[i * n + n - 1], "right column");
        }
    }

    #[test]
    fn reference_converges_toward_harmonic() {
        // The solution of Laplace with these linear boundary values is the
        // linear function itself; many iterations should approach it.
        let n = 8;
        let g = jacobi_reference(n, 500);
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let exact = boundary_value(i, j);
                assert!(
                    (g[i * n + j] - exact).abs() < 1e-6,
                    "({i},{j}): {} vs {exact}",
                    g[i * n + j]
                );
            }
        }
    }

    #[test]
    fn partition_covers_interior_exactly() {
        for n in [8usize, 16, 30, 60] {
            for ranks in 1..=max_ranks(n) {
                let mut covered = vec![false; n];
                for rank in 0..ranks {
                    let (s, e) = partition_rows(n, ranks, rank);
                    assert!(s >= 1 && e < n && s < e);
                    for (row, owned) in covered.iter_mut().enumerate().take(e).skip(s) {
                        assert!(!*owned, "row {row} double-owned");
                        *owned = true;
                    }
                }
                for (row, owned) in covered.iter().enumerate().take(n - 1).skip(1) {
                    assert!(owned, "row {row} unowned (n={n}, ranks={ranks})");
                }
            }
        }
    }

    #[test]
    fn partition_balanced() {
        let sizes: Vec<usize> = (0..5)
            .map(|r| {
                let (s, e) = partition_rows(16, 5, r);
                e - s
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "ranks for")]
    fn too_many_ranks_panics() {
        partition_rows(8, 7, 0);
    }
}
