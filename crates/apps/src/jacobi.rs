//! The paper's benchmark: a parallel Jacobi 2D iterative solver (§III).
//!
//! "The Jacobi algorithm was selected as a good representative of the
//! class of scientific computational kernels that may fully exploit the
//! potential of a manycore CMP architecture using a hybrid
//! shared-memory/message-passing approach."
//!
//! Three programming-model variants, exactly the comparison of §III:
//!
//! * [`JacobiVariant::HybridFullMp`] — data *and* synchronization over the
//!   NoC message interface: each rank's rows live in its private
//!   (cacheable) segment, halo rows travel as eMPI messages;
//! * [`JacobiVariant::HybridSyncOnly`] — halo rows exchanged through the
//!   shared segment with the §II-E flush/DII protocol, synchronization
//!   still by eMPI barrier;
//! * [`JacobiVariant::PureSharedMemory`] — halo exchange through shared
//!   memory *and* a lock-based shared-memory barrier: every
//!   synchronization action is serialized MPMMU traffic.
//!
//! Rows are block-partitioned; each rank owns a contiguous band of
//! interior rows plus two halo rows, double-buffered in its private
//! segment. The measured quantity is the paper's: cycles per iteration
//! after cache warm-up.

use crate::grid::{initial_grid, jacobi_reference, max_ranks, partition_rows};
use crate::sm::SmBarrier;
use medea_cache::Addr;
use medea_core::api::PeApi;
use medea_core::calib::LOOP_OVERHEAD_CYCLES;
use medea_core::explore::{PreparedWorkload, Workload};
use medea_core::system::{Kernel, RunError, RunResult, System};
use medea_core::{Empi, FaultInjector, NullInjector, NullSink, SystemConfig, TraceSink};
use medea_pe::kernel_if::f64_to_words;
use medea_sim::ids::Rank;
use medea_sim::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Programming-model variant (§III's three-way comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JacobiVariant {
    /// Hybrid: message passing for data and synchronization.
    HybridFullMp,
    /// Hybrid: message passing for synchronization only; halo data through
    /// shared memory.
    HybridSyncOnly,
    /// Pure shared memory: lock-based barrier + shared-memory halos.
    PureSharedMemory,
}

impl std::fmt::Display for JacobiVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JacobiVariant::HybridFullMp => write!(f, "hybrid-full-mp"),
            JacobiVariant::HybridSyncOnly => write!(f, "hybrid-sync-only"),
            JacobiVariant::PureSharedMemory => write!(f, "pure-sm"),
        }
    }
}

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct JacobiConfig {
    /// Grid side (the paper uses 16, 30, 60).
    pub n: usize,
    /// Programming-model variant.
    pub variant: JacobiVariant,
    /// Warm-up iterations excluded from the measurement (paper: caches are
    /// warmed before the measured iteration).
    pub warmup_iters: usize,
    /// Measured iterations (the reported figure is cycles per iteration).
    pub measured_iters: usize,
    /// Whether kernels should ship the final grid back for validation.
    pub validate: bool,
}

impl JacobiConfig {
    /// Standard setup: 1 warm-up iteration, 1 measured iteration,
    /// no validation.
    pub fn new(n: usize, variant: JacobiVariant) -> Self {
        JacobiConfig { n, variant, warmup_iters: 1, measured_iters: 1, validate: false }
    }

    /// Set the warm-up iteration count.
    pub fn with_warmup_iters(mut self, iters: usize) -> Self {
        self.warmup_iters = iters;
        self
    }

    /// Set the measured iteration count.
    pub fn with_measured_iters(mut self, iters: usize) -> Self {
        self.measured_iters = iters;
        self
    }

    /// Enable final-grid collection for validation.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Total sweeps performed.
    pub fn total_iters(&self) -> usize {
        self.warmup_iters + self.measured_iters
    }
}

/// Result of one Jacobi run.
#[derive(Debug)]
pub struct JacobiOutcome {
    /// Engine-level result.
    pub run: RunResult,
    /// Measured cycles per iteration (the paper's y-axis).
    pub cycles_per_iter: Cycle,
    /// Owned interior rows collected from the PEs' memories
    /// (`(global_row, values)`), when validation was requested.
    pub interior: Option<Vec<(usize, Vec<f64>)>>,
}

// ---- per-rank address arithmetic ----

#[derive(Debug, Clone, Copy)]
struct RankLayout {
    n: usize,
    base: Addr,
    buf_bytes: u32,
    owned: usize,
}

impl RankLayout {
    fn new(n: usize, base: Addr, owned: usize) -> Self {
        let buf_bytes = ((owned + 2) * n * 8) as u32;
        RankLayout { n, base, buf_bytes, owned }
    }

    /// Address of cell (local row, column) in buffer `buf` (0/1).
    /// Local row 0 is the top halo; rows 1..=owned are owned; owned+1 is
    /// the bottom halo.
    fn cell(&self, buf: usize, li: usize, j: usize) -> Addr {
        debug_assert!(li <= self.owned + 1 && j < self.n);
        self.base + buf as u32 * self.buf_bytes + ((li * self.n + j) as u32) * 8
    }
}

/// Stride of one published halo row in the shared segment (line-aligned so
/// flush/invalidate of one slot never touches a neighbour's).
fn slot_stride(n: usize) -> u32 {
    ((n * 8 + 15) & !15) as u32
}

/// Shared-segment address of `rank`'s published row.
/// `which`: 0 = its top owned row, 1 = its bottom owned row.
/// `parity`: iteration parity (double-buffered so one barrier per
/// iteration suffices).
fn pub_slot(n: usize, rank: usize, which: usize, parity: usize) -> Addr {
    (((rank * 2 + which) * 2 + parity) as u32) * slot_stride(n)
}

// ---- kernel ----

struct KernelCtx {
    jcfg: JacobiConfig,
    measured: Arc<AtomicU64>,
    collect: Option<crate::RowSink>,
    sm_barrier: SmBarrier,
}

fn jacobi_kernel(api: PeApi, ctx: KernelCtx) {
    let comm = Empi::new(api);
    let jcfg = ctx.jcfg;
    let n = jcfg.n;
    let ranks = comm.ranks();
    let r = comm.rank().index();
    let (g0, g1) = partition_rows(n, ranks, r);
    let lay = RankLayout::new(n, comm.private_base(), g1 - g0);
    assert!(
        2 * lay.buf_bytes <= comm.layout().private_bytes(),
        "grid slice does not fit the private segment"
    );

    let barrier = |comm: &Empi| match jcfg.variant {
        JacobiVariant::PureSharedMemory => ctx.sm_barrier.wait(comm, ranks),
        _ => comm.barrier(),
    };

    let mut cur = 0usize;
    let mut t0: Cycle = 0;
    for it in 0..jcfg.total_iters() {
        if it == jcfg.warmup_iters {
            barrier(&comm);
            t0 = comm.now();
        }
        let nxt = 1 - cur;
        sweep(&comm, &lay, cur, nxt);
        match jcfg.variant {
            JacobiVariant::HybridFullMp => exchange_mp(&comm, &lay, nxt),
            JacobiVariant::HybridSyncOnly => {
                exchange_shared(&comm, &lay, nxt, it % 2, false, &barrier)
            }
            JacobiVariant::PureSharedMemory => {
                exchange_shared(&comm, &lay, nxt, it % 2, true, &barrier)
            }
        }
        cur = nxt;
    }
    barrier(&comm);
    if r == 0 {
        let t1 = comm.now();
        let window = t1.saturating_sub(t0).max(1);
        ctx.measured.store(window / jcfg.measured_iters.max(1) as u64, Ordering::SeqCst);
    }
    if let Some(sink) = &ctx.collect {
        let mut rows = Vec::with_capacity(lay.owned);
        for (li, gi) in (g0..g1).enumerate().map(|(i, gi)| (i + 1, gi)) {
            let row: Vec<f64> = (0..n).map(|j| comm.load_f64(lay.cell(cur, li, j))).collect();
            rows.push((gi, row));
        }
        sink.lock().expect("collection mutex").extend(rows);
    }
}

/// One stencil sweep over the owned rows: `nxt[i][j] = 0.25 * (N + S + W +
/// E)` with the exact operation order of the reference solver.
fn sweep(api: &PeApi, lay: &RankLayout, cur: usize, nxt: usize) {
    let n = lay.n;
    for li in 1..=lay.owned {
        for j in 1..n - 1 {
            let nn = api.load_f64(lay.cell(cur, li - 1, j));
            let ss = api.load_f64(lay.cell(cur, li + 1, j));
            let ww = api.load_f64(lay.cell(cur, li, j - 1));
            let ee = api.load_f64(lay.cell(cur, li, j + 1));
            let s1 = api.fadd(nn, ss);
            let s2 = api.fadd(ww, ee);
            let sum = api.fadd(s1, s2);
            let v = api.fmul(sum, 0.25);
            api.store_f64(lay.cell(nxt, li, j), v);
            api.compute(LOOP_OVERHEAD_CYCLES);
        }
    }
}

fn read_row(api: &PeApi, lay: &RankLayout, buf: usize, li: usize) -> Vec<f64> {
    (0..lay.n).map(|j| api.load_f64(lay.cell(buf, li, j))).collect()
}

fn write_row(api: &PeApi, lay: &RankLayout, buf: usize, li: usize, values: &[f64]) {
    for (j, v) in values.iter().enumerate() {
        api.store_f64(lay.cell(buf, li, j), *v);
    }
}

/// Message-passing halo exchange on the freshly written buffer: one
/// [`Empi::sendrecv_f64`] per direction. The full-duplex progress engine
/// services both sides of the chain at once, so no even/odd phasing is
/// needed and the pipeline never serializes rank-by-rank; boundary ranks
/// fall out of the `None` (MPI_PROC_NULL) arms.
fn exchange_mp(comm: &Empi, lay: &RankLayout, buf: usize) {
    let ranks = comm.ranks();
    let r = comm.rank().index();
    let prev = (r > 0).then(|| Rank::new((r - 1) as u8));
    let next = (r + 1 < ranks).then(|| Rank::new((r + 1) as u8));
    // Downward traffic: my bottom owned row -> next rank's top halo,
    // while my top halo arrives from prev.
    let bottom = next.map(|_| read_row(comm, lay, buf, lay.owned));
    if let Some(row) = comm.sendrecv_f64(next, bottom.as_deref().unwrap_or(&[]), prev) {
        write_row(comm, lay, buf, 0, &row);
    }
    // Upward traffic: my top owned row -> previous rank's bottom halo,
    // while my bottom halo arrives from next.
    let top = prev.map(|_| read_row(comm, lay, buf, 1));
    if let Some(row) = comm.sendrecv_f64(prev, top.as_deref().unwrap_or(&[]), next) {
        write_row(comm, lay, buf, lay.owned + 1, &row);
    }
}

/// Shared-memory halo exchange: publish boundary rows (cached store +
/// flush), synchronize, consume neighbours' rows (DII invalidate + cached
/// load) — the §II-E producer/consumer protocol.
///
/// In the pure shared-memory model (`locked = true`) every shared-segment
/// access additionally acquires the MPMMU lock on its slot first, per
/// §II-C: "Every processor which aims to access the shared memory segment
/// for read/write operations must first request lock. If granted, the line
/// can be read/written. Before releasing the locked line with an unlock
/// command, the processor must perform a L1 cache flush operation of the
/// locked line". The hybrid sync-only model relies on its eMPI barrier for
/// ordering instead, which is exactly the synchronization saving the paper
/// credits message passing for.
fn exchange_shared(
    comm: &Empi,
    lay: &RankLayout,
    buf: usize,
    parity: usize,
    locked: bool,
    barrier: &impl Fn(&Empi),
) {
    let api: &PeApi = comm;
    let ranks = api.ranks();
    let r = api.rank().index();
    let n = lay.n;
    let row_bytes = (n * 8) as u32;
    // §II-C line-granularity protocol for the pure-SM model: lock the
    // line, read/write it, flush it (producer side), unlock. Two doubles
    // per 16-byte line.
    let publish = |slot: Addr, values: &[f64]| {
        let mut j = 0usize;
        while j < values.len() {
            let line = slot + (j * 8) as u32;
            if locked {
                api.lock(line);
            }
            api.store_f64(line, values[j]);
            if j + 1 < values.len() {
                api.store_f64(line + 8, values[j + 1]);
            }
            api.flush_line(line);
            if locked {
                api.unlock(line);
            }
            j += 2;
        }
    };
    let consume = |slot: Addr| -> Vec<f64> {
        let mut row = Vec::with_capacity(n);
        let mut j = 0usize;
        while j < n {
            let line = slot + (j * 8) as u32;
            if locked {
                api.lock(line);
            }
            api.invalidate_line(line);
            row.push(api.load_f64(line));
            if j + 1 < n {
                row.push(api.load_f64(line + 8));
            }
            if locked {
                api.unlock(line);
            }
            j += 2;
        }
        row
    };
    let _ = row_bytes;
    // Publish.
    if r > 0 {
        publish(pub_slot(n, r, 0, parity), &read_row(api, lay, buf, 1));
    }
    if r + 1 < ranks {
        publish(pub_slot(n, r, 1, parity), &read_row(api, lay, buf, lay.owned));
    }
    barrier(comm);
    // Consume.
    if r > 0 {
        let row = consume(pub_slot(n, r - 1, 1, parity));
        write_row(api, lay, buf, 0, &row);
    }
    if r + 1 < ranks {
        let row = consume(pub_slot(n, r + 1, 0, parity));
        write_row(api, lay, buf, lay.owned + 1, &row);
    }
}

// ---- driver ----

/// DDR preload for a run: both private buffers of every rank hold its
/// slice of the initial grid ("at startup, the code ... is placed in an
/// external DDR memory", §II-E).
pub fn preload_for(sys: &SystemConfig, jcfg: &JacobiConfig) -> Vec<(Addr, u32)> {
    let n = jcfg.n;
    let ranks = sys.compute_pes();
    let grid = initial_grid(n);
    let mut preload = Vec::new();
    for r in 0..ranks {
        let (g0, g1) = partition_rows(n, ranks, r);
        let base = sys.layout().private_base(Rank::new(r as u8));
        let lay = RankLayout::new(n, base, g1 - g0);
        for buf in 0..2 {
            for (li, gi) in ((g0 - 1)..=g1).enumerate() {
                for j in 0..n {
                    let (lo, hi) = f64_to_words(grid[gi * n + j]);
                    let addr = lay.cell(buf, li, j);
                    preload.push((addr, lo));
                    preload.push((addr + 4, hi));
                }
            }
        }
    }
    preload
}

/// Run the benchmark on `sys`.
///
/// # Errors
///
/// Propagates [`RunError`] from the engine.
///
/// # Panics
///
/// Panics if the configured PE count exceeds [`max_ranks`] for the grid or
/// the grid slice does not fit the private segment.
pub fn run(sys: &SystemConfig, jcfg: &JacobiConfig) -> Result<JacobiOutcome, RunError> {
    run_faulted(sys, jcfg, &mut NullSink, &mut NullInjector)
}

/// [`run`] with deterministic faults drawn from `injector` and trace
/// events delivered to `sink` — the workload side of the resilience
/// experiments: inject link kills or flit corruption under a live Jacobi
/// solve, then check completion, numerical correctness (via
/// [`JacobiConfig::with_validation`]) and the recovery counters on
/// [`RunResult`].
///
/// # Errors
///
/// Propagates [`RunError`] from the engine.
///
/// # Panics
///
/// Panics if the configured PE count exceeds [`max_ranks`] for the grid or
/// the grid slice does not fit the private segment.
pub fn run_faulted<S: TraceSink, I: FaultInjector>(
    sys: &SystemConfig,
    jcfg: &JacobiConfig,
    sink: &mut S,
    injector: &mut I,
) -> Result<JacobiOutcome, RunError> {
    assert!(
        sys.compute_pes() <= max_ranks(jcfg.n),
        "{} PEs exceed the {} interior rows of a {0}x{0} grid",
        sys.compute_pes(),
        jcfg.n
    );
    let measured = Arc::new(AtomicU64::new(0));
    let collect = jcfg.validate.then(|| Arc::new(Mutex::new(Vec::new())));
    let sm_barrier = SmBarrier::at_top_of_shared(sys.layout().shared_bytes());
    // Published halo slots must stay clear of the barrier words.
    assert!(
        pub_slot(jcfg.n, sys.compute_pes(), 0, 0) + 64 <= sys.layout().shared_bytes(),
        "shared segment too small for the halo slots"
    );
    let kernels: Vec<Kernel> = (0..sys.compute_pes())
        .map(|_| {
            let ctx = KernelCtx {
                jcfg: *jcfg,
                measured: Arc::clone(&measured),
                collect: collect.clone(),
                sm_barrier,
            };
            Box::new(move |api: PeApi| jacobi_kernel(api, ctx)) as Kernel
        })
        .collect();
    let preload = preload_for(sys, jcfg);
    let run = System::run_faulted(sys, &preload, kernels, sink, injector)?;
    Ok(JacobiOutcome {
        run,
        cycles_per_iter: measured.load(Ordering::SeqCst),
        interior: collect.map(|c| {
            let mut rows = Arc::try_unwrap(c)
                .expect("kernels finished")
                .into_inner()
                .expect("collection mutex");
            rows.sort_by_key(|(gi, _)| *gi);
            rows
        }),
    })
}

/// Compare a validated outcome against the sequential reference.
///
/// # Errors
///
/// Returns a description of the first mismatching cell.
pub fn validate_against_reference(
    jcfg: &JacobiConfig,
    outcome: &JacobiOutcome,
) -> Result<(), String> {
    let rows = outcome
        .interior
        .as_ref()
        .ok_or_else(|| "run was not configured with validation".to_string())?;
    let n = jcfg.n;
    let reference = jacobi_reference(n, jcfg.total_iters());
    let mut seen = 0usize;
    for (gi, row) in rows {
        for (j, v) in row.iter().enumerate() {
            let expect = reference[gi * n + j];
            if v.to_bits() != expect.to_bits() {
                return Err(format!("cell ({gi},{j}): got {v}, reference {expect}"));
            }
        }
        seen += 1;
    }
    if seen != n - 2 {
        return Err(format!("collected {seen} rows, expected {}", n - 2));
    }
    Ok(())
}

/// [`Workload`] adapter for the design-space exploration driver.
pub struct JacobiWorkload {
    /// Benchmark parameters (validation is forced off for sweeps).
    pub jcfg: JacobiConfig,
}

impl Workload for JacobiWorkload {
    fn name(&self) -> &str {
        "jacobi"
    }

    fn prepare(&self, cfg: &SystemConfig) -> PreparedWorkload {
        let mut jcfg = self.jcfg;
        jcfg.validate = false;
        let measured = Arc::new(AtomicU64::new(0));
        let sm_barrier = SmBarrier::at_top_of_shared(cfg.layout().shared_bytes());
        let kernels: Vec<Kernel> = (0..cfg.compute_pes())
            .map(|_| {
                let ctx =
                    KernelCtx { jcfg, measured: Arc::clone(&measured), collect: None, sm_barrier };
                Box::new(move |api: PeApi| jacobi_kernel(api, ctx)) as Kernel
            })
            .collect();
        PreparedWorkload::new(preload_for(cfg, &jcfg), kernels, measured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_core::CachePolicy;

    fn sys(pes: usize, cache_kb: usize, policy: CachePolicy) -> SystemConfig {
        SystemConfig::builder()
            .compute_pes(pes)
            .cache_bytes(cache_kb * 1024)
            .cache_policy(policy)
            .cycle_limit(200_000_000)
            .build()
            .unwrap()
    }

    fn check(variant: JacobiVariant, n: usize, pes: usize, cache_kb: usize) {
        let jcfg = JacobiConfig::new(n, variant)
            .with_warmup_iters(1)
            .with_measured_iters(2)
            .with_validation();
        let outcome = run(&sys(pes, cache_kb, CachePolicy::WriteBack), &jcfg).unwrap();
        validate_against_reference(&jcfg, &outcome).unwrap();
        assert!(outcome.cycles_per_iter > 0);
    }

    #[test]
    fn hybrid_full_mp_single_rank_correct() {
        check(JacobiVariant::HybridFullMp, 8, 1, 16);
    }

    #[test]
    fn hybrid_full_mp_multi_rank_correct() {
        check(JacobiVariant::HybridFullMp, 8, 3, 16);
    }

    #[test]
    fn hybrid_sync_only_correct() {
        check(JacobiVariant::HybridSyncOnly, 8, 3, 16);
    }

    #[test]
    fn pure_sm_correct() {
        check(JacobiVariant::PureSharedMemory, 8, 3, 16);
    }

    #[test]
    fn tiny_cache_still_correct() {
        // 2 kB cache thrashes on an 8x8 grid slice but must stay correct.
        check(JacobiVariant::HybridFullMp, 8, 2, 2);
    }

    #[test]
    fn write_through_correct() {
        let jcfg = JacobiConfig::new(8, JacobiVariant::HybridFullMp)
            .with_measured_iters(2)
            .with_validation();
        let outcome = run(&sys(2, 16, CachePolicy::WriteThrough), &jcfg).unwrap();
        validate_against_reference(&jcfg, &outcome).unwrap();
    }

    #[test]
    fn variants_agree_bitwise() {
        let mk = |variant| {
            let jcfg = JacobiConfig::new(10, variant).with_measured_iters(2).with_validation();
            let outcome = run(&sys(4, 16, CachePolicy::WriteBack), &jcfg).unwrap();
            outcome.interior.unwrap()
        };
        let a = mk(JacobiVariant::HybridFullMp);
        let b = mk(JacobiVariant::HybridSyncOnly);
        let c = mk(JacobiVariant::PureSharedMemory);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn hybrid_beats_pure_sm() {
        // The paper's headline: the hybrid approach wins on synchronization
        // cost. Even at small scale the pure-SM variant must be slower.
        let mk = |variant| {
            let jcfg = JacobiConfig::new(12, variant).with_warmup_iters(1).with_measured_iters(1);
            run(&sys(4, 16, CachePolicy::WriteBack), &jcfg).unwrap().cycles_per_iter
        };
        let hybrid = mk(JacobiVariant::HybridFullMp);
        let pure = mk(JacobiVariant::PureSharedMemory);
        assert!(
            pure > hybrid,
            "pure SM ({pure} cycles/iter) must be slower than hybrid ({hybrid})"
        );
    }

    #[test]
    fn warm_cache_is_faster_than_cold() {
        let cold = JacobiConfig::new(12, JacobiVariant::HybridFullMp)
            .with_warmup_iters(0)
            .with_measured_iters(1);
        let warm = JacobiConfig::new(12, JacobiVariant::HybridFullMp)
            .with_warmup_iters(1)
            .with_measured_iters(1);
        let s = sys(2, 32, CachePolicy::WriteBack);
        let t_cold = run(&s, &cold).unwrap().cycles_per_iter;
        let t_warm = run(&s, &warm).unwrap().cycles_per_iter;
        assert!(t_warm < t_cold, "warm {t_warm} !< cold {t_cold}");
    }

    #[test]
    fn workload_adapter_measures() {
        use medea_core::explore::Workload as _;
        let w = JacobiWorkload { jcfg: JacobiConfig::new(8, JacobiVariant::HybridFullMp) };
        let cfg = sys(2, 16, CachePolicy::WriteBack);
        let prepared = w.prepare(&cfg);
        let result = System::run(&cfg, &prepared.preload, prepared.kernels).unwrap();
        assert!(result.cycles > 0);
        assert!(prepared.measured.load(Ordering::SeqCst) > 0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_pes_panics() {
        let jcfg = JacobiConfig::new(8, JacobiVariant::HybridFullMp);
        let _ = run(&sys(7, 16, CachePolicy::WriteBack), &jcfg);
    }

    #[test]
    fn validates_under_tree_collectives() {
        // The barrier algorithm must not change the numerics: the hybrid
        // variant stays bit-exact against the sequential reference under
        // both tree algorithms.
        use medea_core::CollectiveAlgo;
        for algo in [CollectiveAlgo::BinomialTree, CollectiveAlgo::RecursiveDoubling] {
            let sys = SystemConfig::builder()
                .compute_pes(5)
                .cache_bytes(16 * 1024)
                .collective_algo(algo)
                .cycle_limit(200_000_000)
                .build()
                .unwrap();
            let jcfg = JacobiConfig::new(10, JacobiVariant::HybridFullMp)
                .with_measured_iters(2)
                .with_validation();
            let outcome = run(&sys, &jcfg).unwrap_or_else(|e| panic!("{algo}: {e}"));
            validate_against_reference(&jcfg, &outcome).unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
    }

    #[test]
    fn rank_generic_at_63_ranks_on_8x8() {
        // The kernels are rank-count-generic: a fully populated 8x8 torus
        // (63 compute PEs, one interior row each) still validates
        // bit-for-bit against the sequential reference.
        let sys = SystemConfig::builder()
            .topology(medea_core::Topology::new(8, 8).unwrap())
            .compute_pes(63)
            .cache_bytes(16 * 1024)
            .cycle_limit(400_000_000)
            .build()
            .unwrap();
        let jcfg = JacobiConfig::new(65, JacobiVariant::HybridFullMp)
            .with_warmup_iters(0)
            .with_measured_iters(1)
            .with_validation();
        let outcome = run(&sys, &jcfg).unwrap();
        validate_against_reference(&jcfg, &outcome).unwrap();
        assert_eq!(outcome.run.pe.len(), 63);
        assert!(outcome.cycles_per_iter > 0);
    }
}
