//! All-reduce (global sum) in message-passing and shared-memory flavours —
//! the collective behind convergence tests in iterative solvers, and
//! another direct MP-vs-SM synchronization comparison. The MP flavour is
//! [`Empi::allreduce`], so the communicator's configured algorithm
//! (linear, binomial tree, recursive doubling) is what gets measured.

use crate::sm::SmBarrier;
use medea_core::api::PeApi;
use medea_core::system::{Kernel, RunError, System};
use medea_core::{Empi, SystemConfig};
use medea_sim::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How the reduction is communicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceTransport {
    /// [`Empi::allreduce`] over the NoC (algorithm per the system config).
    MessagePassing,
    /// Lock-protected accumulator word in shared memory + SM barrier.
    SharedMemory,
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct ReduceReport {
    /// Cycles from start barrier to every rank holding the sum.
    pub cycles: Cycle,
    /// The reduced value every rank observed (they must agree).
    pub sum: f64,
}

const ACC_LO: u32 = 0x100; // shared accumulator (f64, two words)
const LOCK: u32 = 0x140;

/// All-reduce the per-rank values `contribution(rank)` and verify that
/// every rank observes the same sum.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(
    sys: &SystemConfig,
    transport: ReduceTransport,
    contribution: fn(usize) -> f64,
) -> Result<ReduceReport, RunError> {
    let ranks = sys.compute_pes();
    let window = Arc::new(AtomicU64::new(0));
    let sums: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let bar = SmBarrier::at_top_of_shared(sys.layout().shared_bytes());

    let kernels: Vec<Kernel> = (0..ranks)
        .map(|r| {
            let cell = Arc::clone(&window);
            let sums = Arc::clone(&sums);
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                let mine = contribution(r);
                comm.barrier();
                let t0 = comm.now();
                let total = match transport {
                    ReduceTransport::MessagePassing => comm.allreduce(mine),
                    ReduceTransport::SharedMemory => {
                        // Accumulate under the MPMMU lock, then rendezvous
                        // at the SM barrier and read the total back.
                        comm.lock(LOCK);
                        let acc = comm.uncached_load_f64(ACC_LO);
                        let acc = comm.fadd(acc, mine);
                        comm.uncached_store_f64(ACC_LO, acc);
                        comm.unlock(LOCK);
                        bar.wait(&comm, comm.ranks());
                        comm.uncached_load_f64(ACC_LO)
                    }
                };
                if r == 0 {
                    cell.store(comm.now() - t0, Ordering::SeqCst);
                }
                sums.lock().expect("reduce sink").push(total);
            }) as Kernel
        })
        .collect();

    System::run(sys, &[], kernels)?;
    let sums = Arc::try_unwrap(sums).expect("kernels done").into_inner().expect("sink");
    let first = sums[0];
    for s in &sums {
        assert_eq!(s.to_bits(), first.to_bits(), "ranks disagree on the reduction");
    }
    Ok(ReduceReport { cycles: window.load(Ordering::SeqCst), sum: first })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(pes: usize) -> SystemConfig {
        SystemConfig::builder().compute_pes(pes).cycle_limit(50_000_000).build().unwrap()
    }

    fn half(r: usize) -> f64 {
        r as f64 + 0.5
    }

    #[test]
    fn mp_reduce_sums() {
        let rep = run(&sys(4), ReduceTransport::MessagePassing, half).unwrap();
        assert_eq!(rep.sum, 0.5 + 1.5 + 2.5 + 3.5);
        assert!(rep.cycles > 0);
    }

    #[test]
    fn sm_reduce_sums() {
        let rep = run(&sys(4), ReduceTransport::SharedMemory, half).unwrap();
        // Lock-serialized accumulation: order is deterministic only in
        // total, and addition here is exact (halves), so compare exactly.
        assert_eq!(rep.sum, 8.0);
    }

    #[test]
    fn single_rank_trivial() {
        let rep = run(&sys(1), ReduceTransport::MessagePassing, half).unwrap();
        assert_eq!(rep.sum, 0.5);
    }

    #[test]
    fn mp_reduce_beats_sm() {
        let mp = run(&sys(6), ReduceTransport::MessagePassing, half).unwrap();
        let sm = run(&sys(6), ReduceTransport::SharedMemory, half).unwrap();
        assert!(mp.cycles < sm.cycles, "MP {} !< SM {}", mp.cycles, sm.cycles);
    }

    #[test]
    fn all_algorithms_agree_on_the_sum() {
        // Halves sum exactly in FP, so every accumulation order must give
        // identical bits — and every rank must observe the same value
        // (asserted inside run()).
        use medea_core::CollectiveAlgo;
        for algo in CollectiveAlgo::ALL {
            for pes in [2usize, 5, 7, 8] {
                let sys = SystemConfig::builder()
                    .compute_pes(pes)
                    .collective_algo(algo)
                    .cycle_limit(50_000_000)
                    .build()
                    .unwrap();
                let rep = run(&sys, ReduceTransport::MessagePassing, half).unwrap();
                let expect: f64 = (0..pes).map(half).sum();
                assert_eq!(rep.sum, expect, "{algo} at {pes} ranks");
            }
        }
    }
}
