//! Shared-memory hotspot microbenchmark: every rank hammers the MPMMU
//! with uncached single-word transactions.
//!
//! This is the workload that exposes the §II-C bottleneck the paper
//! warns about: each uncached store is a full request → grant → data →
//! ack handshake and each uncached load a request → data round trip, all
//! serialized inside the owning MPMMU bank. With one bank every
//! transaction of every rank queues at node 0; with N address-interleaved
//! banks ([`SystemConfigBuilder::memory_banks`]) the same traffic spreads
//! over N independent slaves, which is precisely what the
//! `memory_banks` section of `BENCH_scaling.json` measures.
//!
//! Each rank walks its own line-strided slice of the shared segment
//! (`line = rank + i × ranks`), so no two ranks ever touch the same line
//! and results are fully checkable: every rank reads back exactly what it
//! wrote. When the bank count divides the rank count (every
//! fully-populated bench configuration), the line interleave partitions
//! the *ranks* over the banks — all of rank r's traffic lands on bank
//! `r mod N`, so each bank serializes 1/N of the ranks; otherwise a
//! rank's successive operations rotate through the banks. Either way the
//! single bank's full serialization is what goes away.
//!
//! [`SystemConfigBuilder::memory_banks`]: medea_core::SystemConfigBuilder::memory_banks

use medea_cache::LINE_BYTES;
use medea_core::api::PeApi;
use medea_core::system::{Kernel, RunError, RunResult, System};
use medea_core::{Empi, SystemConfig};
use medea_sim::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotspotConfig {
    /// Store+load round trips each rank performs.
    pub ops_per_rank: usize,
}

/// Result of a run.
#[derive(Debug)]
pub struct HotspotOutcome {
    /// Engine result (per-bank MPMMU stats included).
    pub run: RunResult,
    /// Measured cycles between the start and end barrier, at rank 0.
    pub cycles: Cycle,
}

/// The value rank `r` writes on its `i`-th operation (checked on
/// read-back inside the kernel).
fn encode(rank: usize, i: usize) -> u32 {
    (rank as u32) << 16 | (i as u32 & 0xFFFF)
}

/// Run the benchmark.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if the strided slices do not fit the shared segment.
pub fn run(sys: &SystemConfig, hcfg: &HotspotConfig) -> Result<HotspotOutcome, RunError> {
    let ranks = sys.compute_pes();
    let ops = hcfg.ops_per_rank;
    let lines_needed = (ranks * ops) as u64 * LINE_BYTES as u64;
    assert!(
        lines_needed <= sys.layout().shared_bytes() as u64,
        "{ranks} ranks x {ops} ops need {lines_needed} shared bytes, have {}",
        sys.layout().shared_bytes()
    );

    let window = Arc::new(AtomicU64::new(0));
    let kernels: Vec<Kernel> = (0..ranks)
        .map(|r| {
            let cell = Arc::clone(&window);
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                let ranks = comm.ranks();
                let addr = |i: usize| ((r + i * ranks) * LINE_BYTES) as u32;
                comm.barrier();
                let t0 = comm.now();
                for i in 0..ops {
                    comm.uncached_store_u32(addr(i), encode(r, i));
                }
                for i in 0..ops {
                    assert_eq!(comm.uncached_load_u32(addr(i)), encode(r, i), "rank {r} op {i}");
                }
                comm.barrier();
                if r == 0 {
                    cell.store(comm.now() - t0, Ordering::SeqCst);
                }
            }) as Kernel
        })
        .collect();

    let run = System::run(sys, &[], kernels)?;
    Ok(HotspotOutcome { run, cycles: window.load(Ordering::SeqCst) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_core::Topology;

    fn sys(pes: usize, banks: usize) -> SystemConfig {
        SystemConfig::builder()
            .compute_pes(pes)
            .memory_banks(banks)
            .cycle_limit(50_000_000)
            .build()
            .unwrap()
    }

    #[test]
    fn single_bank_correct() {
        let outcome = run(&sys(4, 1), &HotspotConfig { ops_per_rank: 8 }).unwrap();
        assert!(outcome.cycles > 0);
        assert_eq!(outcome.run.mpmmu.single_writes.get(), 32);
        assert_eq!(outcome.run.mpmmu.single_reads.get(), 32);
    }

    #[test]
    fn multi_bank_correct_and_spread() {
        let outcome = run(&sys(4, 2), &HotspotConfig { ops_per_rank: 8 }).unwrap();
        // Same transaction totals, now spread over both banks.
        assert_eq!(outcome.run.mpmmu.single_writes.get(), 32);
        assert_eq!(outcome.run.mpmmu.single_reads.get(), 32);
        for bank in &outcome.run.banks {
            assert!(bank.mpmmu.single_writes.get() > 0, "bank {} idle", bank.node);
        }
    }

    #[test]
    fn multi_bank_beats_single_bank_when_memory_hot() {
        // The acceptance shape of the BENCH_scaling `memory_banks`
        // section, at test scale: a fully populated 8×8 torus, fixed
        // per-rank work, fewer serialized transactions per bank.
        let t8 = Topology::new(8, 8).unwrap();
        let mk = |banks: usize| {
            SystemConfig::builder()
                .topology(t8)
                .compute_pes(60)
                .memory_banks(banks)
                .cycle_limit(200_000_000)
                .build()
                .unwrap()
        };
        let hcfg = HotspotConfig { ops_per_rank: 6 };
        let one = run(&mk(1), &hcfg).unwrap();
        let four = run(&mk(4), &hcfg).unwrap();
        assert!(
            four.cycles < one.cycles,
            "4 banks ({}) must beat 1 bank ({}) at 60 ranks",
            four.cycles,
            one.cycles
        );
    }
}
