//! Reusable kernel factories for harnesses that drive the engine
//! directly (tracing, equivalence tests, benches) rather than through a
//! self-measuring workload runner like [`crate::pingpong::run`].
//!
//! The factories return plain kernel vectors so callers choose the run
//! entry point — `System::run`, `System::run_traced`, or the reference
//! engine — and the single definition keeps the CI trace artifact and
//! the integration tests validating the *same* workload.

use medea_core::api::PeApi;
use medea_core::system::Kernel;
use medea_core::Empi;
use medea_sim::ids::Rank;

/// One-word ping-pong over raw TIE messages between ranks 0 and 1,
/// `rounds` round trips (needs a 2-PE system).
pub fn pingpong_kernels(rounds: u32) -> Vec<Kernel> {
    let ping: Kernel = Box::new(move |api: PeApi| {
        for i in 1..=rounds {
            api.send_to_rank(Rank::new(1), &[i]);
            let back = api.recv_from_rank(Rank::new(1));
            assert_eq!(back[0], i);
        }
    });
    let pong: Kernel = Box::new(move |api: PeApi| {
        for _ in 1..=rounds {
            let v = api.recv_from_rank(Rank::new(0));
            api.send_to_rank(Rank::new(0), &v);
        }
    });
    vec![ping, pong]
}

/// Every-layer mix: `lock_rounds` lock-guarded uncached counter
/// increments, cached stores with flush/invalidate/reload, a barrier
/// and a self-checked allreduce per rank — messages, cache, MPMMU/lock
/// and eMPI collective activity on one timeline (the workload behind
/// `trace_json --workload mixed` and the trace integration tests).
pub fn trace_mix_kernels(ranks: usize, lock_rounds: usize) -> Vec<Kernel> {
    (0..ranks)
        .map(|r| {
            Box::new(move |api: PeApi| {
                const COUNTER: u32 = 0x100;
                const LOCK: u32 = 0x200;
                let comm = Empi::new(api);
                for _ in 0..lock_rounds {
                    comm.lock(LOCK);
                    let v = comm.uncached_load_u32(COUNTER);
                    comm.uncached_store_u32(COUNTER, v + 1);
                    comm.unlock(LOCK);
                }
                comm.store_f64(comm.private_base(), r as f64);
                comm.flush_line(comm.private_base());
                comm.invalidate_line(comm.private_base());
                let _ = comm.load_f64(comm.private_base());
                comm.barrier();
                let total = comm.allreduce(r as f64 + 0.5);
                let expect = (0..comm.ranks()).map(|k| k as f64 + 0.5).sum::<f64>();
                assert_eq!(total.to_bits(), expect.to_bits());
            }) as Kernel
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_core::system::System;
    use medea_core::SystemConfig;

    #[test]
    fn pingpong_and_mix_run_to_completion() {
        let cfg2 = SystemConfig::builder().compute_pes(2).build().unwrap();
        let run = System::run(&cfg2, &[], pingpong_kernels(3)).unwrap();
        assert_eq!(run.pe[0].engine.packets_sent.get(), 3);

        let cfg4 = SystemConfig::builder().compute_pes(4).build().unwrap();
        let run = System::run(&cfg4, &[], trace_mix_kernels(4, 2)).unwrap();
        assert_eq!(run.mpmmu.locks_granted.get(), 8);
        assert!(run.fabric_delivered > 0);
    }
}
