//! Shared-memory synchronization built on the MPMMU lock/unlock protocol
//! (§II-C) — what the paper's "pure shared memory" Jacobi variant uses
//! instead of eMPI tokens.

use medea_cache::Addr;
use medea_core::api::PeApi;
use medea_sim::Cycle;

/// Cycles a spinning PE waits between polls of the barrier generation
/// word. Each poll is an uncached single-read transaction at the MPMMU —
/// exactly the serialized traffic the paper blames for shared-memory
/// synchronization cost.
pub const SPIN_BACKOFF_CYCLES: Cycle = 8;

/// Addresses of one shared-memory barrier's state (three words, placed on
/// separate cache lines in the shared segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmBarrier {
    /// The MPMMU lock word guarding the counter.
    pub lock: Addr,
    /// Arrival counter.
    pub count: Addr,
    /// Generation (epoch) word spun on by waiters.
    pub generation: Addr,
}

impl SmBarrier {
    /// Lay the three words out at the top of the shared segment.
    pub fn at_top_of_shared(shared_bytes: u32) -> Self {
        assert!(shared_bytes >= 64, "shared segment too small for a barrier");
        SmBarrier {
            lock: shared_bytes - 16,
            count: shared_bytes - 32,
            generation: shared_bytes - 48,
        }
    }

    /// Enter the barrier and block until all `ranks` have arrived.
    ///
    /// Classic centralized sense-reversing barrier: arrival is counted
    /// under the MPMMU lock; the last arrival resets the counter and bumps
    /// the generation; everyone else spins on uncached reads of the
    /// generation word.
    pub fn wait(&self, api: &PeApi, ranks: usize) {
        if ranks <= 1 {
            return;
        }
        api.lock(self.lock);
        let gen = api.uncached_load_u32(self.generation);
        let arrived = api.uncached_load_u32(self.count) + 1;
        if arrived as usize == ranks {
            api.uncached_store_u32(self.count, 0);
            api.uncached_store_u32(self.generation, gen.wrapping_add(1));
            api.unlock(self.lock);
        } else {
            api.uncached_store_u32(self.count, arrived);
            api.unlock(self.lock);
            while api.uncached_load_u32(self.generation) == gen {
                api.compute(SPIN_BACKOFF_CYCLES);
            }
        }
    }
}

/// A single-producer single-consumer mailbox in shared memory: the
/// shared-memory counterpart of a one-word eMPI message, used by the
/// ping-pong microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmMailbox {
    /// Flag word (0 = empty, otherwise sequence number).
    pub flag: Addr,
    /// Payload word.
    pub data: Addr,
}

impl SmMailbox {
    /// Post `value` with sequence number `seq` (nonzero).
    pub fn post(&self, api: &PeApi, seq: u32, value: u32) {
        debug_assert_ne!(seq, 0);
        api.uncached_store_u32(self.data, value);
        api.uncached_store_u32(self.flag, seq);
    }

    /// Spin until sequence number `seq` is posted, then read the payload.
    pub fn take(&self, api: &PeApi, seq: u32) -> u32 {
        while api.uncached_load_u32(self.flag) != seq {
            api.compute(SPIN_BACKOFF_CYCLES);
        }
        api.uncached_load_u32(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_core::api::PeApi;
    use medea_core::system::{Kernel, System};
    use medea_core::SystemConfig;

    fn cfg(pes: usize) -> SystemConfig {
        SystemConfig::builder().compute_pes(pes).cycle_limit(20_000_000).build().unwrap()
    }

    #[test]
    fn sm_barrier_synchronizes() {
        let sys = cfg(3);
        let bar = SmBarrier::at_top_of_shared(sys.layout().shared_bytes());
        let slow = 30_000u64;
        let kernels: Vec<Kernel> = (0..3)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    if r == 0 {
                        api.compute(slow);
                    }
                    bar.wait(&api, 3);
                    assert!(api.now() >= slow, "rank {r} left the barrier early");
                }) as Kernel
            })
            .collect();
        System::run(&sys, &[], kernels).unwrap();
    }

    #[test]
    fn sm_barrier_reusable_across_iterations() {
        let sys = cfg(2);
        let bar = SmBarrier::at_top_of_shared(sys.layout().shared_bytes());
        let kernels: Vec<Kernel> = (0..2)
            .map(|r| {
                Box::new(move |api: PeApi| {
                    for it in 0..5u64 {
                        api.compute(1 + r as u64 * 50 + it);
                        bar.wait(&api, 2);
                    }
                }) as Kernel
            })
            .collect();
        let result = System::run(&sys, &[], kernels).unwrap();
        // 5 barriers × 2 ranks: 10 lock acquisitions at least.
        assert!(result.mpmmu.locks_granted.get() >= 10);
    }

    #[test]
    fn mailbox_roundtrip() {
        let sys = cfg(2);
        let mbox = SmMailbox { flag: 0x40, data: 0x50 };
        let kernels: Vec<Kernel> = vec![
            Box::new(move |api: PeApi| {
                mbox.post(&api, 1, 99);
                assert_eq!(mbox.take(&api, 2), 100);
            }),
            Box::new(move |api: PeApi| {
                assert_eq!(mbox.take(&api, 1), 99);
                mbox.post(&api, 2, 100);
            }),
        ];
        System::run(&sys, &[], kernels).unwrap();
    }

    #[test]
    fn single_rank_barrier_is_noop() {
        let sys = cfg(1);
        let bar = SmBarrier::at_top_of_shared(sys.layout().shared_bytes());
        let result = System::run(
            &sys,
            &[],
            vec![Box::new(move |api: PeApi| {
                bar.wait(&api, 1);
            })],
        )
        .unwrap();
        assert_eq!(result.mpmmu.locks_granted.get(), 0);
    }
}
