//! Synchronization-latency microbenchmark: one-word round trips between
//! two ranks — raw TIE messages, framed eMPI messages through the
//! communicator, and a shared-memory mailbox.
//!
//! Quantifies the paper's core motivation (§I): "an explicit exchange of
//! synchronization tokens among the processing elements through dedicated
//! on-chip links would be beneficial" compared to synchronizing through
//! the memory hierarchy — and, between the two message flavours, what the
//! eMPI frame header and call overhead cost on top of the bare hardware
//! path.

use crate::sm::SmMailbox;
use medea_core::api::PeApi;
use medea_core::system::{Kernel, RunError, System};
use medea_core::{Empi, SystemConfig};
use medea_sim::ids::Rank;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Transport used for the round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingPongTransport {
    /// Raw TIE messages (bare hardware path, no framing).
    MessagePassing,
    /// Framed eMPI messages via [`Empi::send`]/[`Empi::recv`].
    EmpiFramed,
    /// Shared-memory mailboxes (uncached flag + data words).
    SharedMemory,
}

/// Result: average round-trip latency.
#[derive(Debug, Clone, Copy)]
pub struct PingPongReport {
    /// Round trips performed.
    pub rounds: u64,
    /// Mean cycles per round trip.
    pub cycles_per_round: f64,
}

/// Run `rounds` one-word round trips between ranks 0 and 1 of `sys`.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `sys` has fewer than two PEs or `rounds` is zero.
pub fn run(
    sys: &SystemConfig,
    transport: PingPongTransport,
    rounds: u64,
) -> Result<PingPongReport, RunError> {
    assert!(sys.compute_pes() >= 2, "ping-pong needs two ranks");
    assert!(rounds > 0);
    let window = Arc::new(AtomicU64::new(0));
    let cell = Arc::clone(&window);
    // Two mailboxes on distinct lines in the shared segment.
    let ping_box = SmMailbox { flag: 0x40, data: 0x50 };
    let pong_box = SmMailbox { flag: 0x80, data: 0x90 };

    let ping: Kernel = Box::new(move |api: PeApi| {
        let comm = Empi::new(api);
        let t0 = comm.now();
        for i in 1..=rounds {
            match transport {
                PingPongTransport::MessagePassing => {
                    comm.send_to_rank(Rank::new(1), &[i as u32]);
                    let back = comm.recv_from_rank(Rank::new(1));
                    debug_assert_eq!(back[0], i as u32);
                }
                PingPongTransport::EmpiFramed => {
                    comm.send(Rank::new(1), &[i as u32]);
                    let back = comm.recv(Rank::new(1));
                    debug_assert_eq!(back[0], i as u32);
                }
                PingPongTransport::SharedMemory => {
                    ping_box.post(&comm, i as u32, i as u32);
                    let back = pong_box.take(&comm, i as u32);
                    debug_assert_eq!(back, i as u32);
                }
            }
        }
        let t1 = comm.now();
        cell.store(t1 - t0, Ordering::SeqCst);
    });
    let pong: Kernel = Box::new(move |api: PeApi| {
        let comm = Empi::new(api);
        for i in 1..=rounds {
            match transport {
                PingPongTransport::MessagePassing => {
                    let v = comm.recv_from_rank(Rank::new(0));
                    comm.send_to_rank(Rank::new(0), &v);
                }
                PingPongTransport::EmpiFramed => {
                    let v = comm.recv(Rank::new(0));
                    comm.send(Rank::new(0), &v);
                }
                PingPongTransport::SharedMemory => {
                    let v = ping_box.take(&comm, i as u32);
                    pong_box.post(&comm, i as u32, v);
                }
            }
        }
    });
    let mut kernels = vec![ping, pong];
    // Idle kernels for any extra configured PEs.
    for _ in 2..sys.compute_pes() {
        kernels.push(Box::new(|_api: PeApi| {}));
    }
    System::run(sys, &[], kernels)?;
    Ok(PingPongReport {
        rounds,
        cycles_per_round: window.load(Ordering::SeqCst) as f64 / rounds as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::builder().compute_pes(2).cycle_limit(50_000_000).build().unwrap()
    }

    #[test]
    fn mp_roundtrip_completes() {
        let rep = run(&sys(), PingPongTransport::MessagePassing, 50).unwrap();
        assert!(rep.cycles_per_round > 0.0);
        // One-word packets over a couple of hops: tens of cycles, not
        // hundreds.
        assert!(rep.cycles_per_round < 100.0, "{}", rep.cycles_per_round);
    }

    #[test]
    fn sm_roundtrip_completes() {
        let rep = run(&sys(), PingPongTransport::SharedMemory, 50).unwrap();
        assert!(rep.cycles_per_round > 0.0);
    }

    #[test]
    fn message_passing_beats_shared_memory() {
        // The paper's motivating claim, as a test — and the framing tax
        // must sit strictly between the bare hardware path and the memory
        // hierarchy.
        let raw = run(&sys(), PingPongTransport::MessagePassing, 100).unwrap();
        let framed = run(&sys(), PingPongTransport::EmpiFramed, 100).unwrap();
        let sm = run(&sys(), PingPongTransport::SharedMemory, 100).unwrap();
        assert!(
            raw.cycles_per_round < framed.cycles_per_round,
            "raw {} !< framed {}",
            raw.cycles_per_round,
            framed.cycles_per_round
        );
        assert!(
            framed.cycles_per_round < sm.cycles_per_round,
            "framed {} !< SM {}",
            framed.cycles_per_round,
            sm.cycles_per_round
        );
    }
}
