//! Fine-grained-sharing microbenchmark: every rank read-modify-writes
//! counters interleaved through a handful of shared cache lines, so the
//! same lines migrate between all the L1s for the whole run.
//!
//! This is the workload the `coherence` section of `BENCH_scaling.json`
//! measures, and the access pattern where the two coherence modes
//! ([`SystemConfigBuilder::coherence`]) differ most:
//!
//! * under the paper's software **DII** (§II-E) every critical section
//!   must bracket its loads/stores with `invalidate_line`/`flush_line`,
//!   paying a full line fetch and a full line writeback per increment
//!   even when the line never left the local L1;
//! * under the beyond-the-paper **directory MESI** the kernel performs
//!   plain cached loads/stores and the MPMMU directory moves the line
//!   only when another rank actually holds it — the cost shifts from
//!   unconditional software writebacks to demand-driven `Inv`/`Fetch`
//!   probes (visible in [`RunResult::coherence`]).
//!
//! The counters live four-per-line (one per 32-bit word), so neighbour
//! ranks genuinely share lines rather than merely the segment. Each
//! round, rank `r` increments counter `(r + round) mod ranks` under that
//! counter's **line lock** — one lock per line, not per word, because a
//! write-back is line-granular: two ranks flushing different words of
//! one line concurrently would clobber each other's update, the classic
//! false-sharing hazard of software coherence. The rotation visits every
//! counter exactly once per round, so after `rounds` rounds every
//! counter reads exactly `rounds` — which rank 0 checks in-kernel
//! through the *coherent* path (cached loads, preceded by invalidates
//! under DII) before exporting the values to the host.
//!
//! [`SystemConfigBuilder::coherence`]: medea_core::SystemConfigBuilder::coherence
//! [`RunResult::coherence`]: medea_core::RunResult

use medea_cache::{Addr, LINE_BYTES};
use medea_core::api::PeApi;
use medea_core::system::{Kernel, RunError, RunResult, System};
use medea_core::{Empi, NullSink, SystemConfig, TraceSink};
use medea_sim::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct SharingConfig {
    /// Rotation rounds; every counter is incremented once per round.
    pub rounds: usize,
}

/// How kernels keep the shared counters coherent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// §II-E DII: `invalidate_line` before the read, `flush_line` after
    /// the write, inside every critical section. Correct under **both**
    /// coherence modes (the explicit operations are merely redundant
    /// when the directory is active).
    Software,
    /// Plain cached loads/stores; the MPMMU directory keeps the L1s
    /// coherent. Only correct under
    /// [`Coherence::MesiDirectory`](medea_core::Coherence).
    Hardware,
}

/// Result of a run.
#[derive(Debug)]
pub struct SharingOutcome {
    /// Engine result (aggregated [`CoherenceStats`] included).
    ///
    /// [`CoherenceStats`]: medea_core::CoherenceStats
    pub run: RunResult,
    /// Measured cycles between the start and end barrier, at rank 0.
    pub cycles: Cycle,
    /// Final counter values as rank 0 read them back (all equal to
    /// `rounds` — also asserted in-kernel).
    pub counters: Vec<u32>,
}

/// Word address of counter `c` (four counters per line).
fn counter_addr(c: usize) -> Addr {
    (c * 4) as Addr
}

/// Lock address guarding the line that holds counter `c`.
fn lock_addr(c: usize) -> Addr {
    const LOCK_BASE: Addr = 0x1000;
    LOCK_BASE + (counter_addr(c) / LINE_BYTES as Addr) * LINE_BYTES as Addr
}

/// Run the benchmark with the discipline matching `sys`'s configured
/// coherence mode: hardware MESI systems run the plain-cached kernel,
/// DII systems the flush/invalidate kernel.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run(sys: &SystemConfig, scfg: &SharingConfig) -> Result<SharingOutcome, RunError> {
    run_traced(sys, scfg, &mut NullSink)
}

/// [`run`] through the traced engine entry point, recording into `sink`
/// — tracing must never perturb the fingerprint, coherence traffic
/// included, and the equivalence tests pin that through this function.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_traced<S: TraceSink>(
    sys: &SystemConfig,
    scfg: &SharingConfig,
    sink: &mut S,
) -> Result<SharingOutcome, RunError> {
    let discipline =
        if sys.coherence().is_hardware() { Discipline::Hardware } else { Discipline::Software };
    run_disciplined_traced(sys, scfg, discipline, sink)
}

/// Run the benchmark with an explicit [`Discipline`] — chiefly to run
/// the DII-disciplined kernel *under* the MESI directory, where both
/// modes are architecturally equivalent (the equivalence tests pin
/// this).
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `Discipline::Hardware` is requested on a DII system (plain
/// cached read-modify-writes are incoherent without the directory), or
/// if the counters and locks do not fit the shared segment.
pub fn run_disciplined(
    sys: &SystemConfig,
    scfg: &SharingConfig,
    discipline: Discipline,
) -> Result<SharingOutcome, RunError> {
    run_disciplined_traced(sys, scfg, discipline, &mut NullSink)
}

/// [`run_disciplined`] through the traced engine entry point.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// As [`run_disciplined`].
pub fn run_disciplined_traced<S: TraceSink>(
    sys: &SystemConfig,
    scfg: &SharingConfig,
    discipline: Discipline,
    sink: &mut S,
) -> Result<SharingOutcome, RunError> {
    assert!(
        discipline == Discipline::Software || sys.coherence().is_hardware(),
        "the hardware discipline is incoherent without the MESI directory"
    );
    let ranks = sys.compute_pes();
    assert!(
        lock_addr(ranks) as u64 + LINE_BYTES as u64 <= sys.layout().shared_bytes() as u64,
        "{ranks} counters + line locks do not fit the shared segment"
    );
    let rounds = scfg.rounds;

    let window = Arc::new(AtomicU64::new(0));
    let readback: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let kernels: Vec<Kernel> = (0..ranks)
        .map(|r| {
            let cell = Arc::clone(&window);
            let sink = Arc::clone(&readback);
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                let ranks = comm.ranks();
                comm.barrier();
                let t0 = comm.now();
                for round in 0..rounds {
                    let c = (r + round) % ranks;
                    let addr = counter_addr(c);
                    comm.lock(lock_addr(c));
                    let v = match discipline {
                        Discipline::Software => {
                            comm.invalidate_line(addr);
                            let v = comm.load_u32(addr);
                            comm.store_u32(addr, v + 1);
                            comm.flush_line(addr);
                            v
                        }
                        Discipline::Hardware => {
                            let v = comm.load_u32(addr);
                            comm.store_u32(addr, v + 1);
                            v
                        }
                    };
                    assert!(v <= rounds as u32, "rank {r} counter {c} overshot: {v}");
                    comm.unlock(lock_addr(c));
                }
                comm.barrier();
                if r == 0 {
                    cell.store(comm.now() - t0, Ordering::SeqCst);
                    let finals: Vec<u32> = (0..ranks)
                        .map(|c| {
                            if discipline == Discipline::Software {
                                comm.invalidate_line(counter_addr(c));
                            }
                            let v = comm.load_u32(counter_addr(c));
                            assert_eq!(v, rounds as u32, "counter {c}");
                            v
                        })
                        .collect();
                    *sink.lock().unwrap() = finals;
                }
            }) as Kernel
        })
        .collect();

    let run = System::run_traced(sys, &[], kernels, sink)?;
    let counters = std::mem::take(&mut *readback.lock().unwrap());
    Ok(SharingOutcome { run, cycles: window.load(Ordering::SeqCst), counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_core::Coherence;

    fn sys(pes: usize, mesi: bool) -> SystemConfig {
        SystemConfig::builder()
            .compute_pes(pes)
            .coherence(if mesi { Coherence::MesiDirectory } else { Coherence::Dii })
            .cycle_limit(50_000_000)
            .build()
            .unwrap()
    }

    #[test]
    fn dii_correct_with_zero_protocol_traffic() {
        let out = run(&sys(4, false), &SharingConfig { rounds: 3 }).unwrap();
        assert_eq!(out.counters, vec![3; 4]);
        assert!(out.cycles > 0);
        assert_eq!(out.run.coherence.protocol_messages(), 0);
    }

    #[test]
    fn mesi_correct_with_demand_driven_probes() {
        let out = run(&sys(4, true), &SharingConfig { rounds: 3 }).unwrap();
        assert_eq!(out.counters, vec![3; 4]);
        let coh = &out.run.coherence;
        assert!(coh.gets > 0, "rotation must read-miss: {coh:?}");
        assert!(coh.getm > 0, "every increment needs ownership: {coh:?}");
        assert!(coh.invalidations_sent > 0, "sharers must be invalidated: {coh:?}");
        assert!(coh.fetches_sent > 0, "dirty lines must be fetched from owners: {coh:?}");
        assert_eq!(coh.invalidations_received, coh.invalidations_sent);
    }

    #[test]
    fn software_discipline_is_mode_independent() {
        let scfg = SharingConfig { rounds: 2 };
        let dii = run_disciplined(&sys(3, false), &scfg, Discipline::Software).unwrap();
        let mesi = run_disciplined(&sys(3, true), &scfg, Discipline::Software).unwrap();
        assert_eq!(dii.counters, mesi.counters);
        assert_eq!(dii.counters, vec![2; 3]);
    }
}
