//! Block-row parallel matrix multiply — the first "standard parallel
//! benchmark" of the paper's future-work list, exercising a
//! compute-dominated kernel with a different cache footprint than Jacobi.
//!
//! `C = A × B` with `A`'s rows block-distributed; `B` is replicated into
//! every rank's private segment at load time (a common small-matrix
//! strategy that keeps all traffic private/cacheable); each rank computes
//! its row band and the results are collected for validation.

use crate::RowSink;
use medea_cache::Addr;
use medea_core::api::PeApi;
use medea_core::calib::LOOP_OVERHEAD_CYCLES;
use medea_core::system::{Kernel, RunError, RunResult, System};
use medea_core::{Empi, SystemConfig};
use medea_pe::kernel_if::f64_to_words;
use medea_sim::ids::Rank;
use medea_sim::Cycle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Benchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct MatmulConfig {
    /// Matrix side.
    pub n: usize,
}

/// Result of a run.
#[derive(Debug)]
pub struct MatmulOutcome {
    /// Engine result.
    pub run: RunResult,
    /// Measured cycles for the multiply (after the start barrier).
    pub cycles: Cycle,
    /// Collected `C` rows `(row, values)`.
    pub c_rows: Vec<(usize, Vec<f64>)>,
}

/// Deterministic test matrices.
pub fn matrix_a(n: usize) -> Vec<f64> {
    (0..n * n).map(|k| ((k % 7) as f64) * 0.5 + 1.0).collect()
}

/// Deterministic test matrices.
pub fn matrix_b(n: usize) -> Vec<f64> {
    (0..n * n).map(|k| ((k % 5) as f64) * 0.25 - 0.5).collect()
}

/// Host-side reference multiply with the kernel's accumulation order.
pub fn reference(n: usize) -> Vec<f64> {
    let a = matrix_a(n);
    let b = matrix_b(n);
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

fn rows_of(n: usize, ranks: usize, rank: usize) -> (usize, usize) {
    let base = n / ranks;
    let rem = n % ranks;
    let start = rank * base + rank.min(rem);
    (start, start + base + usize::from(rank < rem))
}

/// Run the benchmark.
///
/// Layout per rank (private segment): its `A` row band, the full `B`, and
/// its `C` row band.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if more PEs than rows are configured or the data does not fit
/// the private segment.
pub fn run(sys: &SystemConfig, mcfg: &MatmulConfig) -> Result<MatmulOutcome, RunError> {
    let n = mcfg.n;
    let ranks = sys.compute_pes();
    assert!(ranks <= n, "more PEs than matrix rows");
    let a = matrix_a(n);
    let b = matrix_b(n);

    // Private layout offsets.
    let band_rows = |r: usize| {
        let (s, e) = rows_of(n, ranks, r);
        e - s
    };
    let a_off = 0u32;
    let b_off = |r: usize| (band_rows(r) * n * 8) as u32;
    let c_off = |r: usize| b_off(r) + (n * n * 8) as u32;

    let mut preload = Vec::new();
    for r in 0..ranks {
        let base = sys.layout().private_base(Rank::new(r as u8));
        let (s, e) = rows_of(n, ranks, r);
        let need = c_off(r) + ((e - s) * n * 8) as u32;
        assert!(need <= sys.layout().private_bytes(), "matrices do not fit private segment");
        for (li, gi) in (s..e).enumerate() {
            for k in 0..n {
                let (lo, hi) = f64_to_words(a[gi * n + k]);
                let addr = base + a_off + ((li * n + k) * 8) as u32;
                preload.push((addr, lo));
                preload.push((addr + 4, hi));
            }
        }
        for (k, &bv) in b.iter().enumerate() {
            let (lo, hi) = f64_to_words(bv);
            let addr = base + b_off(r) + (k * 8) as u32;
            preload.push((addr, lo));
            preload.push((addr + 4, hi));
        }
    }

    let window = Arc::new(AtomicU64::new(0));
    let sink: RowSink = Arc::new(Mutex::new(Vec::new()));
    let kernels: Vec<Kernel> = (0..ranks)
        .map(|r| {
            let cell = Arc::clone(&window);
            let sink = Arc::clone(&sink);
            let n = mcfg.n;
            Box::new(move |api: PeApi| {
                let comm = Empi::new(api);
                let base = comm.private_base();
                let (s, e) = rows_of(n, comm.ranks(), r);
                let a_at = |li: usize, k: usize| base + ((li * n + k) * 8) as u32;
                let b_base = base + ((e - s) * n * 8) as u32;
                let b_at = |k: usize, j: usize| b_base + ((k * n + j) * 8) as u32;
                let c_base = b_base + (n * n * 8) as u32;
                let c_at = |li: usize, j: usize| c_base + ((li * n + j) * 8) as u32;
                comm.barrier();
                let t0 = comm.now();
                for li in 0..e - s {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            let av = comm.load_f64(a_at(li, k));
                            let bv = comm.load_f64(b_at(k, j));
                            let prod = comm.fmul(av, bv);
                            acc = comm.fadd(acc, prod);
                            comm.compute(LOOP_OVERHEAD_CYCLES);
                        }
                        comm.store_f64(c_at(li, j), acc);
                    }
                }
                comm.barrier();
                if r == 0 {
                    cell.store(comm.now() - t0, Ordering::SeqCst);
                }
                let mut rows = Vec::new();
                for (li, gi) in (s..e).enumerate() {
                    let row: Vec<f64> = (0..n).map(|j| comm.load_f64(c_at(li, j))).collect();
                    rows.push((gi, row));
                }
                sink.lock().expect("matmul sink").extend(rows);
            }) as Kernel
        })
        .collect();

    let run = System::run(sys, &preload, kernels)?;
    let mut c_rows = Arc::try_unwrap(sink).expect("kernels done").into_inner().expect("sink");
    c_rows.sort_by_key(|(gi, _)| *gi);
    Ok(MatmulOutcome { run, cycles: window.load(Ordering::SeqCst), c_rows })
}

/// Check a run against the host reference, bitwise.
///
/// # Errors
///
/// Returns the first mismatch.
pub fn validate(mcfg: &MatmulConfig, outcome: &MatmulOutcome) -> Result<(), String> {
    let n = mcfg.n;
    let reference = reference(n);
    for (gi, row) in &outcome.c_rows {
        for (j, v) in row.iter().enumerate() {
            let expect = reference[gi * n + j];
            if v.to_bits() != expect.to_bits() {
                return Err(format!("C[{gi},{j}] = {v}, expected {expect}"));
            }
        }
    }
    if outcome.c_rows.len() != n {
        return Err(format!("collected {} rows, expected {n}", outcome.c_rows.len()));
    }
    Ok(())
}

/// Address type re-export for doc clarity.
pub type _Addr = Addr;

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(pes: usize) -> SystemConfig {
        SystemConfig::builder()
            .compute_pes(pes)
            .cache_bytes(16 * 1024)
            .cycle_limit(500_000_000)
            .build()
            .unwrap()
    }

    #[test]
    fn single_rank_correct() {
        let mcfg = MatmulConfig { n: 6 };
        let outcome = run(&sys(1), &mcfg).unwrap();
        validate(&mcfg, &outcome).unwrap();
    }

    #[test]
    fn multi_rank_correct_and_faster() {
        let mcfg = MatmulConfig { n: 8 };
        let one = run(&sys(1), &mcfg).unwrap();
        validate(&mcfg, &one).unwrap();
        let four = run(&sys(4), &mcfg).unwrap();
        validate(&mcfg, &four).unwrap();
        assert!(
            four.cycles < one.cycles,
            "4 PEs ({}) must beat 1 PE ({})",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn uneven_partition_correct() {
        let mcfg = MatmulConfig { n: 7 };
        let outcome = run(&sys(3), &mcfg).unwrap();
        validate(&mcfg, &outcome).unwrap();
    }
}
