//! Workloads for the MEDEA reproduction.
//!
//! * [`grid`] — 2D grid helpers and the golden sequential Jacobi solver;
//! * [`jacobi`] — the paper's benchmark (§III): a parallel Jacobi iterative
//!   solver in the three programming-model variants the paper compares
//!   (hybrid full message passing, hybrid sync-only, pure shared memory);
//! * [`sm`] — shared-memory synchronization primitives (the lock-based
//!   barrier the pure-SM variant uses);
//! * [`pingpong`] — a two-rank synchronization-latency microbenchmark
//!   (message-passing round trip vs. a shared-memory mailbox), quantifying
//!   the paper's core motivation;
//! * [`matmul`] — a block-row matrix multiply, the first of the "standard
//!   parallel benchmarks" the paper lists as future work;
//! * [`reduce`] — an all-reduce kernel in MP and SM flavours;
//! * [`hotspot`] — a shared-memory hotspot microbenchmark (every rank
//!   hammers the MPMMU with uncached transactions), the workload behind
//!   the `memory_banks` scaling section;
//! * [`sharing`] — a fine-grained-sharing microbenchmark (lock-guarded
//!   read-modify-writes of line-interleaved counters), the workload
//!   behind the `coherence` scaling section: software DII flushes and
//!   invalidates unconditionally, directory MESI moves lines on demand.

pub mod grid;
pub mod hotspot;
pub mod jacobi;
pub mod matmul;
pub mod pingpong;
pub mod reduce;
pub mod sharing;
pub mod sm;
pub mod workloads;

use std::sync::{Arc, Mutex};

/// Shared sink collecting `(rank, values)` rows from kernel threads —
/// the host-side result channel of the matrix workloads.
pub type RowSink = Arc<Mutex<Vec<(usize, Vec<f64>)>>>;
