//! Summary analytics over a captured trace.
//!
//! The end-of-run counters on `RunResult` answer *how much*; the trace
//! answers *where and when*. [`TraceAnalysis`] reduces a captured event
//! stream to the per-run observables the issue tracker asks every
//! scheduling/placement experiment to report:
//!
//! * NoC: injected / delivered / deflected flit counts and the
//!   **per-router maximum link occupancy** (which links saturate);
//! * locks: **contention cycles** — for every `(requester, lock word)`
//!   pair, the span from its first Nack to its eventual grant — plus the
//!   contended-acquire count;
//! * kernel spans: completed-span count and total in-span cycles per
//!   [`KernelOp`].

use crate::event::{KernelOp, TimedEvent, TraceEvent};
use medea_sim::Cycle;
use std::collections::BTreeMap;

/// Aggregates computed from one captured event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Events analysed.
    pub events: usize,
    /// Flits injected.
    pub injected: u64,
    /// Flits delivered.
    pub delivered: u64,
    /// Deflection events.
    pub deflected: u64,
    /// Deflection events per router `(node, count)`, ascending by node;
    /// routers that never deflected are absent. See
    /// [`TraceAnalysis::top_deflecting_routers`] for the hot-spot view.
    pub deflections_by_router: Vec<(u16, u64)>,
    /// Per-router maximum output-link occupancy `(node, max links busy)`,
    /// ascending by node; routers that were never active are absent (an
    /// active router that only ejected locally reports 0).
    pub max_link_load: Vec<(u16, u8)>,
    /// Lock acquisitions that were granted.
    pub lock_acquires: u64,
    /// Lock acquisitions preceded by at least one Nack.
    pub contended_acquires: u64,
    /// Total cycles spent between a requester's first Nack on a lock word
    /// and its eventual grant, summed over all contended acquisitions.
    pub lock_contention_cycles: u64,
    /// Lock contention per MPMMU bank `(bank, contended acquires,
    /// contention cycles)`, ascending by bank; banks that never saw a
    /// contended acquire are absent. Attribution follows the granting
    /// bank (each lock word has exactly one home).
    pub lock_contention_by_bank: Vec<(u16, u64, u64)>,
    /// Completed spans and their total cycles, per operation:
    /// `(op, count, cycles)`, in first-seen order.
    pub spans: Vec<(KernelOp, u64, u64)>,
    /// Injected-fault events captured (all `FAULT`-class variants).
    pub faults: u64,
}

impl TraceAnalysis {
    /// Reduce `events` (any order-preserving capture, e.g.
    /// [`crate::RingSink::to_vec`]).
    pub fn from_events(events: &[TimedEvent]) -> Self {
        let mut a = TraceAnalysis { events: events.len(), ..TraceAnalysis::default() };
        let mut link_load: BTreeMap<u16, u8> = BTreeMap::new();
        let mut deflections: BTreeMap<u16, u64> = BTreeMap::new();
        // bank → (contended acquires, contention cycles).
        let mut bank_contention: BTreeMap<u16, (u64, u64)> = BTreeMap::new();
        // (src, addr) → cycle of the first Nack since the last grant.
        let mut first_contend: BTreeMap<(u16, u32), Cycle> = BTreeMap::new();
        // (node, op) → begin cycle of the innermost open span.
        let mut open_spans: BTreeMap<(u16, KernelOp), Vec<Cycle>> = BTreeMap::new();
        let mut spans: Vec<(KernelOp, u64, u64)> = Vec::new();

        for &TimedEvent { at, event } in events {
            match event {
                TraceEvent::FlitInjected { .. } => a.injected += 1,
                TraceEvent::FlitDelivered { .. } => a.delivered += 1,
                TraceEvent::FlitDeflected { node } => {
                    a.deflected += 1;
                    *deflections.entry(node).or_insert(0) += 1;
                }
                TraceEvent::LinkLoad { node, links } => {
                    let max = link_load.entry(node).or_insert(0);
                    *max = (*max).max(links);
                }
                TraceEvent::LockContended { src, addr, .. } => {
                    first_contend.entry((src, addr)).or_insert(at);
                }
                TraceEvent::LockAcquired { bank, src, addr } => {
                    a.lock_acquires += 1;
                    if let Some(t0) = first_contend.remove(&(src, addr)) {
                        a.contended_acquires += 1;
                        let cycles = at.saturating_sub(t0);
                        a.lock_contention_cycles += cycles;
                        let row = bank_contention.entry(bank).or_insert((0, 0));
                        row.0 += 1;
                        row.1 += cycles;
                    }
                }
                TraceEvent::SpanBegin { node, op } => {
                    open_spans.entry((node, op)).or_default().push(at);
                }
                TraceEvent::SpanEnd { node, op } => {
                    // A ring that wrapped may have dropped the begin;
                    // unmatched ends are skipped, like the viewers do.
                    if let Some(t0) = open_spans.get_mut(&(node, op)).and_then(Vec::pop) {
                        match spans.iter_mut().find(|(o, _, _)| *o == op) {
                            Some(row) => {
                                row.1 += 1;
                                row.2 += at.saturating_sub(t0);
                            }
                            None => spans.push((op, 1, at.saturating_sub(t0))),
                        }
                    }
                }
                TraceEvent::FaultFlitCorrupted { .. }
                | TraceEvent::FaultLinkKilled { .. }
                | TraceEvent::FaultBankDrop { .. }
                | TraceEvent::FaultBankDelay { .. }
                | TraceEvent::FaultPeStall { .. } => a.faults += 1,
                TraceEvent::LockReleased { .. }
                | TraceEvent::CacheAccess { .. }
                | TraceEvent::ReorderSlip { .. }
                | TraceEvent::CohProbe { .. }
                | TraceEvent::CohHome { .. }
                | TraceEvent::MemTxn { .. } => {}
            }
        }
        a.max_link_load = link_load.into_iter().collect();
        a.deflections_by_router = deflections.into_iter().collect();
        a.lock_contention_by_bank =
            bank_contention.into_iter().map(|(bank, (n, cyc))| (bank, n, cyc)).collect();
        a.spans = spans;
        a
    }

    /// The busiest router's peak link occupancy, if any traffic flowed.
    pub fn peak_link_load(&self) -> Option<(u16, u8)> {
        self.max_link_load.iter().copied().max_by_key(|(_, links)| *links)
    }

    /// The `n` routers that deflected the most flits, descending (ties
    /// break toward the lower node id) — where hot-potato pressure
    /// concentrates on the torus.
    pub fn top_deflecting_routers(&self, n: usize) -> Vec<(u16, u64)> {
        let mut rows = self.deflections_by_router.clone();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(at: Cycle, event: TraceEvent) -> TimedEvent {
        TimedEvent { at, event }
    }

    #[test]
    fn counts_and_link_peaks() {
        let events = vec![
            t(0, TraceEvent::FlitInjected { node: 1, kind: 6 }),
            t(1, TraceEvent::LinkLoad { node: 1, links: 2 }),
            t(2, TraceEvent::LinkLoad { node: 1, links: 4 }),
            t(2, TraceEvent::LinkLoad { node: 2, links: 1 }),
            t(3, TraceEvent::FlitDeflected { node: 2 }),
            t(
                5,
                TraceEvent::FlitDelivered { node: 3, uid: 1, latency: 5, hops: 2, deflections: 1 },
            ),
        ];
        let a = TraceAnalysis::from_events(&events);
        assert_eq!((a.injected, a.delivered, a.deflected), (1, 1, 1));
        assert_eq!(a.max_link_load, vec![(1, 4), (2, 1)]);
        assert_eq!(a.peak_link_load(), Some((1, 4)));
        assert_eq!(a.deflections_by_router, vec![(2, 1)]);
    }

    #[test]
    fn deflection_table_ranks_routers() {
        let mut events = Vec::new();
        for _ in 0..3 {
            events.push(t(0, TraceEvent::FlitDeflected { node: 5 }));
        }
        events.push(t(1, TraceEvent::FlitDeflected { node: 1 }));
        events.push(t(1, TraceEvent::FlitDeflected { node: 9 }));
        let a = TraceAnalysis::from_events(&events);
        assert_eq!(a.deflections_by_router, vec![(1, 1), (5, 3), (9, 1)]);
        assert_eq!(a.top_deflecting_routers(2), vec![(5, 3), (1, 1)], "ties break low");
        assert_eq!(a.top_deflecting_routers(0), vec![]);
    }

    #[test]
    fn lock_contention_spans_first_nack_to_grant() {
        let events = vec![
            t(10, TraceEvent::LockAcquired { bank: 0, src: 1, addr: 512 }),
            t(12, TraceEvent::LockContended { bank: 0, src: 2, addr: 512 }),
            t(20, TraceEvent::LockContended { bank: 0, src: 2, addr: 512 }),
            t(30, TraceEvent::LockReleased { bank: 0, src: 1, addr: 512 }),
            t(34, TraceEvent::LockAcquired { bank: 0, src: 2, addr: 512 }),
        ];
        let a = TraceAnalysis::from_events(&events);
        assert_eq!(a.lock_acquires, 2);
        assert_eq!(a.contended_acquires, 1);
        assert_eq!(a.lock_contention_cycles, 34 - 12);
        assert_eq!(a.lock_contention_by_bank, vec![(0, 1, 22)]);
    }

    #[test]
    fn spans_aggregate_per_op_and_tolerate_truncation() {
        let events = vec![
            t(0, TraceEvent::SpanBegin { node: 1, op: KernelOp::Barrier }),
            t(8, TraceEvent::SpanEnd { node: 1, op: KernelOp::Barrier }),
            t(10, TraceEvent::SpanBegin { node: 2, op: KernelOp::Barrier }),
            t(13, TraceEvent::SpanEnd { node: 2, op: KernelOp::Barrier }),
            // Truncated: end without a begin (ring wrapped).
            t(20, TraceEvent::SpanEnd { node: 3, op: KernelOp::Send }),
        ];
        let a = TraceAnalysis::from_events(&events);
        assert_eq!(a.spans, vec![(KernelOp::Barrier, 2, 11)]);
    }
}
