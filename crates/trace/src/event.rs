//! The typed, timestamped event vocabulary of the tracing subsystem.
//!
//! One [`TraceEvent`] is one architectural occurrence at one node on one
//! cycle. Events are small `Copy` values built from primitives only (node
//! indices, wire codes, addresses), so this crate sits *below* every
//! hardware-model crate in the dependency graph and each layer can emit
//! events without pulling its neighbours in.
//!
//! Events group into five [`EventClass`]es, mirroring the layers the
//! engine instruments:
//!
//! | class    | events                                                     |
//! |----------|------------------------------------------------------------|
//! | `NOC`    | flit inject / deliver / deflect, per-router link load       |
//! | `CACHE`  | L1 hit/miss/write-through, flush, invalidate, reorder slips |
//! | `MEM`    | per-bank MPMMU transactions, lock acquire/contend/release   |
//! | `KERNEL` | send/recv packet spans and eMPI message/collective spans    |
//! | `FAULT`  | injected faults: flit corruption, link kills, bank drops/delays, PE stalls |

use medea_sim::Cycle;
use std::fmt;

/// Bitmask of event classes — the capture filter of a sink and the
/// `SystemConfigBuilder::trace` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventClass(u8);

impl EventClass {
    /// No classes.
    pub const NONE: EventClass = EventClass(0);
    /// NoC events: flit inject/deliver/deflect, link load.
    pub const NOC: EventClass = EventClass(1);
    /// PE-side cache events: hits, misses, flushes, invalidates, reorder
    /// slips.
    pub const CACHE: EventClass = EventClass(1 << 1);
    /// Memory events: MPMMU transactions and lock traffic, per bank.
    pub const MEM: EventClass = EventClass(1 << 2);
    /// Kernel-level spans: packet send/recv and eMPI operations.
    pub const KERNEL: EventClass = EventClass(1 << 3);
    /// Injected-fault events: flit corruption, link kills, bank
    /// drops/delays, PE stall windows (the medea-fault subsystem).
    pub const FAULT: EventClass = EventClass(1 << 4);
    /// Every class.
    pub const ALL: EventClass = EventClass(0b1_1111);

    /// Whether any class of `other` is present in `self`.
    pub const fn intersects(self, other: EventClass) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether every class of `other` is present in `self`.
    pub const fn contains(self, other: EventClass) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no class is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Short label used by the CSV exporter.
    pub const fn label(self) -> &'static str {
        match self.0 {
            1 => "noc",
            2 => "cache",
            4 => "mem",
            8 => "kernel",
            16 => "fault",
            _ => "mixed",
        }
    }
}

impl std::ops::BitOr for EventClass {
    type Output = EventClass;

    fn bitor(self, rhs: EventClass) -> EventClass {
        EventClass(self.0 | rhs.0)
    }
}

/// The eight `TYPE`-field wire codes, named for exporters (kept in sync
/// with `medea_noc::flit::PacketKind::code`).
pub const fn packet_kind_name(code: u8) -> &'static str {
    match code {
        0 => "single-read",
        1 => "single-write",
        2 => "block-read",
        3 => "block-write",
        4 => "lock",
        5 => "unlock",
        6 => "message",
        7 => "coherence",
        _ => "unknown",
    }
}

/// Coherence opcode names for exporters (kept in sync with
/// `medea_noc::flit::CohOp::code`; this crate sits below `medea-noc` so
/// the code crosses as a raw `u8`).
pub const fn coh_op_name(code: u8) -> &'static str {
    match code {
        0 => "gets",
        1 => "getm",
        2 => "putm",
        3 => "unblock",
        4 => "inv",
        5 => "fetch",
        6 => "fetch-inv",
        7 => "inv-ack",
        8 => "clean-ack",
        9 => "grant-s",
        10 => "grant-e",
        11 => "grant-m",
        12 => "putm-grant",
        13 => "putm-ack",
        _ => "unknown",
    }
}

/// What an L1 access did (the cache-class event payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheEventKind {
    /// Load served by the cache.
    LoadHit,
    /// Load that missed and started the allocate machinery.
    LoadMiss,
    /// Store absorbed by the cache (write-back hit).
    StoreHit,
    /// Store that missed and needs a line allocate (write-back).
    StoreMiss,
    /// Store forwarded to memory by a write-through cache.
    StoreThrough,
    /// Flush of a clean line (no traffic).
    Flush,
    /// Flush that wrote a dirty line back (§II-E producer step).
    FlushWriteback,
    /// DII line invalidate (§II-E consumer step).
    Invalidate,
}

impl CacheEventKind {
    /// Exporter name.
    pub const fn name(self) -> &'static str {
        match self {
            CacheEventKind::LoadHit => "load-hit",
            CacheEventKind::LoadMiss => "load-miss",
            CacheEventKind::StoreHit => "store-hit",
            CacheEventKind::StoreMiss => "store-miss",
            CacheEventKind::StoreThrough => "store-through",
            CacheEventKind::Flush => "flush",
            CacheEventKind::FlushWriteback => "flush-writeback",
            CacheEventKind::Invalidate => "invalidate",
        }
    }
}

/// A kernel-level operation delimited by span events.
///
/// `Send`/`Recv` are the engine-observed packet operations (one TIE
/// packet each); the `Msg*`/collective variants are emitted by the eMPI
/// layer around whole protocol exchanges and therefore *nest* the packet
/// spans in the rendered trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelOp {
    /// One TIE packet streamed into the arbiter.
    Send,
    /// One blocking packet receive (wait included).
    Recv,
    /// A whole eMPI message send (framing, chunking, credits).
    MsgSend,
    /// A whole eMPI message receive.
    MsgRecv,
    /// Full-duplex eMPI sendrecv exchange.
    Sendrecv,
    /// eMPI barrier.
    Barrier,
    /// eMPI broadcast.
    Bcast,
    /// eMPI reduce-to-root.
    Reduce,
    /// eMPI allreduce.
    Allreduce,
    /// eMPI gather-to-root.
    Gather,
    /// eMPI scatter-from-root.
    Scatter,
}

impl KernelOp {
    /// Exporter name.
    pub const fn name(self) -> &'static str {
        match self {
            KernelOp::Send => "send",
            KernelOp::Recv => "recv",
            KernelOp::MsgSend => "empi-send",
            KernelOp::MsgRecv => "empi-recv",
            KernelOp::Sendrecv => "empi-sendrecv",
            KernelOp::Barrier => "barrier",
            KernelOp::Bcast => "bcast",
            KernelOp::Reduce => "reduce",
            KernelOp::Allreduce => "allreduce",
            KernelOp::Gather => "gather",
            KernelOp::Scatter => "scatter",
        }
    }

    /// Whether this op is a multi-party collective: cycles a PE spends
    /// blocked inside one are synchronization wait, not point-to-point
    /// communication, and the metrics profiler attributes them separately.
    pub const fn is_collective(self) -> bool {
        matches!(
            self,
            KernelOp::Barrier
                | KernelOp::Bcast
                | KernelOp::Reduce
                | KernelOp::Allreduce
                | KernelOp::Gather
                | KernelOp::Scatter
        )
    }
}

impl fmt::Display for KernelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One traced architectural occurrence. See the module table for the
/// class each variant belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A flit entered the fabric at `node`.
    FlitInjected {
        /// Injecting node.
        node: u16,
        /// `TYPE`-field wire code (see [`packet_kind_name`]).
        kind: u8,
    },
    /// A flit left the fabric into `node`'s interface.
    FlitDelivered {
        /// Ejecting node.
        node: u16,
        /// Fabric-assigned flit id (correlates with the injection).
        uid: u64,
        /// Inject→eject cycles.
        latency: u64,
        /// Routers traversed.
        hops: u16,
        /// Times this flit was deflected.
        deflections: u16,
    },
    /// A router granted a flit a non-productive port.
    FlitDeflected {
        /// Deflecting router's node.
        node: u16,
    },
    /// Output-link occupancy of one *active* router for one cycle
    /// (0..=4). A zero marks an active router draining (its counter
    /// series returns to zero); routers outside the fabric's working set
    /// emit nothing.
    LinkLoad {
        /// The router's node.
        node: u16,
        /// Occupied output links this cycle.
        links: u8,
    },
    /// An L1 access or coherence operation on `node`'s PE.
    CacheAccess {
        /// The PE's node.
        node: u16,
        /// What the access did.
        kind: CacheEventKind,
        /// Word (or line) address.
        addr: u32,
    },
    /// A block-read data word arrived out of address order at `node`'s
    /// reorder buffer.
    ReorderSlip {
        /// The PE's node.
        node: u16,
    },
    /// `node`'s L1 responder handled a directory probe (directory-MESI
    /// mode only): an `Inv`, `Fetch` or `FetchInv` received from a home
    /// bank, or the `Unblock` it sends after installing a fill.
    CohProbe {
        /// The PE's node.
        node: u16,
        /// Coherence opcode wire code (see [`coh_op_name`]).
        op: u8,
        /// Line address.
        addr: u32,
    },
    /// An MPMMU bank dispatched a shared-memory transaction.
    MemTxn {
        /// The bank's node.
        bank: u16,
        /// Requesting node.
        src: u16,
        /// `TYPE`-field wire code of the transaction.
        kind: u8,
        /// Target address.
        addr: u32,
    },
    /// A directory home (MPMMU bank) acted on a coherence transaction
    /// (directory-MESI mode only): a `GetS`/`GetM`/`PutM` it dispatched,
    /// or an `Inv`/`Fetch`/`FetchInv` probe it sent towards `src`.
    CohHome {
        /// The home bank's node.
        bank: u16,
        /// Requesting (or probed) node.
        src: u16,
        /// Coherence opcode wire code (see [`coh_op_name`]).
        op: u8,
        /// Line address.
        addr: u32,
    },
    /// A lock request was granted.
    LockAcquired {
        /// The owning bank's node.
        bank: u16,
        /// Requesting node.
        src: u16,
        /// Lock word address.
        addr: u32,
    },
    /// A lock request was Nack'd (busy) — the requester backs off and
    /// retries.
    LockContended {
        /// The owning bank's node.
        bank: u16,
        /// Requesting node.
        src: u16,
        /// Lock word address.
        addr: u32,
    },
    /// A lock was released.
    LockReleased {
        /// The owning bank's node.
        bank: u16,
        /// Requesting node.
        src: u16,
        /// Lock word address.
        addr: u32,
    },
    /// A kernel-level operation began on `node`.
    SpanBegin {
        /// The PE's node.
        node: u16,
        /// The operation.
        op: KernelOp,
    },
    /// A kernel-level operation ended on `node`.
    SpanEnd {
        /// The PE's node.
        node: u16,
        /// The operation.
        op: KernelOp,
    },
    /// An injected transient fault flipped one payload bit of a message
    /// flit delivered at `node`.
    FaultFlitCorrupted {
        /// The ejecting node.
        node: u16,
        /// Which payload bit was flipped (0..32).
        bit: u8,
    },
    /// An injected permanent fault killed one torus link.
    FaultLinkKilled {
        /// The link's source router.
        node: u16,
        /// Output-port direction index of the dead link.
        dir: u8,
    },
    /// An injected fault dropped an MPMMU read-response flit.
    FaultBankDrop {
        /// The bank's node.
        bank: u16,
    },
    /// An injected fault delayed an MPMMU transaction's service.
    FaultBankDelay {
        /// The bank's node.
        bank: u16,
        /// Extra service cycles added.
        cycles: u32,
    },
    /// An injected fault stalled a PE's execution engine.
    FaultPeStall {
        /// The PE's node.
        node: u16,
        /// Cycles the engine is frozen.
        cycles: u32,
    },
}

impl TraceEvent {
    /// The class this event belongs to (the sink-side capture filter key).
    pub const fn class(self) -> EventClass {
        match self {
            TraceEvent::FlitInjected { .. }
            | TraceEvent::FlitDelivered { .. }
            | TraceEvent::FlitDeflected { .. }
            | TraceEvent::LinkLoad { .. } => EventClass::NOC,
            TraceEvent::CacheAccess { .. }
            | TraceEvent::ReorderSlip { .. }
            | TraceEvent::CohProbe { .. } => EventClass::CACHE,
            TraceEvent::MemTxn { .. }
            | TraceEvent::CohHome { .. }
            | TraceEvent::LockAcquired { .. }
            | TraceEvent::LockContended { .. }
            | TraceEvent::LockReleased { .. } => EventClass::MEM,
            TraceEvent::SpanBegin { .. } | TraceEvent::SpanEnd { .. } => EventClass::KERNEL,
            TraceEvent::FaultFlitCorrupted { .. }
            | TraceEvent::FaultLinkKilled { .. }
            | TraceEvent::FaultBankDrop { .. }
            | TraceEvent::FaultBankDelay { .. }
            | TraceEvent::FaultPeStall { .. } => EventClass::FAULT,
        }
    }

    /// The node whose track this event renders on (banks are nodes too).
    pub const fn node(self) -> u16 {
        match self {
            TraceEvent::FlitInjected { node, .. }
            | TraceEvent::FlitDelivered { node, .. }
            | TraceEvent::FlitDeflected { node }
            | TraceEvent::LinkLoad { node, .. }
            | TraceEvent::CacheAccess { node, .. }
            | TraceEvent::ReorderSlip { node }
            | TraceEvent::CohProbe { node, .. }
            | TraceEvent::SpanBegin { node, .. }
            | TraceEvent::SpanEnd { node, .. }
            | TraceEvent::FaultFlitCorrupted { node, .. }
            | TraceEvent::FaultLinkKilled { node, .. }
            | TraceEvent::FaultPeStall { node, .. } => node,
            TraceEvent::MemTxn { bank, .. }
            | TraceEvent::CohHome { bank, .. }
            | TraceEvent::LockAcquired { bank, .. }
            | TraceEvent::LockContended { bank, .. }
            | TraceEvent::LockReleased { bank, .. }
            | TraceEvent::FaultBankDrop { bank }
            | TraceEvent::FaultBankDelay { bank, .. } => bank,
        }
    }
}

/// A captured event with its cycle timestamp — what sinks store and
/// exporters consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Cycle at which the event occurred.
    pub at: Cycle,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mask_algebra() {
        let m = EventClass::NOC | EventClass::KERNEL;
        assert!(m.intersects(EventClass::NOC));
        assert!(m.intersects(EventClass::KERNEL));
        assert!(!m.intersects(EventClass::CACHE));
        assert!(EventClass::ALL.contains(m));
        assert!(!m.contains(EventClass::ALL));
        assert!(EventClass::NONE.is_empty());
        assert!(!EventClass::MEM.is_empty());
    }

    #[test]
    fn every_event_has_a_single_class() {
        let samples = [
            TraceEvent::FlitInjected { node: 1, kind: 6 },
            TraceEvent::FlitDelivered { node: 1, uid: 7, latency: 3, hops: 2, deflections: 0 },
            TraceEvent::FlitDeflected { node: 1 },
            TraceEvent::LinkLoad { node: 1, links: 2 },
            TraceEvent::CacheAccess { node: 1, kind: CacheEventKind::LoadHit, addr: 0x40 },
            TraceEvent::ReorderSlip { node: 1 },
            TraceEvent::CohProbe { node: 1, op: 4, addr: 0x40 },
            TraceEvent::MemTxn { bank: 0, src: 1, kind: 0, addr: 0x40 },
            TraceEvent::CohHome { bank: 0, src: 1, op: 1, addr: 0x40 },
            TraceEvent::LockAcquired { bank: 0, src: 1, addr: 0x200 },
            TraceEvent::LockContended { bank: 0, src: 1, addr: 0x200 },
            TraceEvent::LockReleased { bank: 0, src: 1, addr: 0x200 },
            TraceEvent::SpanBegin { node: 1, op: KernelOp::Barrier },
            TraceEvent::SpanEnd { node: 1, op: KernelOp::Barrier },
            TraceEvent::FaultFlitCorrupted { node: 1, bit: 7 },
            TraceEvent::FaultLinkKilled { node: 1, dir: 2 },
            TraceEvent::FaultBankDrop { bank: 0 },
            TraceEvent::FaultBankDelay { bank: 0, cycles: 64 },
            TraceEvent::FaultPeStall { node: 1, cycles: 32 },
        ];
        for ev in samples {
            let class = ev.class();
            let single = [
                EventClass::NOC,
                EventClass::CACHE,
                EventClass::MEM,
                EventClass::KERNEL,
                EventClass::FAULT,
            ]
            .into_iter()
            .filter(|c| class.intersects(*c))
            .count();
            assert_eq!(single, 1, "{ev:?}");
        }
    }

    #[test]
    fn packet_kind_names_cover_wire_codes() {
        for code in 0..8u8 {
            assert_ne!(packet_kind_name(code), "unknown");
        }
        assert_eq!(packet_kind_name(7), "coherence");
        assert_eq!(packet_kind_name(8), "unknown");
    }

    #[test]
    fn coh_op_names_cover_assigned_codes() {
        for code in 0..14u8 {
            assert_ne!(coh_op_name(code), "unknown");
        }
        assert_eq!(coh_op_name(14), "unknown");
    }
}
