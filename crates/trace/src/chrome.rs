//! Chrome `trace_event` JSON exporter.
//!
//! Produces the JSON object format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) (legacy Chrome JSON importer):
//! one process (`pid 0`, named "medea"), one thread track per node —
//! compute nodes and MPMMU bank nodes alike, labelled by the caller's
//! naming function.
//!
//! Field mapping (see the crate docs for the viewer workflow):
//!
//! | event                         | `ph`  | `name`              | `args`                          |
//! |-------------------------------|-------|---------------------|---------------------------------|
//! | [`TraceEvent::SpanBegin`]/[`TraceEvent::SpanEnd`] | `B`/`E` | the [`KernelOp`] name | —       |
//! | [`TraceEvent::FlitInjected`]  | `i`   | `flit-inject`       | `kind`                          |
//! | [`TraceEvent::FlitDelivered`] | `i`   | `flit-deliver`      | `uid`, `latency`, `hops`, `deflections` |
//! | [`TraceEvent::FlitDeflected`] | `i`   | `deflect`           | —                               |
//! | [`TraceEvent::LinkLoad`]      | `C`   | `links-busy`        | `busy` (0..=4 counter)          |
//! | [`TraceEvent::CacheAccess`]   | `i`   | `cache:<kind>`      | `addr`                          |
//! | [`TraceEvent::ReorderSlip`]   | `i`   | `reorder-slip`      | —                               |
//! | [`TraceEvent::MemTxn`]        | `i`   | `mem:<kind>`        | `src`, `addr`                   |
//! | [`TraceEvent::LockAcquired`]/`LockContended`/`LockReleased` | `i` | `lock:acquire` / `lock:contend` / `lock:release` | `src`, `addr` |
//!
//! Timestamps (`ts`) are the simulated cycle numbers, presented to the
//! viewer as microseconds — 1 cycle renders as 1 µs, which keeps the
//! timeline readable without scaling tricks.
//!
//! Note on ring truncation: a [`crate::RingSink`] that wrapped may have
//! dropped a `B` whose matching `E` survived; both viewers tolerate the
//! unmatched `E` (it is ignored), so exported traces always load.

#[cfg(doc)]
use crate::event::KernelOp;
use crate::event::{coh_op_name, packet_kind_name, TimedEvent, TraceEvent};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_common(out: &mut String, name: &str, ph: char, at: u64, tid: u16) {
    out.push_str("{\"name\":\"");
    escape(name, out);
    let _ = write!(out, "\",\"ph\":\"{ph}\",\"ts\":{at}.0,\"pid\":0,\"tid\":{tid}");
}

/// Render `events` as a Chrome `trace_event` JSON document.
///
/// `track_name` labels each node's track (e.g. `"node 3 (rank 2)"`,
/// `"bank 0 @ node 0"`); it is called once per distinct node appearing in
/// the trace.
pub fn to_chrome_json<F>(events: &[TimedEvent], track_name: F) -> String
where
    F: Fn(u16) -> String,
{
    // ~96 bytes per rendered event is a comfortable upper bound.
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"medea\"}}",
    );

    // Metadata: one thread-name record per distinct node, in node order.
    let nodes: BTreeSet<u16> = events.iter().map(|t| t.event.node()).collect();
    for node in &nodes {
        out.push_str(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        let _ = write!(out, "{node}");
        out.push_str(",\"args\":{\"name\":\"");
        escape(&track_name(*node), &mut out);
        out.push_str("\"}}");
    }

    let mut scratch = String::new();
    for &TimedEvent { at, event } in events {
        out.push_str(",\n");
        match event {
            TraceEvent::SpanBegin { node, op } => {
                push_common(&mut out, op.name(), 'B', at, node);
                out.push('}');
            }
            TraceEvent::SpanEnd { node, op } => {
                push_common(&mut out, op.name(), 'E', at, node);
                out.push('}');
            }
            TraceEvent::FlitInjected { node, kind } => {
                push_common(&mut out, "flit-inject", 'i', at, node);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"kind\":\"{}\"}}}}", {
                    packet_kind_name(kind)
                });
            }
            TraceEvent::FlitDelivered { node, uid, latency, hops, deflections } => {
                push_common(&mut out, "flit-deliver", 'i', at, node);
                let _ = write!(
                    out,
                    ",\"s\":\"t\",\"args\":{{\"uid\":{uid},\"latency\":{latency},\
                     \"hops\":{hops},\"deflections\":{deflections}}}}}"
                );
            }
            TraceEvent::FlitDeflected { node } => {
                push_common(&mut out, "deflect", 'i', at, node);
                out.push_str(",\"s\":\"t\"}");
            }
            TraceEvent::LinkLoad { node, links } => {
                // Counter ('C') events are keyed by (pid, name) — tid is
                // ignored — so the node must be part of the name or every
                // router's series would merge into one track.
                scratch.clear();
                let _ = write!(scratch, "links-busy/node {node}");
                push_common(&mut out, &scratch, 'C', at, node);
                let _ = write!(out, ",\"args\":{{\"busy\":{links}}}}}");
            }
            TraceEvent::CacheAccess { node, kind, addr } => {
                scratch.clear();
                scratch.push_str("cache:");
                scratch.push_str(kind.name());
                push_common(&mut out, &scratch, 'i', at, node);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"addr\":{addr}}}}}");
            }
            TraceEvent::ReorderSlip { node } => {
                push_common(&mut out, "reorder-slip", 'i', at, node);
                out.push_str(",\"s\":\"t\"}");
            }
            TraceEvent::MemTxn { bank, src, kind, addr } => {
                scratch.clear();
                scratch.push_str("mem:");
                scratch.push_str(packet_kind_name(kind));
                push_common(&mut out, &scratch, 'i', at, bank);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"src\":{src},\"addr\":{addr}}}}}");
            }
            TraceEvent::CohProbe { node, op, addr } => {
                scratch.clear();
                scratch.push_str("coh:");
                scratch.push_str(coh_op_name(op));
                push_common(&mut out, &scratch, 'i', at, node);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"addr\":{addr}}}}}");
            }
            TraceEvent::CohHome { bank, src, op, addr } => {
                scratch.clear();
                scratch.push_str("coh:");
                scratch.push_str(coh_op_name(op));
                push_common(&mut out, &scratch, 'i', at, bank);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"src\":{src},\"addr\":{addr}}}}}");
            }
            TraceEvent::LockAcquired { bank, src, addr } => {
                push_common(&mut out, "lock:acquire", 'i', at, bank);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"src\":{src},\"addr\":{addr}}}}}");
            }
            TraceEvent::LockContended { bank, src, addr } => {
                push_common(&mut out, "lock:contend", 'i', at, bank);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"src\":{src},\"addr\":{addr}}}}}");
            }
            TraceEvent::LockReleased { bank, src, addr } => {
                push_common(&mut out, "lock:release", 'i', at, bank);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"src\":{src},\"addr\":{addr}}}}}");
            }
            TraceEvent::FaultFlitCorrupted { node, bit } => {
                push_common(&mut out, "fault:flit-corrupt", 'i', at, node);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"bit\":{bit}}}}}");
            }
            TraceEvent::FaultLinkKilled { node, dir } => {
                push_common(&mut out, "fault:link-kill", 'i', at, node);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"dir\":{dir}}}}}");
            }
            TraceEvent::FaultBankDrop { bank } => {
                push_common(&mut out, "fault:bank-drop", 'i', at, bank);
                out.push_str(",\"s\":\"t\"}");
            }
            TraceEvent::FaultBankDelay { bank, cycles } => {
                push_common(&mut out, "fault:bank-delay", 'i', at, bank);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"cycles\":{cycles}}}}}");
            }
            TraceEvent::FaultPeStall { node, cycles } => {
                push_common(&mut out, "fault:pe-stall", 'i', at, node);
                let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"cycles\":{cycles}}}}}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheEventKind, KernelOp};
    use crate::json;

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent { at: 0, event: TraceEvent::SpanBegin { node: 1, op: KernelOp::Send } },
            TimedEvent { at: 1, event: TraceEvent::FlitInjected { node: 1, kind: 6 } },
            TimedEvent { at: 3, event: TraceEvent::LinkLoad { node: 1, links: 2 } },
            TimedEvent { at: 4, event: TraceEvent::FlitDeflected { node: 2 } },
            TimedEvent {
                at: 7,
                event: TraceEvent::FlitDelivered {
                    node: 5,
                    uid: 1,
                    latency: 6,
                    hops: 3,
                    deflections: 1,
                },
            },
            TimedEvent {
                at: 8,
                event: TraceEvent::CacheAccess {
                    node: 1,
                    kind: CacheEventKind::LoadMiss,
                    addr: 0x40,
                },
            },
            TimedEvent { at: 9, event: TraceEvent::ReorderSlip { node: 1 } },
            TimedEvent { at: 10, event: TraceEvent::MemTxn { bank: 0, src: 1, kind: 2, addr: 64 } },
            TimedEvent { at: 11, event: TraceEvent::LockAcquired { bank: 0, src: 1, addr: 512 } },
            TimedEvent { at: 12, event: TraceEvent::LockContended { bank: 0, src: 2, addr: 512 } },
            TimedEvent { at: 13, event: TraceEvent::LockReleased { bank: 0, src: 1, addr: 512 } },
            TimedEvent { at: 14, event: TraceEvent::SpanEnd { node: 1, op: KernelOp::Send } },
        ]
    }

    #[test]
    fn export_is_valid_json_with_tracks_and_phases() {
        let doc = to_chrome_json(&sample_events(), |n| format!("node {n}"));
        json::validate(&doc).expect("chrome export must be syntactically valid JSON");
        // Per-node thread tracks.
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("node 0"));
        assert!(doc.contains("node 5"));
        // All four phase kinds appear.
        for ph in ["\"ph\":\"B\"", "\"ph\":\"E\"", "\"ph\":\"i\"", "\"ph\":\"C\"", "\"ph\":\"M\""] {
            assert!(doc.contains(ph), "missing {ph}");
        }
        // Event names from every class.
        for name in ["flit-inject", "cache:load-miss", "mem:block-read", "lock:contend", "send"] {
            assert!(doc.contains(name), "missing {name}");
        }
    }

    #[test]
    fn track_names_are_escaped() {
        let events = vec![TimedEvent { at: 0, event: TraceEvent::FlitDeflected { node: 3 } }];
        let doc = to_chrome_json(&events, |_| "evil \"name\"\\\n".to_owned());
        json::validate(&doc).expect("escaped names keep the document valid");
        assert!(doc.contains("evil \\\"name\\\"\\\\\\u000a"));
    }

    #[test]
    fn empty_trace_still_valid() {
        let doc = to_chrome_json(&[], |n| format!("node {n}"));
        json::validate(&doc).unwrap();
        assert!(doc.contains("traceEvents"));
    }
}
