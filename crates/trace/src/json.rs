//! Minimal JSON *syntax* validator (RFC 8259 grammar, no value model).
//!
//! The workspace is offline-only — no serde — yet the CI smoke job and
//! the exporter tests must prove that emitted Chrome traces parse. This
//! recursive-descent checker accepts exactly the JSON value grammar and
//! reports the byte offset of the first violation. It builds no values,
//! so validating a multi-megabyte trace costs one pass and no allocation.

use std::fmt;

/// A syntax violation at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the violation.
    pub at: usize,
    /// What was expected.
    pub expected: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: expected {}", self.at, self.expected)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> JsonError {
        JsonError { at: self.pos, expected }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn literal(&mut self, lit: &'static [u8]) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("a literal (true/false/null)"))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{', "'{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':', "':'")?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[', "'['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"', "'\"'")?;
        loop {
            match self.peek() {
                None => return Err(self.err("a closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("four hex digits after \\u")),
                                }
                            }
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("no raw control characters")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("a fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("an exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// Validate that `input` is one syntactically well-formed JSON value
/// (with optional surrounding whitespace).
///
/// # Errors
///
/// Returns the byte offset and expectation of the first violation.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a \\\"quoted\\\" \\u00e9 string\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
            "  [ 1 , 2 ]  ",
            "0.5",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[1] trailing",
            "nulL",
            "\"ctrl \u{0}\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} must be rejected");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = validate("[1, ??]").unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
