//! Event sinks: where instrumented hardware models deliver their events.
//!
//! The cycle engine and every instrumented component are generic over
//! [`TraceSink`], and every emission site is guarded by the associated
//! constant [`TraceSink::ACTIVE`]:
//!
//! ```ignore
//! if S::ACTIVE {
//!     sink.record(now, TraceEvent::FlitDeflected { node });
//! }
//! ```
//!
//! With [`NullSink`] (`ACTIVE = false`) the guard is a compile-time
//! constant, so monomorphization deletes both the branch and the event
//! construction — the untraced hot path is bit- and instruction-identical
//! to a build without tracing. [`RingSink`] captures events into a
//! preallocated ring buffer (oldest events overwritten once full), so
//! steady-state capture allocates nothing either.

use crate::event::{EventClass, TimedEvent, TraceEvent};
use medea_sim::Cycle;

/// What the simulator captures: the class filter handed to
/// `SystemConfigBuilder::trace`.
///
/// The configuration controls which *kernel-level* markers the eMPI layer
/// emits (spans are the one event source that crosses the kernel-thread
/// boundary, so they are opt-in at system-assembly time); every other
/// class is emitted by the engine and filtered at the sink. Markers cost
/// zero simulated cycles either way — enabling or disabling tracing never
/// changes a run's architectural results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    classes: EventClass,
}

impl TraceConfig {
    /// Tracing off (the default): no kernel markers are issued.
    pub const fn off() -> Self {
        TraceConfig { classes: EventClass::NONE }
    }

    /// Capture every class.
    pub const fn all() -> Self {
        TraceConfig { classes: EventClass::ALL }
    }

    /// Capture exactly `classes`.
    pub const fn classes(classes: EventClass) -> Self {
        TraceConfig { classes }
    }

    /// Whether `class` is selected.
    pub const fn captures(self, class: EventClass) -> bool {
        self.classes.intersects(class)
    }

    /// Whether nothing is selected.
    pub const fn is_off(self) -> bool {
        self.classes.is_empty()
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// A destination for trace events.
///
/// Implementations must be cheap: `record` runs inside the cycle engine's
/// hot loops. Emission sites check [`TraceSink::ACTIVE`] first so an
/// inactive sink costs literally nothing.
pub trait TraceSink {
    /// Whether this sink observes events at all. `false` only for
    /// [`NullSink`]; the constant lets monomorphization delete every
    /// emission site.
    const ACTIVE: bool;

    /// Record `event` as having occurred on cycle `at`.
    fn record(&mut self, at: Cycle, event: TraceEvent);

    /// Events this sink *lost* to I/O errors (not class filtering or ring
    /// eviction — those are deliberate). Non-zero only for sinks that
    /// write externally, e.g. [`crate::FileSink`]; the engine surfaces it
    /// in `RunResult` so a silently truncated trace file is diagnosable.
    fn io_drops(&self) -> u64 {
        0
    }
}

/// The no-op sink: tracing off. All emission sites compile away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _at: Cycle, _event: TraceEvent) {}
}

/// Preallocated ring-buffer sink: keeps the most recent `capacity`
/// events of the selected classes, counting (not storing) the overwritten
/// ones.
#[derive(Debug, Clone)]
pub struct RingSink {
    classes: EventClass,
    buf: Vec<TimedEvent>,
    capacity: usize,
    /// Index of the oldest stored event once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl RingSink {
    /// Ring capturing every class, holding at most `capacity` events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingSink::with_classes(capacity, EventClass::ALL)
    }

    /// Ring capturing only `classes`.
    pub fn with_classes(capacity: usize, classes: EventClass) -> Self {
        let capacity = capacity.max(1);
        RingSink { classes, buf: Vec::with_capacity(capacity), capacity, start: 0, dropped: 0 }
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The class filter.
    pub const fn classes(&self) -> EventClass {
        self.classes
    }

    /// Stored events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf[self.start..].iter().chain(self.buf[..self.start].iter())
    }

    /// Stored events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<TimedEvent> {
        self.iter().copied().collect()
    }

    /// Forget everything captured so far (capacity retained).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.dropped = 0;
    }
}

impl TraceSink for RingSink {
    const ACTIVE: bool = true;

    fn record(&mut self, at: Cycle, event: TraceEvent) {
        if !self.classes.intersects(event.class()) {
            return;
        }
        let timed = TimedEvent { at, event };
        if self.buf.len() < self.capacity {
            self.buf.push(timed);
        } else {
            self.buf[self.start] = timed;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u16) -> TraceEvent {
        TraceEvent::FlitDeflected { node }
    }

    #[test]
    fn null_sink_is_inactive() {
        fn active<S: TraceSink>(_sink: &S) -> bool {
            S::ACTIVE
        }
        let mut s = NullSink;
        assert!(!active(&s), "NullSink must advertise inactivity");
        assert!(active(&RingSink::new(1)));
        s.record(0, ev(1)); // compiles to nothing, must not panic
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut s = RingSink::new(3);
        for i in 0..5u64 {
            s.record(i, ev(i as u16));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let got: Vec<Cycle> = s.iter().map(|t| t.at).collect();
        assert_eq!(got, vec![2, 3, 4], "oldest-first, newest retained");
        assert_eq!(s.to_vec().len(), 3);
    }

    #[test]
    fn ring_filters_by_class() {
        let mut s = RingSink::with_classes(8, EventClass::KERNEL);
        s.record(0, ev(1)); // NOC: filtered
        s.record(1, TraceEvent::SpanBegin { node: 1, op: crate::event::KernelOp::Barrier });
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 0, "filtered events are not drops");
    }

    #[test]
    fn ring_clear_resets() {
        let mut s = RingSink::new(2);
        s.record(0, ev(0));
        s.record(1, ev(1));
        s.record(2, ev(2));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
        s.record(3, ev(3));
        assert_eq!(s.to_vec()[0].at, 3);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let mut s = RingSink::new(0);
        s.record(0, ev(0));
        s.record(1, ev(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn trace_config_defaults_off() {
        assert!(TraceConfig::default().is_off());
        assert!(TraceConfig::all().captures(EventClass::KERNEL));
        assert!(!TraceConfig::classes(EventClass::NOC).captures(EventClass::MEM));
    }
}
