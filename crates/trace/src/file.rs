//! Streaming file sink for captures that outgrow [`RingSink`].
//!
//! A multi-hundred-million-cycle run emits far more events than any
//! in-memory ring can hold — `RingSink` keeps only the newest `capacity`
//! events and silently truncates history. [`FileSink`] instead streams
//! every selected event to disk through a buffered writer, in the same
//! flat CSV vocabulary as [`crate::csv::to_csv`] (one row per event,
//! fixed `cycle,class,event,node,kind,src,addr,value` columns), so a
//! capture of any length loads into the same dataframe tooling.
//!
//! # Drop-counter semantics
//!
//! The two sinks count "drops" differently, deliberately:
//!
//! * [`RingSink::dropped`](crate::sink::RingSink::dropped) counts events
//!   *overwritten* because the ring was full — capacity pressure; the
//!   sink itself never fails.
//! * [`FileSink::dropped`] counts events *lost to I/O errors* (a failed
//!   `write` after buffer-flush retry). There is no capacity pressure —
//!   a healthy disk never drops — so a non-zero count means the capture
//!   file is incomplete and should be distrusted. Events filtered out by
//!   the class mask are counted by neither sink, matching `RingSink`.
//!
//! The writer is buffered; call [`FileSink::flush`] (or drop the sink)
//! before reading the file back.

use crate::event::{EventClass, TimedEvent, TraceEvent};
use crate::sink::TraceSink;
use medea_sim::Cycle;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A [`TraceSink`] that streams events to a CSV file through a buffered
/// writer. See the module docs for the drop-counter contract.
#[derive(Debug)]
pub struct FileSink {
    classes: EventClass,
    writer: BufWriter<File>,
    scratch: String,
    written: u64,
    dropped: u64,
}

impl FileSink {
    /// Create (truncating) `path` and write the CSV header, capturing
    /// every class.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        FileSink::with_classes(path, EventClass::ALL)
    }

    /// Create (truncating) `path`, capturing only `classes`.
    pub fn with_classes<P: AsRef<Path>>(path: P, classes: EventClass) -> std::io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(crate::csv::HEADER.as_bytes())?;
        Ok(FileSink { classes, writer, scratch: String::with_capacity(64), written: 0, dropped: 0 })
    }

    /// Events successfully handed to the buffered writer.
    pub const fn written(&self) -> u64 {
        self.written
    }

    /// Events lost to I/O errors (not capacity — see the module docs).
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The class filter.
    pub const fn classes(&self) -> EventClass {
        self.classes
    }

    /// Flush the buffered writer to disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

impl TraceSink for FileSink {
    const ACTIVE: bool = true;

    fn record(&mut self, at: Cycle, event: TraceEvent) {
        if !self.classes.intersects(event.class()) {
            return;
        }
        self.scratch.clear();
        crate::csv::push_row(&mut self.scratch, &TimedEvent { at, event });
        match self.writer.write_all(self.scratch.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(_) => self.dropped += 1,
        }
    }

    fn io_drops(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KernelOp;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("medea_filesink_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn streams_rows_in_csv_vocabulary() {
        let path = tmp("rows");
        let events = [
            TimedEvent { at: 5, event: TraceEvent::MemTxn { bank: 0, src: 3, kind: 1, addr: 64 } },
            TimedEvent { at: 6, event: TraceEvent::SpanBegin { node: 2, op: KernelOp::Recv } },
            TimedEvent { at: 9, event: TraceEvent::CohHome { bank: 0, src: 2, op: 1, addr: 64 } },
        ];
        {
            let mut sink = FileSink::create(&path).unwrap();
            for t in events {
                sink.record(t.at, t.event);
            }
            assert_eq!(sink.written(), 3);
            assert_eq!(sink.dropped(), 0);
            sink.flush().unwrap();
        }
        let got = std::fs::read_to_string(&path).unwrap();
        // Bit-identical to the in-memory exporter over the same events.
        assert_eq!(got, crate::csv::to_csv(&events));
        assert!(got.lines().next().unwrap().starts_with("cycle,class,"));
        assert!(got.contains("coh-home"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn class_filter_skips_without_counting() {
        let path = tmp("filter");
        let mut sink = FileSink::with_classes(&path, EventClass::KERNEL).unwrap();
        sink.record(0, TraceEvent::FlitDeflected { node: 1 }); // NOC: filtered
        sink.record(1, TraceEvent::SpanBegin { node: 1, op: KernelOp::Barrier });
        assert_eq!(sink.written(), 1);
        assert_eq!(sink.dropped(), 0, "filtered events are not drops");
        sink.flush().unwrap();
        drop(sink);
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got.lines().count(), 2, "header + one kernel row");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_on_drop_persists_buffered_rows() {
        let path = tmp("drop");
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.record(0, TraceEvent::FlitDeflected { node: 7 });
            // No explicit flush: Drop must flush the buffer.
        }
        let got = std::fs::read_to_string(&path).unwrap();
        assert!(got.contains("deflect"));
        std::fs::remove_file(&path).ok();
    }
}
