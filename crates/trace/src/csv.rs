//! Flat CSV exporter: one row per event, fixed column set.
//!
//! Columns: `cycle,class,event,node,kind,src,addr,value` — `node` is the
//! event's track node (the bank node for memory events), `kind` the
//! event-specific discriminator (packet kind, cache access kind, span
//! op), `src` the requesting node where one exists, `addr` the target
//! address, and `value` the remaining scalar (link load, flit latency).
//! Inapplicable cells are left empty, so the file loads directly into
//! any dataframe tool.

use crate::event::{coh_op_name, packet_kind_name, TimedEvent, TraceEvent};
use std::fmt::Write as _;

/// The fixed CSV header row (shared with the streaming
/// [`FileSink`](crate::sink::FileSink), which writes the same format).
pub const HEADER: &str = "cycle,class,event,node,kind,src,addr,value\n";

/// Render `events` as a CSV document with a header row.
pub fn to_csv(events: &[TimedEvent]) -> String {
    let mut out = String::with_capacity(32 + events.len() * 40);
    out.push_str(HEADER);
    for timed in events {
        push_row(&mut out, timed);
    }
    out
}

/// Append one CSV data row (with trailing newline) for `timed` to `out`.
pub fn push_row(out: &mut String, timed: &TimedEvent) {
    let &TimedEvent { at, event } = timed;
    {
        let class = event.class().label();
        let node = event.node();
        let (name, kind, src, addr, value) = match event {
            TraceEvent::FlitInjected { kind, .. } => {
                ("flit-inject", packet_kind_name(kind), None, None, None)
            }
            TraceEvent::FlitDelivered { latency, .. } => {
                ("flit-deliver", "", None, None, Some(latency))
            }
            TraceEvent::FlitDeflected { .. } => ("deflect", "", None, None, None),
            TraceEvent::LinkLoad { links, .. } => {
                ("links-busy", "", None, None, Some(links as u64))
            }
            TraceEvent::CacheAccess { kind, addr, .. } => {
                ("cache", kind.name(), None, Some(addr), None)
            }
            TraceEvent::ReorderSlip { .. } => ("reorder-slip", "", None, None, None),
            TraceEvent::MemTxn { src, kind, addr, .. } => {
                ("mem-txn", packet_kind_name(kind), Some(src), Some(addr), None)
            }
            TraceEvent::CohProbe { op, addr, .. } => {
                ("coh-probe", coh_op_name(op), None, Some(addr), None)
            }
            TraceEvent::CohHome { src, op, addr, .. } => {
                ("coh-home", coh_op_name(op), Some(src), Some(addr), None)
            }
            TraceEvent::LockAcquired { src, addr, .. } => {
                ("lock-acquire", "", Some(src), Some(addr), None)
            }
            TraceEvent::LockContended { src, addr, .. } => {
                ("lock-contend", "", Some(src), Some(addr), None)
            }
            TraceEvent::LockReleased { src, addr, .. } => {
                ("lock-release", "", Some(src), Some(addr), None)
            }
            TraceEvent::SpanBegin { op, .. } => ("span-begin", op.name(), None, None, None),
            TraceEvent::SpanEnd { op, .. } => ("span-end", op.name(), None, None, None),
            TraceEvent::FaultFlitCorrupted { bit, .. } => {
                ("fault-flit-corrupt", "", None, None, Some(bit as u64))
            }
            TraceEvent::FaultLinkKilled { dir, .. } => {
                ("fault-link-kill", "", None, None, Some(dir as u64))
            }
            TraceEvent::FaultBankDrop { .. } => ("fault-bank-drop", "", None, None, None),
            TraceEvent::FaultBankDelay { cycles, .. } => {
                ("fault-bank-delay", "", None, None, Some(cycles as u64))
            }
            TraceEvent::FaultPeStall { cycles, .. } => {
                ("fault-pe-stall", "", None, None, Some(cycles as u64))
            }
        };
        let _ = write!(out, "{at},{class},{name},{node},{kind},");
        if let Some(src) = src {
            let _ = write!(out, "{src}");
        }
        out.push(',');
        if let Some(addr) = addr {
            let _ = write!(out, "{addr}");
        }
        out.push(',');
        if let Some(value) = value {
            let _ = write!(out, "{value}");
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KernelOp;

    #[test]
    fn rows_have_fixed_arity() {
        let events = vec![
            TimedEvent { at: 5, event: TraceEvent::MemTxn { bank: 0, src: 3, kind: 1, addr: 64 } },
            TimedEvent { at: 6, event: TraceEvent::SpanBegin { node: 2, op: KernelOp::Recv } },
            TimedEvent { at: 7, event: TraceEvent::LinkLoad { node: 4, links: 3 } },
        ];
        let csv = to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert_eq!(line.matches(',').count(), 7, "8 columns in {line:?}");
        }
        assert_eq!(lines[1], "5,mem,mem-txn,0,single-write,3,64,");
        assert_eq!(lines[2], "6,kernel,span-begin,2,recv,,,");
        assert_eq!(lines[3], "7,noc,links-busy,4,,,,3");
    }
}
