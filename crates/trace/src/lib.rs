//! # medea-trace — zero-overhead cross-layer event tracing
//!
//! The paper's entire evaluation (§III) reads latency distributions,
//! deflection behavior and memory-vs-message traffic straight out of the
//! cycle-accurate model; this crate is the reproduction's equivalent
//! observability layer. Every hardware layer — NoC switches, PE/bridge,
//! MPMMU banks, and the kernel/eMPI programming surface — emits typed,
//! timestamped [`TraceEvent`]s into a [`TraceSink`] the cycle engine is
//! *generic* over:
//!
//! * with [`NullSink`] (the default, `System::run`), every emission site
//!   is guarded by the associated constant [`TraceSink::ACTIVE`]` =
//!   false`, so monomorphization deletes the tracing entirely — the hot
//!   path of the zero-allocation engine is provably unperturbed, and a
//!   traced run produces bit-identical architectural results to an
//!   untraced one (pinned by the golden suite);
//! * with [`RingSink`] (`System::run_traced`), events land in a
//!   preallocated ring buffer — steady-state capture allocates nothing
//!   and the newest `capacity` events survive;
//! * with [`FileSink`], events stream to disk through a buffered writer
//!   in the CSV vocabulary — for multi-hundred-M-cycle runs where any
//!   ring would truncate (drop-counter semantics documented in
//!   [`file`]).
//!
//! # Event classes
//!
//! | [`EventClass`] | source layer | events |
//! |--------------|--------------|--------|
//! | `NOC`    | deflection switches + engine | flit inject/deliver/deflect, per-router link load |
//! | `CACHE`  | PE execution engine | L1 hit/miss/write-through, flush, invalidate, reorder-buffer slips |
//! | `MEM`    | MPMMU banks | per-bank transactions, lock acquire/contend/release |
//! | `KERNEL` | engine + eMPI markers | packet send/recv spans, message/collective phase spans |
//! | `FAULT`  | medea-fault injector | flit corruption, link kills, bank drops/delays, PE stalls |
//!
//! # Exporters and the `chrome://tracing` workflow
//!
//! [`chrome::to_chrome_json`] renders a capture in the Chrome
//! `trace_event` JSON format (field mapping documented on the module):
//! one track per node — compute PEs and MPMMU banks alike — with `B`/`E`
//! span pairs for kernel operations, instants for flit/cache/memory
//! events and a `links-busy` counter series per router (the per-cycle
//! link heatmap). To view a trace:
//!
//! ```text
//! cargo run --release -p medea-bench --bin trace_json -- --workload mixed trace.json
//! # then open chrome://tracing (or https://ui.perfetto.dev) and load trace.json:
//! #   - each "node N (rank R)" / "bank B @ node N" row is one torus node;
//! #   - W/S zoom, A/D pan; click a `barrier` span to see its duration;
//! #   - the links-busy counter row per node is the NoC heatmap over time.
//! ```
//!
//! [`csv::to_csv`] writes the same capture as a flat CSV for dataframe
//! tools, and [`analysis::TraceAnalysis`] reduces it to summary
//! observables (per-router peak link load, lock-contention cycles, span
//! totals). [`json::validate`] is the offline JSON syntax checker the CI
//! smoke job and the exporter tests use to prove emitted traces parse.
//!
//! # Zero simulated-time cost, by construction
//!
//! Tracing never changes what the simulator computes, only what it
//! reports. Engine-side events are observations of state transitions
//! that happen anyway; kernel-side span markers ride the existing
//! request/response rendezvous but are consumed by the engine in zero
//! simulated cycles and update no statistics. `tests/trace_equivalence.rs`
//! property-checks `RunResult` equality between traced and untraced runs
//! on random tori, and the golden suite pins the paper-4×4 fingerprints
//! with tracing both off and on.

pub mod analysis;
pub mod chrome;
pub mod csv;
pub mod event;
pub mod file;
pub mod json;
pub mod sink;

pub use analysis::TraceAnalysis;
pub use event::{
    coh_op_name, packet_kind_name, CacheEventKind, EventClass, KernelOp, TimedEvent, TraceEvent,
};
pub use file::FileSink;
pub use sink::{NullSink, RingSink, TraceConfig, TraceSink};
