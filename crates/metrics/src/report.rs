//! Run-level metrics artifacts: per-PE [`CycleBreakdown`], the committed
//! [`SampleWindow`] series, and the [`MetricsReport`] attached to
//! `RunResult.metrics`.

use crate::PeActivity;
use medea_sim::Cycle;
use std::fmt;

/// Cycles attributed to each [`PeActivity`] category for one PE (or, via
/// [`CycleBreakdown::add`], an aggregate over many).
///
/// The recorder's interval accounting attributes *every* simulated cycle
/// of a ticked PE to exactly one category, so [`CycleBreakdown::total`]
/// of a finished per-PE breakdown equals the run's cycle count and the
/// [`CycleBreakdown::fraction`]s sum to 1.0 by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Attributed cycles, indexed by [`PeActivity::index`].
    pub cycles: [u64; PeActivity::COUNT],
}

impl CycleBreakdown {
    /// Attribute `n` cycles to `act`.
    pub fn record(&mut self, act: PeActivity, n: u64) {
        self.cycles[act.index()] += n;
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of the total attributed to `act` (0.0 if empty).
    pub fn fraction(&self, act: PeActivity) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.cycles[act.index()] as f64 / total as f64
        }
    }

    /// Category with the most cycles, if any were attributed.
    pub fn dominant(&self) -> Option<(PeActivity, u64)> {
        PeActivity::ALL
            .iter()
            .map(|&a| (a, self.cycles[a.index()]))
            .max_by_key(|&(_, n)| n)
            .filter(|&(_, n)| n > 0)
    }

    /// Element-wise accumulate another breakdown.
    pub fn add(&mut self, other: &CycleBreakdown) {
        for (mine, theirs) in self.cycles.iter_mut().zip(&other.cycles) {
            *mine += *theirs;
        }
    }
}

impl fmt::Display for CycleBreakdown {
    /// The paper-style one-liner: `62% compute / 21% recv-wait / ...`,
    /// non-zero categories only, descending share.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        if total == 0 {
            return write!(f, "no cycles attributed");
        }
        let mut parts: Vec<(PeActivity, u64)> = PeActivity::ALL
            .iter()
            .map(|&a| (a, self.cycles[a.index()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        parts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        for (i, (act, n)) in parts.iter().enumerate() {
            if i > 0 {
                write!(f, " / ")?;
            }
            write!(f, "{:.0}% {}", *n as f64 * 100.0 / total as f64, act.name())?;
        }
        Ok(())
    }
}

/// One committed sampling window `[start, end)`.
///
/// Per-slot layouts: `link_busy[node * 4 + dir]` counts the cycles the
/// router at `node` latched a flit onto output `dir`; `pe_*` vectors are
/// indexed by PE slot (rank order), `bank_*` by bank index. Snapshots
/// (`pe_activity`, occupancies) are the state observed *at* the window
/// boundary; `bank_lock_nacks` / `bank_coh_msgs` are deltas over the
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleWindow {
    /// First cycle covered.
    pub start: Cycle,
    /// One past the last cycle covered (the final window may be partial).
    pub end: Cycle,
    /// Busy-cycle count per directed link (`node * 4 + dir`).
    pub link_busy: Vec<u32>,
    /// [`PeActivity`] code per PE at the boundary.
    pub pe_activity: Vec<u8>,
    /// NoC arbiter backlog per PE at the boundary.
    pub pe_arb: Vec<u16>,
    /// TIE receive backlog per PE at the boundary (completed + partial
    /// packets — the engine-visible face of the eMPI credit window).
    pub pe_rx: Vec<u16>,
    /// Request-FIFO occupancy per bank at the boundary.
    pub bank_req: Vec<u16>,
    /// Data-FIFO occupancy per bank at the boundary.
    pub bank_data: Vec<u16>,
    /// Out-FIFO occupancy per bank at the boundary.
    pub bank_out: Vec<u16>,
    /// Lock Nacks issued by each bank during the window.
    pub bank_lock_nacks: Vec<u32>,
    /// Coherence protocol messages handled by each bank during the window.
    pub bank_coh_msgs: Vec<u32>,
}

impl SampleWindow {
    /// Window length in cycles.
    pub fn span(&self) -> Cycle {
        self.end - self.start
    }

    /// Utilization of the directed link `(node, dir)` in `[0, 1]`.
    ///
    /// The final (partial) window may include the break cycle's link
    /// activity beyond `end`, so the ratio is clamped to 1.
    pub fn link_utilization(&self, node: u16, dir: usize) -> f64 {
        let span = self.span();
        if span == 0 {
            return 0.0;
        }
        (self.link_busy[node as usize * 4 + dir] as f64 / span as f64).min(1.0)
    }
}

/// Everything the metrics subsystem recorded for one run; attached to
/// `RunResult.metrics` when `SystemConfigBuilder::metrics` enabled it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Configured window length in cycles.
    pub interval: Cycle,
    /// Final cycle of the run (equals `RunResult.cycles`).
    pub end: Cycle,
    /// Torus width.
    pub width: u8,
    /// Torus height.
    pub height: u8,
    /// Compute-PE count (slot dimension of `breakdown` and `pe_*`).
    pub pes: usize,
    /// MPMMU bank count (slot dimension of `bank_*`).
    pub banks: usize,
    /// Per-PE cycle attribution, indexed by rank.
    pub breakdown: Vec<CycleBreakdown>,
    /// Committed sample windows, oldest first (ring-truncated to the
    /// configured capacity).
    pub windows: Vec<SampleWindow>,
    /// Windows evicted from the ring.
    pub windows_dropped: u64,
}

impl MetricsReport {
    /// Torus node count.
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Aggregate breakdown over every PE.
    pub fn aggregate(&self) -> CycleBreakdown {
        let mut agg = CycleBreakdown::default();
        for b in &self.breakdown {
            agg.add(b);
        }
        agg
    }

    /// Total busy cycles per router (all four output links, all windows),
    /// descending, top `n` — the "hottest routers" table.
    pub fn hottest_routers(&self, n: usize) -> Vec<(u16, u64)> {
        let mut per_node = vec![0u64; self.nodes()];
        for w in &self.windows {
            for (link, &busy) in w.link_busy.iter().enumerate() {
                per_node[link / 4] += u64::from(busy);
            }
        }
        let mut rows: Vec<(u16, u64)> =
            per_node.into_iter().enumerate().map(|(i, b)| (i as u16, b)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows.retain(|&(_, b)| b > 0);
        rows
    }

    /// Bank pressure (summed FIFO occupancies + lock Nacks + coherence
    /// messages over all windows), descending, top `n` — the "hottest
    /// banks" table.
    pub fn hottest_banks(&self, n: usize) -> Vec<(usize, u64)> {
        let mut per_bank = vec![0u64; self.banks];
        for w in &self.windows {
            for (slot, pressure) in per_bank.iter_mut().enumerate() {
                *pressure += u64::from(w.bank_req[slot])
                    + u64::from(w.bank_data[slot])
                    + u64::from(w.bank_out[slot])
                    + u64::from(w.bank_lock_nacks[slot])
                    + u64::from(w.bank_coh_msgs[slot]);
            }
        }
        let mut rows: Vec<(usize, u64)> = per_bank.into_iter().enumerate().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows.retain(|&(_, p)| p > 0);
        rows
    }

    /// Peak single-link utilization across all windows, with its
    /// `(node, dir)` — the saturation headline for the bench tables.
    pub fn peak_link_utilization(&self) -> Option<(u16, usize, f64)> {
        let mut best: Option<(u16, usize, f64)> = None;
        for w in &self.windows {
            for node in 0..self.nodes() as u16 {
                for dir in 0..4 {
                    let u = w.link_utilization(node, dir);
                    if best.is_none_or(|(_, _, b)| u > b) {
                        best = Some((node, dir, u));
                    }
                }
            }
        }
        best.filter(|&(_, _, u)| u > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(windows: Vec<SampleWindow>) -> MetricsReport {
        MetricsReport {
            interval: 10,
            end: 20,
            width: 2,
            height: 2,
            pes: 2,
            banks: 1,
            breakdown: vec![CycleBreakdown::default(); 2],
            windows,
            windows_dropped: 0,
        }
    }

    fn window(start: Cycle, end: Cycle) -> SampleWindow {
        SampleWindow {
            start,
            end,
            link_busy: vec![0; 16],
            pe_activity: vec![0; 2],
            pe_arb: vec![0; 2],
            pe_rx: vec![0; 2],
            bank_req: vec![0; 1],
            bank_data: vec![0; 1],
            bank_out: vec![0; 1],
            bank_lock_nacks: vec![0; 1],
            bank_coh_msgs: vec![0; 1],
        }
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut b = CycleBreakdown::default();
        b.record(PeActivity::Compute, 62);
        b.record(PeActivity::RecvWait, 21);
        b.record(PeActivity::Mem, 9);
        b.record(PeActivity::CollectiveWait, 8);
        assert_eq!(b.total(), 100);
        let sum: f64 = PeActivity::ALL.iter().map(|&a| b.fraction(a)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(b.dominant(), Some((PeActivity::Compute, 62)));
        let line = b.to_string();
        assert!(line.starts_with("62% compute"), "{line}");
        assert!(line.contains("21% recv-wait"), "{line}");
        assert_eq!(CycleBreakdown::default().to_string(), "no cycles attributed");
        assert_eq!(CycleBreakdown::default().dominant(), None);
    }

    #[test]
    fn link_utilization_clamps_partial_window() {
        let mut w = window(10, 15);
        w.link_busy[6] = 6; // node 1, dir 2 (slot 4*1+2): 6 busy in a 5-cycle window
        assert_eq!(w.span(), 5);
        assert!((w.link_utilization(1, 2) - 1.0).abs() < 1e-12, "clamped");
        assert_eq!(w.link_utilization(0, 0), 0.0);
    }

    #[test]
    fn hottest_tables_rank_and_truncate() {
        let mut w0 = window(0, 10);
        w0.link_busy[0] = 3; // node 0 dir 0
        w0.link_busy[7] = 9; // node 1 dir 3
        w0.bank_lock_nacks[0] = 4;
        let mut w1 = window(10, 20);
        w1.link_busy[0] = 2;
        let r = report_with(vec![w0, w1]);
        assert_eq!(r.hottest_routers(8), vec![(1, 9), (0, 5)]);
        assert_eq!(r.hottest_routers(1), vec![(1, 9)]);
        assert_eq!(r.hottest_banks(4), vec![(0, 4)]);
        let (node, dir, peak) = r.peak_link_utilization().unwrap();
        assert_eq!((node, dir), (1, 3));
        assert!((peak - 0.9).abs() < 1e-12);
        assert_eq!(report_with(vec![]).peak_link_utilization(), None);
        assert!(report_with(vec![]).hottest_routers(4).is_empty());
    }
}
