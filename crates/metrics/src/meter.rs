//! The [`Meter`] instrumentation interface and its two implementations:
//! the zero-cost [`NullMeter`] and the recording [`Recorder`].
//!
//! The cycle engines (sequential and tiled) are generic over `M: Meter`
//! and call into it at four kinds of site, all guarded by `M::ACTIVE`:
//!
//! * [`Meter::link_busy`] — once per active router per cycle, from the
//!   fabric tick, with the 4-bit occupancy mask of its output latches;
//! * [`Meter::pe_state`] — whenever a PE ticks, with the PE's activity
//!   *after* the tick; the recorder charges the span since the previous
//!   tick to the previous activity (interval attribution), which makes
//!   idle fast-forward exact;
//! * [`Meter::next_sample`] / [`Meter::sample_pe`] / [`Meter::sample_bank`]
//!   / [`Meter::commit_window`] — the sampling catch-up loop run at the
//!   top of every simulated cycle: while the next window boundary has
//!   passed, snapshot every PE and bank and commit the window (the loop
//!   form makes multi-window fast-forward jumps emit one window per
//!   boundary, with frozen state — exactly what the sequential engine
//!   would have observed);
//! * [`Meter::finish`] — once at end of run, after a final snapshot:
//!   flushes the open attribution spans and the partial last window.
//!
//! [`Meter::fork`] / [`Meter::absorb`] support the tiled engine: each tile
//! runs a full-size fork and writes only its own PE/bank/router slots;
//! absorbing the forks in tile-index order element-wise-sums the series,
//! which is bit-identical to sequential recording because every slot has
//! exactly one writer.

use crate::report::{CycleBreakdown, MetricsReport, SampleWindow};
use crate::PeActivity;
use medea_sim::Cycle;

/// Sampling configuration handed to `SystemConfigBuilder::metrics`.
///
/// The single `sample_interval` knob both enables the subsystem and sets
/// the window length; `MetricsConfig::off()` (the default) keeps the
/// engines on the [`NullMeter`] path where every instrumentation site
/// compiles away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    sample_interval: Cycle,
    max_windows: usize,
}

impl MetricsConfig {
    /// Default ring capacity of [`MetricsConfig::every`].
    pub const DEFAULT_MAX_WINDOWS: usize = 256;

    /// Metrics off (the default): engines run the zero-cost path.
    pub const fn off() -> Self {
        MetricsConfig { sample_interval: 0, max_windows: 0 }
    }

    /// Enable metrics with one sample window every `interval` cycles
    /// (`interval == 0` means off) and the default ring capacity.
    pub const fn every(interval: Cycle) -> Self {
        MetricsConfig { sample_interval: interval, max_windows: Self::DEFAULT_MAX_WINDOWS }
    }

    /// Keep at most `max` windows (oldest evicted first, counted in
    /// [`MetricsReport::windows_dropped`]). Clamped to at least 1.
    pub const fn with_max_windows(mut self, max: usize) -> Self {
        self.max_windows = if max == 0 { 1 } else { max };
        self
    }

    /// Whether the subsystem records anything.
    pub const fn enabled(&self) -> bool {
        self.sample_interval > 0
    }

    /// Window length in cycles (0 when off).
    pub const fn sample_interval(&self) -> Cycle {
        self.sample_interval
    }

    /// Ring capacity in windows.
    pub const fn max_windows(&self) -> usize {
        self.max_windows
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::off()
    }
}

/// A destination for engine telemetry. See the module docs for the call
/// sites and their contract.
///
/// Implementations must be cheap (`link_busy`/`pe_state` run inside the
/// engine hot loops) and `Send` (the tiled engine moves forks onto worker
/// threads).
pub trait Meter: Send {
    /// Whether this meter observes anything. `false` only for
    /// [`NullMeter`]; the constant lets monomorphization delete every
    /// instrumentation site.
    const ACTIVE: bool;

    /// One cycle of output-latch occupancy at `node`: bit `d` of `mask`
    /// is set iff the router latched a flit onto output direction `d`
    /// this cycle (direction indices follow `medea-noc`'s `Dir`).
    fn link_busy(&mut self, _node: u16, _mask: u8) {}

    /// PE `slot` ticked at `now` and is now in state `act`. The span
    /// since the PE's previous tick is charged to its previous state.
    fn pe_state(&mut self, _slot: usize, _now: Cycle, _act: PeActivity) {}

    /// First cycle at which the accumulating window must be committed
    /// (`Cycle::MAX` when sampling is off — the engine's catch-up loop
    /// then never runs).
    fn next_sample(&self) -> Cycle {
        Cycle::MAX
    }

    /// Stage PE `slot`'s boundary snapshot: activity, NoC arbiter
    /// backlog, and TIE receive backlog (completed + partial packets —
    /// the engine-visible face of the eMPI credit window).
    fn sample_pe(&mut self, _slot: usize, _act: PeActivity, _arb: usize, _rx: usize) {}

    /// Stage bank `slot`'s boundary snapshot: request/data/out FIFO
    /// occupancies plus the *running totals* of lock Nacks and coherence
    /// protocol messages (the recorder stores per-window deltas).
    fn sample_bank(
        &mut self,
        _slot: usize,
        _req: usize,
        _data: usize,
        _out: usize,
        _lock_nacks: u64,
        _coh_msgs: u64,
    ) {
    }

    /// Commit the staged snapshots and accumulated link counts as the
    /// window ending at the current [`Meter::next_sample`] boundary.
    fn commit_window(&mut self) {}

    /// End of run at cycle `end`: flush open attribution spans and commit
    /// the partial final window (if any) from the staged snapshots.
    fn finish(&mut self, _end: Cycle) {}

    /// A fresh same-shape meter for one tile of the tiled engine.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Merge per-tile forks back, in tile-index order.
    fn absorb(&mut self, _parts: Vec<Self>)
    where
        Self: Sized,
    {
    }
}

/// The no-op meter: metrics off. All instrumentation sites compile away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMeter;

impl Meter for NullMeter {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn fork(&self) -> Self {
        NullMeter
    }
}

/// The recording meter behind [`MetricsReport`].
///
/// All series are preallocated at construction; the window ring reuses
/// its buffers once full, so steady-state recording allocates nothing.
#[derive(Debug, Clone)]
pub struct Recorder {
    interval: Cycle,
    max_windows: usize,
    width: u8,
    height: u8,
    pes: usize,
    banks: usize,

    // Cycle attribution (interval accounting per PE slot).
    cat: Vec<u8>,
    last: Vec<Cycle>,
    seen: Vec<bool>,
    breakdown: Vec<CycleBreakdown>,

    // The window currently accumulating.
    window: u64,
    link_acc: Vec<u32>,
    pe_act: Vec<u8>,
    pe_arb: Vec<u16>,
    pe_rx: Vec<u16>,
    bank_req: Vec<u16>,
    bank_data: Vec<u16>,
    bank_out: Vec<u16>,
    lock_delta: Vec<u32>,
    coh_delta: Vec<u32>,
    lock_seen: Vec<u64>,
    coh_seen: Vec<u64>,

    // Committed windows: a ring of at most `max_windows`, oldest at
    // `ring_start` once wrapped.
    ring: Vec<SampleWindow>,
    ring_start: usize,
    windows_dropped: u64,

    end: Cycle,
    finished: bool,
}

impl Recorder {
    /// Recorder for a `width`×`height` torus with `pes` compute PEs and
    /// `banks` MPMMU banks.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not enabled — the engines must use
    /// [`NullMeter`] for metrics-off runs.
    pub fn new(cfg: MetricsConfig, width: u8, height: u8, pes: usize, banks: usize) -> Self {
        assert!(cfg.enabled(), "Recorder requires an enabled MetricsConfig");
        let nodes = width as usize * height as usize;
        Recorder {
            interval: cfg.sample_interval(),
            max_windows: cfg.max_windows().max(1),
            width,
            height,
            pes,
            banks,
            cat: vec![0; pes],
            last: vec![0; pes],
            seen: vec![false; pes],
            breakdown: vec![CycleBreakdown::default(); pes],
            window: 0,
            link_acc: vec![0; nodes * 4],
            pe_act: vec![0; pes],
            pe_arb: vec![0; pes],
            pe_rx: vec![0; pes],
            bank_req: vec![0; banks],
            bank_data: vec![0; banks],
            bank_out: vec![0; banks],
            lock_delta: vec![0; banks],
            coh_delta: vec![0; banks],
            lock_seen: vec![0; banks],
            coh_seen: vec![0; banks],
            ring: Vec::with_capacity(cfg.max_windows().max(1)),
            ring_start: 0,
            windows_dropped: 0,
            end: 0,
            finished: false,
        }
    }

    /// Consume the recorder into the run-level report (windows oldest
    /// first).
    pub fn into_report(self) -> MetricsReport {
        let mut windows = Vec::with_capacity(self.ring.len());
        windows.extend_from_slice(&self.ring[self.ring_start..]);
        windows.extend_from_slice(&self.ring[..self.ring_start]);
        MetricsReport {
            interval: self.interval,
            end: self.end,
            width: self.width,
            height: self.height,
            pes: self.pes,
            banks: self.banks,
            breakdown: self.breakdown,
            windows,
            windows_dropped: self.windows_dropped,
        }
    }

    /// Start cycle of the window currently accumulating.
    fn window_start(&self) -> Cycle {
        self.window * self.interval
    }

    /// Commit the accumulating window as `[start, end)`, reusing ring
    /// buffers once the ring has wrapped.
    fn push_window(&mut self, start: Cycle, end: Cycle) {
        if self.ring.len() < self.max_windows {
            self.ring.push(SampleWindow {
                start,
                end,
                link_busy: self.link_acc.clone(),
                pe_activity: self.pe_act.clone(),
                pe_arb: self.pe_arb.clone(),
                pe_rx: self.pe_rx.clone(),
                bank_req: self.bank_req.clone(),
                bank_data: self.bank_data.clone(),
                bank_out: self.bank_out.clone(),
                bank_lock_nacks: self.lock_delta.clone(),
                bank_coh_msgs: self.coh_delta.clone(),
            });
        } else {
            let slot = &mut self.ring[self.ring_start];
            slot.start = start;
            slot.end = end;
            slot.link_busy.copy_from_slice(&self.link_acc);
            slot.pe_activity.copy_from_slice(&self.pe_act);
            slot.pe_arb.copy_from_slice(&self.pe_arb);
            slot.pe_rx.copy_from_slice(&self.pe_rx);
            slot.bank_req.copy_from_slice(&self.bank_req);
            slot.bank_data.copy_from_slice(&self.bank_data);
            slot.bank_out.copy_from_slice(&self.bank_out);
            slot.bank_lock_nacks.copy_from_slice(&self.lock_delta);
            slot.bank_coh_msgs.copy_from_slice(&self.coh_delta);
            self.ring_start = (self.ring_start + 1) % self.max_windows;
            self.windows_dropped += 1;
        }
        self.link_acc.fill(0);
        self.lock_delta.fill(0);
        self.coh_delta.fill(0);
    }

    /// Merge one tile's finished fork into this recorder. Every per-slot
    /// value has exactly one writer across forks, so element-wise sums
    /// reproduce the sequential recording bit for bit.
    fn merge_from(&mut self, other: Recorder) {
        debug_assert_eq!(self.interval, other.interval);
        debug_assert_eq!(self.pes, other.pes);
        debug_assert_eq!(self.banks, other.banks);
        for (mine, theirs) in self.breakdown.iter_mut().zip(&other.breakdown) {
            mine.add(theirs);
        }
        self.end = self.end.max(other.end);
        self.finished |= other.finished;
        if self.ring.is_empty() {
            self.ring = other.ring;
            self.ring_start = other.ring_start;
            self.windows_dropped = other.windows_dropped;
            self.window = other.window;
            return;
        }
        debug_assert_eq!(self.ring.len(), other.ring.len(), "forks commit in lockstep");
        debug_assert_eq!(self.ring_start, other.ring_start);
        for (mine, theirs) in self.ring.iter_mut().zip(&other.ring) {
            debug_assert_eq!((mine.start, mine.end), (theirs.start, theirs.end));
            fn add_u32(a: &mut [u32], b: &[u32]) {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            }
            fn add_u16(a: &mut [u16], b: &[u16]) {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            }
            fn add_u8(a: &mut [u8], b: &[u8]) {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            }
            add_u32(&mut mine.link_busy, &theirs.link_busy);
            add_u8(&mut mine.pe_activity, &theirs.pe_activity);
            add_u16(&mut mine.pe_arb, &theirs.pe_arb);
            add_u16(&mut mine.pe_rx, &theirs.pe_rx);
            add_u16(&mut mine.bank_req, &theirs.bank_req);
            add_u16(&mut mine.bank_data, &theirs.bank_data);
            add_u16(&mut mine.bank_out, &theirs.bank_out);
            add_u32(&mut mine.bank_lock_nacks, &theirs.bank_lock_nacks);
            add_u32(&mut mine.bank_coh_msgs, &theirs.bank_coh_msgs);
        }
        self.windows_dropped = self.windows_dropped.max(other.windows_dropped);
    }
}

impl Meter for Recorder {
    const ACTIVE: bool = true;

    #[inline]
    fn link_busy(&mut self, node: u16, mask: u8) {
        let base = node as usize * 4;
        self.link_acc[base] += u32::from(mask & 1);
        self.link_acc[base + 1] += u32::from((mask >> 1) & 1);
        self.link_acc[base + 2] += u32::from((mask >> 2) & 1);
        self.link_acc[base + 3] += u32::from((mask >> 3) & 1);
    }

    #[inline]
    fn pe_state(&mut self, slot: usize, now: Cycle, act: PeActivity) {
        if self.seen[slot] {
            let span = now - self.last[slot];
            self.breakdown[slot].cycles[self.cat[slot] as usize] += span;
        } else {
            // First tick: charge [0, now) to the first reported state
            // (the engine ticks every PE at cycle 0, so this span is
            // normally empty; an injected stall can defer the first tick).
            self.seen[slot] = true;
            self.breakdown[slot].cycles[act.index()] += now;
        }
        self.cat[slot] = act as u8;
        self.last[slot] = now;
    }

    fn next_sample(&self) -> Cycle {
        (self.window + 1) * self.interval
    }

    fn sample_pe(&mut self, slot: usize, act: PeActivity, arb: usize, rx: usize) {
        self.pe_act[slot] = act as u8;
        self.pe_arb[slot] = arb.min(u16::MAX as usize) as u16;
        self.pe_rx[slot] = rx.min(u16::MAX as usize) as u16;
    }

    fn sample_bank(
        &mut self,
        slot: usize,
        req: usize,
        data: usize,
        out: usize,
        lock_nacks: u64,
        coh_msgs: u64,
    ) {
        self.bank_req[slot] = req.min(u16::MAX as usize) as u16;
        self.bank_data[slot] = data.min(u16::MAX as usize) as u16;
        self.bank_out[slot] = out.min(u16::MAX as usize) as u16;
        let lock = lock_nacks - self.lock_seen[slot];
        let coh = coh_msgs - self.coh_seen[slot];
        self.lock_seen[slot] = lock_nacks;
        self.coh_seen[slot] = coh_msgs;
        self.lock_delta[slot] += lock.min(u32::MAX as u64) as u32;
        self.coh_delta[slot] += coh.min(u32::MAX as u64) as u32;
    }

    fn commit_window(&mut self) {
        let start = self.window_start();
        let end = start + self.interval;
        self.push_window(start, end);
        self.window += 1;
    }

    fn finish(&mut self, end: Cycle) {
        for slot in 0..self.pes {
            if self.seen[slot] {
                let span = end - self.last[slot];
                self.breakdown[slot].cycles[self.cat[slot] as usize] += span;
                self.last[slot] = end;
            }
        }
        let start = self.window_start();
        if end > start {
            self.push_window(start, end);
        }
        self.end = end;
        self.finished = true;
    }

    fn fork(&self) -> Self {
        Recorder::new(
            MetricsConfig::every(self.interval).with_max_windows(self.max_windows),
            self.width,
            self.height,
            self.pes,
            self.banks,
        )
    }

    fn absorb(&mut self, parts: Vec<Self>) {
        for part in parts {
            self.merge_from(part);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(interval: Cycle) -> Recorder {
        Recorder::new(MetricsConfig::every(interval), 2, 2, 2, 1)
    }

    #[test]
    fn config_knobs() {
        assert!(!MetricsConfig::off().enabled());
        assert!(!MetricsConfig::every(0).enabled());
        let cfg = MetricsConfig::every(100).with_max_windows(0);
        assert!(cfg.enabled());
        assert_eq!(cfg.sample_interval(), 100);
        assert_eq!(cfg.max_windows(), 1, "zero clamps to one");
        assert_eq!(MetricsConfig::default(), MetricsConfig::off());
    }

    #[test]
    fn null_meter_is_inactive_and_free() {
        fn active<M: Meter>(_m: &M) -> bool {
            M::ACTIVE
        }
        let mut m = NullMeter;
        assert!(!active(&m));
        assert!(active(&recorder(10)));
        assert_eq!(m.next_sample(), Cycle::MAX, "catch-up loop never fires");
        m.link_busy(0, 0xF);
        m.pe_state(0, 5, PeActivity::Compute);
        m.commit_window();
        m.finish(10);
        m.fork().absorb(vec![NullMeter]);
    }

    #[test]
    fn interval_attribution_charges_spans_to_previous_state() {
        let mut r = recorder(1000);
        // PE 0: compute [0, 10), recv-wait [10, 25), compute [25, 40).
        r.pe_state(0, 0, PeActivity::Compute);
        r.pe_state(0, 10, PeActivity::RecvWait);
        r.pe_state(0, 25, PeActivity::Compute);
        r.finish(40);
        let b = &r.breakdown[0];
        assert_eq!(b.cycles[PeActivity::Compute.index()], 10 + 15);
        assert_eq!(b.cycles[PeActivity::RecvWait.index()], 15);
        assert_eq!(b.total(), 40, "every cycle attributed");
        // PE 1 never ticked: nothing charged.
        assert_eq!(r.breakdown[1].total(), 0);
    }

    #[test]
    fn deferred_first_tick_charges_leading_span() {
        let mut r = recorder(1000);
        r.pe_state(0, 7, PeActivity::Mem);
        r.finish(10);
        assert_eq!(r.breakdown[0].cycles[PeActivity::Mem.index()], 10);
    }

    #[test]
    fn windows_commit_at_boundaries_and_final_partial() {
        let mut r = recorder(10);
        assert_eq!(r.next_sample(), 10);
        r.link_busy(0, 0b0101); // dirs 0 and 2 at node 0
        r.sample_pe(0, PeActivity::Send, 3, 2);
        r.sample_bank(0, 1, 2, 3, 5, 7);
        r.commit_window();
        assert_eq!(r.next_sample(), 20);
        // Second window: one more lock nack (total 6), no link traffic.
        r.sample_pe(0, PeActivity::Done, 0, 0);
        r.sample_bank(0, 0, 0, 0, 6, 7);
        r.finish(15);
        let report = r.into_report();
        assert_eq!(report.windows.len(), 2);
        let w0 = &report.windows[0];
        assert_eq!((w0.start, w0.end), (0, 10));
        assert_eq!(&w0.link_busy[..4], &[1, 0, 1, 0]);
        assert_eq!(w0.pe_arb[0], 3);
        assert_eq!(w0.bank_lock_nacks[0], 5, "first delta is the total");
        let w1 = &report.windows[1];
        assert_eq!((w1.start, w1.end), (10, 15), "partial final window");
        assert_eq!(w1.bank_lock_nacks[0], 1, "delta since previous sample");
        assert_eq!(w1.bank_coh_msgs[0], 0);
        assert_eq!(&w1.link_busy[..4], &[0, 0, 0, 0], "accumulator reset");
    }

    #[test]
    fn ring_reuses_buffers_and_counts_drops() {
        let mut r = Recorder::new(MetricsConfig::every(10).with_max_windows(2), 2, 2, 1, 0);
        for i in 0..5 {
            r.link_busy(0, 1);
            r.sample_pe(0, PeActivity::Compute, i, 0);
            r.commit_window();
        }
        let report = r.into_report();
        assert_eq!(report.windows.len(), 2);
        assert_eq!(report.windows_dropped, 3);
        // Oldest-first ordering across the wrap.
        assert_eq!(report.windows[0].start, 30);
        assert_eq!(report.windows[1].start, 40);
        assert_eq!(report.windows[1].pe_arb[0], 4);
    }

    #[test]
    fn fork_absorb_matches_single_recorder() {
        // One recorder sees both PEs; two forks each see one. Merged in
        // tile order, the series must be bit-identical.
        let mut whole = recorder(10);
        let mut left = whole.fork();
        let mut right = whole.fork();
        for (t, acts) in [
            (0u64, [PeActivity::Compute, PeActivity::Send]),
            (4, [PeActivity::Mem, PeActivity::Send]),
            (9, [PeActivity::Compute, PeActivity::RecvWait]),
        ] {
            whole.pe_state(0, t, acts[0]);
            whole.pe_state(1, t, acts[1]);
            left.pe_state(0, t, acts[0]);
            right.pe_state(1, t, acts[1]);
        }
        whole.link_busy(0, 0b11);
        left.link_busy(0, 0b11);
        whole.link_busy(3, 0b100);
        right.link_busy(3, 0b100);
        for r in [&mut whole, &mut left, &mut right] {
            r.sample_bank(0, 0, 0, 0, 0, 0);
        }
        // Tile-owned PE snapshots: whole samples both, forks one each.
        whole.sample_pe(0, PeActivity::Compute, 1, 0);
        whole.sample_pe(1, PeActivity::RecvWait, 0, 2);
        left.sample_pe(0, PeActivity::Compute, 1, 0);
        right.sample_pe(1, PeActivity::RecvWait, 0, 2);
        for r in [&mut whole, &mut left, &mut right] {
            r.commit_window();
            r.finish(12);
        }
        let mut merged = whole.fork();
        merged.absorb(vec![left, right]);
        let (a, b) = (merged.into_report(), whole.into_report());
        assert_eq!(a, b);
        assert_eq!(a.aggregate().total(), 24, "two PEs x 12 cycles");
    }
}
