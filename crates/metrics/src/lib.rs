//! Zero-cost-when-off telemetry for the MEDEA cycle engines.
//!
//! The paper evaluates MEDEA by *where cycles go* — message passing versus
//! memory-hierarchy synchronization (§III), deflection-induced latency
//! tails (§II-A) — but endpoint counters alone cannot answer "what
//! fraction of this run was barrier wait versus NoC transit versus bank
//! queueing?". This crate adds the missing observability layer, in three
//! pillars:
//!
//! 1. **Cycle attribution** ([`CycleBreakdown`]): every simulated cycle of
//!    every PE is attributed to one [`PeActivity`] category (compute,
//!    memory, lock wait, send, recv wait, collective wait, done), so a run
//!    can report e.g. "62% compute / 21% recv-wait / 9% mem / 8% barrier".
//!    Attribution is interval-based — the engine reports a PE's activity
//!    only when the PE actually ticks, and the recorder charges the whole
//!    span since the previous tick — so idle fast-forward jumps are exact
//!    and the per-PE totals equal the run's cycle count by construction.
//! 2. **Periodic time-series sampling** ([`SampleWindow`]): every K cycles
//!    (configured via [`MetricsConfig`]) the engine snapshots per-link
//!    utilization, per-PE execution state and queue occupancies (NoC
//!    arbiter backlog, TIE receive backlog — the engine-visible face of
//!    the eMPI credit window), per-bank FIFO occupancy, lock contention
//!    and coherence protocol traffic into a preallocated ring of windows.
//! 3. **Renderers** ([`heatmap`]): a self-contained HTML/SVG torus
//!    heatmap animated over the sample windows, plus helpers feeding the
//!    `utilization` section of the benchmark JSON.
//!
//! # The `NullMeter` zero-cost contract
//!
//! Exactly like `medea-trace`'s `NullSink` and `medea-fault`'s
//! `NullInjector`, every instrumentation site in the engines is guarded by
//! the associated constant [`Meter::ACTIVE`]:
//!
//! ```ignore
//! if M::ACTIVE {
//!     meter.link_busy(node, mask);
//! }
//! ```
//!
//! With [`NullMeter`] (`ACTIVE = false`) monomorphization deletes both the
//! branch and the argument computation, so a metrics-off run is bit- and
//! instruction-identical to a build without the subsystem — the golden
//! fingerprint suite pins this. With [`Recorder`] the engine state is only
//! *read*, never perturbed: metrics-on runs produce numerically identical
//! architectural results (pinned by `tests/metrics_equivalence.rs`).
//!
//! # Tiled-engine determinism
//!
//! The tiled parallel engine forks one full-size [`Recorder`] per tile
//! ([`Meter::fork`]); tiles write disjoint PE/bank/router slots, and the
//! forks are merged back in fixed tile-index order ([`Meter::absorb`]).
//! Because every per-slot field has exactly one writer and merging is a
//! plain element-wise sum, a multi-threaded run yields a bit-identical
//! sample series and breakdown to the sequential engine at any thread
//! count.

pub mod heatmap;
pub mod meter;
pub mod report;

pub use meter::{Meter, MetricsConfig, NullMeter, Recorder};
pub use report::{CycleBreakdown, MetricsReport, SampleWindow};

/// What a PE is doing with a simulated cycle — the attribution categories
/// of [`CycleBreakdown`] and the per-PE state sampled into
/// [`SampleWindow`].
///
/// The categories follow the paper's evaluation axes: computation versus
/// message passing (send / recv wait) versus shared-memory traffic (mem,
/// lock wait) versus global synchronization (collective wait — time spent
/// inside an eMPI collective such as `barrier`). `Done` covers the tail a
/// finished rank spends waiting for the rest of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PeActivity {
    /// Executing kernel work: fetching the next request or stalled on a
    /// compute/FPU latency.
    Compute = 0,
    /// Waiting on the memory hierarchy: cache miss service, MPMMU round
    /// trips, flush/invalidate latency.
    Mem = 1,
    /// Waiting for an MPMMU lock grant (spinning on Nacks).
    LockWait = 2,
    /// Streaming message flits into the NoC.
    Send = 3,
    /// Blocked in a point-to-point receive with no packet available.
    RecvWait = 4,
    /// Blocked inside an eMPI collective (barrier, bcast, reduce,
    /// allreduce, gather, scatter) — the paper's global-sync cost.
    CollectiveWait = 5,
    /// Kernel finished; cycles spent waiting for the rest of the run.
    Done = 6,
}

impl PeActivity {
    /// Number of categories (array dimension of [`CycleBreakdown`]).
    pub const COUNT: usize = 7;

    /// All categories, in index order.
    pub const ALL: [PeActivity; PeActivity::COUNT] = [
        PeActivity::Compute,
        PeActivity::Mem,
        PeActivity::LockWait,
        PeActivity::Send,
        PeActivity::RecvWait,
        PeActivity::CollectiveWait,
        PeActivity::Done,
    ];

    /// Array index of this category.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short stable label (used by tables, JSON keys and the heatmap).
    pub const fn name(self) -> &'static str {
        match self {
            PeActivity::Compute => "compute",
            PeActivity::Mem => "mem",
            PeActivity::LockWait => "lock-wait",
            PeActivity::Send => "send",
            PeActivity::RecvWait => "recv-wait",
            PeActivity::CollectiveWait => "collective-wait",
            PeActivity::Done => "done",
        }
    }

    /// Category from its array index, if in range.
    pub fn from_index(i: usize) -> Option<PeActivity> {
        PeActivity::ALL.get(i).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_index_roundtrip() {
        for (i, act) in PeActivity::ALL.iter().enumerate() {
            assert_eq!(act.index(), i);
            assert_eq!(PeActivity::from_index(i), Some(*act));
        }
        assert_eq!(PeActivity::from_index(PeActivity::COUNT), None);
        assert_eq!(PeActivity::ALL.len(), PeActivity::COUNT);
    }

    #[test]
    fn activity_names_are_distinct() {
        let mut names: Vec<&str> = PeActivity::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PeActivity::COUNT);
    }
}
