//! Self-contained HTML/SVG NoC heatmap report.
//!
//! [`render_heatmap_html`] turns a [`MetricsReport`] into a single HTML
//! file with no external assets: an inline SVG of the torus grid where
//! every router is a cell and each of its four output links is a small
//! pad colored by per-window utilization (blue → yellow → red ramp).
//! With two or more sample windows the pads carry SMIL `<animate>`
//! elements cycling through the windows, so link saturation is visible
//! *over time*, not just in aggregate. Below the grid the report renders
//! the top-N hottest routers/banks tables and the aggregate
//! [`CycleBreakdown`](crate::CycleBreakdown).
//!
//! [`check_svg_well_formed`] is a minimal, dependency-free XML
//! tag-balance checker used by the renderer-validity tests (and the CI
//! gate) to assert the emitted SVG parses: every open tag closed in
//! order, quotes balanced, one `<rect>` cell per directed link.

use crate::report::MetricsReport;
use crate::PeActivity;
use std::fmt::Write as _;

/// Pixel geometry of one router cell (link pads are laid out inside it).
const CELL: usize = 56;
/// Link pad size.
const PAD: usize = 16;
/// Seconds each sample window is displayed by the SMIL animation.
const SECS_PER_WINDOW: f64 = 0.5;

/// Map a utilization in `[0, 1]` to a `#rrggbb` color on the cold→hot
/// ramp (dark blue → yellow → red).
fn ramp(u: f64) -> String {
    let u = u.clamp(0.0, 1.0);
    let (r, g, b) = if u < 0.5 {
        // dark blue (24,32,96) → yellow (232,208,48)
        let t = u * 2.0;
        (24.0 + t * 208.0, 32.0 + t * 176.0, 96.0 - t * 48.0)
    } else {
        // yellow → red (208,32,32)
        let t = (u - 0.5) * 2.0;
        (232.0 - t * 24.0, 208.0 - t * 176.0, 48.0 - t * 16.0)
    };
    format!("#{:02x}{:02x}{:02x}", r as u8, g as u8, b as u8)
}

/// Offsets of the four link pads within a router cell, indexed by
/// direction (`medea-noc` `Dir` order: 0..4). Pads sit on the cell edges
/// so a link's pad points at the neighbor it feeds.
fn pad_offset(dir: usize) -> (usize, usize) {
    let mid = (CELL - PAD) / 2;
    match dir {
        0 => (CELL - PAD - 1, mid), // +x edge
        1 => (1, mid),              // -x edge
        2 => (mid, CELL - PAD - 1), // +y edge
        _ => (mid, 1),              // -y edge
    }
}

/// Render the full self-contained HTML heatmap report for `report`,
/// titled with `label`.
pub fn render_heatmap_html(report: &MetricsReport, label: &str) -> String {
    let nodes = report.nodes();
    let w = report.width as usize;
    let h = report.height as usize;
    let svg_w = w * CELL + 1;
    let svg_h = h * CELL + 1;
    let windows = report.windows.len();
    let dur = (windows.max(1) as f64 * SECS_PER_WINDOW).max(0.1);

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{svg_w}\" height=\"{svg_h}\" \
         viewBox=\"0 0 {svg_w} {svg_h}\">"
    );
    svg.push_str("<rect x=\"0\" y=\"0\" width=\"100%\" height=\"100%\" fill=\"#14141c\"/>");
    for node in 0..nodes {
        let (x, y) = (node % w, node / w);
        let (cx, cy) = (x * CELL, y * CELL);
        let _ = write!(
            svg,
            "<rect x=\"{cx}\" y=\"{cy}\" width=\"{CELL}\" height=\"{CELL}\" fill=\"none\" \
             stroke=\"#3a3a4a\"/>"
        );
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"9\" fill=\"#8888a0\" \
             text-anchor=\"middle\">{node}</text>",
            cx + CELL / 2,
            cy + CELL / 2 + 3
        );
        for dir in 0..4 {
            let (ox, oy) = pad_offset(dir);
            let colors: Vec<String> = report
                .windows
                .iter()
                .map(|win| ramp(win.link_utilization(node as u16, dir)))
                .collect();
            let first = colors.first().cloned().unwrap_or_else(|| ramp(0.0));
            let _ = write!(
                svg,
                "<rect class=\"link\" x=\"{}\" y=\"{}\" width=\"{PAD}\" height=\"{PAD}\" \
                 fill=\"{first}\">",
                cx + ox,
                cy + oy
            );
            if windows > 1 {
                let _ = write!(
                    svg,
                    "<animate attributeName=\"fill\" dur=\"{dur}s\" \
                     repeatCount=\"indefinite\" calcMode=\"discrete\" values=\"{}\"/>",
                    colors.join(";")
                );
            }
            let _ = write!(svg, "<title>node {node} dir {dir}</title>");
            svg.push_str("</rect>");
        }
    }
    svg.push_str("</svg>");

    let mut tables = String::new();
    let agg = report.aggregate();
    let _ = write!(tables, "<p class=\"breakdown\">cycle attribution: {agg}</p>");
    tables.push_str("<table><caption>hottest routers (busy link-cycles)</caption>");
    tables.push_str("<tr><th>node</th><th>busy</th></tr>");
    for (node, busy) in report.hottest_routers(8) {
        let _ = write!(tables, "<tr><td>{node}</td><td>{busy}</td></tr>");
    }
    tables.push_str("</table>");
    tables.push_str("<table><caption>hottest banks (queue + contention pressure)</caption>");
    tables.push_str("<tr><th>bank</th><th>pressure</th></tr>");
    for (bank, pressure) in report.hottest_banks(8) {
        let _ = write!(tables, "<tr><td>{bank}</td><td>{pressure}</td></tr>");
    }
    tables.push_str("</table>");
    tables.push_str("<table><caption>attribution categories</caption>");
    tables.push_str("<tr><th>category</th><th>cycles</th><th>fraction</th></tr>");
    for act in PeActivity::ALL {
        let _ = write!(
            tables,
            "<tr><td>{}</td><td>{}</td><td>{:.4}</td></tr>",
            act.name(),
            agg.cycles[act.index()],
            agg.fraction(act)
        );
    }
    tables.push_str("</table>");

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>\
         <title>MEDEA NoC heatmap — {label}</title>\
         <style>body{{background:#1b1b24;color:#d0d0dc;font:13px monospace;padding:16px}}\
         table{{border-collapse:collapse;margin:12px 0;display:inline-table;\
         vertical-align:top;margin-right:24px}}\
         caption{{text-align:left;color:#9a9ab0;padding:2px 0}}\
         td,th{{border:1px solid #3a3a4a;padding:2px 8px;text-align:right}}\
         .breakdown{{color:#e0c060}}</style></head><body>\
         <h1>MEDEA NoC heatmap — {label}</h1>\
         <p>{w}x{h} torus · {windows} windows of {interval} cycles · run end {end} \
         · {dropped} windows dropped</p>\n{svg}\n{tables}\n</body></html>\n",
        interval = report.interval,
        end = report.end,
        dropped = report.windows_dropped,
    )
}

/// Check that the `<svg>…</svg>` portion of `html` is well-formed XML:
/// balanced, properly nested tags with balanced attribute quotes.
/// Returns the number of `<rect class="link">` cells on success (the
/// validity tests assert one per directed link).
pub fn check_svg_well_formed(html: &str) -> Result<usize, String> {
    let start = html.find("<svg").ok_or("no <svg> element")?;
    let end = html.find("</svg>").ok_or("no </svg> close")? + "</svg>".len();
    if end <= start {
        return Err("</svg> precedes <svg>".into());
    }
    let svg = &html[start..end];
    let mut stack: Vec<String> = Vec::new();
    let mut link_cells = 0usize;
    let mut rest = svg;
    while let Some(lt) = rest.find('<') {
        rest = &rest[lt..];
        // Find the matching '>' outside quotes.
        let mut in_quote = false;
        let mut gt = None;
        for (i, c) in rest.char_indices().skip(1) {
            match c {
                '"' => in_quote = !in_quote,
                '<' if !in_quote => return Err(format!("nested '<' near …{}", &rest[..i.min(40)])),
                '>' if !in_quote => {
                    gt = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(gt) = gt else {
            return Err("unterminated tag (unbalanced quotes or missing '>')".into());
        };
        let tag = &rest[1..gt];
        rest = &rest[gt + 1..];
        if let Some(name) = tag.strip_prefix('/') {
            match stack.pop() {
                Some(open) if open == name.trim() => {}
                Some(open) => return Err(format!("</{}> closes <{open}>", name.trim())),
                None => return Err(format!("</{}> with nothing open", name.trim())),
            }
            continue;
        }
        let self_closing = tag.ends_with('/');
        let body = tag.trim_end_matches('/');
        let name: String = body.split_whitespace().next().unwrap_or("").to_string();
        if name.is_empty() {
            return Err("empty tag name".into());
        }
        if name == "rect" && body.contains("class=\"link\"") {
            link_cells += 1;
        }
        if !self_closing {
            stack.push(name);
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("<{open}> never closed"));
    }
    Ok(link_cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CycleBreakdown, SampleWindow};

    fn tiny_report(windows: usize) -> MetricsReport {
        let mut breakdown = vec![CycleBreakdown::default(); 2];
        breakdown[0].record(PeActivity::Compute, 70);
        breakdown[0].record(PeActivity::RecvWait, 30);
        breakdown[1].record(PeActivity::CollectiveWait, 100);
        MetricsReport {
            interval: 10,
            end: windows as u64 * 10,
            width: 2,
            height: 2,
            pes: 2,
            banks: 1,
            breakdown,
            windows: (0..windows as u64)
                .map(|i| {
                    let mut w = SampleWindow {
                        start: i * 10,
                        end: (i + 1) * 10,
                        link_busy: vec![0; 16],
                        pe_activity: vec![0; 2],
                        pe_arb: vec![0; 2],
                        pe_rx: vec![0; 2],
                        bank_req: vec![1; 1],
                        bank_data: vec![0; 1],
                        bank_out: vec![0; 1],
                        bank_lock_nacks: vec![0; 1],
                        bank_coh_msgs: vec![0; 1],
                    };
                    w.link_busy[(i as usize * 3) % 16] = 10;
                    w
                })
                .collect(),
            windows_dropped: 0,
        }
    }

    #[test]
    fn ramp_endpoints_and_clamp() {
        assert_eq!(ramp(0.0), "#182060");
        assert_eq!(ramp(1.0), "#d02020");
        assert_eq!(ramp(-3.0), ramp(0.0));
        assert_eq!(ramp(7.0), ramp(1.0));
    }

    #[test]
    fn heatmap_is_well_formed_with_one_cell_per_link() {
        let html = render_heatmap_html(&tiny_report(3), "unit");
        let cells = check_svg_well_formed(&html).expect("well-formed SVG");
        assert_eq!(cells, 2 * 2 * 4, "one rect per directed link");
        assert!(html.contains("<animate"), "multi-window reports animate");
        assert!(html.contains("hottest routers"));
        assert!(html.contains("collective-wait"));
    }

    #[test]
    fn single_window_report_is_static() {
        let html = render_heatmap_html(&tiny_report(1), "unit");
        check_svg_well_formed(&html).expect("well-formed SVG");
        assert!(!html.contains("<animate"), "nothing to animate");
    }

    #[test]
    fn checker_rejects_malformed() {
        assert!(check_svg_well_formed("<html></html>").is_err(), "no svg");
        assert!(check_svg_well_formed("<svg><rect></svg>").is_err(), "unclosed rect");
        assert!(check_svg_well_formed("<svg><a><b></a></b></svg>").is_err(), "bad nesting");
        assert!(check_svg_well_formed("<svg><rect x=\"1>\"/></svg>").is_ok(), "'>' in quotes");
        assert!(check_svg_well_formed("<svg><rect x=\"1/></svg>").is_err(), "unbalanced quote");
        assert_eq!(check_svg_well_formed("<svg></svg>"), Ok(0));
    }
}
