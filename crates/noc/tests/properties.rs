//! Property-based tests for the NoC substrate: bit-exact codec
//! roundtripping (the RTL-faithfulness surrogate), losslessness /
//! delivery guarantees of deflection routing under arbitrary traffic,
//! and bit-identical equivalence of the optimized fabric against the
//! frozen seed implementation.

use medea_noc::codec::FlitCodec;
use medea_noc::coord::{Coord, Topology};
use medea_noc::flit::{Flit, PacketKind, SubKind};
use medea_noc::network::Network;
use medea_noc::reference::ReferenceNetwork;
use medea_noc::Fabric;
use medea_sim::ids::NodeId;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (2u8..=8, 2u8..=8).prop_map(|(w, h)| Topology::new(w, h).expect("valid dims"))
}

/// Topologies the fabric-level properties sweep: the paper's square torus
/// plus strongly rectangular ones (single-row rings in one axis), where
/// the productive-direction and wrap logic degenerate differently.
fn fabric_topologies() -> Vec<Topology> {
    [(4, 4), (8, 2), (2, 8), (5, 3)]
        .into_iter()
        .map(|(w, h)| Topology::new(w, h).expect("valid dims"))
        .collect()
}

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop::sample::select(PacketKind::ALL.to_vec())
}

fn arb_sub() -> impl Strategy<Value = SubKind> {
    prop::sample::select(vec![SubKind::Request, SubKind::Data, SubKind::Ack, SubKind::Nack])
}

prop_compose! {
    fn arb_flit_for(topo: Topology)(
        x in 0u8..16,
        y in 0u8..16,
        kind in arb_kind(),
        sub in arb_sub(),
        seq in 0u8..16,
        burst in 0u8..4,
        src in 0u8..16,
        data in any::<u32>(),
    ) -> Flit {
        let dest = Coord::new(x % topo.width(), y % topo.height());
        Flit::new(dest, kind, sub, seq, burst, src, data)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode→decode is the identity for every valid flit on every torus.
    #[test]
    fn codec_roundtrips(topo in arb_topology(), seed in any::<u64>()) {
        let mut rng = medea_sim::rng::SplitMix64::new(seed);
        let codec = FlitCodec::new(topo);
        for _ in 0..32 {
            let dest = Coord::new(
                rng.next_below(topo.width() as u64) as u8,
                rng.next_below(topo.height() as u64) as u8,
            );
            let kind = PacketKind::ALL[rng.next_below(7) as usize];
            let sub = SubKind::from_code(rng.next_below(4) as u8).expect("total");
            let flit = Flit::new(
                dest,
                kind,
                sub,
                rng.next_below(16) as u8,
                rng.next_below(4) as u8,
                rng.next_below(topo.nodes() as u64) as u8,
                rng.next_u64() as u32,
            );
            let word = codec.encode(&flit);
            prop_assert!(word >> codec.width() == 0, "no bits above the format");
            prop_assert_eq!(codec.decode(word).expect("valid word"), flit);
        }
    }

    /// A corrupted wire word never decodes into a *different* valid flit
    /// silently when the validity bit is cleared.
    #[test]
    fn cleared_validity_always_rejected(flit in arb_flit_for(Topology::paper_4x4())) {
        let codec = FlitCodec::new(Topology::paper_4x4());
        let word = codec.encode(&flit) & !(1 << (codec.width() - 1));
        prop_assert!(codec.decode(word).is_err());
    }

    /// Deflection routing is lossless and eventually delivers everything,
    /// regardless of injection pattern, on square *and* rectangular tori
    /// (8×2 and 2×8 degenerate to a single wrap ring on one axis).
    #[test]
    fn deflection_delivers_everything(
        seed in any::<u64>(),
        flit_count in 1usize..60,
    ) {
        for topo in fabric_topologies() {
            let nodes = topo.nodes() as u64;
            let mut net = Network::new(topo);
            let mut rng = medea_sim::rng::SplitMix64::new(seed);
            let mut pending: Vec<(NodeId, Flit)> = (0..flit_count)
                .map(|i| {
                    let src = NodeId::new(rng.next_below(nodes) as u16);
                    let dest = NodeId::new(rng.next_below(nodes) as u16);
                    let flit = Flit::message(
                        topo.coord_of(dest),
                        src.index() as u8,
                        0,
                        0,
                        i as u32,
                    );
                    (src, flit)
                })
                .collect();
            let mut delivered = 0usize;
            let mut payloads = std::collections::BTreeSet::new();
            let mut now = 0u64;
            while delivered < flit_count {
                prop_assert!(now < 10_000, "undelivered traffic after 10k cycles on {}", topo);
                let mut still = Vec::new();
                for (src, flit) in pending {
                    match net.try_inject(src, flit, now) {
                        Ok(()) => {}
                        Err(back) => still.push((src, back)),
                    }
                }
                pending = still;
                net.tick(now);
                for node in 0..topo.nodes() {
                    while let Some(f) = net.eject(NodeId::new(node as u16)) {
                        prop_assert_eq!(
                            topo.node_of(f.dest()).index(),
                            node,
                            "flit ejected at the wrong node of {}", topo
                        );
                        prop_assert!(payloads.insert(f.payload()), "duplicate delivery");
                        delivered += 1;
                    }
                }
                now += 1;
            }
            prop_assert_eq!(net.in_flight(), 0);
            prop_assert_eq!(net.stats().delivered, flit_count as u64);
        }
    }

    /// The zero-allocation, activity-scheduled fabric is observationally
    /// identical to the frozen seed implementation under arbitrary
    /// traffic: same ejections at every node every cycle, same census,
    /// same statistics — including on non-square (8×2, 2×8) tori.
    #[test]
    fn optimized_fabric_matches_reference(seed in any::<u64>()) {
        for topo in fabric_topologies() {
            let nodes = topo.nodes() as u64;
            let mut fast = Network::new(topo);
            let mut slow = ReferenceNetwork::new(topo);
            let mut rng = medea_sim::rng::SplitMix64::new(seed);
            for now in 0..400u64 {
                if now < 300 {
                    let src = NodeId::new(rng.next_below(nodes) as u16);
                    let dest = NodeId::new(rng.next_below(nodes) as u16);
                    let flit = Flit::message(topo.coord_of(dest), src.index() as u8, 0, 0, now as u32);
                    let a = fast.try_inject(src, flit, now).is_ok();
                    let b = slow.try_inject(src, flit, now).is_ok();
                    prop_assert_eq!(a, b, "injection acceptance diverged at {} on {}", now, topo);
                }
                fast.tick(now);
                slow.tick(now);
                for node in 0..topo.nodes() {
                    loop {
                        let a = fast.eject(NodeId::new(node as u16));
                        let b = slow.eject(NodeId::new(node as u16));
                        prop_assert_eq!(
                            a, b,
                            "ejection diverged at node {} cycle {} on {}", node, now, topo
                        );
                        if a.is_none() {
                            break;
                        }
                    }
                }
                prop_assert_eq!(
                    fast.in_flight(), slow.in_flight(),
                    "census diverged at {} on {}", now, topo
                );
            }
            prop_assert_eq!(fast.stats().delivered, slow.stats().delivered);
            prop_assert_eq!(fast.stats().deflections, slow.stats().deflections);
            prop_assert_eq!(fast.stats().injected, slow.stats().injected);
            prop_assert_eq!(fast.stats().latency.buckets(), slow.stats().latency.buckets());
        }
    }

    /// The fabric conserves flits at every cycle: injected = delivered +
    /// in flight.
    #[test]
    fn flit_conservation(seed in any::<u64>()) {
        let topo = Topology::paper_4x4();
        let mut net = Network::new(topo);
        let mut rng = medea_sim::rng::SplitMix64::new(seed);
        let mut ejected = 0u64;
        for now in 0..300u64 {
            if now < 200 {
                let src = NodeId::new(rng.next_below(16) as u16);
                let dest = NodeId::new(rng.next_below(16) as u16);
                let flit = Flit::message(topo.coord_of(dest), 0, 0, 0, now as u32);
                let _ = net.try_inject(src, flit, now);
            }
            net.tick(now);
            for node in 0..16 {
                while net.eject(NodeId::new(node)).is_some() {
                    ejected += 1;
                }
            }
            prop_assert_eq!(
                net.stats().injected,
                ejected + net.in_flight() as u64,
                "conservation violated at cycle {}", now
            );
        }
    }
}
