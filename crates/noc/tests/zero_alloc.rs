//! Proof of the zero-allocation claim for the fabric hot path: a counting
//! global allocator observes `try_inject` → `tick` → `eject` cycles under
//! sustained contended traffic and must see no heap activity once the
//! network has been constructed.
//!
//! The counter is **thread-scoped**: it is armed only on the driving
//! thread for the measured window. A process-global count was flaky —
//! the libtest harness thread occasionally allocates (timer/bookkeeping)
//! concurrently with the measured drive, producing spurious failures
//! unrelated to the fabric (observed at the seed commit too).

use medea_noc::coord::Topology;
use medea_noc::flit::Flit;
use medea_noc::network::Network;
use medea_noc::Fabric;
use medea_sim::ids::NodeId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether allocations on *this* thread count (armed by the test
    /// around its measured window). Const-initialized so reading it from
    /// inside the allocator never itself allocates.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is inside a measured window. `try_with`:
/// allocator calls can arrive during TLS teardown, where access would
/// otherwise panic.
fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn fabric_steady_state_is_allocation_free() {
    let topo = Topology::paper_4x4();
    let mut net = Network::new(topo);

    // Drive every node at every other node round-robin — saturating,
    // deflection-heavy traffic touching every router and both the inject
    // and eject paths.
    let drive = |net: &mut Network, start: u64, cycles: u64| {
        let mut ejected = 0u64;
        for now in start..start + cycles {
            for s in 0..topo.nodes() {
                let d = (s + 1 + (now as usize % (topo.nodes() - 1))) % topo.nodes();
                let flit = Flit::message(topo.coord_of(NodeId::new(d as u16)), s as u8, 0, 0, 7);
                let _ = net.try_inject(NodeId::new(s as u16), flit, now);
            }
            net.tick(now);
            for n in 0..topo.nodes() {
                while net.eject(NodeId::new(n as u16)).is_some() {
                    ejected += 1;
                }
            }
            assert!(net.in_flight() <= topo.nodes() * 13, "census bounded by storage");
        }
        ejected
    };

    // Warm-up: reach steady state (histogram and FIFOs at final footprint).
    drive(&mut net, 0, 200);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let ejected = drive(&mut net, 200, 500);
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(ejected > 1000, "sanity: traffic actually flowed ({ejected} ejected)");
    assert_eq!(
        after - before,
        0,
        "fabric hot path allocated {} times in steady state",
        after - before
    );
    assert!(net.stats().deflections > 0, "sanity: contention exercised the deflection path");
}
