//! Bit-exact wire encoding of the three-level packet format (Fig. 5).
//!
//! The RTL counterpart of the SystemC model serializes every flit into a
//! 64-bit word laid out (MSB→LSB in the order the figure lists the fields)
//! as:
//!
//! ```text
//! | V(1) | X(xb) | Y(yb) | TYPE(3) | SUBTYPE(2) | SEQ(4) | BURST(2) | SRC(xb+yb) | CKSUM(4) | DATA(32) |
//! ```
//!
//! Every field width except the fixed protocol fields derives from the
//! configured torus: `xb`/`yb` are the coordinate widths and the `SRC-ID`
//! field is sized to hold a full linear node index (`xb + yb` bits). On
//! the paper's 4×4 folded torus this reduces exactly to Fig. 5 — 2 bits
//! per coordinate and the 4-bit `SRC-ID` — plus the 4-bit `CKSUM`
//! payload checksum this reproduction adds for fault detection (56 bits
//! on the 4×4; exactly 64 on the largest supported 16×16 torus, still
//! inside the 64-bit flit budget). The layout is the "RTL-faithfulness"
//! surrogate of this reproduction and is property-tested for
//! roundtripping on every topology.

use crate::coord::{Coord, Topology};
use crate::flit::{payload_checksum, Flit, PacketKind, SubKind, BURST_BITS, CKSUM_BITS, SEQ_BITS};
use std::fmt;

/// Error decoding a 64-bit word that is not a valid flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The validity bit was clear.
    InvalidBit,
    /// A coordinate exceeded the torus dimensions.
    CoordOutOfRange {
        /// Decoded X value.
        x: u8,
        /// Decoded Y value.
        y: u8,
    },
    /// Bits above the format width were set.
    TrailingBits,
    /// The `CKSUM` field did not match the payload: the data word was
    /// corrupted in flight.
    ChecksumMismatch {
        /// Checksum carried on the wire.
        stored: u8,
        /// Checksum recomputed from the decoded payload.
        computed: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidBit => write!(f, "validity bit clear"),
            DecodeError::CoordOutOfRange { x, y } => {
                write!(f, "coordinate ({x},{y}) outside torus")
            }
            DecodeError::TrailingBits => write!(f, "bits set beyond the format width"),
            DecodeError::ChecksumMismatch { stored, computed } => {
                write!(f, "payload checksum {stored:#x} does not match computed {computed:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const TYPE_BITS: u32 = 3;
const SUB_BITS: u32 = 2;
const DATA_BITS: u32 = 32;

/// Encoder/decoder for a given torus size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitCodec {
    topo: Topology,
}

impl FlitCodec {
    /// Codec for `topo`-sized coordinates.
    pub const fn new(topo: Topology) -> Self {
        FlitCodec { topo }
    }

    /// Width of the `SRC-ID` field for this topology: enough bits for a
    /// full linear node index (4 on the paper's 4×4, 8 on a 16×16).
    pub const fn src_bits(&self) -> u32 {
        self.topo.src_bits()
    }

    /// Total wire bits of the format for this topology.
    pub const fn width(&self) -> u32 {
        1 + self.topo.x_bits()
            + self.topo.y_bits()
            + TYPE_BITS
            + SUB_BITS
            + SEQ_BITS
            + BURST_BITS
            + self.src_bits()
            + CKSUM_BITS
            + DATA_BITS
    }

    /// Serialize `flit` into its 64-bit wire form.
    ///
    /// # Panics
    ///
    /// Panics if the flit's source id does not fit this topology's
    /// `SRC-ID` field (a flit built for a larger torus).
    pub fn encode(&self, flit: &Flit) -> u64 {
        assert!(
            (flit.src_id() as u64) < (1 << self.src_bits()),
            "src-id {} exceeds the {}-bit field of the {}",
            flit.src_id(),
            self.src_bits(),
            self.topo
        );
        let mut w: u64 = 1; // validity bit
        w = (w << self.topo.x_bits()) | flit.dest().x as u64;
        w = (w << self.topo.y_bits()) | flit.dest().y as u64;
        w = (w << TYPE_BITS) | flit.kind().code() as u64;
        w = (w << SUB_BITS) | flit.sub().code() as u64;
        w = (w << SEQ_BITS) | flit.seq() as u64;
        w = (w << BURST_BITS) | flit.burst() as u64;
        w = (w << self.src_bits()) | flit.src_id() as u64;
        w = (w << CKSUM_BITS) | flit.checksum() as u64;
        (w << DATA_BITS) | flit.payload() as u64
    }

    /// Deserialize a 64-bit wire word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the validity bit is clear, the
    /// coordinate is outside the torus, the checksum mismatches, or stray
    /// bits are set above the format width.
    pub fn decode(&self, word: u64) -> Result<Flit, DecodeError> {
        if self.width() < 64 && (word >> self.width()) != 0 {
            return Err(DecodeError::TrailingBits);
        }
        let mut cursor = word;
        let data = (cursor & mask(DATA_BITS)) as u32;
        cursor >>= DATA_BITS;
        let cksum = (cursor & mask(CKSUM_BITS)) as u8;
        cursor >>= CKSUM_BITS;
        let src = (cursor & mask(self.src_bits())) as u8;
        cursor >>= self.src_bits();
        let burst = (cursor & mask(BURST_BITS)) as u8;
        cursor >>= BURST_BITS;
        let seq = (cursor & mask(SEQ_BITS)) as u8;
        cursor >>= SEQ_BITS;
        let sub =
            SubKind::from_code((cursor & mask(SUB_BITS)) as u8).expect("2-bit subtype is total");
        cursor >>= SUB_BITS;
        let kind = PacketKind::from_code((cursor & mask(TYPE_BITS)) as u8)
            .expect("3-bit TYPE is total since code 7 became Coherence");
        cursor >>= TYPE_BITS;
        let y = (cursor & mask(self.topo.y_bits())) as u8;
        cursor >>= self.topo.y_bits();
        let x = (cursor & mask(self.topo.x_bits())) as u8;
        cursor >>= self.topo.x_bits();
        if cursor & 1 == 0 {
            return Err(DecodeError::InvalidBit);
        }
        if x >= self.topo.width() || y >= self.topo.height() {
            return Err(DecodeError::CoordOutOfRange { x, y });
        }
        let computed = payload_checksum(data);
        if cksum != computed {
            return Err(DecodeError::ChecksumMismatch { stored: cksum, computed });
        }
        Ok(Flit::new(Coord::new(x, y), kind, sub, seq, burst, src, data))
    }
}

const fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::CohOp;

    fn codec() -> FlitCodec {
        FlitCodec::new(Topology::paper_4x4())
    }

    #[test]
    fn paper_format_is_56_bits() {
        // 1 + 2 + 2 + 3 + 2 + 4 + 2 + 4 + 4 + 32 = 56 for the 4x4 torus
        // (Fig. 5's 52 bits plus the 4-bit CKSUM extension).
        assert_eq!(codec().width(), 56);
        assert_eq!(codec().src_bits(), 4, "Fig. 5's 4-bit SRC-ID on the paper torus");
    }

    #[test]
    fn max_torus_format_fits_64_bit_flit() {
        // 1 + 4 + 4 + 3 + 2 + 4 + 2 + 8 + 4 + 32 = 64 for the 16x16 torus.
        let c = FlitCodec::new(Topology::new(16, 16).unwrap());
        assert_eq!(c.src_bits(), 8);
        assert_eq!(c.width(), 64);
        // The highest node id roundtrips through the widened SRC field.
        let f = Flit::message(Coord::new(15, 15), 255, 3, 1, 0xDEAD_BEEF);
        assert_eq!(c.decode(c.encode(&f)).unwrap(), f);
    }

    #[test]
    #[should_panic(expected = "exceeds the 4-bit field")]
    fn oversized_src_rejected_by_small_topology_codec() {
        // A node index of a big torus cannot be encoded for the 4x4.
        let f = Flit::message(Coord::new(0, 0), 200, 0, 0, 0);
        codec().encode(&f);
    }

    #[test]
    fn roundtrip_simple() {
        let c = codec();
        let f = Flit::new(
            Coord::new(3, 1),
            PacketKind::BlockWrite,
            SubKind::Data,
            9,
            2,
            5,
            0xCAFE_BABE,
        );
        let word = c.encode(&f);
        let back = c.decode(word).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn validity_bit_is_msb_of_format() {
        let c = codec();
        let f = Flit::message(Coord::new(0, 0), 0, 0, 0, 0);
        let word = c.encode(&f);
        assert_eq!(word >> (c.width() - 1), 1);
    }

    #[test]
    fn clear_validity_bit_rejected() {
        let c = codec();
        let f = Flit::message(Coord::new(1, 1), 2, 3, 1, 77);
        let word = c.encode(&f) & !(1 << (c.width() - 1));
        assert_eq!(c.decode(word), Err(DecodeError::InvalidBit));
    }

    #[test]
    fn type_code_seven_decodes_as_coherence() {
        // Code 7 was the reserved TYPE encoding; it now carries the
        // directory-coherence protocol and must roundtrip like any other.
        let c = codec();
        let f = Flit::coherence(Coord::new(1, 1), SubKind::Request, CohOp::GetS, 2, 0x40);
        let word = c.encode(&f);
        // TYPE sits just above SUB+SEQ+BURST+SRC+CKSUM+DATA = 48 bits.
        assert_eq!((word >> 48) & 0b111, 7);
        assert_eq!(c.decode(word).unwrap(), f);
    }

    #[test]
    fn trailing_bits_rejected() {
        let c = codec();
        let f = Flit::message(Coord::new(1, 1), 2, 3, 1, 77);
        let word = c.encode(&f) | (1 << 60);
        assert_eq!(c.decode(word), Err(DecodeError::TrailingBits));
    }

    #[test]
    fn coord_out_of_range_detected_on_rect_torus() {
        // 3x4 torus: x needs 2 bits but x=3 is invalid.
        let topo = Topology::new(3, 4).unwrap();
        let c = FlitCodec::new(topo);
        let f = Flit::message(Coord::new(2, 0), 0, 0, 0, 0);
        let word = c.encode(&f);
        // Force x to 3 (both x bits set). X sits above Y(2)+rest(51) = 53.
        let bad = word | (0b11 << 53);
        assert!(matches!(c.decode(bad), Err(DecodeError::CoordOutOfRange { x: 3, .. })));
    }

    #[test]
    fn corrupted_payload_rejected_by_checksum() {
        let c = codec();
        let mut f = Flit::message(Coord::new(2, 1), 3, 0, 0, 0xCAFE_BABE);
        f.corrupt_payload_bit(7);
        assert!(matches!(c.decode(c.encode(&f)), Err(DecodeError::ChecksumMismatch { .. })));
        // Flipping the same wire bit after encoding is caught too.
        let clean = Flit::message(Coord::new(2, 1), 3, 0, 0, 0xCAFE_BABE);
        let word = c.encode(&clean) ^ (1 << 7);
        assert!(matches!(c.decode(word), Err(DecodeError::ChecksumMismatch { .. })));
    }

    #[test]
    fn all_kinds_and_subs_roundtrip() {
        let c = codec();
        for kind in PacketKind::ALL {
            for sub_code in 0..4u8 {
                let sub = SubKind::from_code(sub_code).unwrap();
                let f = Flit::new(Coord::new(2, 3), kind, sub, 15, 3, 15, u32::MAX);
                assert_eq!(c.decode(c.encode(&f)).unwrap(), f);
            }
        }
    }
}
