//! The seed implementation of the deflection fabric, frozen.
//!
//! [`ReferenceNetwork`] (and its switch, [`ReferenceRouter`]) is the
//! fabric exactly as first written: the router gathers residents into
//! per-cycle `Vec`s and `sort_by_key`s them, the network collects every
//! router's outputs into a fresh `Vec` each tick and routes *all*
//! switches whether or not they hold a flit, and `in_flight` is an
//! all-router occupancy scan.
//!
//! It is kept for two jobs:
//!
//! * **behavioral yardstick** — property tests drive identical traffic
//!   through [`ReferenceNetwork`] and the optimized
//!   [`crate::network::Network`] and demand bit-identical statistics, so
//!   every future hot-path change is checked against the original
//!   semantics;
//! * **performance baseline** — the cycle engine's
//!   `System::run_reference` and the `BENCH_sim_speed.json` harness use
//!   it as the honest "before" of the zero-allocation/activity-scheduling
//!   work.
//!
//! Do not optimize this module; that would defeat both jobs.

use crate::coord::{Coord, Dir, Topology};
use crate::flit::Flit;
use crate::{Fabric, FabricStats};
use medea_sim::fifo::Fifo;
use medea_sim::{ids::NodeId, Cycle};

use crate::router::DEFAULT_EJECT_QUEUE;

/// The seed deflection switch: allocates two `Vec`s per routed cycle.
#[derive(Debug, Clone)]
pub struct ReferenceRouter {
    coord: Coord,
    topo: Topology,
    inputs: [Option<Flit>; 4],
    inject_slot: Option<Flit>,
    eject_queue: Fifo<Flit>,
}

impl ReferenceRouter {
    /// Create the switch at `coord` of torus `topo`.
    pub fn new(topo: Topology, coord: Coord) -> Self {
        ReferenceRouter {
            coord,
            topo,
            inputs: [None; 4],
            inject_slot: None,
            eject_queue: Fifo::new("ref-router-eject", DEFAULT_EJECT_QUEUE),
        }
    }

    fn accept(&mut self, from: Dir, mut flit: Flit) {
        flit.meta.hops += 1;
        let slot = &mut self.inputs[from.index()];
        assert!(slot.is_none(), "link protocol violation: double delivery on {from}");
        *slot = Some(flit);
    }

    fn try_inject(&mut self, flit: Flit) -> Result<(), Flit> {
        if self.inject_slot.is_some() {
            return Err(flit);
        }
        self.inject_slot = Some(flit);
        Ok(())
    }

    fn eject(&mut self) -> Option<Flit> {
        self.eject_queue.pop()
    }

    fn occupancy(&self) -> usize {
        self.inputs.iter().flatten().count()
            + usize::from(self.inject_slot.is_some())
            + self.eject_queue.len()
    }

    /// The seed routing function, verbatim.
    fn route(&mut self, now: Cycle, stats: &mut FabricStats) -> [Option<Flit>; 4] {
        let mut resident: Vec<Flit> = Vec::with_capacity(5);
        for slot in &mut self.inputs {
            if let Some(flit) = slot.take() {
                resident.push(flit);
            }
        }
        // Oldest first; uid breaks ties deterministically.
        resident.sort_by_key(|f| (f.meta.injected_at, f.meta.uid));

        // Phase 1: ejection (single ejection channel per cycle).
        let mut ejected_one = false;
        let mut through: Vec<Flit> = Vec::with_capacity(resident.len());
        for flit in resident {
            if flit.dest() == self.coord && !ejected_one && !self.eject_queue.is_full() {
                let latency = now.saturating_sub(flit.meta.injected_at);
                stats.latency.record(latency);
                stats.delivered += 1;
                self.eject_queue.push(flit).unwrap_or_else(|_| unreachable!("checked not full"));
                ejected_one = true;
            } else {
                through.push(flit);
            }
        }

        // Phase 2: port assignment, oldest first.
        let mut outputs: [Option<Flit>; 4] = [None; 4];
        for mut flit in through {
            let assigned = self
                .topo
                .productive_dirs(self.coord, flit.dest())
                .find(|d| outputs[d.index()].is_none());
            let dir = match assigned {
                Some(d) => d,
                None => {
                    flit.meta.deflections += 1;
                    stats.deflections += 1;
                    Dir::ALL
                        .into_iter()
                        .find(|d| outputs[d.index()].is_none())
                        .expect("through-traffic can never exceed port count")
                }
            };
            outputs[dir.index()] = Some(flit);
        }

        // Phase 3: injection into a leftover port.
        if let Some(flit) = self.inject_slot.take() {
            if flit.dest() == self.coord {
                if !ejected_one && !self.eject_queue.is_full() {
                    let latency = now.saturating_sub(flit.meta.injected_at);
                    stats.latency.record(latency);
                    stats.delivered += 1;
                    self.eject_queue
                        .push(flit)
                        .unwrap_or_else(|_| unreachable!("checked not full"));
                } else {
                    self.inject_slot = Some(flit);
                }
                return outputs;
            }
            let free_productive = self
                .topo
                .productive_dirs(self.coord, flit.dest())
                .find(|d| outputs[d.index()].is_none());
            let free_any = free_productive
                .or_else(|| Dir::ALL.into_iter().find(|d| outputs[d.index()].is_none()));
            match free_any {
                Some(d) => outputs[d.index()] = Some(flit),
                None => self.inject_slot = Some(flit), // wait for a free slot
            }
        }
        outputs
    }
}

/// The seed fabric: per-cycle `Vec` collect, all routers routed every
/// cycle, O(routers) flit census.
#[derive(Debug, Clone)]
pub struct ReferenceNetwork {
    topo: Topology,
    routers: Vec<ReferenceRouter>,
    stats: FabricStats,
}

impl ReferenceNetwork {
    /// Build the fabric for `topo`.
    pub fn new(topo: Topology) -> Self {
        let routers = (0..topo.nodes())
            .map(|i| ReferenceRouter::new(topo, topo.coord_of(NodeId::new(i as u16))))
            .collect();
        ReferenceNetwork { topo, routers, stats: FabricStats::default() }
    }

    /// The topology this network was built for.
    pub const fn topology(&self) -> Topology {
        self.topo
    }

    fn router_mut(&mut self, node: NodeId) -> &mut ReferenceRouter {
        &mut self.routers[node.index()]
    }
}

impl Fabric for ReferenceNetwork {
    fn try_inject(&mut self, node: NodeId, flit: Flit, now: Cycle) -> Result<(), Flit> {
        self.try_inject_tagged(node, flit, now, false)
    }

    // The seed fabric originally stamped flits from a shared `next_uid`
    // counter; it now shares [`crate::network::compose_uid`] with the
    // optimized fabric so the equivalence suites can compare ejected
    // flits *bit for bit*, uid included. This is a pure relabeling, not
    // an optimization: the uid only ever feeds the `(injected_at, uid)`
    // arbitration sort above, and `compose_uid` orders same-cycle flits
    // exactly as the engine's injection sequence (and therefore the old
    // counter) did, so every routing decision is unchanged.
    fn try_inject_tagged(
        &mut self,
        node: NodeId,
        mut flit: Flit,
        now: Cycle,
        from_bank: bool,
    ) -> Result<(), Flit> {
        flit.meta.injected_at = now;
        flit.meta.uid = crate::network::compose_uid(now, from_bank, node);
        match self.router_mut(node).try_inject(flit) {
            Ok(()) => {
                self.stats.injected += 1;
                Ok(())
            }
            Err(flit) => {
                self.stats.inject_refusals += 1;
                Err(flit)
            }
        }
    }

    fn eject(&mut self, node: NodeId) -> Option<Flit> {
        self.router_mut(node).eject()
    }

    fn tick(&mut self, now: Cycle) {
        // Phase 1: every router routes its latched flits.
        let outputs: Vec<[Option<Flit>; 4]> =
            self.routers.iter_mut().map(|r| r.route(now, &mut self.stats)).collect();
        // Phase 2: deliver over the (single-cycle) links.
        for (i, outs) in outputs.into_iter().enumerate() {
            let from = self.topo.coord_of(NodeId::new(i as u16));
            for dir in Dir::ALL {
                if let Some(flit) = outs[dir.index()] {
                    let to = self.topo.neighbor(from, dir);
                    let to_idx = self.topo.node_of(to).index();
                    self.routers[to_idx].accept(dir.opposite(), flit);
                }
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.routers.iter().map(ReferenceRouter::occupancy).sum()
    }

    fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn node_count(&self) -> usize {
        self.topo.nodes()
    }
}
