//! The whole deflection-routed folded-torus fabric.
//!
//! Owns one [`DeflectionRouter`] per node and moves flits between them with
//! single-cycle links. The two-phase tick (route everything, then deliver
//! everything) gives the delta-cycle semantics of the original SystemC
//! model: all routers observe the state left by the previous cycle.
//!
//! The tick is the simulator's hot path and is engineered to be
//! allocation-free and activity-scheduled:
//!
//! * link latches are a persistent double buffer (`latches`), not a
//!   per-cycle collect;
//! * only *active* switches — those holding a latched flit or a pending
//!   injection at the cycle boundary — are routed; an idle switch costs
//!   nothing, which matters because realistic workloads leave most of the
//!   torus dark most of the time;
//! * the fabric-wide flit census ([`Fabric::in_flight`]) is an
//!   incrementally maintained counter, O(1) instead of an all-router scan
//!   (the cycle engine consults it every cycle).

use crate::coord::{Dir, Topology};
use crate::flit::Flit;
use crate::router::DeflectionRouter;
use crate::{Fabric, FabricStats};
use medea_metrics::{Meter, NullMeter};
use medea_sim::{ids::NodeId, Cycle};
use medea_trace::{NullSink, TraceEvent, TraceSink};

/// Arbitration uid for a flit injected at `node` during cycle `now`.
///
/// Routers arbitrate same-age flits by uid (see
/// [`DeflectionRouter::route`]: the sort key is `(injected_at, uid)`), so
/// the uid must reproduce the cycle engine's intra-cycle injection order:
/// within one cycle the engine offers PE flits in rank order, then bank
/// responses in bank order, and both the rank→node and bank→node maps are
/// strictly increasing. Encoding `(is_bank, node)` in the low 9 bits
/// therefore sorts exactly like a shared injection counter would — but is
/// locally computable, which is what lets the tiled parallel engine assign
/// uids without any cross-tile coordination (and why the sequential engine
/// uses the same scheme, keeping both engines bit-identical).
///
/// The uid is unique among concurrently-resident flits: a router accepts at
/// most one injection per node per cycle, and no node hosts both a PE and a
/// bank. `injected_at` occupies bits 9.., so cycle counts must stay below
/// 2^55 — comfortably above the configurable cycle limit.
#[inline]
pub fn compose_uid(now: Cycle, from_bank: bool, node: NodeId) -> u64 {
    (now << 9) | ((from_bank as u64) << 8) | node.index() as u64
}

/// Deflection-routed folded-torus network (§II-A).
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    routers: Vec<DeflectionRouter>,
    stats: FabricStats,
    /// Flits inside the fabric (latches + injection registers + ejection
    /// queues): +1 on accepted injection, -1 on ejection.
    in_flight: usize,
    /// Per-router output latches, reused every cycle.
    latches: Vec<[Option<Flit>; 4]>,
    /// Routers with work at the next cycle boundary (dedup'd by
    /// `is_active`); swapped with `retired` each tick.
    active: Vec<u16>,
    is_active: Vec<bool>,
    /// Spare buffer holding the previous cycle's working set.
    retired: Vec<u16>,
}

impl Network {
    /// Build the fabric for `topo`.
    pub fn new(topo: Topology) -> Self {
        let nodes = topo.nodes();
        let routers = (0..nodes)
            .map(|i| DeflectionRouter::new(topo, topo.coord_of(NodeId::new(i as u16))))
            .collect();
        Network {
            topo,
            routers,
            stats: FabricStats::default(),
            in_flight: 0,
            latches: vec![[None; 4]; nodes],
            active: Vec::with_capacity(nodes),
            is_active: vec![false; nodes],
            retired: Vec::with_capacity(nodes),
        }
    }

    /// The topology this network was built for.
    pub const fn topology(&self) -> Topology {
        self.topo
    }

    /// Kill the physical link between `node` and its `dir` neighbour, in
    /// both directions: this switch's output port *and* the neighbour's
    /// opposite output port go dead, so each affected switch keeps at
    /// least as many live output ports as live input latches and the
    /// deflection free-port invariant survives. Flits already in flight
    /// are unaffected (they simply route around the gap from now on).
    pub fn kill_link(&mut self, node: NodeId, dir: Dir) {
        let from = self.topo.coord_of(node);
        let to = self.topo.node_of(self.topo.neighbor(from, dir));
        self.routers[node.index()].set_link_dead(dir);
        self.routers[to.index()].set_link_dead(dir.opposite());
    }

    fn router_mut(&mut self, node: NodeId) -> &mut DeflectionRouter {
        &mut self.routers[node.index()]
    }

    fn mark_active(&mut self, idx: usize) {
        if !self.is_active[idx] {
            self.is_active[idx] = true;
            self.active.push(idx as u16);
        }
    }

    /// [`Fabric::tick`] with NoC events reported to `sink`: per-router
    /// deflections (from [`DeflectionRouter::route_traced`]) and the
    /// per-cycle output-link occupancy of every active router — the raw
    /// series behind per-link heatmaps. With an inactive sink this
    /// monomorphizes to exactly the untraced tick.
    pub fn tick_traced<S: TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        self.tick_metered(now, sink, &mut NullMeter);
    }

    /// [`Network::tick_traced`] with per-link occupancy additionally
    /// reported to `meter`: each active router contributes the 4-bit mask
    /// of its latched output directions ([`Meter::link_busy`]) — the
    /// directed-link resolution behind the heatmap report, where the
    /// trace event ([`medea_trace::TraceEvent::LinkLoad`]) only carries
    /// the per-router count. Both guards are associated constants, so
    /// either instrument monomorphizes away independently.
    pub fn tick_metered<S: TraceSink, M: Meter>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        meter: &mut M,
    ) {
        // This cycle's working set, moved out so the `active` field can
        // start accumulating the next cycle's set into the spare buffer
        // (both buffers are retained — steady state allocates nothing).
        let mut work = std::mem::replace(&mut self.active, std::mem::take(&mut self.retired));
        for &i in &work {
            self.is_active[i as usize] = false;
        }

        // Phase 1: every active router routes its latched flits into the
        // persistent link latches.
        for &i in &work {
            self.latches[i as usize] =
                self.routers[i as usize].route_traced(now, &mut self.stats, sink);
        }

        // Phase 2: deliver over the (single-cycle) links; receiving
        // switches and switches with an undrained injection register form
        // the next working set.
        for &i in &work {
            let i = i as usize;
            if S::ACTIVE || M::ACTIVE {
                // Every *active* router reports its occupancy — zeros
                // included, so a draining router's counter series returns
                // to zero instead of freezing at its last busy value.
                // Idle routers are not in the working set and emit
                // nothing.
                let mut mask = 0u8;
                for (d, latch) in self.latches[i].iter().enumerate() {
                    mask |= u8::from(latch.is_some()) << d;
                }
                if S::ACTIVE {
                    let links = mask.count_ones() as u8;
                    sink.record(now, TraceEvent::LinkLoad { node: i as u16, links });
                }
                if M::ACTIVE {
                    meter.link_busy(i as u16, mask);
                }
            }
            let from = self.topo.coord_of(NodeId::new(i as u16));
            for dir in Dir::ALL {
                if let Some(flit) = self.latches[i][dir.index()].take() {
                    let to = self.topo.neighbor(from, dir);
                    let to_idx = self.topo.node_of(to).index();
                    self.routers[to_idx].accept(dir.opposite(), flit);
                    self.mark_active(to_idx);
                }
            }
            if self.routers[i].has_pending_inject() {
                self.mark_active(i);
            }
        }

        work.clear();
        self.retired = work;
    }
}

impl Fabric for Network {
    fn try_inject(&mut self, node: NodeId, flit: Flit, now: Cycle) -> Result<(), Flit> {
        self.try_inject_tagged(node, flit, now, false)
    }

    fn try_inject_tagged(
        &mut self,
        node: NodeId,
        mut flit: Flit,
        now: Cycle,
        from_bank: bool,
    ) -> Result<(), Flit> {
        flit.meta.injected_at = now;
        flit.meta.uid = compose_uid(now, from_bank, node);
        match self.router_mut(node).try_inject(flit) {
            Ok(()) => {
                self.stats.injected += 1;
                self.in_flight += 1;
                self.mark_active(node.index());
                Ok(())
            }
            Err(flit) => {
                self.stats.inject_refusals += 1;
                Err(flit)
            }
        }
    }

    fn eject(&mut self, node: NodeId) -> Option<Flit> {
        let flit = self.router_mut(node).eject();
        if flit.is_some() {
            self.in_flight -= 1;
        }
        flit
    }

    fn tick(&mut self, now: Cycle) {
        self.tick_traced(now, &mut NullSink);
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn node_count(&self) -> usize {
        self.topo.nodes()
    }

    fn kill_link(&mut self, node: NodeId, dir: Dir) {
        Network::kill_link(self, node, dir);
    }
}

/// One tile's slice of the deflection fabric, for the tiled parallel
/// cycle engine: the routers of the contiguous node range `[lo, hi)`,
/// with their own activity set, latches and statistics.
///
/// A shard ticks exactly like [`Network::tick_traced`] except in phase 2:
/// a latched flit whose receiving switch lives in *another* tile is not
/// delivered but pushed onto the `exports` list as
/// `(destination node, receiving direction, flit)`. The engine moves
/// exports into per-tile-pair mailboxes at the end of cycle `T`, and the
/// destination shard imports them at the start of cycle `T + 1` — the
/// same single-cycle link timing the sequential fabric implements by
/// calling [`DeflectionRouter::accept`] directly. Because each
/// `(router, direction)` input latch has exactly one possible writer (the
/// unique neighbour on that link), boundary deliveries from different
/// tiles can never collide, and import order cannot change the outcome.
///
/// Injection uses [`compose_uid`], so shards assign globally consistent
/// arbitration uids without coordination; statistics are per-shard and
/// merged in tile order at the end of the run ([`FabricStats::merge`]).
#[derive(Debug)]
pub struct NetworkShard {
    topo: Topology,
    lo: usize,
    hi: usize,
    routers: Vec<DeflectionRouter>,
    stats: FabricStats,
    /// Flits inside *this shard* (+1 inject/import, -1 eject/export).
    in_flight: usize,
    latches: Vec<[Option<Flit>; 4]>,
    active: Vec<u16>,
    is_active: Vec<bool>,
    retired: Vec<u16>,
    /// Boundary deliveries produced by the current tick:
    /// `(destination node index, receiving direction index, flit)`.
    exports: Vec<(u16, u8, Flit)>,
}

impl NetworkShard {
    /// Shard of `topo` owning the node range `[lo, hi)`.
    pub fn new(topo: Topology, lo: usize, hi: usize) -> Self {
        assert!(lo < hi && hi <= topo.nodes(), "invalid shard range {lo}..{hi}");
        let routers = (lo..hi)
            .map(|i| DeflectionRouter::new(topo, topo.coord_of(NodeId::new(i as u16))))
            .collect();
        let len = hi - lo;
        NetworkShard {
            topo,
            lo,
            hi,
            routers,
            stats: FabricStats::default(),
            in_flight: 0,
            latches: vec![[None; 4]; len],
            active: Vec::with_capacity(len),
            is_active: vec![false; len],
            retired: Vec::with_capacity(len),
            exports: Vec::new(),
        }
    }

    /// First node index owned by this shard.
    pub const fn lo(&self) -> usize {
        self.lo
    }

    /// One past the last node index owned by this shard.
    pub const fn hi(&self) -> usize {
        self.hi
    }

    /// Whether `node` belongs to this shard.
    pub fn owns(&self, node: usize) -> bool {
        (self.lo..self.hi).contains(&node)
    }

    /// Flits currently inside this shard.
    pub const fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// This shard's statistics slice.
    pub const fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn mark_active(&mut self, local: usize) {
        if !self.is_active[local] {
            self.is_active[local] = true;
            self.active.push(local as u16);
        }
    }

    /// [`Fabric::try_inject_tagged`] for a node owned by this shard.
    ///
    /// # Errors
    ///
    /// Returns the flit back if the router cannot accept it this cycle.
    pub fn try_inject(
        &mut self,
        node: NodeId,
        mut flit: Flit,
        now: Cycle,
        from_bank: bool,
    ) -> Result<(), Flit> {
        flit.meta.injected_at = now;
        flit.meta.uid = compose_uid(now, from_bank, node);
        let local = node.index() - self.lo;
        match self.routers[local].try_inject(flit) {
            Ok(()) => {
                self.stats.injected += 1;
                self.in_flight += 1;
                self.mark_active(local);
                Ok(())
            }
            Err(flit) => {
                self.stats.inject_refusals += 1;
                Err(flit)
            }
        }
    }

    /// Remove the oldest flit waiting in `node`'s ejection queue, if any.
    pub fn eject(&mut self, node: NodeId) -> Option<Flit> {
        let flit = self.routers[node.index() - self.lo].eject();
        if flit.is_some() {
            self.in_flight -= 1;
        }
        flit
    }

    /// Kill *this side* of a physical link: `node`'s output port toward
    /// `dir`. The engine calls this once per affected endpoint, so a link
    /// crossing a tile boundary is disabled by the two shards that own its
    /// ends (cf. [`Network::kill_link`], which does both sides itself).
    pub fn kill_link_local(&mut self, node: NodeId, dir: Dir) {
        self.routers[node.index() - self.lo].set_link_dead(dir);
    }

    /// Accept a boundary delivery produced by a neighbouring shard during
    /// the previous cycle: the flit enters `to`'s input latch from
    /// direction `from_dir`, exactly as [`DeflectionRouter::accept`] would
    /// have during the sequential phase 2.
    pub fn import(&mut self, to: u16, from_dir: u8, flit: Flit) {
        let local = to as usize - self.lo;
        self.routers[local].accept(Dir::ALL[from_dir as usize & 3], flit);
        self.in_flight += 1;
        self.mark_active(local);
    }

    /// Take the boundary deliveries produced by the latest tick.
    pub fn take_exports(&mut self) -> Vec<(u16, u8, Flit)> {
        std::mem::take(&mut self.exports)
    }

    /// Number of boundary deliveries produced by the latest tick that have
    /// not yet been taken.
    pub fn pending_exports(&self) -> usize {
        self.exports.len()
    }

    /// [`Network::tick_traced`] restricted to this shard's routers;
    /// cross-tile deliveries land in the export list instead of the
    /// destination latch.
    pub fn tick_traced<S: TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        self.tick_metered(now, sink, &mut NullMeter);
    }

    /// [`Network::tick_metered`] restricted to this shard's routers: link
    /// masks are reported with *global* node ids, so a full-size per-tile
    /// meter accumulates into the same slots the sequential fabric would
    /// — shard meters merge by element-wise sum (each router has exactly
    /// one owning shard).
    pub fn tick_metered<S: TraceSink, M: Meter>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        meter: &mut M,
    ) {
        let mut work = std::mem::replace(&mut self.active, std::mem::take(&mut self.retired));
        for &i in &work {
            self.is_active[i as usize] = false;
        }

        for &i in &work {
            self.latches[i as usize] =
                self.routers[i as usize].route_traced(now, &mut self.stats, sink);
        }

        for &i in &work {
            let i = i as usize;
            if S::ACTIVE || M::ACTIVE {
                let mut mask = 0u8;
                for (d, latch) in self.latches[i].iter().enumerate() {
                    mask |= u8::from(latch.is_some()) << d;
                }
                if S::ACTIVE {
                    let links = mask.count_ones() as u8;
                    sink.record(now, TraceEvent::LinkLoad { node: (self.lo + i) as u16, links });
                }
                if M::ACTIVE {
                    meter.link_busy((self.lo + i) as u16, mask);
                }
            }
            let from = self.topo.coord_of(NodeId::new((self.lo + i) as u16));
            for dir in Dir::ALL {
                if let Some(flit) = self.latches[i][dir.index()].take() {
                    let to = self.topo.neighbor(from, dir);
                    let to_idx = self.topo.node_of(to).index();
                    if self.owns(to_idx) {
                        self.routers[to_idx - self.lo].accept(dir.opposite(), flit);
                        self.mark_active(to_idx - self.lo);
                    } else {
                        self.exports.push((to_idx as u16, dir.opposite().index() as u8, flit));
                        self.in_flight -= 1;
                    }
                }
            }
            if self.routers[i].has_pending_inject() {
                self.mark_active(i);
            }
        }

        work.clear();
        self.retired = work;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketKind;

    fn net() -> Network {
        Network::new(Topology::paper_4x4())
    }

    fn run_until_delivered(net: &mut Network, node: NodeId, limit: Cycle) -> (Flit, Cycle) {
        for now in 0..limit {
            net.tick(now);
            if let Some(f) = net.eject(node) {
                return (f, now);
            }
        }
        panic!("flit not delivered within {limit} cycles");
    }

    #[test]
    fn single_flit_minimal_path() {
        let mut n = net();
        let dest = NodeId::new(5); // (1,1): 2 hops from (0,0)
        let flit = Flit::message(n.topology().coord_of(dest), 0, 0, 0, 42);
        n.try_inject(NodeId::new(0), flit, 0).unwrap();
        let (arrived, when) = run_until_delivered(&mut n, dest, 16);
        assert_eq!(arrived.payload(), 42);
        assert_eq!(arrived.meta.hops, 2);
        // 1 cycle to leave the injection register + 1 per hop.
        assert!(when <= 4, "took {when} cycles");
        assert_eq!(n.stats().delivered, 1);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn wraparound_link_used() {
        let mut n = net();
        // (0,0) -> (3,0) is one westward wrap hop.
        let dest = NodeId::new(3);
        let flit = Flit::message(n.topology().coord_of(dest), 0, 0, 0, 7);
        n.try_inject(NodeId::new(0), flit, 0).unwrap();
        let (arrived, _) = run_until_delivered(&mut n, dest, 16);
        assert_eq!(arrived.meta.hops, 1);
    }

    #[test]
    fn flit_to_self_delivered_locally() {
        let mut n = net();
        let dest = NodeId::new(6);
        let flit = Flit::message(n.topology().coord_of(dest), 0, 0, 0, 9);
        n.try_inject(dest, flit, 0).unwrap();
        // Self-addressed traffic leaves the injection register, is latched
        // at the local router and ejected; it still crosses the switch.
        let (arrived, _) = run_until_delivered(&mut n, dest, 16);
        assert_eq!(arrived.payload(), 9);
    }

    #[test]
    fn all_pairs_deliver() {
        let mut n = net();
        let topo = n.topology();
        // Pending (source, flit) pairs: every ordered pair of distinct nodes.
        let mut pending: Vec<(NodeId, Flit)> = Vec::new();
        for s in 0..topo.nodes() {
            for d in 0..topo.nodes() {
                if s == d {
                    continue;
                }
                let flit = Flit::message(
                    topo.coord_of(NodeId::new(d as u16)),
                    s as u8,
                    0,
                    0,
                    (s * 100 + d) as u32,
                );
                pending.push((NodeId::new(s as u16), flit));
            }
        }
        let expected = pending.len() as u64;
        let mut delivered = 0u64;
        let mut now: Cycle = 0;
        while delivered < expected && now < 5000 {
            // Inject whatever the routers will take this cycle.
            let mut still_pending = Vec::new();
            for (src, flit) in pending {
                match n.try_inject(src, flit, now) {
                    Ok(()) => {}
                    Err(back) => still_pending.push((src, back)),
                }
            }
            pending = still_pending;
            n.tick(now);
            for node in 0..topo.nodes() {
                while n.eject(NodeId::new(node as u16)).is_some() {
                    delivered += 1;
                }
            }
            now += 1;
        }
        assert_eq!(delivered, expected, "all flits must eventually arrive");
        assert_eq!(n.in_flight(), 0);
        assert_eq!(n.stats().delivered, expected);
    }

    #[test]
    fn heavy_contention_is_lossless() {
        // Every node floods node 0; deflection must deliver everything.
        let mut n = net();
        let topo = n.topology();
        let hot = NodeId::new(0);
        let hot_coord = topo.coord_of(hot);
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for now in 0..400 {
            if now < 100 {
                for s in 1..topo.nodes() {
                    let f = Flit::new(
                        hot_coord,
                        PacketKind::Message,
                        crate::flit::SubKind::Data,
                        0,
                        0,
                        s as u8,
                        now as u32,
                    );
                    if n.try_inject(NodeId::new(s as u16), f, now).is_ok() {
                        injected += 1;
                    }
                }
            }
            n.tick(now);
            while n.eject(hot).is_some() {
                delivered += 1;
            }
        }
        assert!(injected > 100, "sanity: {injected} injected");
        assert_eq!(delivered, injected, "hot-potato routing must be lossless");
        assert!(n.stats().deflections > 0, "contention must cause deflections");
    }

    #[test]
    fn killed_link_is_routed_around_losslessly() {
        let mut n = net();
        let topo = n.topology();
        // Kill (0,0)->East; traffic (0,0)->(2,0) would take it.
        n.kill_link(NodeId::new(0), Dir::East);
        let mut injected = 0u64;
        let mut delivered = 0u64;
        for now in 0..600 {
            if now < 50 {
                for s in 0..topo.nodes() {
                    let d = (s + 2) % topo.nodes();
                    let f = Flit::message(
                        topo.coord_of(NodeId::new(d as u16)),
                        s as u8,
                        0,
                        0,
                        now as u32,
                    );
                    if n.try_inject(NodeId::new(s as u16), f, now).is_ok() {
                        injected += 1;
                    }
                }
            }
            n.tick(now);
            for node in 0..topo.nodes() {
                while n.eject(NodeId::new(node as u16)).is_some() {
                    delivered += 1;
                }
            }
        }
        assert!(injected > 100, "sanity: {injected} injected");
        assert_eq!(delivered, injected, "dead link must not lose flits");
        assert!(n.stats().reroutes > 0, "traffic must have been diverted");
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn shard_pair_matches_whole_network() {
        // Two shards exchanging exports through mailboxes must behave
        // bit-identically to the whole fabric: same refusals, same
        // deliveries (uid/hops included), same stats after a tile-order
        // merge. This is the noc-layer half of the tiled engine's
        // determinism argument.
        let topo = Topology::paper_4x4();
        let mut whole = Network::new(topo);
        let mut shards = [NetworkShard::new(topo, 0, 8), NetworkShard::new(topo, 8, 16)];
        let tile_of = |node: usize| usize::from(node >= 8);
        // Boundary flits in flight between cycles, keyed by destination tile.
        let mut mailboxes: [Vec<(u16, u8, Flit)>; 2] = [Vec::new(), Vec::new()];
        for now in 0..400u64 {
            for dest in 0..2 {
                let batch: Vec<_> = mailboxes[dest].drain(..).collect();
                for (to, from_dir, flit) in batch {
                    shards[dest].import(to, from_dir, flit);
                }
            }
            if now < 120 {
                for s in 0..topo.nodes() {
                    let d = (s * 7 + 3) % topo.nodes();
                    if d == s {
                        continue;
                    }
                    let flit = Flit::message(
                        topo.coord_of(NodeId::new(d as u16)),
                        s as u8,
                        0,
                        0,
                        (now * 31 + s as u64) as u32,
                    );
                    let a = whole.try_inject(NodeId::new(s as u16), flit, now).is_ok();
                    let b = shards[tile_of(s)]
                        .try_inject(NodeId::new(s as u16), flit, now, false)
                        .is_ok();
                    assert_eq!(a, b, "inject divergence at node {s} cycle {now}");
                }
            }
            whole.tick(now);
            for shard in &mut shards {
                shard.tick_traced(now, &mut NullSink);
            }
            for shard in &mut shards {
                for export in shard.take_exports() {
                    mailboxes[tile_of(export.0 as usize)].push(export);
                }
            }
            for node in 0..topo.nodes() {
                loop {
                    let a = whole.eject(NodeId::new(node as u16));
                    let b = shards[tile_of(node)].eject(NodeId::new(node as u16));
                    match (a, b) {
                        (Some(x), Some(y)) => {
                            assert_eq!(x.meta.uid, y.meta.uid);
                            assert_eq!(x.meta.hops, y.meta.hops);
                            assert_eq!(x.payload(), y.payload());
                        }
                        (None, None) => break,
                        (a, b) => {
                            panic!("eject divergence at node {node} cycle {now}: {a:?} vs {b:?}")
                        }
                    }
                }
            }
        }
        assert_eq!(whole.in_flight(), 0, "whole fabric must drain");
        assert_eq!(shards[0].in_flight() + shards[1].in_flight(), 0);
        let mut merged = shards[0].stats().clone();
        merged.merge(shards[1].stats());
        assert!(whole.stats().delivered > 0);
        assert_eq!(merged.delivered, whole.stats().delivered);
        assert_eq!(merged.injected, whole.stats().injected);
        assert_eq!(merged.deflections, whole.stats().deflections);
        assert_eq!(merged.inject_refusals, whole.stats().inject_refusals);
        assert_eq!(merged.reroutes, whole.stats().reroutes);
        assert_eq!(&merged.latency, &whole.stats().latency);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n = net();
            let topo = n.topology();
            for now in 0..50 {
                for s in 0..topo.nodes() {
                    let d = (s * 7 + 3) % topo.nodes();
                    if d != s {
                        let f = Flit::message(
                            topo.coord_of(NodeId::new(d as u16)),
                            s as u8,
                            0,
                            0,
                            (now * 31 + s as u64) as u32,
                        );
                        let _ = n.try_inject(NodeId::new(s as u16), f, now);
                    }
                }
                n.tick(now);
            }
            (n.stats().delivered, n.stats().deflections, n.in_flight())
        };
        assert_eq!(run(), run());
    }
}
