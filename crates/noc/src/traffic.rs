//! Synthetic traffic generation and open-loop NoC characterization.
//!
//! The paper validates the NoC substrate separately (its ref.\[15\] is a
//! trace-driven NoC analysis); this module provides the equivalent
//! standalone measurement: latency and accepted throughput versus offered
//! load for classic synthetic patterns. Used by the `noc_traffic` bench
//! (experiment A3 in DESIGN.md) and by property tests as a stress source.

use crate::coord::Topology;
use crate::flit::Flit;
use crate::Fabric;
use medea_sim::{ids::NodeId, rng::SplitMix64, Cycle};
use std::collections::VecDeque;
use std::fmt;

/// Classic synthetic destination patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniformly random destination (excluding self).
    UniformRandom,
    /// Matrix-transpose: `(x, y) → (y, x)`; diagonal nodes stay silent.
    Transpose,
    /// All nodes target a single hot node (models the MPMMU bottleneck).
    HotSpot(NodeId),
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::UniformRandom => write!(f, "uniform"),
            Pattern::Transpose => write!(f, "transpose"),
            Pattern::HotSpot(n) => write!(f, "hotspot({n})"),
        }
    }
}

/// Open-loop traffic experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Destination pattern.
    pub pattern: Pattern,
    /// Offered load in flits per node per cycle (`0.0..=1.0`).
    pub offered_load: f64,
    /// Warm-up cycles excluded from measurement.
    pub warmup: Cycle,
    /// Measured cycles.
    pub measure: Cycle,
    /// PRNG seed (generation is deterministic given the seed).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            pattern: Pattern::UniformRandom,
            offered_load: 0.1,
            warmup: 500,
            measure: 2000,
            seed: 0xA11CE,
        }
    }
}

/// Results of an open-loop traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Flits generated per node per cycle (the demand).
    pub offered_load: f64,
    /// Flits delivered per node per cycle during the measured window.
    pub accepted_throughput: f64,
    /// Mean in-network latency of delivered flits, cycles.
    pub mean_latency: f64,
    /// Maximum observed latency (the hot-potato tail the paper mentions).
    pub max_latency: u64,
    /// Fraction of injection attempts initially refused (source queueing).
    pub refusal_fraction: f64,
    /// Mean deflections per delivered flit.
    pub deflections_per_flit: f64,
}

/// Run an open-loop traffic experiment on `fabric`.
///
/// Each node owns an unbounded source queue: generated flits wait there
/// until the router accepts them, so offered load beyond saturation shows
/// up as rising latency and a throughput plateau — the standard NoC
/// methodology.
pub fn run_open_loop<F: Fabric>(
    fabric: &mut F,
    topo: Topology,
    cfg: &TrafficConfig,
) -> TrafficReport {
    assert!(
        (0.0..=1.0).contains(&cfg.offered_load),
        "offered load must be within one flit per node per cycle"
    );
    let nodes = topo.nodes();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut source_queues: Vec<VecDeque<Flit>> = (0..nodes).map(|_| VecDeque::new()).collect();

    let start_inject = fabric.stats().injected;
    let mut measured_delivered = 0u64;
    let mut measured_latency_sum = 0u64;
    let mut measured_latency_max = 0u64;
    let mut generated = 0u64;
    let mut refused = 0u64;
    let mut attempts = 0u64;
    let defl_start = fabric.stats().deflections;

    let total = cfg.warmup + cfg.measure;
    for now in 0..total {
        // Generate.
        for (src, queue) in source_queues.iter_mut().enumerate() {
            if !rng.chance(cfg.offered_load) {
                continue;
            }
            let dest = match destination(cfg.pattern, topo, src, &mut rng) {
                Some(d) => d,
                None => continue,
            };
            let flit = Flit::message(topo.coord_of(dest), src as u8, 0, 0, now as u32);
            generated += 1;
            queue.push_back(flit);
        }
        // Inject from source queues.
        for (src, queue) in source_queues.iter_mut().enumerate() {
            if let Some(flit) = queue.pop_front() {
                attempts += 1;
                if let Err(back) = fabric.try_inject(NodeId::new(src as u16), flit, now) {
                    refused += 1;
                    queue.push_front(back);
                }
            }
        }
        fabric.tick(now);
        // Drain ejection queues.
        for node in 0..nodes {
            while let Some(flit) = fabric.eject(NodeId::new(node as u16)) {
                if now >= cfg.warmup {
                    let lat = now.saturating_sub(flit.meta.injected_at);
                    measured_delivered += 1;
                    measured_latency_sum += lat;
                    measured_latency_max = measured_latency_max.max(lat);
                }
            }
        }
    }

    let delivered_flits = measured_delivered;
    let injected = fabric.stats().injected - start_inject;
    let _ = generated;
    TrafficReport {
        offered_load: cfg.offered_load,
        accepted_throughput: delivered_flits as f64 / (cfg.measure as f64 * nodes as f64),
        mean_latency: if delivered_flits > 0 {
            measured_latency_sum as f64 / delivered_flits as f64
        } else {
            0.0
        },
        max_latency: measured_latency_max,
        refusal_fraction: if attempts > 0 { refused as f64 / attempts as f64 } else { 0.0 },
        deflections_per_flit: if injected > 0 {
            (fabric.stats().deflections - defl_start) as f64 / injected as f64
        } else {
            0.0
        },
    }
}

fn destination(
    pattern: Pattern,
    topo: Topology,
    src: usize,
    rng: &mut SplitMix64,
) -> Option<NodeId> {
    match pattern {
        Pattern::UniformRandom => {
            let nodes = topo.nodes();
            if nodes < 2 {
                return None;
            }
            let mut d = rng.next_below(nodes as u64 - 1) as usize;
            if d >= src {
                d += 1;
            }
            Some(NodeId::new(d as u16))
        }
        Pattern::Transpose => {
            let c = topo.coord_of(NodeId::new(src as u16));
            if c.x == c.y || c.x >= topo.height() || c.y >= topo.width() {
                return None;
            }
            Some(topo.node_of(crate::coord::Coord::new(c.y, c.x)))
        }
        Pattern::HotSpot(hot) => (src != hot.index()).then_some(hot),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealNetwork;
    use crate::network::Network;

    #[test]
    fn low_load_low_latency() {
        let topo = Topology::paper_4x4();
        let mut net = Network::new(topo);
        let cfg = TrafficConfig { offered_load: 0.02, ..TrafficConfig::default() };
        let rep = run_open_loop(&mut net, topo, &cfg);
        assert!(rep.accepted_throughput > 0.0);
        // At 2% load a 4x4 torus is nearly contention-free; the average
        // minimal distance is 2 so latency should be a handful of cycles.
        assert!(rep.mean_latency < 8.0, "mean latency {}", rep.mean_latency);
    }

    #[test]
    fn throughput_saturates_under_heavy_load() {
        let topo = Topology::paper_4x4();
        let mk = |load| {
            let mut net = Network::new(topo);
            let cfg = TrafficConfig { offered_load: load, ..TrafficConfig::default() };
            run_open_loop(&mut net, topo, &cfg)
        };
        let light = mk(0.05);
        let heavy = mk(0.9);
        assert!(heavy.mean_latency > light.mean_latency);
        assert!(heavy.accepted_throughput < 0.9, "cannot accept all offered load");
        assert!(heavy.deflections_per_flit > light.deflections_per_flit);
    }

    #[test]
    fn hotspot_is_ejection_limited() {
        let topo = Topology::paper_4x4();
        let mut net = Network::new(topo);
        let cfg = TrafficConfig {
            pattern: Pattern::HotSpot(NodeId::new(0)),
            offered_load: 0.5,
            ..TrafficConfig::default()
        };
        let rep = run_open_loop(&mut net, topo, &cfg);
        // One ejection channel: at most 1 flit/cycle total reaches the hot
        // node, i.e. 1/16 per node per cycle.
        assert!(rep.accepted_throughput <= 1.0 / 15.0 + 0.01);
    }

    #[test]
    fn ideal_network_beats_real_under_load() {
        let topo = Topology::paper_4x4();
        let cfg = TrafficConfig { offered_load: 0.4, ..TrafficConfig::default() };
        let mut real = Network::new(topo);
        let real_rep = run_open_loop(&mut real, topo, &cfg);
        let mut ideal = IdealNetwork::new(topo);
        let ideal_rep = run_open_loop(&mut ideal, topo, &cfg);
        assert!(ideal_rep.mean_latency <= real_rep.mean_latency);
        // Throughput matches up to measurement-window boundary effects
        // (flits still in flight when the window closes).
        assert!(ideal_rep.accepted_throughput >= real_rep.accepted_throughput - 0.01);
        assert_eq!(ideal_rep.max_latency, 4, "ideal max latency is the torus diameter");
    }

    #[test]
    fn transpose_diagonal_silent() {
        let topo = Topology::paper_4x4();
        let mut rng = SplitMix64::new(1);
        // Node 0 is (0,0): on the diagonal.
        assert_eq!(destination(Pattern::Transpose, topo, 0, &mut rng), None);
        // Node 1 is (1,0) -> (0,1) = node 4.
        assert_eq!(destination(Pattern::Transpose, topo, 1, &mut rng), Some(NodeId::new(4)));
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::paper_4x4();
        let cfg = TrafficConfig { offered_load: 0.3, ..TrafficConfig::default() };
        let mut a = Network::new(topo);
        let mut b = Network::new(topo);
        let ra = run_open_loop(&mut a, topo, &cfg);
        let rb = run_open_loop(&mut b, topo, &cfg);
        assert_eq!(ra, rb);
    }
}
