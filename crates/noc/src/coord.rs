//! Torus geometry: coordinates, distances and productive directions.
//!
//! The paper uses a 4×4 folded torus (§II-D: "for a 4x4 folded-torus
//! topology two bits are required for each coordinate"). Folding changes
//! only the physical wire layout — every link still costs one cycle — so we
//! model the logical torus directly.

use medea_sim::ids::NodeId;
use std::fmt;

/// The four router link directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward decreasing Y.
    North,
    /// Toward increasing X.
    East,
    /// Toward increasing Y.
    South,
    /// Toward decreasing X.
    West,
}

impl Dir {
    /// All directions, in the fixed port order used by the router.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Port index (0..4) of this direction.
    pub const fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// The direction a flit leaving through `self` arrives from.
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::East => "E",
            Dir::South => "S",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

/// X-Y coordinate of a node on the torus (the transport-level address of
/// the packet format, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: u8,
    /// Row, `0..height`.
    pub y: u8,
}

impl Coord {
    /// Construct a coordinate.
    pub const fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Error constructing a [`Topology`] with unusable dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTopologyError {
    width: u8,
    height: u8,
}

impl fmt::Display for InvalidTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "torus dimensions {}x{} unsupported: each side must be in 2..=16",
            self.width, self.height
        )
    }
}

impl std::error::Error for InvalidTopologyError {}

/// A `width × height` torus. Copyable value object shared by routers,
/// bridges (for the address LUT) and the codec (for field widths).
///
/// There is deliberately no `Default` implementation: every component
/// takes the topology it operates on explicitly, so nothing in the stack
/// can silently assume the paper's 4×4 instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    width: u8,
    height: u8,
}

impl Topology {
    /// Create a torus of the given dimensions.
    ///
    /// # Errors
    ///
    /// Each side must be between 2 and 16: below 2 a torus degenerates
    /// (self-links), above 16 the coordinate no longer fits the 4-bit field
    /// budget of the 64-bit flit format.
    pub fn new(width: u8, height: u8) -> Result<Self, InvalidTopologyError> {
        if !(2..=16).contains(&width) || !(2..=16).contains(&height) {
            return Err(InvalidTopologyError { width, height });
        }
        Ok(Topology { width, height })
    }

    /// The paper's 4×4 folded torus.
    pub fn paper_4x4() -> Self {
        Topology { width: 4, height: 4 }
    }

    /// Columns.
    pub const fn width(self) -> u8 {
        self.width
    }

    /// Rows.
    pub const fn height(self) -> u8 {
        self.height
    }

    /// Total node count.
    pub const fn nodes(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Largest number of compute PEs this torus can host: every node but
    /// the one reserved for the MPMMU (255 on the 16×16 maximum).
    pub const fn max_compute_pes(self) -> usize {
        self.nodes() - 1
    }

    /// Bits needed to encode a linear node index — the width of the
    /// application-level `SRC-ID` field for this torus (4 on the paper's
    /// 4×4, 8 on the 16×16 maximum). Row-major indices satisfy
    /// `y·width + x < 2^(x_bits + y_bits)`, so the sum of the coordinate
    /// widths always suffices.
    pub const fn src_bits(self) -> u32 {
        self.x_bits() + self.y_bits()
    }

    /// Bits needed to encode an X coordinate (2 for the 4×4 paper torus).
    pub const fn x_bits(self) -> u32 {
        bits_for(self.width)
    }

    /// Bits needed to encode a Y coordinate.
    pub const fn y_bits(self) -> u32 {
        bits_for(self.height)
    }

    /// Coordinate of a linear node id (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this topology.
    pub fn coord_of(self, node: NodeId) -> Coord {
        let idx = node.index();
        assert!(idx < self.nodes(), "node {node} outside {}x{} torus", self.width, self.height);
        Coord::new((idx % self.width as usize) as u8, (idx / self.width as usize) as u8)
    }

    /// Linear node id of a coordinate (row-major).
    pub fn node_of(self, coord: Coord) -> NodeId {
        debug_assert!(coord.x < self.width && coord.y < self.height);
        NodeId::new(coord.y as u16 * self.width as u16 + coord.x as u16)
    }

    /// Coordinate of the neighbor of `from` through direction `dir`
    /// (wrapping torus links).
    pub fn neighbor(self, from: Coord, dir: Dir) -> Coord {
        let (w, h) = (self.width, self.height);
        match dir {
            Dir::North => Coord::new(from.x, (from.y + h - 1) % h),
            Dir::South => Coord::new(from.x, (from.y + 1) % h),
            Dir::East => Coord::new((from.x + 1) % w, from.y),
            Dir::West => Coord::new((from.x + w - 1) % w, from.y),
        }
    }

    /// Minimal hop count between two nodes on the torus.
    pub fn distance(self, a: Coord, b: Coord) -> u32 {
        wrap_dist(a.x, b.x, self.width) + wrap_dist(a.y, b.y, self.height)
    }

    /// Productive directions from `at` toward `dest`: the (at most two)
    /// directions that reduce the torus distance, X preferred first. Empty
    /// when `at == dest`.
    pub fn productive_dirs(self, at: Coord, dest: Coord) -> ProductiveDirs {
        let mut dirs = [None, None];
        let mut n = 0;
        if let Some(d) = axis_dir(at.x, dest.x, self.width, Dir::East, Dir::West) {
            dirs[n] = Some(d);
            n += 1;
        }
        if let Some(d) = axis_dir(at.y, dest.y, self.height, Dir::South, Dir::North) {
            dirs[n] = Some(d);
        }
        ProductiveDirs { dirs, next: 0 }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} torus", self.width, self.height)
    }
}

/// Iterator over the productive directions returned by
/// [`Topology::productive_dirs`].
#[derive(Debug, Clone)]
pub struct ProductiveDirs {
    dirs: [Option<Dir>; 2],
    next: usize,
}

impl Iterator for ProductiveDirs {
    type Item = Dir;

    fn next(&mut self) -> Option<Dir> {
        while self.next < 2 {
            let d = self.dirs[self.next];
            self.next += 1;
            if d.is_some() {
                return d;
            }
        }
        None
    }
}

const fn bits_for(side: u8) -> u32 {
    // Smallest b with 2^b >= side; side is in 2..=16 so b is in 1..=4.
    (side as u32 - 1).ilog2() + 1
}

fn wrap_dist(a: u8, b: u8, side: u8) -> u32 {
    let fwd = (b as i32 - a as i32).rem_euclid(side as i32) as u32;
    fwd.min(side as u32 - fwd)
}

fn axis_dir(a: u8, b: u8, side: u8, inc: Dir, dec: Dir) -> Option<Dir> {
    if a == b {
        return None;
    }
    let fwd = (b as i32 - a as i32).rem_euclid(side as i32) as u32;
    let bwd = side as u32 - fwd;
    // Ties (exactly half-way around an even ring) go to the incrementing
    // direction; deterministic and matches a hardwired RTL comparator.
    Some(if fwd <= bwd { inc } else { dec })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_validated() {
        assert!(Topology::new(1, 4).is_err());
        assert!(Topology::new(4, 17).is_err());
        let t = Topology::new(4, 4).unwrap();
        assert_eq!(t.nodes(), 16);
        assert_eq!(t.to_string(), "4x4 torus");
    }

    #[test]
    fn paper_topology_field_widths() {
        let t = Topology::paper_4x4();
        // §II-D: "For a 4x4 folded-torus topology two bits are required for
        // each coordinate".
        assert_eq!(t.x_bits(), 2);
        assert_eq!(t.y_bits(), 2);
    }

    #[test]
    fn src_bits_cover_every_node_index() {
        for w in 2..=16u8 {
            for h in 2..=16u8 {
                let t = Topology::new(w, h).unwrap();
                let max_index = t.nodes() - 1;
                assert!(
                    max_index < (1usize << t.src_bits()),
                    "{t}: index {max_index} exceeds {} src bits",
                    t.src_bits()
                );
                assert_eq!(t.max_compute_pes(), t.nodes() - 1);
            }
        }
        assert_eq!(Topology::paper_4x4().src_bits(), 4, "the paper's 4-bit SRC-ID field");
        assert_eq!(Topology::new(16, 16).unwrap().src_bits(), 8);
        assert_eq!(Topology::new(16, 16).unwrap().max_compute_pes(), 255);
    }

    #[test]
    fn coord_node_roundtrip() {
        let t = Topology::new(4, 3).unwrap();
        for i in 0..t.nodes() {
            let node = NodeId::new(i as u16);
            assert_eq!(t.node_of(t.coord_of(node)), node);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Topology::paper_4x4();
        let c = Coord::new(0, 0);
        assert_eq!(t.neighbor(c, Dir::West), Coord::new(3, 0));
        assert_eq!(t.neighbor(c, Dir::North), Coord::new(0, 3));
        assert_eq!(t.neighbor(c, Dir::East), Coord::new(1, 0));
        assert_eq!(t.neighbor(c, Dir::South), Coord::new(0, 1));
    }

    #[test]
    fn neighbor_opposite_is_identity() {
        let t = Topology::new(5, 7).unwrap();
        for y in 0..7 {
            for x in 0..5 {
                let c = Coord::new(x, y);
                for d in Dir::ALL {
                    assert_eq!(t.neighbor(t.neighbor(c, d), d.opposite()), c);
                }
            }
        }
    }

    #[test]
    fn distance_symmetric_and_wrapping() {
        let t = Topology::paper_4x4();
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 3);
        // One wrap hop on each axis.
        assert_eq!(t.distance(a, b), 2);
        assert_eq!(t.distance(b, a), 2);
        assert_eq!(t.distance(a, a), 0);
        assert_eq!(t.distance(a, Coord::new(2, 0)), 2);
    }

    #[test]
    fn productive_dirs_reduce_distance() {
        let t = Topology::paper_4x4();
        for sy in 0..4 {
            for sx in 0..4 {
                for dy in 0..4 {
                    for dx in 0..4 {
                        let s = Coord::new(sx, sy);
                        let d = Coord::new(dx, dy);
                        for dir in t.productive_dirs(s, d) {
                            let n = t.neighbor(s, dir);
                            assert!(
                                t.distance(n, d) < t.distance(s, d),
                                "{dir} from {s} to {d} is not productive"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn productive_dirs_empty_at_dest() {
        let t = Topology::paper_4x4();
        let c = Coord::new(1, 2);
        assert_eq!(t.productive_dirs(c, c).count(), 0);
    }

    #[test]
    fn dir_opposites() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }
}
