//! Deflection-routing ("hot-potato") switch.
//!
//! §II-A: the switch "implements the deflection-routing algorithm which
//! uses a full-blown packet-switching methodology by allowing different
//! routing for every flit of the same packet. The basic idea is that of
//! choosing the presently 'best' route for each incoming flit, without ever
//! keeping more than one flit per input channel". Consequences modeled
//! here:
//!
//! * storage is the theoretical minimum — one latch per input port, nothing
//!   else (no virtual channels, no back-pressure);
//! * every latched flit *must* leave every cycle; contention losers are
//!   deflected to whatever port is free;
//! * arbitration is oldest-first, the classic anti-livelock heuristic for
//!   hot-potato networks (the paper reports livelock is possible in theory
//!   but only "sporadic cases of single flits delivered with high latency"
//!   in practice — the latency histogram exposes exactly that tail);
//! * injection succeeds only when an output port remains free after all
//!   through-traffic is routed; ejection frees a port but is limited to one
//!   flit per cycle (a single ejection channel into the node interface).

use crate::coord::{Coord, Dir, Topology};
use crate::flit::Flit;
use crate::FabricStats;
use medea_sim::fifo::Fifo;
use medea_sim::Cycle;
use medea_trace::{NullSink, TraceEvent, TraceSink};

/// Default depth of the ejection queue between router and node interface.
pub const DEFAULT_EJECT_QUEUE: usize = 8;

/// One deflection-routed switch of the folded torus.
#[derive(Debug, Clone)]
pub struct DeflectionRouter {
    coord: Coord,
    topo: Topology,
    inputs: [Option<Flit>; 4],
    inject_slot: Option<Flit>,
    eject_queue: Fifo<Flit>,
    /// Output ports disabled by fault injection (a stuck-dead link). A
    /// dead link is killed in *both* directions by the fabric, so the
    /// matching input latch never receives a flit either — each affected
    /// switch keeps at least as many live outputs as live inputs and the
    /// deflection free-port guarantee is preserved.
    dead: [bool; 4],
}

impl DeflectionRouter {
    /// Create the switch at `coord` of torus `topo`.
    pub fn new(topo: Topology, coord: Coord) -> Self {
        DeflectionRouter {
            coord,
            topo,
            inputs: [None; 4],
            inject_slot: None,
            eject_queue: Fifo::new("router-eject", DEFAULT_EJECT_QUEUE),
            dead: [false; 4],
        }
    }

    /// Permanently disable the output port toward `dir` (stuck-dead link
    /// fault). The caller must also kill the opposite port of the
    /// neighbouring switch: the routing invariants assume a dead link
    /// carries traffic in neither direction.
    pub fn set_link_dead(&mut self, dir: Dir) {
        self.dead[dir.index()] = true;
    }

    /// Whether the output port toward `dir` has been killed.
    pub const fn link_dead(&self, dir: Dir) -> bool {
        self.dead[dir.index()]
    }

    /// This switch's coordinate.
    pub const fn coord(&self) -> Coord {
        self.coord
    }

    /// Latch a flit arriving over the link from direction `from`.
    ///
    /// # Panics
    ///
    /// Panics if the latch is already occupied — that would mean two flits
    /// traversed one link in one cycle, a fabric bug.
    pub fn accept(&mut self, from: Dir, mut flit: Flit) {
        flit.meta.hops += 1;
        let slot = &mut self.inputs[from.index()];
        assert!(slot.is_none(), "link protocol violation: double delivery on {from}");
        *slot = Some(flit);
    }

    /// Place `flit` in the injection register if it is free.
    ///
    /// # Errors
    ///
    /// Returns the flit back when the register still holds a previous
    /// injection that has not found a free output port yet.
    pub fn try_inject(&mut self, flit: Flit) -> Result<(), Flit> {
        if self.inject_slot.is_some() {
            return Err(flit);
        }
        self.inject_slot = Some(flit);
        Ok(())
    }

    /// Pop the oldest flit destined to this node, if any.
    pub fn eject(&mut self) -> Option<Flit> {
        self.eject_queue.pop()
    }

    /// Flits currently held by this switch (latches + injection register +
    /// ejection queue).
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().flatten().count()
            + usize::from(self.inject_slot.is_some())
            + self.eject_queue.len()
    }

    /// Whether the injection register still holds a flit (it could not be
    /// drained this cycle) — the switch needs another [`route`] call even
    /// if no link traffic arrives.
    ///
    /// [`route`]: DeflectionRouter::route
    pub const fn has_pending_inject(&self) -> bool {
        self.inject_slot.is_some()
    }

    /// Route all latched flits for the cycle ending at `now`, returning the
    /// flits leaving on each output port (indexed by [`Dir::index`]).
    ///
    /// Routing order within the cycle:
    /// 1. at most one local-destination flit is ejected (oldest first);
    /// 2. remaining flits are assigned ports oldest-first, productive
    ///    directions preferred, deflected otherwise;
    /// 3. the injection register is drained into a leftover port if one
    ///    exists (productive preferred).
    ///
    /// This is the innermost loop of the whole simulator and performs no
    /// heap allocation: residents are gathered into a fixed scratch array
    /// and ordered with an insertion sort (at most four elements).
    pub fn route(&mut self, now: Cycle, stats: &mut FabricStats) -> [Option<Flit>; 4] {
        self.route_traced(now, stats, &mut NullSink)
    }

    /// [`route`](DeflectionRouter::route) with deflection events reported
    /// to `sink`. With an inactive sink every emission site constant-folds
    /// away, so `route` monomorphizes to exactly the untraced hot path.
    pub fn route_traced<S: TraceSink>(
        &mut self,
        now: Cycle,
        stats: &mut FabricStats,
        sink: &mut S,
    ) -> [Option<Flit>; 4] {
        let mut resident: [Option<Flit>; 4] = [None; 4];
        let mut count = 0;
        for slot in &mut self.inputs {
            if let Some(flit) = slot.take() {
                resident[count] = Some(flit);
                count += 1;
            }
        }
        // Oldest first; uid breaks ties deterministically. Keys are unique
        // (uids are), so insertion sort matches the previous stable sort.
        let key = |f: &Option<Flit>| {
            let f = f.as_ref().expect("resident slots 0..count are occupied");
            (f.meta.injected_at, f.meta.uid)
        };
        for i in 1..count {
            let mut j = i;
            while j > 0 && key(&resident[j - 1]) > key(&resident[j]) {
                resident.swap(j - 1, j);
                j -= 1;
            }
        }

        // Ejection and port assignment in one oldest-first pass (the
        // ejection decision is per-flit, so splitting into a separate
        // "through" list is unnecessary).
        let mut ejected_one = false;
        let mut outputs: [Option<Flit>; 4] = [None; 4];
        for slot in resident.iter_mut().take(count) {
            let mut flit = slot.take().expect("resident slots 0..count are occupied");
            if flit.dest() == self.coord && !ejected_one && !self.eject_queue.is_full() {
                let latency = now.saturating_sub(flit.meta.injected_at);
                stats.latency.record(latency);
                stats.delivered += 1;
                self.eject_queue.push(flit).unwrap_or_else(|_| unreachable!("checked not full"));
                ejected_one = true;
                continue;
            }
            // A dead productive port diverts the flit (counted as a
            // reroute) but only if it would otherwise have been chosen —
            // the search short-circuits on the first live free port.
            let mut rerouted = false;
            let assigned = self.topo.productive_dirs(self.coord, flit.dest()).find(|d| {
                if self.dead[d.index()] {
                    rerouted = true;
                    return false;
                }
                outputs[d.index()].is_none()
            });
            if rerouted {
                stats.reroutes += 1;
            }
            let dir = match assigned {
                Some(d) => d,
                None => {
                    // Deflect: any live free port. One always exists
                    // because dead links carry no traffic in either
                    // direction, so live through-flits never outnumber
                    // live output ports.
                    flit.meta.deflections += 1;
                    stats.deflections += 1;
                    if S::ACTIVE {
                        let node = self.topo.node_of(self.coord).index() as u16;
                        sink.record(now, TraceEvent::FlitDeflected { node });
                    }
                    Dir::ALL
                        .into_iter()
                        .find(|d| !self.dead[d.index()] && outputs[d.index()].is_none())
                        .expect("through-traffic can never exceed port count")
                }
            };
            outputs[dir.index()] = Some(flit);
        }

        // Phase 3: injection into a leftover port. Self-addressed traffic
        // never enters the links: the node interface loops it straight into
        // the ejection queue (subject to the same single-channel limit).
        if let Some(flit) = self.inject_slot.take() {
            if flit.dest() == self.coord {
                if !ejected_one && !self.eject_queue.is_full() {
                    let latency = now.saturating_sub(flit.meta.injected_at);
                    stats.latency.record(latency);
                    stats.delivered += 1;
                    self.eject_queue
                        .push(flit)
                        .unwrap_or_else(|_| unreachable!("checked not full"));
                } else {
                    self.inject_slot = Some(flit);
                }
                return outputs;
            }
            let mut rerouted = false;
            let free_productive = self.topo.productive_dirs(self.coord, flit.dest()).find(|d| {
                if self.dead[d.index()] {
                    rerouted = true;
                    return false;
                }
                outputs[d.index()].is_none()
            });
            let free_any = free_productive.or_else(|| {
                Dir::ALL.into_iter().find(|d| !self.dead[d.index()] && outputs[d.index()].is_none())
            });
            match free_any {
                Some(d) => {
                    outputs[d.index()] = Some(flit);
                    // Counted only when the flit actually leaves, so a
                    // blocked injection does not inflate the counter
                    // every cycle it waits.
                    if rerouted {
                        stats.reroutes += 1;
                    }
                }
                None => self.inject_slot = Some(flit), // wait for a free slot
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Flit;

    fn topo() -> Topology {
        Topology::paper_4x4()
    }

    fn flit_to(dest: Coord, uid: u64, injected_at: Cycle) -> Flit {
        let mut f = Flit::message(dest, 0, 0, 0, uid as u32);
        f.meta.uid = uid;
        f.meta.injected_at = injected_at;
        f
    }

    #[test]
    fn lone_flit_takes_productive_port() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        r.accept(Dir::West, flit_to(Coord::new(2, 0), 1, 0));
        let outs = r.route(1, &mut stats);
        // (0,0)->(2,0): east is productive.
        assert!(outs[Dir::East.index()].is_some());
        assert_eq!(stats.deflections, 0);
    }

    #[test]
    fn local_flit_is_ejected_with_latency() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(1, 1));
        let mut stats = FabricStats::default();
        r.accept(Dir::North, flit_to(Coord::new(1, 1), 1, 5));
        let outs = r.route(9, &mut stats);
        assert!(outs.iter().all(Option::is_none));
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.latency.summary().max(), Some(4));
        assert!(r.eject().is_some());
        assert!(r.eject().is_none());
    }

    #[test]
    fn only_one_ejection_per_cycle() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(1, 1));
        let mut stats = FabricStats::default();
        r.accept(Dir::North, flit_to(Coord::new(1, 1), 1, 0));
        r.accept(Dir::South, flit_to(Coord::new(1, 1), 2, 0));
        let outs = r.route(3, &mut stats);
        assert_eq!(stats.delivered, 1);
        // The second local flit must be deflected back out.
        assert_eq!(outs.iter().flatten().count(), 1);
        assert_eq!(stats.deflections, 1);
    }

    #[test]
    fn contention_deflects_youngest() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        // Both flits want East (dest (1,0)); older one (injected earlier)
        // must win the productive port.
        let old = flit_to(Coord::new(1, 0), 1, 0);
        let young = flit_to(Coord::new(1, 0), 2, 10);
        r.accept(Dir::West, young);
        r.accept(Dir::South, old);
        let outs = r.route(11, &mut stats);
        assert_eq!(outs[Dir::East.index()].unwrap().meta.uid, 1);
        assert_eq!(stats.deflections, 1);
        let deflected =
            outs.iter().flatten().find(|f| f.meta.uid == 2).expect("young flit must still leave");
        assert_eq!(deflected.meta.deflections, 1);
    }

    #[test]
    fn four_through_flits_all_leave() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        for (i, d) in Dir::ALL.into_iter().enumerate() {
            r.accept(d, flit_to(Coord::new(2, 2), i as u64, i as Cycle));
        }
        let outs = r.route(5, &mut stats);
        assert_eq!(outs.iter().flatten().count(), 4);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn injection_waits_when_ports_full() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        for (i, d) in Dir::ALL.into_iter().enumerate() {
            r.accept(d, flit_to(Coord::new(2, 2), i as u64, 0));
        }
        r.try_inject(flit_to(Coord::new(1, 0), 99, 1)).unwrap();
        // A second injection while the register is full must be refused.
        assert!(r.try_inject(flit_to(Coord::new(1, 0), 100, 1)).is_err());
        let outs = r.route(2, &mut stats);
        assert_eq!(outs.iter().flatten().count(), 4);
        assert!(outs.iter().flatten().all(|f| f.meta.uid != 99));
        assert_eq!(r.occupancy(), 1, "injected flit still waiting");
        // Next cycle the ports are free and the flit leaves.
        let outs = r.route(3, &mut stats);
        assert_eq!(outs.iter().flatten().count(), 1);
        assert_eq!(outs.iter().flatten().next().unwrap().meta.uid, 99);
    }

    #[test]
    fn dead_port_diverts_and_counts_reroute() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        // (0,0)->(2,0): east is the sole productive port; kill it.
        r.set_link_dead(Dir::East);
        assert!(r.link_dead(Dir::East));
        r.accept(Dir::West, flit_to(Coord::new(2, 0), 1, 0));
        let outs = r.route(1, &mut stats);
        assert!(outs[Dir::East.index()].is_none(), "dead port must stay silent");
        assert_eq!(outs.iter().flatten().count(), 1, "flit still leaves on a live port");
        assert_eq!(stats.reroutes, 1);
        assert_eq!(stats.deflections, 1, "no live productive port means a deflection");
    }

    #[test]
    fn injection_avoids_dead_port() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        r.set_link_dead(Dir::East);
        r.try_inject(flit_to(Coord::new(2, 0), 7, 0)).unwrap();
        let outs = r.route(1, &mut stats);
        assert!(outs[Dir::East.index()].is_none());
        assert_eq!(outs.iter().flatten().count(), 1);
        assert_eq!(stats.reroutes, 1);
    }

    #[test]
    fn live_productive_port_is_not_a_reroute() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let mut stats = FabricStats::default();
        // (0,0)->(2,2) routes East/South; West is never productive for
        // this destination, so killing it must not count a reroute.
        r.set_link_dead(Dir::West);
        r.accept(Dir::North, flit_to(Coord::new(2, 2), 1, 0));
        let outs = r.route(1, &mut stats);
        assert_eq!(outs.iter().flatten().count(), 1);
        assert_eq!(stats.reroutes, 0);
        assert_eq!(stats.deflections, 0);
    }

    #[test]
    fn hops_counted_on_accept() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        let f = flit_to(Coord::new(2, 0), 1, 0);
        assert_eq!(f.meta.hops, 0);
        r.accept(Dir::West, f);
        let mut stats = FabricStats::default();
        let outs = r.route(1, &mut stats);
        assert_eq!(outs.iter().flatten().next().unwrap().meta.hops, 1);
    }

    #[test]
    #[should_panic(expected = "double delivery")]
    fn double_accept_panics() {
        let mut r = DeflectionRouter::new(topo(), Coord::new(0, 0));
        r.accept(Dir::West, flit_to(Coord::new(1, 0), 1, 0));
        r.accept(Dir::West, flit_to(Coord::new(1, 0), 2, 0));
    }
}
