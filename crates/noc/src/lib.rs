//! Folded-torus network-on-chip with deflection ("hot-potato") routing.
//!
//! Implements §II-A and §II-D of the MEDEA paper:
//!
//! * a two-dimensional **folded torus** topology ([`coord`]) — folding is a
//!   physical-layout device that equalizes link lengths, so at the
//!   cycle-accurate level every link costs one cycle and the logical
//!   connectivity is an ordinary torus;
//! * **deflection routing** ([`router`]): a switch never stores more than
//!   one flit per input channel, each incoming flit is routed independently
//!   every cycle (full packet switching at flit granularity), there is no
//!   back-pressure, and contention losers are deflected to free ports;
//! * the **three-level packet format** of Fig. 5 ([`flit`], [`codec`]) with
//!   its seven packet types and 4-bit sequence numbers for out-of-order
//!   reassembly at the receiver;
//! * a whole-fabric model ([`network`]) and a contention-free reference
//!   fabric ([`ideal`]) used by the ablation benchmarks;
//! * synthetic traffic generators and a standalone measurement loop
//!   ([`traffic`]) for NoC-only characterization.
//!
//! # Example
//!
//! ```
//! use medea_noc::{coord::Topology, flit::{Flit, PacketKind}, network::Network, Fabric};
//! use medea_sim::ids::NodeId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Topology::new(4, 4)?;
//! let mut net = Network::new(topo);
//! let flit = Flit::message(topo.coord_of(NodeId::new(5)), 0, 0, 0, 0xDEAD);
//! net.try_inject(NodeId::new(0), flit, 0).map_err(|_| "injection refused")?;
//! for now in 0..32 {
//!     net.tick(now);
//!     if let Some(arrived) = net.eject(NodeId::new(5)) {
//!         assert_eq!(arrived.payload(), 0xDEAD);
//!         assert_eq!(arrived.kind(), PacketKind::Message);
//!         return Ok(());
//!     }
//! }
//! panic!("flit never arrived");
//! # }
//! ```

pub mod codec;
pub mod coord;
pub mod flit;
pub mod ideal;
pub mod network;
pub mod reference;
pub mod router;
pub mod traffic;

use flit::Flit;
use medea_sim::{ids::NodeId, Cycle};

/// Aggregate fabric statistics exposed by every [`Fabric`] implementation.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Per-flit in-network latency (inject→eject), cycles.
    pub latency: medea_sim::stats::Log2Histogram,
    /// Total flits delivered.
    pub delivered: u64,
    /// Total flits injected.
    pub injected: u64,
    /// Total deflection events (flit granted a non-productive port).
    pub deflections: u64,
    /// Injection attempts refused because no output slot was free.
    pub inject_refusals: u64,
    /// Routing decisions diverted around a killed link (a productive port
    /// was dead, so the flit left through another port). Zero unless
    /// fault injection killed a link.
    pub reroutes: u64,
}

impl FabricStats {
    /// Fold another fabric's statistics into this one.
    ///
    /// Every field is a sum (the latency histogram merges bucket-wise), so
    /// the fold is commutative and merging per-tile shard stats in tile
    /// order reproduces bit-for-bit what a single whole-fabric recorder
    /// would have counted — the property the tiled cycle engine's stats
    /// reduction depends on.
    pub fn merge(&mut self, other: &FabricStats) {
        self.latency.merge(&other.latency);
        self.delivered += other.delivered;
        self.injected += other.injected;
        self.deflections += other.deflections;
        self.inject_refusals += other.inject_refusals;
        self.reroutes += other.reroutes;
    }
}

/// A network fabric: anything that can carry MEDEA flits between nodes.
///
/// Two implementations exist: the paper's deflection-routed folded torus
/// ([`network::Network`]) and a contention-free ideal fabric
/// ([`ideal::IdealNetwork`]) used as an ablation baseline. Cycle engines
/// that tick a fabric every cycle should hold an [`AnyFabric`] rather
/// than a `Box<dyn Fabric>`: the enum dispatches statically, so the
/// per-cycle `tick`/`in_flight` calls inline into the hot loop.
pub trait Fabric {
    /// Attempt to inject `flit` at `node` during cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns the flit back if the router cannot accept it this cycle
    /// (hot-potato switches accept an injection only when an output slot
    /// remains after routing through-traffic).
    fn try_inject(&mut self, node: NodeId, flit: Flit, now: Cycle) -> Result<(), Flit>;

    /// [`Fabric::try_inject`] with the injecting agent's class attached:
    /// `from_bank` is true for MPMMU bank responses, false for PE traffic.
    ///
    /// Fabrics that derive the flit's arbitration uid from its injection
    /// site (see [`network::compose_uid`]) use the tag to reproduce the
    /// engine's intra-cycle injection order — PEs in rank order, then
    /// banks in bank order — without a shared counter. The default simply
    /// ignores the tag, which is correct for fabrics with their own uid
    /// sequencing (the reference and ideal networks).
    fn try_inject_tagged(
        &mut self,
        node: NodeId,
        flit: Flit,
        now: Cycle,
        _from_bank: bool,
    ) -> Result<(), Flit> {
        self.try_inject(node, flit, now)
    }

    /// Remove the oldest flit waiting in `node`'s ejection queue, if any.
    fn eject(&mut self, node: NodeId) -> Option<Flit>;

    /// Advance the fabric by one cycle ending at `now`.
    fn tick(&mut self, now: Cycle);

    /// Number of flits currently inside the fabric (in links, latches or
    /// ejection queues). Zero means the fabric is drained — the full-system
    /// simulator uses this for idle fast-forwarding.
    fn in_flight(&self) -> usize;

    /// Aggregate statistics.
    fn stats(&self) -> &FabricStats;

    /// Number of nodes addressable on this fabric.
    fn node_count(&self) -> usize;

    /// Permanently kill the link leaving `node` toward `dir` (fault
    /// injection). Implementations must disable *both* directions of the
    /// physical link. The default is a no-op for fabrics without
    /// contended links (the ideal fabric has nothing to kill).
    fn kill_link(&mut self, _node: NodeId, _dir: coord::Dir) {}
}

/// Closed sum of the fabric implementations, for static dispatch in
/// cycle-loop hot paths (a `Box<dyn Fabric>` costs a vtable indirection
/// per call, every cycle).
#[derive(Debug, Clone)]
pub enum AnyFabric {
    /// The paper's deflection-routed folded torus.
    Deflection(network::Network),
    /// Contention-free ideal network (ablation baseline).
    Ideal(ideal::IdealNetwork),
}

impl AnyFabric {
    /// [`Fabric::tick`] with NoC events (deflections, per-router link
    /// load) reported to `sink`. The ideal fabric is contention-free —
    /// no switches, no deflections — so it has nothing to report beyond
    /// the engine-side inject/deliver events, and ticks untraced.
    pub fn tick_traced<S: medea_trace::TraceSink>(&mut self, now: Cycle, sink: &mut S) {
        match self {
            AnyFabric::Deflection(net) => net.tick_traced(now, sink),
            AnyFabric::Ideal(net) => net.tick(now),
        }
    }

    /// [`AnyFabric::tick_traced`] with per-link occupancy masks reported
    /// to `meter` ([`medea_metrics::Meter::link_busy`]). The ideal fabric
    /// has no contended links, so its utilization series is identically
    /// zero and it ticks unmetered.
    pub fn tick_metered<S: medea_trace::TraceSink, M: medea_metrics::Meter>(
        &mut self,
        now: Cycle,
        sink: &mut S,
        meter: &mut M,
    ) {
        match self {
            AnyFabric::Deflection(net) => net.tick_metered(now, sink, meter),
            AnyFabric::Ideal(net) => net.tick(now),
        }
    }
}

impl From<network::Network> for AnyFabric {
    fn from(net: network::Network) -> Self {
        AnyFabric::Deflection(net)
    }
}

impl From<ideal::IdealNetwork> for AnyFabric {
    fn from(net: ideal::IdealNetwork) -> Self {
        AnyFabric::Ideal(net)
    }
}

impl Fabric for AnyFabric {
    fn try_inject(&mut self, node: NodeId, flit: Flit, now: Cycle) -> Result<(), Flit> {
        match self {
            AnyFabric::Deflection(net) => net.try_inject(node, flit, now),
            AnyFabric::Ideal(net) => net.try_inject(node, flit, now),
        }
    }

    fn try_inject_tagged(
        &mut self,
        node: NodeId,
        flit: Flit,
        now: Cycle,
        from_bank: bool,
    ) -> Result<(), Flit> {
        match self {
            AnyFabric::Deflection(net) => net.try_inject_tagged(node, flit, now, from_bank),
            AnyFabric::Ideal(net) => net.try_inject(node, flit, now),
        }
    }

    fn eject(&mut self, node: NodeId) -> Option<Flit> {
        match self {
            AnyFabric::Deflection(net) => net.eject(node),
            AnyFabric::Ideal(net) => net.eject(node),
        }
    }

    fn tick(&mut self, now: Cycle) {
        match self {
            AnyFabric::Deflection(net) => net.tick(now),
            AnyFabric::Ideal(net) => net.tick(now),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            AnyFabric::Deflection(net) => net.in_flight(),
            AnyFabric::Ideal(net) => net.in_flight(),
        }
    }

    fn stats(&self) -> &FabricStats {
        match self {
            AnyFabric::Deflection(net) => net.stats(),
            AnyFabric::Ideal(net) => net.stats(),
        }
    }

    fn node_count(&self) -> usize {
        match self {
            AnyFabric::Deflection(net) => net.node_count(),
            AnyFabric::Ideal(net) => net.node_count(),
        }
    }

    fn kill_link(&mut self, node: NodeId, dir: coord::Dir) {
        match self {
            AnyFabric::Deflection(net) => net.kill_link(node, dir),
            AnyFabric::Ideal(_) => {}
        }
    }
}
